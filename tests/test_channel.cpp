#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace sigcomp::sim {
namespace {

struct Packet {
  int id = 0;
};

TEST(Channel, DeliversWithDeterministicDelay) {
  Simulator sim;
  Rng rng(1);
  std::vector<double> arrivals;
  Channel<Packet> ch(sim, rng, 0.0, 0.25, Distribution::kDeterministic,
                     [&](const Packet&) { arrivals.push_back(sim.now()); });
  ch.send({1});
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.25);
  EXPECT_EQ(ch.counters().sent, 1u);
  EXPECT_EQ(ch.counters().delivered, 1u);
  EXPECT_EQ(ch.counters().lost, 0u);
}

TEST(Channel, PayloadContentSurvives) {
  Simulator sim;
  Rng rng(1);
  int received = 0;
  Channel<Packet> ch(sim, rng, 0.0, 0.1, Distribution::kDeterministic,
                     [&](const Packet& p) { received = p.id; });
  ch.send({42});
  sim.run();
  EXPECT_EQ(received, 42);
}

TEST(Channel, FullLossDropsEverything) {
  Simulator sim;
  Rng rng(2);
  int delivered = 0;
  Channel<Packet> ch(sim, rng, 1.0, 0.1, Distribution::kDeterministic,
                     [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 50; ++i) ch.send({i});
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.counters().sent, 50u);
  EXPECT_EQ(ch.counters().lost, 50u);
}

TEST(Channel, LossRateIsRespectedStatistically) {
  Simulator sim;
  Rng rng(3);
  int delivered = 0;
  Channel<Packet> ch(sim, rng, 0.2, 0.001, Distribution::kDeterministic,
                     [&](const Packet&) { ++delivered; });
  constexpr int kSent = 20000;
  for (int i = 0; i < kSent; ++i) ch.send({i});
  sim.run();
  EXPECT_NEAR(delivered / double(kSent), 0.8, 0.01);
  EXPECT_EQ(ch.counters().sent, static_cast<std::uint64_t>(kSent));
  EXPECT_EQ(ch.counters().delivered + ch.counters().lost,
            static_cast<std::uint64_t>(kSent));
}

TEST(Channel, NeverReordersEvenWithRandomDelays) {
  Simulator sim;
  Rng rng(4);
  std::vector<int> received;
  Channel<Packet> ch(sim, rng, 0.0, 0.5, Distribution::kExponential,
                     [&](const Packet& p) { received.push_back(p.id); });
  for (int i = 0; i < 500; ++i) {
    // Interleave sends with time advancement to vary send instants.
    sim.schedule_at(0.01 * i, [&ch, i] { ch.send({i}); });
  }
  sim.run();
  ASSERT_EQ(received.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(received[i], i) << "position " << i;
}

TEST(Channel, ExponentialDelayHasRequestedMean) {
  Simulator sim;
  Rng rng(5);
  double total_delay = 0.0;
  int count = 0;
  Channel<Packet> ch(sim, rng, 0.0, 0.2, Distribution::kExponential,
                     [&](const Packet&) {
                       total_delay += sim.now();
                       ++count;
                     });
  // All sent at t=0 -- note FIFO pushes arrivals up, so compare against the
  // max-so-far-corrected expectation loosely.
  constexpr int kSent = 5000;
  for (int i = 0; i < kSent; ++i) ch.send({i});
  sim.run();
  ASSERT_EQ(count, kSent);
  // The running maximum of exponentials grows like ln(n); just check the
  // mean observed delay is at least the distribution mean and bounded.
  EXPECT_GT(total_delay / count, 0.2);
  EXPECT_LT(total_delay / count, 0.2 * (std::log(double(kSent)) + 2.0));
}

TEST(Channel, SetLossMidRunChangesBehaviour) {
  Simulator sim;
  Rng rng(6);
  int delivered = 0;
  Channel<Packet> ch(sim, rng, 1.0, 0.01, Distribution::kDeterministic,
                     [&](const Packet&) { ++delivered; });
  ch.send({1});  // lost
  ch.set_loss(0.0);
  ch.send({2});  // delivered
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(ch.counters().lost, 1u);
}

TEST(Channel, SetSinkRewiresDelivery) {
  Simulator sim;
  Rng rng(7);
  int a = 0, b = 0;
  Channel<Packet> ch(sim, rng, 0.0, 0.01, Distribution::kDeterministic,
                     [&](const Packet&) { ++a; });
  ch.send({1});
  sim.run();
  ch.set_sink([&](const Packet&) { ++b; });
  ch.send({2});
  sim.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(Channel, AccessorsReportConfiguration) {
  Simulator sim;
  Rng rng(8);
  Channel<Packet> ch(sim, rng, 0.1, 0.3, Distribution::kDeterministic,
                     [](const Packet&) {});
  EXPECT_DOUBLE_EQ(ch.loss(), 0.1);
  EXPECT_DOUBLE_EQ(ch.mean_delay(), 0.3);
  EXPECT_EQ(ch.loss_config().model, LossModel::kIid);
  EXPECT_EQ(ch.delay_config().model, DelayModel::kDeterministic);
}

TEST(Channel, ConstructorAndSetLossValidateProbability) {
  Simulator sim;
  Rng rng(9);
  const auto sink = [](const Packet&) {};
  EXPECT_THROW((Channel<Packet>(sim, rng, -0.1, 0.1,
                                Distribution::kDeterministic, sink)),
               std::invalid_argument);
  EXPECT_THROW((Channel<Packet>(sim, rng, 1.5, 0.1,
                                Distribution::kDeterministic, sink)),
               std::invalid_argument);
  EXPECT_THROW((Channel<Packet>(sim, rng, std::nan(""), 0.1,
                                Distribution::kDeterministic, sink)),
               std::invalid_argument);
  Channel<Packet> ch(sim, rng, 0.5, 0.1, Distribution::kDeterministic, sink);
  EXPECT_THROW(ch.set_loss(-0.01), std::invalid_argument);
  EXPECT_THROW(ch.set_loss(1.01), std::invalid_argument);
  ch.set_loss(1.0);  // blackhole is legal
  EXPECT_DOUBLE_EQ(ch.loss(), 1.0);
}

TEST(Channel, GilbertElliottChannelDropsInBursts) {
  Simulator sim;
  Rng rng(10);
  int delivered = 0;
  // Mean loss 0.2 but concentrated in bursts of mean length 5.
  Channel<Packet> ch(sim, rng,
                     LossConfig::gilbert_elliott_matched(0.2, 5.0),
                     DelayConfig::deterministic(0.001),
                     [&](const Packet&) { ++delivered; });
  constexpr int kSent = 50000;
  for (int i = 0; i < kSent; ++i) ch.send({i});
  sim.run();
  EXPECT_EQ(ch.counters().sent, static_cast<std::uint64_t>(kSent));
  EXPECT_NEAR(static_cast<double>(ch.counters().lost) / kSent, 0.2, 0.02);
  EXPECT_NEAR(ch.loss(), 0.2, 1e-12);
}

}  // namespace
}  // namespace sigcomp::sim
