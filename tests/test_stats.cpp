#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sigcomp::sim {
namespace {

TEST(TimeWeightedValue, IntegratesPiecewiseConstantSignal) {
  TimeWeightedValue v;
  v.set(0.0, 1.0);   // 1 from t=0
  v.set(2.0, 0.0);   // 0 from t=2
  v.set(5.0, 2.0);   // 2 from t=5
  EXPECT_DOUBLE_EQ(v.integral(10.0), 1.0 * 2.0 + 0.0 * 3.0 + 2.0 * 5.0);
}

TEST(TimeWeightedValue, MeanOverWindow) {
  TimeWeightedValue v;
  v.set(0.0, 1.0);
  v.set(5.0, 0.0);
  EXPECT_DOUBLE_EQ(v.mean(10.0), 0.5);
}

TEST(TimeWeightedValue, InitialValueCountsFromStart) {
  TimeWeightedValue v(0.0, 1.0);
  EXPECT_DOUBLE_EQ(v.integral(4.0), 4.0);
  EXPECT_DOUBLE_EQ(v.value(), 1.0);
}

TEST(TimeWeightedValue, EmptyWindowMeanIsZero) {
  TimeWeightedValue v;
  EXPECT_DOUBLE_EQ(v.mean(0.0), 0.0);
}

TEST(TimeWeightedValue, TimeGoingBackwardsThrows) {
  TimeWeightedValue v;
  v.set(5.0, 1.0);
  EXPECT_THROW(v.set(4.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)v.integral(4.0), std::invalid_argument);
}

TEST(TimeWeightedValue, RepeatedSetAtSameInstantKeepsLastValue) {
  TimeWeightedValue v;
  v.set(0.0, 1.0);
  v.set(1.0, 5.0);
  v.set(1.0, 0.0);  // zero-width interval at value 5
  EXPECT_DOUBLE_EQ(v.integral(2.0), 1.0);
}

TEST(RunningStats, MeanAndVarianceMatchKnownData) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, WelfordIsNumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000 / 999, 1e-6);
}

TEST(StudentT, CriticalValuesMatchTables) {
  EXPECT_NEAR(student_t_95(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_95(5), 2.571, 1e-3);
  EXPECT_NEAR(student_t_95(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_95(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_95(1000), 1.9624, 1e-3);
  EXPECT_GT(student_t_95(0), 0.0);  // degenerate input falls back sanely
}

TEST(StudentT, NeverAntiConservativeBetweenBreakpoints) {
  // Regression: df in the coarse ranges used to get the critical value of
  // the *upper* breakpoint (e.g. df = 31 got the df = 40 value 2.021,
  // below the true 2.0395), silently narrowing every reported 95% CI.
  // The returned value must bracket the true critical value from above,
  // and stay within a bounded conservative slack.
  struct Case {
    std::size_t df;
    double true_value;  // two-sided 95% critical value of Student's t
  };
  constexpr Case kCases[] = {
      {31, 2.0395},  {40, 2.0211}, {45, 2.0141},  {59, 2.0010},
      {61, 1.9996},  {90, 1.9867}, {119, 1.9801}, {150, 1.9759},
      {400, 1.9659}, {5000, 1.9604}};
  for (const Case& c : kCases) {
    const double returned = student_t_95(c.df);
    EXPECT_GE(returned, c.true_value - 1e-9) << "df " << c.df;
    EXPECT_LE(returned, c.true_value + 0.025) << "df " << c.df;
  }
}

TEST(StudentT, DecreasesWithDegreesOfFreedom) {
  for (std::size_t df = 2; df <= 200; ++df) {
    EXPECT_LE(student_t_95(df), student_t_95(df - 1)) << "df " << df;
  }
}

TEST(ConfidenceInterval, CoversKnownMean) {
  RunningStats s;
  for (const double x : {9.8, 10.1, 10.0, 9.9, 10.2}) s.add(x);
  const ConfidenceInterval ci = confidence_interval_95(s);
  EXPECT_EQ(ci.samples, 5u);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.lower(), ci.upper());
}

TEST(ConfidenceInterval, SingleSampleHasZeroWidth) {
  RunningStats s;
  s.add(1.0);
  const ConfidenceInterval ci = confidence_interval_95(s);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(1.0));
  EXPECT_FALSE(ci.contains(1.1));
}

}  // namespace
}  // namespace sigcomp::sim
