#include "exp/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace sigcomp::exp {

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (pool.size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Per-call completion state so concurrent parallel_for calls on one pool
  // never wait on each other's tasks.  The waiter blocks until every spawned
  // task has returned, which also guarantees no worker still references
  // `body` (or its captures) once parallel_for returns -- including on the
  // error path, where unclaimed indices are abandoned.
  struct State {
    std::atomic<std::size_t> next{0};  ///< next unclaimed index
    std::size_t total = 0;
    std::size_t tasks = 0;
    std::size_t finished_tasks = 0;  ///< guarded by mutex
    std::exception_ptr error;        ///< first exception, guarded by mutex
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->total = n;
  state->tasks = pool.size() < n ? pool.size() : n;

  for (std::size_t t = 0; t < state->tasks; ++t) {
    pool.submit([state, &body] {
      for (;;) {
        const std::size_t i = state->next.fetch_add(1);
        if (i >= state->total) break;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
          // Stop further claims; workers drain out via the break above.
          state->next.store(state->total);
        }
      }
      const std::lock_guard<std::mutex> lock(state->mutex);
      ++state->finished_tasks;
      if (state->finished_tasks == state->tasks) state->cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock,
                 [&state] { return state->finished_tasks == state->tasks; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace sigcomp::exp
