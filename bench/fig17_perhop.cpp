// Figure 17: fraction of time the i-th hop is inconsistent, 1 <= i <= 20,
// for SS, SS+RT and HS (multi-hop defaults: K=20, pl=0.02/hop, D=30ms/hop,
// 1/lu=60s, R=5s, T=15s, G=120ms).  Analytic model plus a simulation
// cross-check column per protocol.
//
// Usage: fig17_perhop [--csv PATH] [--no-sim]
#include <iostream>
#include <string_view>

#include "analytic/multi_hop.hpp"
#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  bool with_sim = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--no-sim") with_sim = false;
  }

  const MultiHopParams params = MultiHopParams::reservation_defaults();

  std::vector<analytic::MultiHopModel> models;
  for (const ProtocolKind kind : kPaperMultiHopProtocols) {
    models.emplace_back(kind, params);
  }
  std::vector<protocols::MultiHopSimResult> sims;
  if (with_sim) {
    protocols::MultiHopSimOptions options;
    options.duration = 30000.0;
    options.seed = 11;
    for (const ProtocolKind kind : kPaperMultiHopProtocols) {
      sims.push_back(protocols::run_multi_hop(kind, params, options));
    }
  }

  std::vector<std::string> headers{"hop", "SS", "SS+RT", "HS"};
  if (with_sim) {
    headers.insert(headers.end(), {"SS(sim)", "SS+RT(sim)", "HS(sim)"});
  }
  exp::Table table("Fig. 17: per-hop inconsistency, K = 20", std::move(headers));

  for (std::size_t hop = 1; hop <= params.hops; ++hop) {
    std::vector<exp::Cell> row{static_cast<double>(hop)};
    for (const auto& model : models) {
      row.emplace_back(model.hop_inconsistency(hop));
    }
    if (with_sim) {
      for (const auto& sim : sims) {
        row.emplace_back(sim.hop_inconsistency[hop - 1]);
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
