// Tests of the mechanism-set generalization of the single-hop model (the
// ablation surface beyond the paper's five named protocols).
#include <gtest/gtest.h>

#include <stdexcept>

#include "analytic/single_hop.hpp"

namespace sigcomp::analytic {
namespace {

const SingleHopParams kDefaults = SingleHopParams::kazaa_defaults();

MechanismSet soft_base() {
  MechanismSet m;
  m.refresh = true;
  m.soft_timeout = true;
  return m;
}

TEST(ValidateMechanisms, NamedProtocolsAreAllValid) {
  for (const ProtocolKind kind : kAllProtocols) {
    EXPECT_NO_THROW(validate_mechanisms(mechanisms(kind))) << to_string(kind);
  }
}

TEST(ValidateMechanisms, TimeoutWithoutRefreshRejected) {
  MechanismSet m;
  m.soft_timeout = true;
  m.explicit_removal = true;
  m.reliable_removal = true;
  EXPECT_THROW(validate_mechanisms(m), std::invalid_argument);
}

TEST(ValidateMechanisms, ReliableRemovalWithoutExplicitRemovalRejected) {
  MechanismSet m = soft_base();
  m.reliable_removal = true;
  EXPECT_THROW(validate_mechanisms(m), std::invalid_argument);
}

TEST(ValidateMechanisms, NoRemovalPathRejected) {
  MechanismSet m;
  m.refresh = true;  // refresh but no timeout, no explicit removal
  EXPECT_THROW(validate_mechanisms(m), std::invalid_argument);
}

TEST(ValidateMechanisms, UnrecoverableRemovalLossRejected) {
  // Explicit removal with neither a timeout backstop nor retransmission:
  // a single lost REMOVE strands the receiver's state forever.
  MechanismSet m;
  m.explicit_removal = true;
  m.reliable_trigger = true;
  EXPECT_THROW(validate_mechanisms(m), std::invalid_argument);
}

TEST(ValidateMechanisms, RefreshWithoutTimeoutIsAllowed) {
  // Refresh repairs losses; removal is explicit and reliable.  Odd but
  // well-formed.
  MechanismSet m;
  m.refresh = true;
  m.explicit_removal = true;
  m.reliable_removal = true;
  EXPECT_NO_THROW(validate_mechanisms(m));
}

TEST(MechanismModel, NamedConstructorEquivalentToMechanismConstructor) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel by_name(kind, kDefaults);
    const SingleHopModel by_mech(mechanisms(kind), kDefaults);
    EXPECT_DOUBLE_EQ(by_name.inconsistency(), by_mech.inconsistency())
        << to_string(kind);
    EXPECT_DOUBLE_EQ(by_name.metrics().message_rate,
                     by_mech.metrics().message_rate)
        << to_string(kind);
    EXPECT_EQ(by_name.mechanism_set(), mechanisms(kind)) << to_string(kind);
  }
}

TEST(MechanismModel, DetectorFreeHardStateBeatsHs) {
  // The ablation's headline: HS without the (false-signal-generating)
  // external detector is strictly more consistent at the model's lifecycle
  // -- the detector exists for crash cleanup, which costs consistency here.
  MechanismSet m;
  m.explicit_removal = true;
  m.reliable_trigger = true;
  m.reliable_removal = true;
  const SingleHopModel detector_free(m, kDefaults);
  const SingleHopModel hs(ProtocolKind::kHS, kDefaults);
  EXPECT_LT(detector_free.inconsistency(), hs.inconsistency());
  EXPECT_LT(detector_free.metrics().message_rate, hs.metrics().message_rate);
}

TEST(MechanismModel, NotificationOnlyAffectsMessageAccounting) {
  MechanismSet with = soft_base();
  with.removal_notification = true;
  MechanismSet without = soft_base();
  const SingleHopModel a(with, kDefaults);
  const SingleHopModel b(without, kDefaults);
  EXPECT_DOUBLE_EQ(a.inconsistency(), b.inconsistency());
  EXPECT_GE(a.metrics().raw_message_rate, b.metrics().raw_message_rate);
}

TEST(MechanismModel, RefreshWithoutTimeoutNeverFalselyRemoves) {
  MechanismSet m;
  m.refresh = true;
  m.explicit_removal = true;
  m.reliable_removal = true;
  const SingleHopModel model(m, kDefaults);
  // No timeout and no detector: the false-removal transition is absent, so
  // C -> (1,0)2 never happens and the slow setup state carries no mass
  // except from initial loss.
  EXPECT_DOUBLE_EQ(model.transient_chain().rate(
                       *model.transient_chain().find("C"),
                       *model.transient_chain().find("(1,0)2")),
                   0.0);
}

TEST(MechanismModel, PureExplicitUnreliableInstallIsCheapButInconsistent) {
  // ER+RR without refresh or reliable triggers: the cheapest protocol in
  // the ablation.  Lost installs wait for the next update; consistency is
  // far worse than HS but the message rate is about half.
  MechanismSet m;
  m.explicit_removal = true;
  m.reliable_removal = true;
  const SingleHopModel cheap(m, kDefaults);
  const SingleHopModel hs(ProtocolKind::kHS, kDefaults);
  EXPECT_GT(cheap.inconsistency(), 5.0 * hs.inconsistency());
  EXPECT_LT(cheap.metrics().message_rate, 0.7 * hs.metrics().message_rate);
}

TEST(MechanismModel, InvalidMechanismSetThrowsAtConstruction) {
  MechanismSet m;
  m.explicit_removal = true;  // unrecoverable removal loss
  EXPECT_THROW(SingleHopModel(m, kDefaults), std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp::analytic
