// Unit tests of the multi-hop chain machinery: the per-link reliable
// transmission slot and the relay's forwarding / teardown / notice logic,
// driven over scripted channels.
#include "protocols/multi_hop_node.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace sigcomp::protocols {
namespace {

/// Captures everything a channel delivers.
struct Capture {
  std::vector<Message> messages;
  MessageChannel::Sink sink() {
    return [this](const Message& m) { messages.push_back(m); };
  }
  [[nodiscard]] std::size_t count(MessageType type) const {
    std::size_t n = 0;
    for (const Message& m : messages) n += (m.type == type);
    return n;
  }
};

struct SlotFixture {
  SlotFixture()
      : rng(5),
        channel(sim, rng, 0.0, 0.01, sim::Distribution::kDeterministic,
                capture.sink()),
        slot(sim, rng, sim::Distribution::kDeterministic, 0.5, &channel) {}

  sim::Simulator sim;
  sim::Rng rng;
  Capture capture;
  MessageChannel channel;
  ReliableSlot slot;
};

TEST(ReliableSlot, SendsImmediatelyAndRetransmits) {
  SlotFixture f;
  f.slot.send(Message{MessageType::kTrigger, 7, 42, 0});
  EXPECT_TRUE(f.slot.outstanding());
  f.sim.run_until(1.2);  // retransmissions at 0.5 and 1.0
  EXPECT_EQ(f.channel.counters().sent, 3u);
}

TEST(ReliableSlot, AckStopsRetransmission) {
  SlotFixture f;
  f.slot.send(Message{MessageType::kTrigger, 7, 42, 0});
  EXPECT_TRUE(f.slot.acknowledge(42));
  EXPECT_FALSE(f.slot.outstanding());
  f.sim.run_until(5.0);
  EXPECT_EQ(f.channel.counters().sent, 1u);
}

TEST(ReliableSlot, WrongSeqAckIsIgnored) {
  SlotFixture f;
  f.slot.send(Message{MessageType::kTrigger, 7, 42, 0});
  EXPECT_FALSE(f.slot.acknowledge(41));
  EXPECT_TRUE(f.slot.outstanding());
}

TEST(ReliableSlot, NewSendSupersedesPending) {
  SlotFixture f;
  f.slot.send(Message{MessageType::kTrigger, 1, 10, 0});
  f.slot.send(Message{MessageType::kTrigger, 2, 11, 0});
  // The stale ack no longer matches.
  EXPECT_FALSE(f.slot.acknowledge(10));
  f.sim.run_until(0.6);  // one retransmission: must carry the new content
  ASSERT_GE(f.capture.messages.size(), 3u);
  EXPECT_EQ(f.capture.messages.back().value, 2);
  EXPECT_EQ(f.capture.messages.back().seq, 11u);
}

TEST(ReliableSlot, CancelDropsOutstanding) {
  SlotFixture f;
  f.slot.send(Message{MessageType::kTrigger, 1, 10, 0});
  f.slot.cancel();
  f.sim.run_until(5.0);
  EXPECT_EQ(f.channel.counters().sent, 1u);
}

/// A relay with captured up/down channels.
struct RelayFixture {
  explicit RelayFixture(ProtocolKind kind, bool is_last = false)
      : rng(9),
        up(sim, rng, 0.0, 0.01, sim::Distribution::kDeterministic, up_capture.sink()),
        down(sim, rng, 0.0, 0.01, sim::Distribution::kDeterministic,
             down_capture.sink()) {
    TimerSettings timers;
    timers.dist = sim::Distribution::kDeterministic;
    timers.refresh = 5.0;
    timers.timeout = 15.0;
    timers.retrans = 0.5;
    std::vector<MessageChannel*> children;
    if (!is_last) children.push_back(&down);
    relay = std::make_unique<ChainRelay>(sim, rng, mechanisms(kind), timers,
                                         &up, std::move(children), nullptr);
  }

  sim::Simulator sim;
  sim::Rng rng;
  Capture up_capture;
  Capture down_capture;
  MessageChannel up;
  MessageChannel down;
  std::unique_ptr<ChainRelay> relay;
};

TEST(ChainRelay, SsTriggerInstallsAndForwardsWithoutAck) {
  RelayFixture f(ProtocolKind::kSS);
  f.relay->handle_from_upstream(Message{MessageType::kTrigger, 5, 1, 0});
  f.sim.run_until(0.1);
  EXPECT_EQ(f.relay->value(), std::optional<std::int64_t>{5});
  EXPECT_EQ(f.up_capture.count(MessageType::kAckTrigger), 0u);
  EXPECT_EQ(f.down_capture.count(MessageType::kTrigger), 1u);
}

TEST(ChainRelay, ReliableTriggerIsAckedAndForwardedReliably) {
  RelayFixture f(ProtocolKind::kSSRT);
  f.relay->handle_from_upstream(Message{MessageType::kTrigger, 5, 1, 0});
  f.sim.run_until(1.2);  // downstream unacked: retransmissions at 0.5 and 1.0
  EXPECT_EQ(f.up_capture.count(MessageType::kAckTrigger), 1u);
  EXPECT_EQ(f.down_capture.count(MessageType::kTrigger), 3u);
}

TEST(ChainRelay, DuplicateTriggerReAckedNotReforwarded) {
  RelayFixture f(ProtocolKind::kSSRT);
  const Message trigger{MessageType::kTrigger, 5, 1, 0};
  f.relay->handle_from_upstream(trigger);
  f.sim.run_until(0.1);
  // Ack the downstream copy so no retransmissions muddy the count.
  f.relay->handle_from_downstream(
      Message{MessageType::kAckTrigger, 0, f.down_capture.messages.back().seq, 0});
  const auto downstream_before = f.down_capture.count(MessageType::kTrigger);
  f.relay->handle_from_upstream(trigger);  // duplicate (lost ACK upstream)
  f.sim.run_until(0.2);
  EXPECT_EQ(f.up_capture.count(MessageType::kAckTrigger), 2u);  // re-acked
  EXPECT_EQ(f.down_capture.count(MessageType::kTrigger), downstream_before);
}

TEST(ChainRelay, RefreshInstallsArmsTimeoutAndForwards) {
  RelayFixture f(ProtocolKind::kSS);
  f.relay->handle_from_upstream(Message{MessageType::kRefresh, 9, 1, 0});
  f.sim.run_until(0.1);
  EXPECT_EQ(f.relay->value(), std::optional<std::int64_t>{9});
  EXPECT_EQ(f.down_capture.count(MessageType::kRefresh), 1u);
  // No refreshes arrive afterwards: the timeout clears the state.
  f.sim.run_until(20.0);
  EXPECT_EQ(f.relay->value(), std::nullopt);
  EXPECT_EQ(f.relay->timeouts(), 1u);
}

TEST(ChainRelay, LastRelayDoesNotForward) {
  RelayFixture f(ProtocolKind::kSS, /*is_last=*/true);
  f.relay->handle_from_upstream(Message{MessageType::kRefresh, 9, 1, 0});
  f.sim.run_until(0.1);
  EXPECT_EQ(f.down_capture.messages.size(), 0u);
}

TEST(ChainRelay, SsRtTimeoutSendsOneHopNotice) {
  RelayFixture f(ProtocolKind::kSSRT);
  f.relay->handle_from_upstream(Message{MessageType::kRefresh, 9, 1, 0});
  f.sim.run_until(20.0);  // timeout fires
  EXPECT_EQ(f.relay->value(), std::nullopt);
  EXPECT_EQ(f.up_capture.count(MessageType::kNotice), 1u);
}

TEST(ChainRelay, SsRtNoticeFromDownstreamReinstalls) {
  RelayFixture f(ProtocolKind::kSSRT);
  f.relay->handle_from_upstream(Message{MessageType::kTrigger, 9, 1, 0});
  f.sim.run_until(0.1);
  f.relay->handle_from_downstream(
      Message{MessageType::kAckTrigger, 0, f.down_capture.messages.back().seq, 0});
  const auto before = f.down_capture.count(MessageType::kTrigger);
  f.relay->handle_from_downstream(Message{MessageType::kNotice, 0, 0, 0});
  f.sim.run_until(0.2);
  EXPECT_EQ(f.down_capture.count(MessageType::kTrigger), before + 1);
}

TEST(ChainRelay, HsExternalSignalFloodsBothDirections) {
  RelayFixture f(ProtocolKind::kHS);
  f.relay->handle_from_upstream(Message{MessageType::kTrigger, 9, 1, 0});
  f.sim.run_until(0.1);
  f.relay->external_removal_signal();
  f.sim.run_until(0.2);
  EXPECT_EQ(f.relay->value(), std::nullopt);
  EXPECT_GE(f.up_capture.count(MessageType::kNotice), 1u);
  EXPECT_GE(f.down_capture.count(MessageType::kTeardown), 1u);
}

TEST(ChainRelay, HsTeardownClearsAcksAndPropagates) {
  RelayFixture f(ProtocolKind::kHS);
  f.relay->handle_from_upstream(Message{MessageType::kTrigger, 9, 1, 0});
  f.sim.run_until(0.1);
  f.relay->handle_from_upstream(Message{MessageType::kTeardown, 0, 77, 0});
  f.sim.run_until(0.2);
  EXPECT_EQ(f.relay->value(), std::nullopt);
  EXPECT_EQ(f.up_capture.count(MessageType::kAckNotice), 1u);
  EXPECT_GE(f.down_capture.count(MessageType::kTeardown), 1u);
}

TEST(ChainRelay, HsExternalSignalWithoutStateIsNoOp) {
  RelayFixture f(ProtocolKind::kHS);
  f.relay->external_removal_signal();
  f.sim.run_until(1.0);
  EXPECT_TRUE(f.up_capture.messages.empty());
  EXPECT_TRUE(f.down_capture.messages.empty());
}

/// A chain sender with a captured downstream channel.
struct SenderFixture {
  explicit SenderFixture(ProtocolKind kind)
      : rng(13),
        down(sim, rng, 0.0, 0.01, sim::Distribution::kDeterministic,
             capture.sink()) {
    TimerSettings timers;
    timers.dist = sim::Distribution::kDeterministic;
    timers.refresh = 5.0;
    timers.timeout = 15.0;
    timers.retrans = 0.5;
    sender = std::make_unique<ChainSender>(
        sim, rng, mechanisms(kind), timers,
        std::vector<MessageChannel*>{&down}, nullptr);
  }

  sim::Simulator sim;
  sim::Rng rng;
  Capture capture;
  MessageChannel down;
  std::unique_ptr<ChainSender> sender;
};

TEST(ChainSender, SsStartSendsTriggerThenRefreshes) {
  SenderFixture f(ProtocolKind::kSS);
  f.sender->start(1);
  f.sim.run_until(11.0);
  EXPECT_EQ(f.capture.count(MessageType::kTrigger), 1u);
  EXPECT_EQ(f.capture.count(MessageType::kRefresh), 2u);  // t = 5, 10
  EXPECT_EQ(f.sender->value(), std::optional<std::int64_t>{1});
}

TEST(ChainSender, HsStartRetransmitsUntilAcked) {
  SenderFixture f(ProtocolKind::kHS);
  f.sender->start(1);
  f.sim.run_until(1.2);  // retransmissions at 0.5, 1.0
  EXPECT_EQ(f.capture.count(MessageType::kTrigger), 3u);
  EXPECT_EQ(f.capture.count(MessageType::kRefresh), 0u);
  // Ack the latest copy: silence afterwards.
  f.sender->handle_from_downstream(
      Message{MessageType::kAckTrigger, 0, f.capture.messages.back().seq, 0});
  const auto before = f.capture.messages.size();
  f.sim.run_until(60.0);
  EXPECT_EQ(f.capture.messages.size(), before);
}

TEST(ChainSender, UpdateCarriesNewValue) {
  SenderFixture f(ProtocolKind::kSS);
  f.sender->start(1);
  f.sim.run_until(0.1);
  f.sender->update(2);
  f.sim.run_until(0.2);
  EXPECT_EQ(f.capture.messages.back().value, 2);
  EXPECT_EQ(f.sender->value(), std::optional<std::int64_t>{2});
}

TEST(ChainSender, NoticeCausesReinstall) {
  SenderFixture f(ProtocolKind::kSSRT);
  f.sender->start(1);
  f.sim.run_until(0.1);
  f.sender->handle_from_downstream(
      Message{MessageType::kAckTrigger, 0, f.capture.messages.back().seq, 0});
  const auto triggers_before = f.capture.count(MessageType::kTrigger);
  f.sender->handle_from_downstream(Message{MessageType::kNotice, 0, 3, 0});
  f.sim.run_until(0.2);
  EXPECT_EQ(f.capture.count(MessageType::kTrigger), triggers_before + 1);
}

TEST(ChainSender, HsAcksRecoveryNotices) {
  SenderFixture f(ProtocolKind::kHS);
  f.sender->start(1);
  f.sim.run_until(0.1);
  f.sender->handle_from_downstream(Message{MessageType::kNotice, 0, 3, 0});
  f.sim.run_until(0.2);
  EXPECT_EQ(f.capture.count(MessageType::kAckNotice), 1u);
}

}  // namespace
}  // namespace sigcomp::protocols
