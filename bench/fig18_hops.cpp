// Figure 18: end-to-end inconsistency ratio (a) and signaling message rate
// (b) versus the total number of hops K in [1, 20], for SS, SS+RT and HS.
//
// Usage: fig18_hops [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table table("Fig. 18: I and message rate vs total number of hops K",
                   {"hops", "I(SS)", "I(SS+RT)", "I(HS)", "rate(SS)",
                    "rate(SS+RT)", "rate(HS)"});

  for (std::size_t hops = 1; hops <= 20; ++hops) {
    MultiHopParams p = MultiHopParams::reservation_defaults();
    p.hops = hops;
    std::vector<exp::Cell> row{static_cast<double>(hops)};
    std::vector<double> rates;
    for (const ProtocolKind kind : kPaperMultiHopProtocols) {
      const Metrics m = evaluate_analytic(kind, p);
      row.emplace_back(m.inconsistency);
      rates.push_back(m.raw_message_rate);
    }
    for (const double rate : rates) row.emplace_back(rate);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
