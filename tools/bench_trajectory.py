#!/usr/bin/env python3
"""Accumulate perf_scale --json snapshots into a bench trajectory.

The tracked BENCH_scale.json used to be overwritten by every CI run: each
`perf_scale --json BENCH_scale.json` clobbered the previous snapshot, so the
"trajectory" never accumulated anything.  This tool fixes that by keeping the
tracked file in a schema-2 envelope --

    {
      "bench": "perf_scale",
      "schema": 2,
      "trajectory": [
        {"label": "pr6", "snapshot": { ... perf_scale --json output ... }},
        {"label": "pr8", "snapshot": { ... }},
        ...
      ]
    }

-- and appending (or replacing, by label) one entry per ingested snapshot.

Commands:
  ingest   --trajectory FILE --snapshot FILE --label NAME
           Append the snapshot under NAME.  An existing entry with the same
           label is replaced (CI re-runs stay idempotent).  A missing
           trajectory file is created; a legacy single-snapshot trajectory
           file (the pre-schema-2 layout) is first wrapped as the "legacy"
           entry so no history is dropped.
  validate --trajectory FILE
           Exit nonzero unless FILE is a well-formed schema-2 trajectory:
           every entry labelled (uniquely) and every snapshot carrying the
           perf_scale event_core/farm tables.
"""

import argparse
import json
import sys


SCHEMA = 2
BENCH = "perf_scale"


def fail(message):
    print(f"bench_trajectory: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as error:
        fail(f"{path}: not valid JSON ({error})")


def looks_like_snapshot(data):
    """A raw perf_scale --json payload (legacy trajectory layout)."""
    return (
        isinstance(data, dict)
        and data.get("bench") == BENCH
        and "trajectory" not in data
        and "event_core" in data
        and "farm" in data
    )


def load_trajectory(path):
    """Returns the trajectory envelope, upgrading a legacy file in place."""
    data = load_json(path)
    if data is None:
        return {"bench": BENCH, "schema": SCHEMA, "trajectory": []}
    if looks_like_snapshot(data):
        # Pre-schema-2 file: the lone snapshot becomes the first entry.
        return {
            "bench": BENCH,
            "schema": SCHEMA,
            "trajectory": [{"label": "legacy", "snapshot": data}],
        }
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        fail(f"{path}: neither a schema-{SCHEMA} trajectory nor a legacy "
             f"{BENCH} snapshot")
    return data


def check_snapshot(snapshot, where):
    if not isinstance(snapshot, dict):
        fail(f"{where}: snapshot is not an object")
    if snapshot.get("bench") != BENCH:
        fail(f"{where}: snapshot bench is {snapshot.get('bench')!r}, "
             f"expected {BENCH!r}")
    for table, required in (
        ("event_core", ("workload", "heap_ops_per_s", "wheel_ops_per_s")),
        ("farm", ("workload", "backend", "sessions", "events_per_s")),
    ):
        rows = snapshot.get(table)
        if not isinstance(rows, list) or not rows:
            fail(f"{where}: snapshot table {table!r} is missing or empty")
        for index, row in enumerate(rows):
            for field in required:
                if field not in row:
                    fail(f"{where}: {table}[{index}] lacks {field!r}")


def check_trajectory(data, path):
    if data.get("bench") != BENCH:
        fail(f"{path}: bench is {data.get('bench')!r}, expected {BENCH!r}")
    entries = data.get("trajectory")
    if not isinstance(entries, list) or not entries:
        fail(f"{path}: trajectory is missing or empty")
    seen = set()
    for index, entry in enumerate(entries):
        label = entry.get("label")
        if not isinstance(label, str) or not label:
            fail(f"{path}: trajectory[{index}] lacks a label")
        if label in seen:
            fail(f"{path}: duplicate label {label!r}")
        seen.add(label)
        check_snapshot(entry.get("snapshot"), f"{path}:{label}")


def cmd_ingest(args):
    trajectory = load_trajectory(args.trajectory)
    snapshot = load_json(args.snapshot)
    if snapshot is None:
        fail(f"{args.snapshot}: no such file")
    check_snapshot(snapshot, args.snapshot)
    entries = trajectory["trajectory"]
    entry = {"label": args.label, "snapshot": snapshot}
    for index, existing in enumerate(entries):
        if existing.get("label") == args.label:
            entries[index] = entry
            break
    else:
        entries.append(entry)
    check_trajectory(trajectory, args.trajectory)
    with open(args.trajectory, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"bench_trajectory: {args.trajectory} now holds "
          f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
          f"(ingested {args.label!r})")


def cmd_validate(args):
    data = load_json(args.trajectory)
    if data is None:
        fail(f"{args.trajectory}: no such file")
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        fail(f"{args.trajectory}: not a schema-{SCHEMA} trajectory")
    check_trajectory(data, args.trajectory)
    labels = ", ".join(e["label"] for e in data["trajectory"])
    print(f"bench_trajectory: {args.trajectory} OK ({labels})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="append/replace a snapshot")
    ingest.add_argument("--trajectory", required=True)
    ingest.add_argument("--snapshot", required=True)
    ingest.add_argument("--label", required=True)
    ingest.set_defaults(func=cmd_ingest)

    validate = commands.add_parser("validate", help="check a trajectory file")
    validate.add_argument("--trajectory", required=True)
    validate.set_defaults(func=cmd_validate)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
