#include "protocols/state_slot.hpp"

#include <utility>

namespace sigcomp::protocols {

// -------------------------------------------------------------- StateSlot --

StateSlot::StateSlot(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
                     const TimerSettings& timers,
                     std::function<void()> on_expire)
    : sim_(sim),
      rng_(rng),
      mech_(mech),
      timers_(timers),
      on_expire_(std::move(on_expire)) {}

void StateSlot::arm_timeout() {
  if (!mech_.soft_timeout) return;
  cancel_timeout();
  timeout_timer_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, timers_.timeout), [this] { on_timeout(); });
}

void StateSlot::cancel_timeout() {
  if (timeout_timer_) {
    sim_.cancel(*timeout_timer_);
    timeout_timer_.reset();
  }
}

bool StateSlot::clear() {
  cancel_timeout();
  if (!value_) return false;
  value_.reset();
  return true;
}

void StateSlot::on_timeout() {
  timeout_timer_.reset();
  if (!value_) return;
  value_.reset();
  ++timeouts_;
  if (on_expire_) on_expire_();
}

// ---------------------------------------------------------- ReliableSlot --

ReliableSlot::ReliableSlot(sim::Simulator& sim, sim::Rng& rng,
                           sim::Distribution dist, double retrans_timer,
                           MessageChannel* channel)
    : sim_(sim), rng_(rng), dist_(dist), retrans_timer_(retrans_timer),
      channel_(channel) {}

void ReliableSlot::send(Message msg) {
  pending_ = msg;
  outstanding_ = true;
  channel_->send(pending_);
  arm();
}

bool ReliableSlot::acknowledge(std::uint64_t seq) {
  if (!outstanding_ || pending_.seq != seq) return false;
  cancel();
  return true;
}

void ReliableSlot::cancel() {
  outstanding_ = false;
  if (timer_) {
    sim_.cancel(*timer_);
    timer_.reset();
  }
}

void ReliableSlot::arm() {
  if (timer_) sim_.cancel(*timer_);
  timer_ = sim_.schedule_in(sim::sample(rng_, dist_, retrans_timer_),
                            [this] { on_timer(); });
}

void ReliableSlot::on_timer() {
  timer_.reset();
  if (!outstanding_) return;
  channel_->send(pending_);
  arm();
}

}  // namespace sigcomp::protocols
