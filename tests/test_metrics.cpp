#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sigcomp {
namespace {

TEST(MessageRateBreakdown, TotalSumsAllComponents) {
  MessageRateBreakdown b;
  b.trigger = 1.0;
  b.refresh = 2.0;
  b.explicit_removal = 3.0;
  b.reliable_trigger = 4.0;
  b.reliable_removal = 5.0;
  EXPECT_DOUBLE_EQ(b.total(), 15.0);
}

TEST(MessageRateBreakdown, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(MessageRateBreakdown{}.total(), 0.0);
}

TEST(IntegratedCost, DefaultWeightIsTen) {
  Metrics m;
  m.inconsistency = 0.1;
  m.message_rate = 0.5;
  EXPECT_DOUBLE_EQ(integrated_cost(m), 1.5);
}

TEST(IntegratedCost, CustomWeight) {
  Metrics m;
  m.inconsistency = 0.25;
  m.message_rate = 1.0;
  EXPECT_DOUBLE_EQ(integrated_cost(m, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(integrated_cost(m, 0.0), 1.0);
}

TEST(Metrics, StreamOutputMentionsFields) {
  Metrics m;
  m.inconsistency = 0.125;
  m.message_rate = 0.5;
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find("I=0.125"), std::string::npos);
  EXPECT_NE(os.str().find("M=0.5"), std::string::npos);
}

}  // namespace
}  // namespace sigcomp
