#!/usr/bin/env python3
"""Link checker for the repo's markdown docs.

Verifies that every relative markdown link in the given files/directories
points at an existing file (external http(s) URLs and bare anchors are
skipped, so the check is hermetic and CI-safe offline).  Exits 1 with a
list of broken links, 0 otherwise.

Usage: tools/check_docs_links.py README.md docs [more files or dirs ...]
"""
import re
import sys
from pathlib import Path

# [text](target) -- excluding images' leading '!' is unnecessary: image
# targets must exist too.  Ignores fenced code blocks.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path
        else:
            sys.stderr.write(f"warning: skipping non-markdown {path}\n")


def links_of(path):
    in_fence = False
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield line_no, match.group(1)


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    broken = []
    checked = 0
    for md in markdown_files(argv[1:]):
        for line_no, target in links_of(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # external: not checked (keeps CI hermetic)
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue  # same-file anchor
            checked += 1
            resolved = (md.parent / target_path).resolve()
            if not resolved.exists():
                broken.append(f"{md}:{line_no}: broken link -> {target}")
    for entry in broken:
        print(entry)
    print(f"checked {checked} relative links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
