// Extension experiment (beyond the paper's figures, but straight from its
// Section II discussion and Clark's original soft-state argument): sender
// CRASHES.  A crashed sender signals nothing; orphaned receiver state must
// be cleaned up by the receiver's own timeout (soft state) or an external
// failure detector (hard state).
//
// Sweeps the hard-state detector latency and the crash fraction, measuring
// simulated inconsistency and the mean orphaned-state window.
//
// Usage: ext_crash_recovery [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.removal_rate = 1.0 / 300.0;  // 5-minute sessions: crashes matter

  // (a) all sessions crash; sweep the HS detector latency.
  exp::Table detector(
      "Crash recovery vs hard-state detector latency (every session "
      "crashes; 5-min sessions, soft-state T = 15 s)",
      {"detector delay (s)", "I(HS)", "orphan s (HS)", "I(SS+ER)",
       "orphan s (SS+ER)", "I(SS+RTR)", "orphan s (SS+RTR)"});
  for (const double delay : exp::log_space(1.0, 300.0, 7)) {
    protocols::SimOptions options;
    options.sessions = 800;
    options.seed = 99;
    options.crash_fraction = 1.0;
    options.crash_detection_delay = delay;
    const auto hs = evaluate_simulated(ProtocolKind::kHS, params, options);
    const auto sser = evaluate_simulated(ProtocolKind::kSSER, params, options);
    const auto ssrtr = evaluate_simulated(ProtocolKind::kSSRTR, params, options);
    detector.add_row({delay, hs.metrics.inconsistency, hs.mean_orphan_time,
                      sser.metrics.inconsistency, sser.mean_orphan_time,
                      ssrtr.metrics.inconsistency, ssrtr.mean_orphan_time});
  }
  detector.print(std::cout);
  std::cout << '\n';

  // (b) fixed 10 s detector; sweep how often sessions crash.
  exp::Table fraction(
      "Crash recovery vs crash fraction (HS detector delay 10 s)",
      {"crash fraction", "I(SS)", "I(SS+ER)", "I(SS+RTR)", "I(HS)",
       "orphan s (SS+ER)", "orphan s (HS)"});
  for (const double f : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    protocols::SimOptions options;
    options.sessions = 800;
    options.seed = 7;
    options.crash_fraction = f;
    options.crash_detection_delay = 10.0;
    const auto ss = evaluate_simulated(ProtocolKind::kSS, params, options);
    const auto sser = evaluate_simulated(ProtocolKind::kSSER, params, options);
    const auto ssrtr = evaluate_simulated(ProtocolKind::kSSRTR, params, options);
    const auto hs = evaluate_simulated(ProtocolKind::kHS, params, options);
    fraction.add_row({f, ss.metrics.inconsistency, sser.metrics.inconsistency,
                      ssrtr.metrics.inconsistency, hs.metrics.inconsistency,
                      sser.mean_orphan_time, hs.mean_orphan_time});
  }
  fraction.print(std::cout);

  std::cout
      << "\nTakeaways: soft state's orphan window is bounded by its own "
         "timeout T no matter how the sender dies -- explicit removal only "
         "accelerates the graceful case. Hard state's orphan window IS the "
         "failure detector's latency; with a slow detector its consistency "
         "advantage inverts, which is Clark's survivability argument made "
         "quantitative.\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) detector.write_csv_file(csv);
  return 0;
}
