// Transient analysis: how long does it take a setup or an update to
// converge (first reach the consistent state)?
//
// The paper's metrics are stationary; this extension exploits the Markov
// substrate's uniformization solver to answer the latency question a
// protocol designer asks next: "after I install/update state, what is the
// distribution of the time until the receiver agrees?".
//
// The latency chain is the single-hop model with the consistent state made
// absorbing and the lifecycle removal disabled (the question conditions on
// the session persisting).  Updates arriving while a trigger is lost still
// restart the fast path, exactly as in the stationary model.
#pragma once

#include "analytic/single_hop.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "markov/ctmc.hpp"

namespace sigcomp::analytic {

/// First-passage-to-consistency analysis for one protocol/parameter point.
class LatencyAnalysis {
 public:
  /// Throws std::invalid_argument on invalid parameters/mechanisms.
  LatencyAnalysis(ProtocolKind kind, const SingleHopParams& params);

  [[nodiscard]] ProtocolKind kind() const noexcept { return kind_; }

  /// P(setup has converged within t seconds of the trigger being sent).
  [[nodiscard]] double setup_cdf(double t) const;

  /// P(an update has converged within t seconds).
  [[nodiscard]] double update_cdf(double t) const;

  /// Mean first-passage time from setup to consistency.
  [[nodiscard]] double mean_setup_latency() const;

  /// Mean first-passage time from an update to consistency.
  [[nodiscard]] double mean_update_latency() const;

  /// Smallest t with cdf(t) >= q (bisection; q in (0, 1)).
  /// Throws std::invalid_argument for q outside (0, 1).
  [[nodiscard]] double setup_quantile(double q) const;
  [[nodiscard]] double update_quantile(double q) const;

  [[nodiscard]] const markov::Ctmc& chain() const noexcept { return chain_; }

 private:
  [[nodiscard]] double quantile_from(markov::StateId start, double q) const;

  ProtocolKind kind_;
  SingleHopParams params_;
  markov::Ctmc chain_;
  markov::StateId setup1_ = 0;
  markov::StateId setup2_ = 0;
  markov::StateId consistent_ = 0;
  markov::StateId update1_ = 0;
  markov::StateId update2_ = 0;
};

}  // namespace sigcomp::analytic
