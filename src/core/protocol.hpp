// Protocol taxonomy: the five abstract signaling protocols of Ji et al.,
// "A Comparison of Hard-state and Soft-state Signaling Protocols"
// (SIGCOMM 2003), and the mechanism set each one enables.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace sigcomp {

/// The five abstract protocols along the soft-state / hard-state spectrum.
enum class ProtocolKind {
  kSS,     ///< pure soft-state: best-effort trigger + refresh, timeout removal
  kSSER,   ///< soft-state + best-effort explicit removal message
  kSSRT,   ///< soft-state + reliable triggers (retransmission + ACK) and
           ///< false-removal notification
  kSSRTR,  ///< soft-state + reliable triggers and reliable explicit removal
  kHS,     ///< hard-state: reliable trigger/removal only, external failure
           ///< detector for orphan cleanup (no refresh, no timeout)
};

/// All protocols, in the paper's presentation order.
inline constexpr std::array<ProtocolKind, 5> kAllProtocols = {
    ProtocolKind::kSS, ProtocolKind::kSSER, ProtocolKind::kSSRT,
    ProtocolKind::kSSRTR, ProtocolKind::kHS};

/// Protocols modeled in the paper's multi-hop analysis (Sec. III-B).
inline constexpr std::array<ProtocolKind, 3> kMultiHopProtocols = {
    ProtocolKind::kSS, ProtocolKind::kSSRT, ProtocolKind::kHS};

/// The mechanism set a protocol employs.  This is the "spectrum" view of
/// Section II: every protocol is just a combination of these switches.
struct MechanismSet {
  bool refresh = false;            ///< periodic refresh messages from sender
  bool soft_timeout = false;       ///< receiver removes state on timeout
  bool explicit_removal = false;   ///< sender emits a removal message
  bool reliable_trigger = false;   ///< triggers are ACKed and retransmitted
  bool reliable_removal = false;   ///< removals are ACKed and retransmitted
  bool removal_notification = false;  ///< receiver notifies sender of
                                      ///< (possibly false) removals
  bool external_failure_detector = false;  ///< orphan cleanup via external
                                           ///< signal (hard state only)

  friend bool operator==(const MechanismSet&, const MechanismSet&) = default;
};

/// Mechanisms of a protocol (Table in Sec. II / Fig. 1 of the paper).
[[nodiscard]] MechanismSet mechanisms(ProtocolKind kind) noexcept;

/// Canonical short name ("SS", "SS+ER", "SS+RT", "SS+RTR", "HS").
[[nodiscard]] std::string_view to_string(ProtocolKind kind) noexcept;

/// Longer human-readable description.
[[nodiscard]] std::string_view describe(ProtocolKind kind) noexcept;

/// Parses a canonical short name (case-sensitive).  Returns nullopt on
/// unknown input.
[[nodiscard]] std::optional<ProtocolKind> parse_protocol(std::string_view name) noexcept;

/// True for protocols whose state survives only while refreshed (all but HS).
[[nodiscard]] bool is_soft_state(ProtocolKind kind) noexcept;

}  // namespace sigcomp
