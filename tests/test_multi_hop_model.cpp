#include "analytic/multi_hop.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sigcomp::analytic {
namespace {

const MultiHopParams kDefaults = MultiHopParams::reservation_defaults();

TEST(MultiHopModel, ExplicitRemovalProtocolsReduceToTheirBaseChain) {
  // The chain CTMC has no removal transitions (infinite state lifetime),
  // so the explicit-removal variants must reproduce their base protocol's
  // stationary numbers exactly: SS+ER == SS and SS+RTR == SS+RT.
  const MultiHopModel ss(ProtocolKind::kSS, kDefaults);
  const MultiHopModel sser(ProtocolKind::kSSER, kDefaults);
  EXPECT_EQ(sser.inconsistency(), ss.inconsistency());
  const MultiHopModel ssrt(ProtocolKind::kSSRT, kDefaults);
  const MultiHopModel ssrtr(ProtocolKind::kSSRTR, kDefaults);
  EXPECT_EQ(ssrtr.inconsistency(), ssrt.inconsistency());
  EXPECT_EQ(ssrtr.metrics().raw_message_rate, ssrt.metrics().raw_message_rate);
}

TEST(MultiHopModel, StateSpaceSize) {
  MultiHopParams p = kDefaults;
  p.hops = 5;
  // (k, fast) for k = 0..5, (k, slow) for k = 0..4.
  EXPECT_EQ(MultiHopModel(ProtocolKind::kSS, p).chain().num_states(), 11u);
  // HS adds the recovery state.
  EXPECT_EQ(MultiHopModel(ProtocolKind::kHS, p).chain().num_states(), 12u);
}

TEST(MultiHopModel, TimeoutRateFirstHopMatchesSingleHopFalseRemoval) {
  // j = 0: first timeout at hop 1 has probability pl^(T/R) -- identical to
  // the single-hop lambda_F.
  const double rate = MultiHopModel::timeout_rate(kDefaults, 0);
  EXPECT_NEAR(rate,
              std::pow(kDefaults.loss,
                       kDefaults.timeout_timer / kDefaults.refresh_timer) /
                  kDefaults.timeout_timer,
              1e-15);
}

TEST(MultiHopModel, TimeoutRatesArePartialTelescope) {
  // Summing the "first timeout at hop j+1" probabilities over all j gives
  // the probability that a timeout happens anywhere, which is bounded by
  // [1 - (1-pl)^K]^(T/R).
  double total = 0.0;
  for (std::size_t j = 0; j < kDefaults.hops; ++j) {
    const double r = MultiHopModel::timeout_rate(kDefaults, j);
    EXPECT_GE(r, 0.0);
    total += r * kDefaults.timeout_timer;
  }
  const double anywhere = std::pow(
      1.0 - std::pow(1.0 - kDefaults.loss, double(kDefaults.hops)),
      kDefaults.timeout_timer / kDefaults.refresh_timer);
  EXPECT_NEAR(total, anywhere, 1e-12);
}

TEST(MultiHopModel, TimeoutRateIncreasesWithHopIndex) {
  // Later hops are behind more lossy links, so the "first timeout here"
  // probability grows with j at small j.
  EXPECT_GT(MultiHopModel::timeout_rate(kDefaults, 1),
            MultiHopModel::timeout_rate(kDefaults, 0));
}

TEST(MultiHopModel, StationarySumsToOne) {
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const MultiHopModel model(kind, kDefaults);
    double total = model.recovery_probability();
    for (std::size_t k = 0; k <= kDefaults.hops; ++k) {
      total += model.stationary(k, 0);
      if (k < kDefaults.hops) total += model.stationary(k, 1);
    }
    EXPECT_NEAR(total, 1.0, 1e-10) << to_string(kind);
  }
}

TEST(MultiHopModel, InconsistencyComplementOfFullConsistency) {
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const MultiHopModel model(kind, kDefaults);
    EXPECT_NEAR(model.inconsistency(),
                1.0 - model.stationary(kDefaults.hops, 0), 1e-12);
    EXPECT_GT(model.inconsistency(), 0.0);
    EXPECT_LT(model.inconsistency(), 1.0);
  }
}

TEST(MultiHopModel, RecoveryOnlyForHardState) {
  EXPECT_DOUBLE_EQ(MultiHopModel(ProtocolKind::kSS, kDefaults).recovery_probability(), 0.0);
  EXPECT_DOUBLE_EQ(MultiHopModel(ProtocolKind::kSSRT, kDefaults).recovery_probability(), 0.0);
  EXPECT_GT(MultiHopModel(ProtocolKind::kHS, kDefaults).recovery_probability(), 0.0);
}

TEST(MultiHopModel, HopInconsistencyIncreasesWithDistance) {
  // Fig. 17: hops further from the sender are inconsistent more often.
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const MultiHopModel model(kind, kDefaults);
    for (std::size_t hop = 2; hop <= kDefaults.hops; ++hop) {
      EXPECT_GE(model.hop_inconsistency(hop), model.hop_inconsistency(hop - 1))
          << to_string(kind) << " hop " << hop;
    }
  }
}

TEST(MultiHopModel, LastHopInconsistencyEqualsTotal) {
  // "All hops consistent" fails exactly when fewer than K hops are
  // consistent, which is the hop-K inconsistency event.
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const MultiHopModel model(kind, kDefaults);
    EXPECT_NEAR(model.hop_inconsistency(kDefaults.hops), model.inconsistency(),
                1e-9)
        << to_string(kind);
  }
}

TEST(MultiHopModel, HopInconsistencyRangeChecked) {
  const MultiHopModel model(ProtocolKind::kSS, kDefaults);
  EXPECT_THROW((void)model.hop_inconsistency(0), std::out_of_range);
  EXPECT_THROW((void)model.hop_inconsistency(kDefaults.hops + 1), std::out_of_range);
}

TEST(MultiHopModel, InconsistencyGrowsWithHops) {
  // Fig. 18(a).
  for (const ProtocolKind kind : kMultiHopProtocols) {
    double previous = 0.0;
    for (const std::size_t hops : {1u, 5u, 10u, 20u}) {
      MultiHopParams p = kDefaults;
      p.hops = hops;
      const double inconsistency = MultiHopModel(kind, p).inconsistency();
      EXPECT_GT(inconsistency, previous) << to_string(kind) << " K=" << hops;
      previous = inconsistency;
    }
  }
}

TEST(MultiHopModel, MessageRateGrowsWithHops) {
  // Fig. 18(b).
  for (const ProtocolKind kind : kMultiHopProtocols) {
    double previous = 0.0;
    for (const std::size_t hops : {1u, 5u, 10u, 20u}) {
      MultiHopParams p = kDefaults;
      p.hops = hops;
      const double rate = MultiHopModel(kind, p).metrics().raw_message_rate;
      EXPECT_GT(rate, previous) << to_string(kind) << " K=" << hops;
      previous = rate;
    }
  }
}

TEST(MultiHopModel, ProtocolOrderingAtDefaults) {
  // Fig. 17/18: SS is much worse; HS has a slight edge over SS+RT.
  const double ss = MultiHopModel(ProtocolKind::kSS, kDefaults).inconsistency();
  const double ssrt = MultiHopModel(ProtocolKind::kSSRT, kDefaults).inconsistency();
  const double hs = MultiHopModel(ProtocolKind::kHS, kDefaults).inconsistency();
  EXPECT_GT(ss, 3.0 * ssrt);
  EXPECT_LT(hs, ssrt);
  EXPECT_NEAR(hs, ssrt, 0.2 * ssrt);  // but comparable
}

TEST(MultiHopModel, ReliableTriggerCostsLittleExtra) {
  // Fig. 18(b): SS+RT adds only modest signaling overhead over SS.
  const double ss = MultiHopModel(ProtocolKind::kSS, kDefaults).metrics().raw_message_rate;
  const double ssrt = MultiHopModel(ProtocolKind::kSSRT, kDefaults).metrics().raw_message_rate;
  EXPECT_GT(ssrt, ss);
  EXPECT_LT(ssrt, 1.25 * ss);
}

TEST(MultiHopModel, HardStateUsesFarFewerMessages) {
  const double ss = MultiHopModel(ProtocolKind::kSS, kDefaults).metrics().raw_message_rate;
  const double hs = MultiHopModel(ProtocolKind::kHS, kDefaults).metrics().raw_message_rate;
  EXPECT_LT(hs, 0.3 * ss);
}

TEST(MultiHopModel, RefreshBreakdownOnlyForSoftState) {
  EXPECT_GT(MultiHopModel(ProtocolKind::kSS, kDefaults).message_rates().refresh, 0.0);
  EXPECT_GT(MultiHopModel(ProtocolKind::kSSRT, kDefaults).message_rates().refresh, 0.0);
  EXPECT_DOUBLE_EQ(MultiHopModel(ProtocolKind::kHS, kDefaults).message_rates().refresh, 0.0);
}

TEST(MultiHopModel, SsMessageRateFallsWithLongerRefresh) {
  // Fig. 19(b).
  MultiHopParams fast = kDefaults;
  fast.refresh_timer = 1.0;
  fast.timeout_timer = 3.0;
  MultiHopParams slow = kDefaults;
  slow.refresh_timer = 50.0;
  slow.timeout_timer = 150.0;
  EXPECT_GT(MultiHopModel(ProtocolKind::kSS, fast).metrics().raw_message_rate,
            MultiHopModel(ProtocolKind::kSS, slow).metrics().raw_message_rate);
}

TEST(MultiHopModel, HsInsensitiveToRefreshTimer) {
  MultiHopParams a = kDefaults;
  a.refresh_timer = 1.0;
  a.timeout_timer = 3.0;
  MultiHopParams b = kDefaults;
  b.refresh_timer = 100.0;
  b.timeout_timer = 300.0;
  EXPECT_NEAR(MultiHopModel(ProtocolKind::kHS, a).inconsistency(),
              MultiHopModel(ProtocolKind::kHS, b).inconsistency(), 1e-12);
  EXPECT_NEAR(MultiHopModel(ProtocolKind::kHS, a).metrics().raw_message_rate,
              MultiHopModel(ProtocolKind::kHS, b).metrics().raw_message_rate, 1e-12);
}

TEST(MultiHopModel, SingleHopChainDegenerates) {
  MultiHopParams p = kDefaults;
  p.hops = 1;
  const MultiHopModel model(ProtocolKind::kSS, p);
  EXPECT_EQ(model.chain().num_states(), 3u);  // (0,f), (1,f), (0,s)
  EXPECT_GT(model.inconsistency(), 0.0);
}

TEST(MultiHopModel, LossFreeChainStillHasPropagationInconsistency) {
  MultiHopParams p = kDefaults;
  p.loss = 0.0;
  const MultiHopModel model(ProtocolKind::kSS, p);
  // Updates still need K x D to propagate: inconsistency cannot vanish.
  EXPECT_GT(model.inconsistency(), 0.0);
  // But it is tiny compared to the lossy default.
  EXPECT_LT(model.inconsistency(),
            MultiHopModel(ProtocolKind::kSS, kDefaults).inconsistency());
}

}  // namespace
}  // namespace sigcomp::analytic
