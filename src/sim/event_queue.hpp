// Pending-event set of the discrete-event simulator.
//
// A binary heap with lazy deletion: cancelling marks the event dead and the
// slot is reclaimed when the event surfaces -- or, so that cancel-heavy
// workloads (refresh/backoff timer churn) cannot accumulate unbounded
// garbage, by compacting the heap whenever dead entries outnumber live
// ones.  Ties in time are broken by insertion order so that simultaneous
// events execute deterministically in schedule order (important for
// reproducible runs).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sigcomp::sim {

/// Simulation time in seconds.
using Time = double;

/// Opaque handle to a scheduled event; usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Min-heap of (time, sequence) -> action.
class EventQueue {
 public:
  /// Adds an event; `time` must be finite.  Returns a cancellation handle.
  EventId push(Time time, std::function<void()> action);

  /// Cancels a pending event; returns false if already executed/cancelled.
  bool cancel(EventId id);

  /// True when no live event remains.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live (pending, uncancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Entries physically held by the heap: live events plus cancelled ones
  /// not yet reclaimed.  Compaction keeps this below
  /// max(2 * size(), compaction threshold); tests assert the bound.
  [[nodiscard]] std::size_t heap_entries() const noexcept {
    return heap_.size();
  }

  /// Time of the earliest live event.  Throws std::logic_error when empty.
  [[nodiscard]] Time next_time() const;

  /// Pops and returns the earliest live event.  Throws when empty.
  struct PoppedEvent {
    Time time;
    std::function<void()> action;
  };
  PoppedEvent pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    // Sorted as a min-heap: smaller time first, then smaller seq.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const;
  void compact();

  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<std::uint64_t, std::function<void()>> actions_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace sigcomp::sim
