// Protocol taxonomy: the five abstract signaling protocols of Ji et al.,
// "A Comparison of Hard-state and Soft-state Signaling Protocols"
// (SIGCOMM 2003), and the mechanism set each one enables.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace sigcomp {

/// The five abstract protocols along the soft-state / hard-state spectrum.
enum class ProtocolKind {
  kSS,     ///< pure soft-state: best-effort trigger + refresh, timeout removal
  kSSER,   ///< soft-state + best-effort explicit removal message
  kSSRT,   ///< soft-state + reliable triggers (retransmission + ACK) and
           ///< false-removal notification
  kSSRTR,  ///< soft-state + reliable triggers and reliable explicit removal
  kHS,     ///< hard-state: reliable trigger/removal only, external failure
           ///< detector for orphan cleanup (no refresh, no timeout)
};

/// All protocols, in the paper's presentation order.
inline constexpr std::array<ProtocolKind, 5> kAllProtocols = {
    ProtocolKind::kSS, ProtocolKind::kSSER, ProtocolKind::kSSRT,
    ProtocolKind::kSSRTR, ProtocolKind::kHS};

/// Protocols runnable on multi-hop chains and trees, in presentation
/// order.  The paper's Sec. III-B analysis covers SS, SS+RT and HS; since
/// the mechanism-driven StateSlot refactor the executable nodes and the
/// per-path CTMC composition handle explicit removal too, so this is all
/// five (SS+ER/SS+RTR reduce to the SS/SS+RT chain CTMC while no removal
/// is in flight).
inline constexpr std::array<ProtocolKind, 5> kMultiHopProtocols = {
    ProtocolKind::kSS, ProtocolKind::kSSER, ProtocolKind::kSSRT,
    ProtocolKind::kSSRTR, ProtocolKind::kHS};

/// The three protocols of the paper's Sec. III-B multi-hop analysis --
/// also the protocols with DISTINCT chain behavior (SS+ER/SS+RTR replay
/// SS/SS+RT bit-for-bit while no removal is in flight).  The paper-figure
/// benches iterate this subset; churn scenarios, where all five genuinely
/// differ, iterate kMultiHopProtocols.
inline constexpr std::array<ProtocolKind, 3> kPaperMultiHopProtocols = {
    ProtocolKind::kSS, ProtocolKind::kSSRT, ProtocolKind::kHS};

/// The mechanism set a protocol employs.  This is the "spectrum" view of
/// Section II: every protocol is just a combination of these switches.
struct MechanismSet {
  bool refresh = false;            ///< periodic refresh messages from sender
  bool soft_timeout = false;       ///< receiver removes state on timeout
  bool explicit_removal = false;   ///< sender emits a removal message
  bool reliable_trigger = false;   ///< triggers are ACKed and retransmitted
  bool reliable_removal = false;   ///< removals are ACKed and retransmitted
  bool removal_notification = false;  ///< receiver notifies sender of
                                      ///< (possibly false) removals
  bool external_failure_detector = false;  ///< orphan cleanup via external
                                           ///< signal (hard state only)

  friend bool operator==(const MechanismSet&, const MechanismSet&) = default;
};

/// Mechanisms of a protocol (Table in Sec. II / Fig. 1 of the paper).
[[nodiscard]] MechanismSet mechanisms(ProtocolKind kind) noexcept;

/// Canonical short name ("SS", "SS+ER", "SS+RT", "SS+RTR", "HS").
[[nodiscard]] std::string_view to_string(ProtocolKind kind) noexcept;

/// Longer human-readable description.
[[nodiscard]] std::string_view describe(ProtocolKind kind) noexcept;

/// Parses a canonical short name (case-sensitive).  Returns nullopt on
/// unknown input.
[[nodiscard]] std::optional<ProtocolKind> parse_protocol(std::string_view name) noexcept;

/// True for protocols whose state survives only while refreshed (all but HS).
[[nodiscard]] bool is_soft_state(ProtocolKind kind) noexcept;

/// True when the multi-hop machinery (chain/tree nodes, chain CTMC models,
/// session farm) implements `kind`.  The single gate point for every
/// topology-capability check; all five protocols qualify since the
/// StateSlot refactor, but callers keep consulting it so a future protocol
/// outside the set fails loudly in one place.
[[nodiscard]] bool supports_multi_hop(ProtocolKind kind) noexcept;

}  // namespace sigcomp
