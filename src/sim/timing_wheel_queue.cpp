#include "sim/timing_wheel_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sigcomp::sim {

namespace {

// Below this due-heap size, lazy deletion alone is cheap enough; compacting
// would just thrash on the tiny queues every protocol run starts with.
constexpr std::size_t kCompactionThreshold = 64;

// Same arity as EventQueue's heap; the due heap is small (one bucket's
// events plus already-due pushes) but the pop path still wins from the
// shallower, cache-line-friendly layout.
constexpr std::size_t kArity = 4;

}  // namespace

TimingWheelQueue::TimingWheelQueue(Time tick_seconds,
                                   std::size_t wheel_slots) {
  if (!std::isfinite(tick_seconds) || tick_seconds <= 0.0) {
    throw std::invalid_argument(
        "TimingWheelQueue: tick_seconds must be finite and positive");
  }
  if (wheel_slots < 2 || (wheel_slots & (wheel_slots - 1)) != 0) {
    throw std::invalid_argument(
        "TimingWheelQueue: wheel_slots must be a power of two >= 2");
  }
  tick_ = tick_seconds;
  inv_tick_ = 1.0 / tick_seconds;
  buckets_.assign(wheel_slots, kNoSlot);
  occupancy_.assign((wheel_slots + 63) / 64, 0);
  horizon_ = cur_tick_ + static_cast<std::int64_t>(wheel_slots);
}

std::int64_t TimingWheelQueue::tick_of(Time t) const noexcept {
  const double scaled = std::floor(t * inv_tick_);
  if (scaled >= kTickClamp) return static_cast<std::int64_t>(kTickClamp);
  if (scaled <= -kTickClamp) return -static_cast<std::int64_t>(kTickClamp);
  return static_cast<std::int64_t>(scaled);
}

std::uint32_t TimingWheelQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next;
    return slot;
  }
  if (slots_.size() >= kMaxSlots) {
    throw std::length_error("TimingWheelQueue: slot pool exhausted");
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void TimingWheelQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.action.reset();
  s.seq = 0;
  s.prev = kNoSlot;
  s.home = kNoSlot;
  s.next = free_head_;
  free_head_ = slot;
}

void TimingWheelQueue::link_front(std::uint32_t& head,
                                  std::uint32_t slot) const noexcept {
  slots_[slot].prev = kNoSlot;
  slots_[slot].next = head;
  if (head != kNoSlot) slots_[head].prev = slot;
  head = slot;
}

void TimingWheelQueue::unlink(std::uint32_t& head,
                              std::uint32_t slot) const noexcept {
  const Slot& s = slots_[slot];
  if (s.prev != kNoSlot) {
    slots_[s.prev].next = s.next;
  } else {
    head = s.next;
  }
  if (s.next != kNoSlot) slots_[s.next].prev = s.prev;
}

EventId TimingWheelQueue::push(Time time, EventCallback action) {
  if (!std::isfinite(time)) {
    throw std::invalid_argument("TimingWheelQueue::push: time must be finite");
  }
  if (!action) {
    throw std::invalid_argument("TimingWheelQueue::push: empty action");
  }
  if (next_seq_ >= kMaxSeq) {
    throw std::length_error("TimingWheelQueue: sequence space exhausted");
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.seq = seq;
  s.time = time;
  s.action = std::move(action);
  const std::int64_t tick = tick_of(time);
  if (tick <= cur_tick_) {
    // Already inside the due window: the due heap alone orders it.
    s.home = kHomeDue;
    due_push(time, (seq << kSlotBits) | slot);
    ++due_live_;
  } else if (tick <= horizon_) {
    place_in_wheel(slot, tick);
  } else {
    s.home = kHomeFar;
    link_front(far_head_, slot);
    ++far_count_;
  }
  ++live_;
  return EventId{seq, slot};
}

void TimingWheelQueue::place_in_wheel(std::uint32_t slot,
                                      std::int64_t tick) const {
  const std::size_t bucket = static_cast<std::size_t>(
      static_cast<std::uint64_t>(tick) & (buckets_.size() - 1));
  slots_[slot].home = static_cast<std::uint32_t>(bucket);
  link_front(buckets_[bucket], slot);
  occupancy_[bucket >> 6] |= 1ULL << (bucket & 63);
  ++wheel_count_;
}

bool TimingWheelQueue::cancel(EventId id) {
  if (id.value == 0 || id.slot >= slots_.size()) return false;
  if (slots_[id.slot].seq != id.value) return false;
  const std::uint32_t home = slots_[id.slot].home;
  if (home == kHomeDrained) {
    // Extracted by drain_due: no due-heap husk, no list link -- releasing
    // the slot is the whole cancellation.  take_drained/requeue_drained
    // will see the seq mismatch and skip it.
    release_slot(id.slot);
  } else if (home == kHomeDue) {
    // The heap husk stays behind; reclaim eagerly once husks outnumber
    // live due events, mirroring EventQueue's O(live) garbage bound.
    release_slot(id.slot);
    --due_live_;
    if (due_.size() > kCompactionThreshold &&
        due_.size() - due_live_ > due_live_) {
      compact();
    }
  } else if (home == kHomeFar) {
    unlink(far_head_, id.slot);
    --far_count_;
    release_slot(id.slot);
  } else {
    unlink(buckets_[home], id.slot);
    if (buckets_[home] == kNoSlot) {
      occupancy_[home >> 6] &= ~(1ULL << (home & 63));
    }
    --wheel_count_;
    release_slot(id.slot);
  }
  --live_;
  return true;
}

void TimingWheelQueue::due_push(Time time, std::uint64_t packed) const {
  due_.push_back(HeapEntry{time, packed});
  due_sift_up(due_.size() - 1);
}

void TimingWheelQueue::due_sift_up(std::size_t i) const noexcept {
  HeapEntry moving = due_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(moving, due_[parent])) break;
    due_[i] = due_[parent];
    i = parent;
  }
  due_[i] = moving;
}

void TimingWheelQueue::due_sift_down(std::size_t i) const noexcept {
  const std::size_t n = due_.size();
  HeapEntry moving = due_[i];
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + kArity < n ? first_child + kArity : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(due_[c], due_[best])) best = c;
    }
    if (!before(due_[best], moving)) break;
    due_[i] = due_[best];
    i = best;
  }
  due_[i] = moving;
}

void TimingWheelQueue::due_remove_front() const noexcept {
  due_.front() = due_.back();
  due_.pop_back();
  if (!due_.empty()) due_sift_down(0);
}

void TimingWheelQueue::drop_dead() const noexcept {
  while (!due_.empty() && !entry_live(due_.front())) {
    due_remove_front();
  }
}

void TimingWheelQueue::compact() {
  std::erase_if(due_,
                [this](const HeapEntry& entry) { return !entry_live(entry); });
  if (due_.size() > 1) {
    for (std::size_t i = (due_.size() - 2) / kArity + 1; i-- > 0;) {
      due_sift_down(i);
    }
  }
}

std::size_t TimingWheelQueue::find_occupied_bucket() const noexcept {
  // First occupied bucket in circular order starting at the tick after
  // cur_tick_.  The wheel window holds exactly wheel_slots() consecutive
  // ticks, so circular-first equals earliest-tick.
  const std::size_t mask = buckets_.size() - 1;
  const std::size_t start = static_cast<std::size_t>(
      static_cast<std::uint64_t>(cur_tick_ + 1) & mask);
  const std::size_t words = occupancy_.size();
  std::size_t word_index = start >> 6;
  std::uint64_t word = occupancy_[word_index] & (~0ULL << (start & 63));
  for (std::size_t scanned = 0; scanned <= words; ++scanned) {
    if (word != 0) {
      return (word_index << 6) +
             static_cast<std::size_t>(std::countr_zero(word));
    }
    word_index = word_index + 1 == words ? 0 : word_index + 1;
    word = occupancy_[word_index];
  }
  return start;  // unreachable while wheel_count_ > 0
}

void TimingWheelQueue::drain_bucket(std::size_t bucket) const {
  std::uint32_t s = buckets_[bucket];
  buckets_[bucket] = kNoSlot;
  occupancy_[bucket >> 6] &= ~(1ULL << (bucket & 63));
  while (s != kNoSlot) {
    const std::uint32_t next = slots_[s].next;
    slots_[s].home = kHomeDue;
    due_push(slots_[s].time, (slots_[s].seq << kSlotBits) | s);
    --wheel_count_;
    ++due_live_;
    s = next;
  }
}

void TimingWheelQueue::cascade_far() const {
  // The wheel is empty: jump the clock straight to the earliest far tick
  // (skipping every empty rotation in between), widen the window, and pull
  // the far events that now fit into the wheel.  One O(far) sweep per jump.
  std::int64_t min_tick = std::numeric_limits<std::int64_t>::max();
  for (std::uint32_t s = far_head_; s != kNoSlot; s = slots_[s].next) {
    min_tick = std::min(min_tick, tick_of(slots_[s].time));
  }
  cur_tick_ = min_tick - 1;
  horizon_ = cur_tick_ + static_cast<std::int64_t>(buckets_.size());
  std::uint32_t s = far_head_;
  while (s != kNoSlot) {
    const std::uint32_t next = slots_[s].next;
    const std::int64_t tick = tick_of(slots_[s].time);
    if (tick <= horizon_) {
      unlink(far_head_, s);
      --far_count_;
      place_in_wheel(s, tick);
    }
    s = next;
  }
}

void TimingWheelQueue::advance() const {
  // Precondition: some live event sits in the wheel or the far list.
  if (wheel_count_ == 0) cascade_far();
  const std::size_t mask = buckets_.size() - 1;
  const std::size_t start = static_cast<std::size_t>(
      static_cast<std::uint64_t>(cur_tick_ + 1) & mask);
  const std::size_t bucket = find_occupied_bucket();
  cur_tick_ += 1 + static_cast<std::int64_t>((bucket - start) & mask);
  drain_bucket(bucket);
}

void TimingWheelQueue::ensure_due() const {
  drop_dead();
  while (due_.empty() && (wheel_count_ > 0 || far_count_ > 0)) {
    advance();
  }
}

Time TimingWheelQueue::next_time() const {
  ensure_due();
  if (due_.empty()) {
    throw std::logic_error("TimingWheelQueue::next_time: queue empty");
  }
  return due_.front().time;
}

TimingWheelQueue::PoppedEvent TimingWheelQueue::pop() {
  ensure_due();
  if (due_.empty()) {
    throw std::logic_error("TimingWheelQueue::pop: queue empty");
  }
  const HeapEntry top = due_.front();
  due_remove_front();
  const std::uint32_t slot = top.slot();
  PoppedEvent out{top.time, std::move(slots_[slot].action)};
  release_slot(slot);
  --live_;
  --due_live_;
  return out;
}

void TimingWheelQueue::drain_due(Time horizon, std::vector<DrainedEvent>& out) {
  // Repeatedly peel the due-heap minimum.  Every due time is strictly
  // earlier than every wheel/far time (due ticks <= cur_tick_ < wheel
  // ticks, and tick_of is a floor), so once the due front exceeds the
  // horizon -- or ensure_due leaves the heap empty -- nothing at or before
  // the horizon remains anywhere.  The output is therefore already in
  // exact pop order; no sort needed.
  while (true) {
    ensure_due();
    if (due_.empty() || due_.front().time > horizon) return;
    const HeapEntry top = due_.front();
    due_remove_front();
    slots_[top.slot()].home = kHomeDrained;
    --due_live_;
    out.push_back(DrainedEvent{top.time, top.seq(), top.slot()});
  }
}

bool TimingWheelQueue::take_drained(const DrainedEvent& event,
                                    EventCallback& action) {
  // Generation check: the event may have been cancelled (and its slot
  // possibly reused by a newer push) between drain_due and dispatch.
  if (event.slot >= slots_.size()) return false;
  Slot& s = slots_[event.slot];
  if (s.seq != event.seq || s.home != kHomeDrained) return false;
  action = std::move(s.action);
  release_slot(event.slot);
  --live_;
  return true;
}

void TimingWheelQueue::requeue_drained(const DrainedEvent& event) {
  if (event.slot >= slots_.size()) return;
  Slot& s = slots_[event.slot];
  if (s.seq != event.seq || s.home != kHomeDrained) return;
  // Drained events were due (tick <= cur_tick_), so they go straight back
  // onto the due heap; (time, seq) are unchanged, so pop order is too.
  s.home = kHomeDue;
  due_push(event.time, (event.seq << kSlotBits) | event.slot);
  ++due_live_;
}

bool TimingWheelQueue::peek_ready(Time& time) const {
  ensure_due();
  if (due_.empty()) return false;
  time = due_.front().time;
  return true;
}

bool TimingWheelQueue::peek_ready_within(Time bound, Time& time) const {
  drop_dead();
  if (!due_.empty()) {
    // A non-empty due heap already holds the global minimum (ensure_due
    // only rotates the wheel when the heap is empty), so answer exactly.
    time = due_.front().time;
    return time <= bound;
  }
  if (wheel_count_ == 0 && far_count_ == 0) return false;
  // Nothing due: every pending event sits at a tick strictly beyond
  // cur_tick_, so its time is at least cur_tick_ * tick_ (one tick of slack
  // absorbs the floor-rounding of the tick map).  When even that lower
  // bound exceeds `bound` the answer is provably false -- no rotation, no
  // far-list cascade.
  if (static_cast<double>(cur_tick_) * tick_ > bound) return false;
  return peek_ready(time) && time <= bound;
}

}  // namespace sigcomp::sim
