// Reference pending-event set: the naive, pre-pooling implementation kept
// ONLY for differential testing and benchmarking of sim::EventQueue.  It is
// deliberately simple and obviously correct: std::function callbacks in an
// unordered_map keyed by sequence number, a lazily-deleted binary heap of
// (time, seq), and an unordered_set of cancelled sequence numbers, with the
// same compaction bound as the production queue.  Nothing in the simulator
// links against it; tests drive it and sim::EventQueue through identical
// operation streams and assert identical pop sequences, and bench/perf_scale
// reports the pooled queue's speedup over it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hpp"

namespace sigcomp::sim {

/// Handle into the reference queue (sequence number only).
struct ReferenceEventId {
  std::uint64_t value = 0;  ///< the event's unique sequence number
  friend bool operator==(
      const ReferenceEventId&,
      const ReferenceEventId&) = default;  ///< field-wise equality
};

/// Min-heap of (time, seq) -> action; see the file comment.
class ReferenceEventQueue {
 public:
  /// Adds an event; `time` must be finite and `action` non-empty.
  ReferenceEventId push(Time time, std::function<void()> action) {
    if (!std::isfinite(time)) {
      throw std::invalid_argument(
          "ReferenceEventQueue::push: time must be finite");
    }
    if (!action) {
      throw std::invalid_argument("ReferenceEventQueue::push: empty action");
    }
    const std::uint64_t seq = next_seq_++;
    heap_.push_back(Entry{time, seq});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    actions_.emplace(seq, std::move(action));
    ++live_;
    return ReferenceEventId{seq};
  }

  /// Cancels a pending event; returns false if already executed/cancelled.
  bool cancel(ReferenceEventId id) {
    const auto it = actions_.find(id.value);
    if (it == actions_.end()) return false;
    actions_.erase(it);
    cancelled_.insert(id.value);
    --live_;
    if (heap_.size() > kCompactionThreshold &&
        heap_.size() - live_ > live_) {
      compact();
    }
    return true;
  }

  /// True when no live event remains.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  /// Number of live (pending, uncancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Heap entries including lazily-deleted husks (same bound as the
  /// production queue).
  [[nodiscard]] std::size_t heap_entries() const noexcept {
    return heap_.size();
  }

  /// Time of the earliest live event.  Throws std::logic_error when empty.
  [[nodiscard]] Time next_time() const {
    drop_dead();
    if (heap_.empty()) {
      throw std::logic_error("ReferenceEventQueue::next_time: queue empty");
    }
    return heap_.front().time;
  }

  /// An event handed back by pop().
  struct PoppedEvent {
    Time time;                     ///< scheduled execution time
    std::function<void()> action;  ///< the callback to invoke
  };

  /// Pops and returns the earliest live event.  Throws when empty.
  PoppedEvent pop() {
    drop_dead();
    if (heap_.empty()) {
      throw std::logic_error("ReferenceEventQueue::pop: queue empty");
    }
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    const auto it = actions_.find(top.seq);
    PoppedEvent out{top.time, std::move(it->second)};
    actions_.erase(it);
    --live_;
    return out;
  }

 private:
  static constexpr std::size_t kCompactionThreshold = 64;

  struct Entry {
    Time time;
    std::uint64_t seq;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void compact() {
    std::erase_if(heap_, [this](const Entry& entry) {
      return cancelled_.find(entry.seq) != cancelled_.end();
    });
    cancelled_.clear();
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  void drop_dead() const {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.front().seq);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    }
  }

  mutable std::vector<Entry> heap_;
  // The unordered containers below are membership/lookup-only (find,
  // erase, clear -- never iterated), and this queue is test/bench-only:
  // nothing in the library links against it, and its pop order comes from
  // the (time, seq) heap, never from hash iteration.
  // sigcomp-lint: allow(unordered-container) lookup-only cancelled-set;
  // reference impl, pop order derived from the heap
  mutable std::unordered_set<std::uint64_t> cancelled_;
  // sigcomp-lint: allow(unordered-container) seq->action lookup only;
  // reference impl, pop order derived from the heap
  std::unordered_map<std::uint64_t, std::function<void()>> actions_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace sigcomp::sim
