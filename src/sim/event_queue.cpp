#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sigcomp::sim {

namespace {

// Below this heap size, lazy deletion alone is cheap enough; compacting
// would just thrash on the tiny queues every protocol run starts with.
constexpr std::size_t kCompactionThreshold = 64;

// 4-ary heap: shallower than binary (log4 vs log2 levels) and the four
// children of a node share cache lines, which is what the pop path is
// bound by at scale-harness queue depths.
constexpr std::size_t kArity = 4;

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  if (slots_.size() >= kMaxSlots) {
    throw std::length_error("EventQueue: slot pool exhausted");
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.action.reset();
  s.seq = 0;
  s.drained = false;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::sift_up(std::size_t i) noexcept {
  HeapEntry moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void EventQueue::sift_down(std::size_t i) const noexcept {
  const std::size_t n = heap_.size();
  HeapEntry moving = heap_[i];
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + kArity < n ? first_child + kArity : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void EventQueue::heap_remove_front() const noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

EventId EventQueue::push(Time time, EventCallback action) {
  if (!std::isfinite(time)) {
    throw std::invalid_argument("EventQueue::push: time must be finite");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue::push: empty action");
  }
  if (next_seq_ >= kMaxSeq) {
    throw std::length_error("EventQueue: sequence space exhausted");
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].seq = seq;
  slots_[slot].action = std::move(action);
  heap_.push_back(HeapEntry{time, (seq << kSlotBits) | slot});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{seq, slot};
}

bool EventQueue::cancel(EventId id) {
  if (id.value == 0 || id.slot >= slots_.size()) return false;
  if (slots_[id.slot].seq != id.value) return false;
  // A drained event has no husk in the heap -- releasing the slot is the
  // whole cancellation.
  if (slots_[id.slot].drained) --drained_live_;
  release_slot(id.slot);
  --live_;
  // Reclaim eagerly once dead husks outnumber live IN-HEAP events (drained
  // events are live but hold no heap entry), so a cancel-heavy run
  // (soft-state refresh churn) holds O(live) memory instead of
  // O(cancelled).
  const std::size_t live_in_heap = live_ - drained_live_;
  if (heap_.size() > kCompactionThreshold &&
      heap_.size() - live_in_heap > live_in_heap) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_,
                [this](const HeapEntry& entry) { return !entry_live(entry); });
  if (heap_.size() > 1) {
    // Re-heapify bottom-up from the last parent, the d-ary make_heap.
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

void EventQueue::drop_dead() const noexcept {
  // Dead husks never touch the slot pool: their slot was released (and
  // possibly reused) at cancel time, so shedding them only mutates the
  // mutable heap vector.
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_remove_front();
  }
}

Time EventQueue::next_time() const {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: queue empty");
  return heap_.front().time;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: queue empty");
  const HeapEntry top = heap_.front();
  heap_remove_front();
  const std::uint32_t slot = top.slot();
  PoppedEvent out{top.time, std::move(slots_[slot].action)};
  release_slot(slot);
  --live_;
  return out;
}

void EventQueue::drain_due(Time horizon, std::vector<DrainedEvent>& out) {
  drop_dead();
  if (heap_.empty() || heap_.front().time > horizon) return;
  // One partition pass over the whole heap: live entries at or before the
  // horizon leave for the caller's buffer, dead husks are shed for free,
  // and everything later is compacted in place.  The appended range is
  // then sorted into exact pop order -- (time, seq) is precisely the
  // heap's before() ordering, so a drain-then-dispatch sequence executes
  // the same events in the same order as a pop loop would.
  const std::size_t start = out.size();
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (!entry_live(entry)) continue;
    if (entry.time <= horizon) {
      out.push_back(DrainedEvent{entry.time, entry.seq(), entry.slot()});
      slots_[entry.slot()].drained = true;
      ++drained_live_;
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
            [](const DrainedEvent& a, const DrainedEvent& b) noexcept {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
}

bool EventQueue::take_drained(const DrainedEvent& event, EventCallback& action) {
  // Generation check: the event may have been cancelled (and its slot
  // possibly reused by a newer push) between drain_due and dispatch.
  if (event.slot >= slots_.size()) return false;
  Slot& s = slots_[event.slot];
  if (s.seq != event.seq || !s.drained) return false;
  action = std::move(s.action);
  release_slot(event.slot);
  --live_;
  --drained_live_;
  return true;
}

void EventQueue::requeue_drained(const DrainedEvent& event) {
  if (event.slot >= slots_.size()) return;
  Slot& s = slots_[event.slot];
  if (s.seq != event.seq || !s.drained) return;
  s.drained = false;
  --drained_live_;
  heap_.push_back(HeapEntry{event.time, (event.seq << kSlotBits) | event.slot});
  sift_up(heap_.size() - 1);
}

bool EventQueue::peek_ready(Time& time) const {
  drop_dead();
  if (heap_.empty()) return false;
  time = heap_.front().time;
  return true;
}

bool EventQueue::peek_ready_within(Time bound, Time& time) const {
  if (!peek_ready(time)) return false;
  return time <= bound;
}

}  // namespace sigcomp::sim
