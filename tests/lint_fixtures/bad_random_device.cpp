// Fixture: std::random_device is hardware entropy -- never reproducible.
#include <random>

unsigned seed_from_hardware() {
  std::random_device rd;  // LINT[random-device]
  return rd();
}
