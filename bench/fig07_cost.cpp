// Figure 7: integrated cost C = w*I + M (w = 10 msg/s) versus the
// soft-state refresh timer R, with T = 3R (single hop).  Shows the
// sensitive optimum for SS/SS+RT, the flatter optimum for SS+ER, and
// SS+RTR approaching HS for large R.
//
// Usage: fig07_cost [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table table(
      "Fig. 7: integrated cost C = 10*I + M vs refresh timer R (T = 3R)",
      {"refresh_s", "C(SS)", "C(SS+ER)", "C(SS+RT)", "C(SS+RTR)", "C(HS)"});

  for (const double refresh : exp::log_space(0.1, 100.0, 16)) {
    const SingleHopParams p =
        SingleHopParams::kazaa_defaults().with_refresh_scaled_timeout(refresh);
    std::vector<exp::Cell> row{refresh};
    for (const ProtocolKind kind : kAllProtocols) {
      row.emplace_back(integrated_cost(evaluate_analytic(kind, p)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
