// IGMP-flavoured scenario (Sec. I / II of the paper): hosts on a LAN join
// and leave a multicast group at their first-hop router -- a one-level
// signaling tree with the router's group state at the root and one leaf
// per host port.  IGMPv1 removed memberships purely by timeout (the SS
// pattern); IGMPv2 added an explicit Leave message (the SS+ER pattern).
// While a departed member's state is stale the router keeps forwarding
// multicast traffic nobody wants -- the application-specific cost here is
// wasted downstream bandwidth, and it is exactly the per-leave ORPHAN
// WINDOW the membership machinery measures.
//
// This example drives real join/leave churn on a live tree with the
// discrete-event simulator (deterministic-timer protocols, not the model)
// and shows why the v1 -> v2 protocol evolution was worth it -- and what
// the rest of the spectrum would buy.
#include <iostream>
#include <string>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/table.hpp"
#include "protocols/tree_run.hpp"

int main() {
  using namespace sigcomp;

  // One first-hop router, 8 host ports, LAN characteristics.
  MultiHopParams lan;
  lan.loss = 0.01;            // LAN, nearly loss-free
  lan.delay = 0.002;          // 2 ms to the first-hop router
  lan.retrans_timer = 0.008;  // 4x delay
  lan.update_rate = 0.0;      // membership has no "update", only join/leave
  lan.refresh_timer = 10.0;   // IGMP-ish report interval
  lan.timeout_timer = 30.0;   // 3 missed reports
  const analytic::TreeParams tree = analytic::TreeParams::balanced(lan, 8, 1);

  protocols::TreeSimOptions options;
  options.seed = 2026;
  options.duration = 100000.0;         // ~27 h of viewing
  options.churn.leaf_lifetime = 120.0; // mean 2-minute memberships
  options.churn.rejoin_rate = 1.0 / 60.0;  // ~1 min between channel hops

  constexpr double kStreamMbps = 4.0;  // one SD multicast stream

  exp::Table table(
      "IGMP-style group membership on a live 8-port tree (2-minute "
      "memberships, 10 s reports, 30 s timeout)",
      {"protocol", "protocol analogue", "leaves", "orphan win (s)",
       "unwanted Mbit/leave", "join lat (s)", "signaling msg/s"});

  const auto row = [&](ProtocolKind kind, const char* analogue) {
    const protocols::TreeSimResult sim =
        protocols::run_tree(kind, tree, options);
    // Stale membership streams unwanted traffic for the orphan window.
    const double wasted_mbit_per_leave =
        sim.churn.mean_orphan_window() * kStreamMbps;
    table.add_row({std::string(to_string(kind)), std::string(analogue),
                   static_cast<double>(sim.churn.leaves),
                   sim.churn.mean_orphan_window(), wasted_mbit_per_leave,
                   sim.churn.mean_setup_latency(),
                   sim.metrics.raw_message_rate});
  };

  row(ProtocolKind::kSS, "IGMPv1 (timeout-only leave)");
  row(ProtocolKind::kSSER, "IGMPv2 (explicit Leave)");
  row(ProtocolKind::kSSRT, "v1 + reliable reports");
  row(ProtocolKind::kSSRTR, "hypothetical reliable Leave");
  row(ProtocolKind::kHS, "hard-state membership");
  table.print(std::cout);

  std::cout << "\nThe v1->v2 step (adding an explicit Leave) removes most of "
               "the unwanted-traffic cost:\nthe orphan window collapses from "
               "the ~timeout scale to one propagation delay.\nMaking the "
               "Leave reliable buys the remaining sliver -- the rare lost "
               "Leave that\nstill falls back to the timeout -- at one extra "
               "ACK per departure.\n";
  return 0;
}
