// A fully wired signaling tree: the sender at the root, relays at interior
// nodes, receivers at the leaves, with per-edge bidirectional channels,
// sinks connected, and optional per-edge tracing.  One builder shared by
// the tree harness (protocols/tree_run.cpp), the chain adapter
// (protocols/chain.hpp, the fan-out-1 special case) and the session farm
// (exp/session_farm.cpp), so topology and wiring can never drift between
// them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "core/topology.hpp"
#include "protocols/engine.hpp"
#include "protocols/multi_hop_node.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sigcomp::protocols {

/// Owns the tree's nodes and channels.  Edge e's two directions share the
/// link's loss and delay configuration; channel trace labels are "dn<e>"
/// (away from the root) and "up<e>" (toward the root) -- on a chain spec
/// these coincide with the historical per-hop labels.
class Topology {
 public:
  /// `edge_loss` and `edge_delay` must have exactly spec.edges() entries
  /// (and the spec at least one edge).  Both `channel_rng` and `node_rng`
  /// must outlive the topology.  Throws std::invalid_argument on an
  /// invalid spec or mismatched vectors.
  Topology(sim::Simulator& sim, sim::Rng& channel_rng, sim::Rng& node_rng,
           MechanismSet mech, const TimerSettings& timers,
           const TreeSpec& spec,
           const std::vector<sim::LossConfig>& edge_loss,
           const std::vector<sim::DelayConfig>& edge_delay,
           std::function<void()> on_change, sim::TraceLog* trace = nullptr);

  Topology(const Topology&) = delete;             ///< non-copyable
  Topology& operator=(const Topology&) = delete;  ///< non-copyable

  /// The tree being simulated.
  [[nodiscard]] const TreeSpec& spec() const noexcept { return spec_; }
  /// Non-root nodes (== edges).
  [[nodiscard]] std::size_t relays() const noexcept { return relays_.size(); }
  /// The root node.
  [[nodiscard]] TreeSender& sender() noexcept { return *sender_; }
  /// The root node (const).
  [[nodiscard]] const TreeSender& sender() const noexcept { return *sender_; }
  /// Relay i holds tree node i+1 (edge i's child endpoint).
  [[nodiscard]] TreeRelay& relay(std::size_t i) { return *relays_[i]; }
  /// Relay i (const).
  [[nodiscard]] const TreeRelay& relay(std::size_t i) const {
    return *relays_[i];
  }

  /// Messages handed to edge e's channels (both directions).
  [[nodiscard]] std::uint64_t edge_messages_sent(std::size_t e) const noexcept;

  /// Messages handed to all channels of the tree.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept;

  /// Soft-state timeout expirations summed across relays.
  [[nodiscard]] std::uint64_t relay_timeouts() const noexcept;

  /// Silently tears the whole tree down (TreeSender/TreeRelay::stop):
  /// state cleared, timers cancelled, nothing signaled.
  void stop();

 private:
  TreeSpec spec_;
  std::vector<std::unique_ptr<MessageChannel>> down_;  ///< e: parent -> child
  std::vector<std::unique_ptr<MessageChannel>> up_;    ///< e: child -> parent
  std::unique_ptr<TreeSender> sender_;
  std::vector<std::unique_ptr<TreeRelay>> relays_;
};

}  // namespace sigcomp::protocols
