#include "core/evaluator.hpp"

#include <stdexcept>

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"

namespace sigcomp {

Metrics evaluate_analytic(ProtocolKind kind, const SingleHopParams& params) {
  return analytic::evaluate_single_hop(kind, params);
}

Metrics evaluate_analytic(ProtocolKind kind, const MultiHopParams& params) {
  return analytic::evaluate_multi_hop(kind, params);
}

protocols::SimResult evaluate_simulated(ProtocolKind kind,
                                        const SingleHopParams& params,
                                        const protocols::SimOptions& options) {
  return protocols::run_single_hop(kind, params, options);
}

protocols::MultiHopSimResult evaluate_simulated(
    ProtocolKind kind, const MultiHopParams& params,
    const protocols::MultiHopSimOptions& options) {
  return protocols::run_multi_hop(kind, params, options);
}

std::vector<ProtocolMetrics> compare_all(const SingleHopParams& params) {
  std::vector<ProtocolMetrics> out;
  out.reserve(kAllProtocols.size());
  for (const ProtocolKind kind : kAllProtocols) {
    out.push_back({kind, evaluate_analytic(kind, params)});
  }
  return out;
}

std::vector<ProtocolMetrics> compare_all(const MultiHopParams& params) {
  std::vector<ProtocolMetrics> out;
  out.reserve(kMultiHopProtocols.size());
  for (const ProtocolKind kind : kMultiHopProtocols) {
    out.push_back({kind, evaluate_analytic(kind, params)});
  }
  return out;
}

namespace {

/// Runs `body(sweep)` on the caller-shared engine when one is set,
/// otherwise on a pool constructed for this call.
template <typename Body>
auto with_engine(exp::ParallelSweep* engine, std::size_t threads, Body&& body) {
  if (engine != nullptr) return body(*engine);
  exp::ParallelSweep own(threads);
  return body(own);
}

template <typename Params>
std::vector<Metrics> grid_analytic(ProtocolKind kind,
                                   const std::vector<Params>& grid,
                                   const GridOptions& options) {
  return with_engine(options.engine, options.threads,
                     [&](exp::ParallelSweep& sweep) {
                       return sweep.map(grid, [kind](const Params& params) {
                         return evaluate_analytic(kind, params);
                       });
                     });
}

}  // namespace

std::vector<Metrics> evaluate_grid_analytic(ProtocolKind kind,
                                            const std::vector<SingleHopParams>& grid,
                                            const GridOptions& options) {
  return grid_analytic(kind, grid, options);
}

std::vector<Metrics> evaluate_grid_analytic(ProtocolKind kind,
                                            const std::vector<MultiHopParams>& grid,
                                            const GridOptions& options) {
  return grid_analytic(kind, grid, options);
}

std::vector<exp::MetricsSummary> evaluate_grid_simulated(
    ProtocolKind kind, const std::vector<SingleHopParams>& grid,
    const SimGridOptions& options) {
  if (options.sim.trace != nullptr) {
    throw std::invalid_argument(
        "evaluate_grid_simulated: tracing is incompatible with concurrent "
        "replicas; run single replicas via evaluate_simulated instead");
  }
  const exp::ReplicatedRun replicated(options.replications, options.sim.seed);
  return with_engine(
      options.engine, options.threads, [&](exp::ParallelSweep& sweep) {
        return replicated.over_grid(
            sweep, grid.size(), [&](std::size_t point, std::uint64_t seed) {
              protocols::SimOptions sim = options.sim;
              sim.seed = seed;
              return protocols::run_single_hop(kind, grid[point], sim).metrics;
            });
      });
}

std::vector<exp::MetricsSummary> evaluate_grid_simulated(
    ProtocolKind kind, const std::vector<MultiHopParams>& grid,
    const MultiHopSimGridOptions& options) {
  const exp::ReplicatedRun replicated(options.replications, options.sim.seed);
  return with_engine(
      options.engine, options.threads, [&](exp::ParallelSweep& sweep) {
        return replicated.over_grid(
            sweep, grid.size(), [&](std::size_t point, std::uint64_t seed) {
              protocols::MultiHopSimOptions sim = options.sim;
              sim.seed = seed;
              return protocols::run_multi_hop(kind, grid[point], sim).metrics;
            });
      });
}

}  // namespace sigcomp
