#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sigcomp::sim {
namespace {

TEST(Rng, SameSeedSameStreamIsDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsAreRight) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformRangeStaysHalfOpenUnderRounding) {
  // When [lo, hi) spans a single representable double, lo + (hi - lo) * u
  // rounds to hi for roughly half the draws; the contract requires the
  // result to stay strictly below hi.
  Rng rng(99);
  const double lo = 1.0;
  const double hi = std::nextafter(lo, 2.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LT(v, hi);  // the only representable value in range is lo itself
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_int(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / double(kBuckets), 0.05 * kSamples / kBuckets)
        << "bucket " << b;
  }
}

TEST(Rng, UniformIntZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(0), 0u);
  EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  constexpr int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.02);
  EXPECT_NEAR(hits / double(kSamples), 0.02, 0.002);
}

TEST(Rng, ExponentialMeanAndNonNegativity) {
  Rng rng(29);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, ExponentialZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.exponential(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, ExponentialMemorylessTail) {
  // P(X > mean) should be e^{-1} ~ 0.368.
  Rng rng(31);
  constexpr int kSamples = 100000;
  int over = 0;
  for (int i = 0; i < kSamples; ++i) over += (rng.exponential(2.0) > 2.0);
  EXPECT_NEAR(over / double(kSamples), std::exp(-1.0), 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(37);
  constexpr int kSamples = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(SampleHelper, DeterministicReturnsMean) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(sample(rng, Distribution::kDeterministic, 3.5), 3.5);
  EXPECT_DOUBLE_EQ(sample(rng, Distribution::kDeterministic, -1.0), 0.0);
}

TEST(SampleHelper, ExponentialHasRequestedMean) {
  Rng rng(41);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += sample(rng, Distribution::kExponential, 2.0);
  }
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

}  // namespace
}  // namespace sigcomp::sim
