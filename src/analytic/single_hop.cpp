#include "analytic/single_hop.hpp"

#include <cmath>
#include <stdexcept>

#include "markov/absorption.hpp"
#include "markov/stationary.hpp"

namespace sigcomp::analytic {

namespace {

/// All protocol-dependent rates of Table I, evaluated numerically.
struct Rates {
  double fast = 0.0;         ///< 1/D: fast-path event rate (delivery or loss)
  double fast_ok = 0.0;      ///< (1-pl)/D
  double fast_lost = 0.0;    ///< pl/D
  double slow_repair = 0.0;  ///< (1,0)2 -> C and IC2 -> C rate
  double removal1_done = 0.0;   ///< (0,1)1 -> (0,0)
  double removal1_lost = 0.0;   ///< (0,1)1 -> (0,1)2 (0 when no (0,1)2 state)
  double removal2_done = 0.0;   ///< (0,1)2 -> (0,0)
  double false_removal = 0.0;   ///< lambda_F: C -> (1,0)2 and IC2 -> (1,0)2
  bool removal2 = false;        ///< protocol instantiates (0,1)2
};

Rates compute_rates(const MechanismSet& mech, const SingleHopParams& p) {
  Rates r;
  r.fast = 1.0 / p.delay;
  r.fast_ok = (1.0 - p.loss) / p.delay;
  r.fast_lost = p.loss / p.delay;

  // Slow-path repair of a lost trigger (Table I, row lambda_{(1,0)2 -> C}):
  //   refresh-only protocols:       (1-pl)/R
  //   reliable-trigger soft state:  (1/R + 1/Gamma)(1-pl)
  //   hard state (no refresh):      (1-pl)/Gamma
  double repair_rate = 0.0;
  if (mech.refresh) repair_rate += 1.0 / p.refresh_timer;
  if (mech.reliable_trigger) repair_rate += 1.0 / p.retrans_timer;
  r.slow_repair = repair_rate * (1.0 - p.loss);

  // Removal of orphaned state at the receiver (Table I, rows
  // lambda_{(0,1)1 -> (0,0)} and lambda_{(0,1)1 -> (0,1)2}).
  if (mech.explicit_removal) {
    r.removal1_done = (1.0 - p.loss) / p.delay;
    r.removal1_lost = p.loss / p.delay;
    r.removal2 = true;
    // After losing the removal message: timeout (soft state) and/or
    // retransmission (reliable removal).
    double done = 0.0;
    if (mech.soft_timeout) done += 1.0 / p.timeout_timer;
    if (mech.reliable_removal) done += (1.0 - p.loss) / p.retrans_timer;
    r.removal2_done = done;
  } else {
    // Timeout is the only removal mechanism; no (0,1)2 state.
    r.removal1_done = 1.0 / p.timeout_timer;
    r.removal1_lost = 0.0;
    r.removal2 = false;
    r.removal2_done = 0.0;
  }

  // False removal: all refreshes within one timeout interval lost (soft
  // state), or a false external signal (hard state).
  if (mech.soft_timeout) {
    r.false_removal = p.false_removal_rate();
  } else if (mech.external_failure_detector) {
    r.false_removal = p.false_signal_rate;
  } else {
    r.false_removal = 0.0;
  }
  return r;
}

}  // namespace

std::string_view to_string(ShState s) noexcept {
  switch (s) {
    case ShState::kSetup1: return "(1,0)1";
    case ShState::kSetup2: return "(1,0)2";
    case ShState::kConsistent: return "C";
    case ShState::kUpdate1: return "IC1";
    case ShState::kUpdate2: return "IC2";
    case ShState::kRemoval1: return "(0,1)1";
    case ShState::kRemoval2: return "(0,1)2";
    case ShState::kAbsorbed: return "(0,0)";
  }
  return "?";
}

void validate_mechanisms(const MechanismSet& mechanisms) {
  if (mechanisms.soft_timeout && !mechanisms.refresh) {
    throw std::invalid_argument(
        "validate_mechanisms: a state-timeout requires a refresh process");
  }
  if (mechanisms.reliable_removal && !mechanisms.explicit_removal) {
    throw std::invalid_argument(
        "validate_mechanisms: reliable removal requires an explicit removal "
        "message");
  }
  if (!mechanisms.soft_timeout && !mechanisms.explicit_removal) {
    throw std::invalid_argument(
        "validate_mechanisms: no removal path (need a timeout or an explicit "
        "removal message)");
  }
  if (mechanisms.explicit_removal && !mechanisms.soft_timeout &&
      !mechanisms.reliable_removal) {
    throw std::invalid_argument(
        "validate_mechanisms: a lost removal message is unrecoverable (need a "
        "state-timeout backstop or reliable removal)");
  }
}

SingleHopModel::SingleHopModel(ProtocolKind kind, const SingleHopParams& params)
    : SingleHopModel(mechanisms(kind), params) {
  kind_ = kind;
}

SingleHopModel::SingleHopModel(const MechanismSet& mechanism_set,
                               const SingleHopParams& params)
    : kind_(mechanism_set.refresh ? ProtocolKind::kSS : ProtocolKind::kHS),
      mech_(mechanism_set),
      params_(params) {
  params_.validate();
  validate_mechanisms(mech_);
  const Rates r = compute_rates(mech_, params_);

  const auto add_states = [&](markov::Ctmc& chain,
                              std::array<std::optional<markov::StateId>, 8>& ids,
                              bool with_absorbed) {
    for (const ShState s : kAllShStates) {
      if (s == ShState::kRemoval2 && !r.removal2) continue;
      if (s == ShState::kAbsorbed && !with_absorbed) continue;
      ids[static_cast<std::size_t>(s)] = chain.add_state(std::string(to_string(s)));
    }
  };
  add_states(transient_, transient_ids_, /*with_absorbed=*/true);
  add_states(recurrent_, recurrent_ids_, /*with_absorbed=*/false);

  // Adds the transition to both views; transitions into (0,0) are redirected
  // to (1,0)1 in the recurrent view (absorbing state merged with the start).
  const auto add = [&](ShState from, ShState to, double rate) {
    if (rate <= 0.0) return;
    const auto tf = transient_ids_[static_cast<std::size_t>(from)];
    const auto tt = transient_ids_[static_cast<std::size_t>(to)];
    transient_.add_rate(*tf, *tt, rate);
    const auto rf = recurrent_ids_[static_cast<std::size_t>(from)];
    const ShState rto = (to == ShState::kAbsorbed) ? ShState::kSetup1 : to;
    const auto rt = recurrent_ids_[static_cast<std::size_t>(rto)];
    if (*rf != *rt) recurrent_.add_rate(*rf, *rt, rate);
  };

  const double lu = params_.update_rate;
  const double lr = params_.removal_rate;

  // --- Setup (Sec. III-A.1, "SS model" paragraph; shared by all protocols).
  add(ShState::kSetup1, ShState::kConsistent, r.fast_ok);
  add(ShState::kSetup1, ShState::kSetup2, r.fast_lost);
  add(ShState::kSetup2, ShState::kConsistent, r.slow_repair);

  // --- Update.
  add(ShState::kConsistent, ShState::kUpdate1, lu);
  add(ShState::kUpdate1, ShState::kConsistent, r.fast_ok);
  add(ShState::kUpdate1, ShState::kUpdate2, r.fast_lost);
  add(ShState::kUpdate2, ShState::kConsistent, r.slow_repair);
  add(ShState::kSetup2, ShState::kSetup1, lu);
  add(ShState::kUpdate2, ShState::kUpdate1, lu);

  // --- Removal.  From (1,0)2 the receiver never installed state, so removal
  // absorbs directly; from C / IC2 the receiver holds state that must be
  // cleaned up via (0,1)*.  Fast-path states are excluded (serialization).
  add(ShState::kSetup2, ShState::kAbsorbed, lr);
  add(ShState::kConsistent, ShState::kRemoval1, lr);
  add(ShState::kUpdate2, ShState::kRemoval1, lr);
  add(ShState::kRemoval1, ShState::kAbsorbed, r.removal1_done);
  if (r.removal2) {
    add(ShState::kRemoval1, ShState::kRemoval2, r.removal1_lost);
    add(ShState::kRemoval2, ShState::kAbsorbed, r.removal2_done);
  }

  // --- False removal: receiver drops state while the sender still holds it;
  // the sender re-installs via refresh / retransmitted trigger ((1,0)2).
  add(ShState::kConsistent, ShState::kSetup2, r.false_removal);
  add(ShState::kUpdate2, ShState::kSetup2, r.false_removal);

  pi_ = markov::stationary_distribution_from(
      recurrent_, *recurrent_ids_[static_cast<std::size_t>(ShState::kSetup1)]);
}

bool SingleHopModel::has_removal2() const noexcept {
  return transient_ids_[static_cast<std::size_t>(ShState::kRemoval2)].has_value();
}

markov::StateId SingleHopModel::id(ShState s) const {
  const auto v = transient_ids_[static_cast<std::size_t>(s)];
  if (!v) throw std::logic_error("SingleHopModel: state not instantiated");
  return *v;
}

std::optional<markov::StateId> SingleHopModel::recurrent_id(ShState s) const {
  return recurrent_ids_[static_cast<std::size_t>(s)];
}

double SingleHopModel::stationary(ShState s) const {
  if (s == ShState::kAbsorbed) return 0.0;
  const auto rid = recurrent_id(s);
  return rid ? pi_[*rid] : 0.0;
}

double SingleHopModel::inconsistency() const {
  return 1.0 - stationary(ShState::kConsistent);
}

double SingleHopModel::session_length() const {
  const auto result = markov::mean_time_to_absorption(transient_);
  return result.mean_time[id(ShState::kSetup1)];
}

MessageRateBreakdown SingleHopModel::message_rates() const {
  const MechanismSet& mech = mech_;
  const SingleHopParams& p = params_;
  const Rates r = compute_rates(mech_, p);
  MessageRateBreakdown m;

  const double pi_s1 = stationary(ShState::kSetup1);
  const double pi_s2 = stationary(ShState::kSetup2);
  const double pi_c = stationary(ShState::kConsistent);
  const double pi_u1 = stationary(ShState::kUpdate1);
  const double pi_u2 = stationary(ShState::kUpdate2);
  const double pi_r1 = stationary(ShState::kRemoval1);
  const double pi_r2 = stationary(ShState::kRemoval2);

  // Eq. (3): every sojourn in a fast-path state corresponds to one trigger
  // transmission; the state is left at rate 1/D (delivered or lost).
  m.trigger = (pi_s1 + pi_u1) * r.fast;

  // Eq. (5): refreshes are generated at rate 1/R while the sender holds
  // state and no trigger is in flight ((1,0)2, C, IC2).
  if (mech.refresh) {
    m.refresh = (pi_s2 + pi_c + pi_u2) / p.refresh_timer;
  }

  // Eq. (4): one explicit removal transmission per sojourn in (0,1)1.
  if (mech.explicit_removal) {
    m.explicit_removal = pi_r1 * (r.removal1_done + r.removal1_lost);
  }

  // Eq. (6): reliable-trigger extras -- retransmissions in the slow-path
  // states, one ACK per delivered trigger/retransmission, and one
  // notification per false removal (receiver tells sender its state is gone).
  if (mech.reliable_trigger) {
    const double retransmissions = (pi_s2 + pi_u2) / p.retrans_timer;
    const double acks = (pi_s1 + pi_u1) * r.fast_ok +
                        (pi_s2 + pi_u2) * (1.0 - p.loss) / p.retrans_timer;
    m.reliable_trigger = retransmissions + acks;
  }
  if (mech.removal_notification) {
    // One notification per (false) removal at the receiver.
    m.reliable_trigger += r.false_removal * (pi_c + pi_u2);
  }

  // Eq. (7): reliable-removal extras -- retransmissions in (0,1)2 plus one
  // ACK per delivered removal.
  if (mech.reliable_removal) {
    const double retransmissions = pi_r2 / p.retrans_timer;
    const double acks =
        pi_r1 * r.removal1_done + pi_r2 * (1.0 - p.loss) / p.retrans_timer;
    m.reliable_removal = retransmissions + acks;
  }
  return m;
}

Metrics SingleHopModel::metrics() const {
  Metrics out;
  out.inconsistency = inconsistency();
  out.breakdown = message_rates();
  out.raw_message_rate = out.breakdown.total();
  out.session_length = session_length();
  // Eq. (2) + normalization: N = L * m; M-bar = N * lambda_r.
  out.message_rate =
      out.session_length * out.raw_message_rate * params_.removal_rate;
  return out;
}

std::vector<TransitionSpec> SingleHopModel::transition_table(
    ProtocolKind kind, const SingleHopParams& params) {
  params.validate();
  const MechanismSet mech = mechanisms(kind);
  const Rates r = compute_rates(mech, params);
  std::vector<TransitionSpec> rows;

  const auto row = [&](ShState from, ShState to, std::string formula, double rate) {
    rows.push_back(TransitionSpec{from, to, std::move(formula), rate});
  };

  row(ShState::kSetup1, ShState::kSetup2, "pl/D", r.fast_lost);
  row(ShState::kUpdate1, ShState::kUpdate2, "pl/D", r.fast_lost);
  row(ShState::kSetup1, ShState::kConsistent, "(1-pl)/D", r.fast_ok);
  row(ShState::kUpdate1, ShState::kConsistent, "(1-pl)/D", r.fast_ok);

  std::string repair;
  if (mech.refresh && mech.reliable_trigger) {
    repair = "(1/R + 1/G)(1-pl)";
  } else if (mech.refresh) {
    repair = "(1-pl)/R";
  } else {
    repair = "(1-pl)/G";
  }
  row(ShState::kSetup2, ShState::kConsistent, repair, r.slow_repair);
  row(ShState::kUpdate2, ShState::kConsistent, repair, r.slow_repair);

  row(ShState::kRemoval1, ShState::kRemoval2,
      mech.explicit_removal ? "pl/D" : "-", r.removal1_lost);
  row(ShState::kRemoval1, ShState::kAbsorbed,
      mech.explicit_removal ? "(1-pl)/D" : "1/T", r.removal1_done);

  std::string removal2_formula = "-";
  if (mech.explicit_removal) {
    if (mech.soft_timeout && mech.reliable_removal) {
      removal2_formula = "1/T + (1-pl)/G";
    } else if (mech.soft_timeout) {
      removal2_formula = "1/T";
    } else {
      removal2_formula = "(1-pl)/G";
    }
  }
  row(ShState::kRemoval2, ShState::kAbsorbed, removal2_formula, r.removal2_done);

  row(ShState::kConsistent, ShState::kSetup2,
      mech.soft_timeout ? "pl^(T/R)/T" : "lambda_e", r.false_removal);
  row(ShState::kUpdate2, ShState::kSetup2,
      mech.soft_timeout ? "pl^(T/R)/T" : "lambda_e", r.false_removal);

  row(ShState::kConsistent, ShState::kUpdate1, "lambda_u", params.update_rate);
  row(ShState::kSetup2, ShState::kSetup1, "lambda_u", params.update_rate);
  row(ShState::kUpdate2, ShState::kUpdate1, "lambda_u", params.update_rate);
  row(ShState::kSetup2, ShState::kAbsorbed, "lambda_r", params.removal_rate);
  row(ShState::kConsistent, ShState::kRemoval1, "lambda_r", params.removal_rate);
  row(ShState::kUpdate2, ShState::kRemoval1, "lambda_r", params.removal_rate);
  return rows;
}

Metrics evaluate_single_hop(ProtocolKind kind, const SingleHopParams& params) {
  return SingleHopModel(kind, params).metrics();
}

}  // namespace sigcomp::analytic
