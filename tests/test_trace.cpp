#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/params.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/single_hop_run.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::sim {
namespace {

TEST(TraceLog, RecordsInOrder) {
  TraceLog log;
  log.record(1.0, TraceCategory::kSend, "a");
  log.record(2.0, TraceCategory::kDeliver, "b");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0], (TraceRecord{1.0, TraceCategory::kSend, "a"}));
  EXPECT_EQ(log.records()[1], (TraceRecord{2.0, TraceCategory::kDeliver, "b"}));
}

TEST(TraceLog, BoundedCapacityEvictsOldest) {
  TraceLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.record(double(i), TraceCategory::kState, std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.records().front().detail, "2");
  EXPECT_EQ(log.records().back().detail, "4");
}

TEST(TraceLog, ZeroCapacityRejected) {
  EXPECT_THROW(TraceLog(0), std::invalid_argument);
}

TEST(TraceLog, FilterAndCount) {
  TraceLog log;
  log.record(1.0, TraceCategory::kSend, "x");
  log.record(2.0, TraceCategory::kDrop, "y");
  log.record(3.0, TraceCategory::kSend, "z");
  EXPECT_EQ(log.count(TraceCategory::kSend), 2u);
  EXPECT_EQ(log.count(TraceCategory::kDrop), 1u);
  EXPECT_EQ(log.count(TraceCategory::kTimer), 0u);
  const auto sends = log.filter(TraceCategory::kSend);
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[1].detail, "z");
}

TEST(TraceLog, ClearKeepsTotal) {
  TraceLog log;
  log.record(1.0, TraceCategory::kState, "a");
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.total_recorded(), 1u);
}

TEST(TraceLog, DumpFormat) {
  TraceLog log;
  log.record(1.5, TraceCategory::kDeliver, "fwd TRIGGER");
  std::ostringstream os;
  log.dump(os);
  EXPECT_EQ(os.str(), "1.5 deliver fwd TRIGGER\n");
}

TEST(TraceLog, CategoryNamesDistinct) {
  EXPECT_EQ(to_string(TraceCategory::kSend), "send");
  EXPECT_EQ(to_string(TraceCategory::kDrop), "drop");
  EXPECT_EQ(to_string(TraceCategory::kSession), "session");
}

TEST(ChannelTrace, RecordsSendDropDeliver) {
  Simulator sim;
  Rng rng(1);
  TraceLog log;
  Channel<int> ch(sim, rng, 0.0, 0.1, Distribution::kDeterministic,
                  [](const int&) {});
  ch.set_trace(&log, "link", [](const int& v) { return std::to_string(v); });
  ch.send(7);
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].category, TraceCategory::kSend);
  EXPECT_EQ(log.records()[0].detail, "link 7");
  EXPECT_EQ(log.records()[1].category, TraceCategory::kDeliver);
  EXPECT_DOUBLE_EQ(log.records()[1].time, 0.1);

  ch.set_loss(1.0);
  ch.send(8);
  sim.run();
  EXPECT_EQ(log.count(TraceCategory::kDrop), 1u);
}

TEST(HarnessTrace, SingleHopRunEmitsSessionAndMessageEvents) {
  TraceLog log(1 << 20);
  protocols::SimOptions options;
  options.sessions = 5;
  options.seed = 3;
  options.trace = &log;
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.removal_rate = 1.0 / 30.0;  // short sessions keep the trace small
  (void)protocols::run_single_hop(ProtocolKind::kSSER, params, options);

  // 5 starts, 5 removals, 5 absorptions.
  const auto sessions = log.filter(TraceCategory::kSession);
  std::size_t starts = 0, removes = 0, absorbed = 0;
  for (const auto& r : sessions) {
    starts += r.detail.starts_with("start");
    removes += r.detail.starts_with("remove");
    absorbed += r.detail.starts_with("absorbed");
  }
  EXPECT_EQ(starts, 5u);
  EXPECT_EQ(removes, 5u);
  EXPECT_EQ(absorbed, 5u);
  // Triggers and refreshes were recorded with channel labels.
  EXPECT_GT(log.count(TraceCategory::kSend), 5u);
  bool saw_trigger = false;
  for (const auto& r : log.records()) {
    if (r.category == TraceCategory::kSend && r.detail == "fwd TRIGGER") {
      saw_trigger = true;
      break;
    }
  }
  EXPECT_TRUE(saw_trigger);
}

TEST(ChannelTrace, DetachedTracingIsZeroCost) {
  // With no log attached, tracing must not record anything AND must not
  // evaluate the describe formatter -- formatting a detail string per
  // message would make tracing pay even when off.
  Simulator sim;
  Rng rng(1);
  int describe_calls = 0;
  const auto counting_describe = [&describe_calls](const int& v) {
    ++describe_calls;
    return std::to_string(v);
  };

  Channel<int> detached(sim, rng, 0.0, 0.1, Distribution::kDeterministic,
                        [](const int&) {});
  // A describe formatter installed with a null log must never run.
  detached.set_trace(nullptr, "link", counting_describe);
  for (int i = 0; i < 100; ++i) detached.send(i);
  sim.run();
  EXPECT_EQ(describe_calls, 0);

  // Attaching the log turns both recording and formatting on; detaching
  // turns both off again.
  TraceLog log;
  detached.set_trace(&log, "link", counting_describe);
  detached.send(1);
  sim.run();
  EXPECT_EQ(describe_calls, 2);  // send + deliver
  EXPECT_EQ(log.size(), 2u);
  detached.set_trace(nullptr, "link", counting_describe);
  detached.send(2);
  sim.run();
  EXPECT_EQ(describe_calls, 2);
  EXPECT_EQ(log.size(), 2u);
}

TEST(HarnessTrace, DetachedSingleHopRunRecordsNothing) {
  protocols::SimOptions options;
  options.sessions = 5;
  options.seed = 3;
  options.trace = nullptr;  // detached: the default
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.removal_rate = 1.0 / 30.0;
  const auto result =
      protocols::run_single_hop(ProtocolKind::kSSER, params, options);
  EXPECT_EQ(result.sessions, 5u);
}

TEST(HarnessTrace, MultiHopRunEmitsPerHopChannelEvents) {
  TraceLog log(1 << 20);
  protocols::MultiHopSimOptions options;
  options.duration = 200.0;
  options.seed = 3;
  options.trace = &log;
  MultiHopParams params;
  params.hops = 3;
  (void)protocols::run_multi_hop(ProtocolKind::kSSRT, params, options);

  EXPECT_GT(log.count(TraceCategory::kSend), 0u);
  EXPECT_GT(log.count(TraceCategory::kDeliver), 0u);
  bool saw_first_hop = false, saw_last_hop = false;
  for (const auto& r : log.records()) {
    if (r.category != TraceCategory::kSend) continue;
    saw_first_hop = saw_first_hop || r.detail.starts_with("dn0 ");
    saw_last_hop = saw_last_hop || r.detail.starts_with("dn2 ");
  }
  EXPECT_TRUE(saw_first_hop);
  EXPECT_TRUE(saw_last_hop);
}

}  // namespace
}  // namespace sigcomp::sim
