// Extension experiment (beyond the paper): heterogeneous signaling paths.
// The Sec. III-B model assumes identical hops; here one "bad" hop (10x the
// baseline loss) is slid along a 10-hop chain.  Where does the bad hop
// hurt most, and which protocol is most robust to it?
//
// Usage: ext_heterogeneous [--csv PATH]
#include <iostream>

#include "analytic/hetero_multi_hop.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;
  using analytic::HeteroMultiHopModel;
  using analytic::HeteroMultiHopParams;

  MultiHopParams base = MultiHopParams::reservation_defaults();
  base.hops = 10;

  // Reference: homogeneous chain.
  exp::Table table(
      "Heterogeneous-path extension: one hop with 10x loss (0.2) slid along "
      "a 10-hop chain (baseline per-hop loss 0.02)",
      {"bad hop", "I(SS)", "I(SS+RT)", "I(HS)", "I(SS) hop10",
       "rate(SS)", "rate(SS+RT)", "rate(HS)"});

  for (std::size_t bad = 0; bad <= base.hops; ++bad) {
    HeteroMultiHopParams p = HeteroMultiHopParams::from_homogeneous(base);
    std::string label = "none";
    if (bad >= 1) {
      p.loss[bad - 1] = 0.2;
      label = std::to_string(bad);
    }
    std::vector<exp::Cell> row{label};
    std::vector<double> rates;
    double ss_last_hop = 0.0;
    for (const ProtocolKind kind : kMultiHopProtocols) {
      const HeteroMultiHopModel model(kind, p);
      row.emplace_back(model.inconsistency());
      rates.push_back(model.metrics().raw_message_rate);
      if (kind == ProtocolKind::kSS) {
        ss_last_hop = model.hop_inconsistency(base.hops);
      }
    }
    row.emplace_back(ss_last_hop);
    for (const double rate : rates) row.emplace_back(rate);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout
      << "\nFindings: one bad hop inflates end-to-end SS inconsistency ~2.4x "
         "(every refresh must cross it, and a timeout anywhere wipes the "
         "whole downstream tail), but SS+RT/HS only ~1.1-1.2x -- hop-by-hop "
         "retransmission just has to win one lossy link. Position matters "
         "only mildly (earlier is slightly worse for SS: an early timeout "
         "cascades over more hops).\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
