#include "markov/linear_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sigcomp::markov {

std::vector<double> solve_linear(DenseMatrix a, std::vector<double> b) {
  if (!a.is_square()) {
    throw std::invalid_argument("solve_linear: matrix must be square");
  }
  const std::size_t n = a.rows();
  if (b.size() != n) {
    throw std::invalid_argument("solve_linear: rhs dimension mismatch");
  }

  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
    if (!std::isfinite(x[ri])) {
      throw std::runtime_error("solve_linear: non-finite solution");
    }
  }
  return x;
}

std::vector<double> solve_linear_left(const DenseMatrix& a, std::vector<double> b) {
  return solve_linear(a.transposed(), std::move(b));
}

double residual_inf_norm(const DenseMatrix& a, const std::vector<double>& x,
                         const std::vector<double>& b) {
  const std::vector<double> ax = a.multiply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    worst = std::max(worst, std::abs(ax[i] - b[i]));
  }
  return worst;
}

}  // namespace sigcomp::markov
