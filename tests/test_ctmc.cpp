#include "markov/ctmc.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace sigcomp::markov {
namespace {

TEST(Ctmc, AddStateAssignsSequentialIds) {
  Ctmc chain;
  EXPECT_EQ(chain.add_state("a"), 0u);
  EXPECT_EQ(chain.add_state("b"), 1u);
  EXPECT_EQ(chain.num_states(), 2u);
  EXPECT_EQ(chain.name(0), "a");
  EXPECT_EQ(chain.name(1), "b");
}

TEST(Ctmc, DuplicateOrEmptyNameThrows) {
  Ctmc chain;
  chain.add_state("a");
  EXPECT_THROW(chain.add_state("a"), std::invalid_argument);
  EXPECT_THROW(chain.add_state(""), std::invalid_argument);
}

TEST(Ctmc, FindByName) {
  Ctmc chain;
  chain.add_state("x");
  chain.add_state("y");
  EXPECT_EQ(chain.find("y"), std::optional<StateId>{1});
  EXPECT_EQ(chain.find("z"), std::nullopt);
}

TEST(Ctmc, NameOutOfRangeThrows) {
  const Ctmc chain;
  EXPECT_THROW((void)chain.name(0), std::out_of_range);
}

TEST(Ctmc, RatesAccumulate) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_rate(0, 1, 1.5);
  chain.add_rate(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(chain.rate(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(chain.rate(1, 0), 0.0);
}

TEST(Ctmc, ZeroRateIsIgnored) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_rate(0, 1, 0.0);
  EXPECT_TRUE(chain.transitions().empty());
}

TEST(Ctmc, InvalidRatesThrow) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), std::invalid_argument);  // self loop
  EXPECT_THROW(chain.add_rate(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(chain.add_rate(0, 1, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(chain.add_rate(0, 2, 1.0), std::out_of_range);
}

TEST(Ctmc, ExitRateSumsOutgoing) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("c");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 2, 2.5);
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 3.5);
  EXPECT_DOUBLE_EQ(chain.exit_rate(1), 0.0);
}

TEST(Ctmc, TransitionsSortedByFromThenTo) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("c");
  chain.add_rate(1, 0, 3.0);
  chain.add_rate(0, 2, 1.0);
  chain.add_rate(0, 1, 2.0);
  const auto ts = chain.transitions();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0], (Transition{0, 1, 2.0}));
  EXPECT_EQ(ts[1], (Transition{0, 2, 1.0}));
  EXPECT_EQ(ts[2], (Transition{1, 0, 3.0}));
}

TEST(Ctmc, GeneratorRowSumsAreZero) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("c");
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(0, 2, 1.0);
  chain.add_rate(1, 0, 4.0);
  const DenseMatrix q = chain.generator();
  for (std::size_t r = 0; r < 3; ++r) EXPECT_NEAR(q.row_sum(r), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(q(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(q(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(q(2, 2), 0.0);  // absorbing
}

TEST(Ctmc, ReachableFollowsDirectedEdges) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("c");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 1.0);
  EXPECT_TRUE(chain.reachable(0, 2));
  EXPECT_TRUE(chain.reachable(0, 0));  // trivially
  EXPECT_FALSE(chain.reachable(2, 0));
  EXPECT_FALSE(chain.reachable(1, 0));
}

TEST(Ctmc, AbsorbingStatesAreThoseWithoutExits) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("c");
  chain.add_rate(0, 1, 1.0);
  const auto absorbing = chain.absorbing_states();
  ASSERT_EQ(absorbing.size(), 2u);
  EXPECT_EQ(absorbing[0], 1u);
  EXPECT_EQ(absorbing[1], 2u);
}

}  // namespace
}  // namespace sigcomp::markov
