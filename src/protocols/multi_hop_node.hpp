// Executable nodes of the multi-hop signaling chain (Sec. III-B).
//
// Topology: sender -> relay 1 -> relay 2 -> ... -> relay K.  Every relay
// holds a copy of the signaling state.  Triggers propagate hop-by-hop
// (reliably for SS+RT and HS), refreshes propagate as forwarded best-effort
// copies (SS and SS+RT), and the HS recovery protocol floods notices
// upstream and teardowns downstream when a false external signal fires.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/protocol.hpp"
#include "protocols/engine.hpp"
#include "protocols/message.hpp"
#include "sim/channel.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

/// Per-direction reliable transmission slot: at most one outstanding message
/// per link direction; a newer reliable send supersedes the pending one
/// (it always carries more recent information).
class ReliableSlot {
 public:
  ReliableSlot(sim::Simulator& sim, sim::Rng& rng, sim::Distribution dist,
               double retrans_timer, MessageChannel* channel);

  /// Sends `msg` reliably: transmit now, retransmit until acknowledged.
  void send(Message msg);

  /// Processes an acknowledgment sequence number; returns true if it matched
  /// the outstanding message (which is then considered delivered).
  bool acknowledge(std::uint64_t seq);

  /// Drops any outstanding message.
  void cancel();

  [[nodiscard]] bool outstanding() const noexcept { return outstanding_; }

 private:
  void arm();
  void on_timer();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  sim::Distribution dist_;
  double retrans_timer_;
  MessageChannel* channel_;
  Message pending_{};
  bool outstanding_ = false;
  std::optional<sim::EventId> timer_;
};

/// The signaling sender at the head of the chain.  Infinite state lifetime:
/// the state value changes on updates but is never removed.
class ChainSender {
 public:
  ChainSender(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
              TimerSettings timers, MessageChannel* down,
              std::function<void()> on_change);

  /// Installs the initial value and starts the refresh process.
  void start(std::int64_t value);

  /// Updates the state value (a new trigger propagates down the chain).
  void update(std::int64_t value);

  /// Message arriving from relay 1 (ACKs, notices).
  void handle_from_downstream(const Message& msg);

  /// Silently ends the session: clears state and cancels every pending
  /// timer WITHOUT signaling anything.  Used by the session farm when a
  /// finite-lifetime chain session's observation window closes.
  void stop();

  [[nodiscard]] std::optional<std::int64_t> value() const noexcept { return value_; }

 private:
  void send_trigger();
  void arm_refresh();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  MessageChannel* down_;
  std::function<void()> on_change_;
  ReliableSlot reliable_down_;

  std::optional<std::int64_t> value_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t trigger_seq_ = 0;
  std::optional<sim::EventId> refresh_timer_;
};

/// A relay node (hop i's far end).  Holds state, forwards signaling.
class ChainRelay {
 public:
  /// `up` sends toward the sender, `down` toward the next relay (null for
  /// the last node in the chain).
  ChainRelay(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
             TimerSettings timers, MessageChannel* up, MessageChannel* down,
             std::function<void()> on_change);

  void handle_from_upstream(const Message& msg);
  void handle_from_downstream(const Message& msg);

  /// HS external failure detector fired (falsely) at this node: remove
  /// state, notify upstream (toward the sender) and tear down downstream.
  void external_removal_signal();

  /// Silently ends the session (see ChainSender::stop).
  void stop();

  [[nodiscard]] std::optional<std::int64_t> value() const noexcept { return value_; }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  void arm_timeout();
  void on_timeout();
  void clear_timeout();
  void forward_trigger(std::int64_t value);
  void notify();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  MessageChannel* up_;
  MessageChannel* down_;  // nullptr for the last relay
  std::function<void()> on_change_;
  ReliableSlot reliable_down_;
  ReliableSlot reliable_up_;

  std::optional<std::int64_t> value_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t timeouts_ = 0;
  std::optional<sim::EventId> timeout_timer_;
};

}  // namespace sigcomp::protocols
