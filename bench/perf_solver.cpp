// Performance benchmarks of the Markov substrate: GTH stationary solve and
// mean-time-to-absorption as a function of chain size, plus the full
// single-hop and multi-hop model evaluations.
#include <benchmark/benchmark.h>

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"
#include "markov/absorption.hpp"
#include "markov/ctmc.hpp"
#include "markov/stationary.hpp"

namespace {

using namespace sigcomp;

/// Birth-death chain with n states (an M/M/1/n queue).
markov::Ctmc birth_death(std::size_t n) {
  markov::Ctmc chain;
  for (std::size_t i = 0; i < n; ++i) chain.add_state("s" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    chain.add_rate(i, i + 1, 1.0);
    chain.add_rate(i + 1, i, 1.3);
  }
  return chain;
}

void BM_GthStationary(benchmark::State& state) {
  const auto chain = birth_death(static_cast<std::size_t>(state.range(0)));
  const auto q = chain.generator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::stationary_distribution(q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GthStationary)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_MeanTimeToAbsorption(benchmark::State& state) {
  markov::Ctmc chain = birth_death(static_cast<std::size_t>(state.range(0)));
  // Make the last state absorbing-reachable: add an exit from state n-1.
  const markov::StateId absorbing = chain.add_state("absorbed");
  chain.add_rate(chain.num_states() - 2, absorbing, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::mean_time_to_absorption(chain));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MeanTimeToAbsorption)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_SingleHopModel(benchmark::State& state) {
  const auto kind = kAllProtocols[static_cast<std::size_t>(state.range(0))];
  const SingleHopParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::evaluate_single_hop(kind, params));
  }
  state.SetLabel(std::string(to_string(kind)));
}
BENCHMARK(BM_SingleHopModel)->DenseRange(0, 4);

void BM_MultiHopModel(benchmark::State& state) {
  MultiHopParams params;
  params.hops = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytic::evaluate_multi_hop(ProtocolKind::kSS, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MultiHopModel)->RangeMultiplier(2)->Range(4, 64)->Complexity();

}  // namespace

BENCHMARK_MAIN();
