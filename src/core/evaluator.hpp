// Facade over the two evaluation engines: the analytic Markov models and
// the discrete-event simulator.  This is the entry point most library users
// need -- see examples/quickstart.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/parallel.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/single_hop_run.hpp"

namespace sigcomp {

/// Analytic metrics of one protocol in the single-hop setting (Sec. III-A).
[[nodiscard]] Metrics evaluate_analytic(ProtocolKind kind,
                                        const SingleHopParams& params);

/// Analytic metrics of one protocol in the multi-hop setting (Sec. III-B;
/// SS, SS+RT and HS only).
[[nodiscard]] Metrics evaluate_analytic(ProtocolKind kind,
                                        const MultiHopParams& params);

/// Simulated metrics of one protocol in the single-hop setting.  The
/// channel's loss process (iid Bernoulli or Gilbert-Elliott bursty loss)
/// comes from the parameter set (SingleHopParams::loss_config /
/// with_bursty_loss); the delay law comes from the options
/// (SimOptions::delay_model).  The analytic engines above always see the
/// *average* loss rate only.
[[nodiscard]] protocols::SimResult evaluate_simulated(
    ProtocolKind kind, const SingleHopParams& params,
    const protocols::SimOptions& options = {});

/// Simulated metrics of one protocol in the multi-hop setting.
[[nodiscard]] protocols::MultiHopSimResult evaluate_simulated(
    ProtocolKind kind, const MultiHopParams& params,
    const protocols::MultiHopSimOptions& options = {});

/// One (protocol, metrics) row of a protocol comparison.
struct ProtocolMetrics {
  ProtocolKind kind;
  Metrics metrics;
};

/// Analytic comparison of all five protocols at one parameter point.
[[nodiscard]] std::vector<ProtocolMetrics> compare_all(const SingleHopParams& params);

/// Analytic comparison of the three multi-hop protocols.
[[nodiscard]] std::vector<ProtocolMetrics> compare_all(const MultiHopParams& params);

// ---------------------------------------------------------------------------
// Batch (grid) evaluation through the parallel experiment engine.  Every
// figure bench, the CLI and the examples route sweeps through these so one
// engine owns threading and replica seeding.  Results are bit-identical to
// a serial run of the same grid (see exp/parallel.hpp).

/// Threading of a batch evaluation.  When `engine` is set, its pool is
/// reused (spawning a fresh pool per call is wasteful when one binary
/// evaluates many grids -- e.g. one per protocol) and `threads` is ignored.
struct GridOptions {
  std::size_t threads = 0;  ///< worker threads; 0 = hardware concurrency
  exp::ParallelSweep* engine = nullptr;  ///< optional shared engine
};

/// Analytic metrics at every grid point, evaluated in parallel; out[i]
/// corresponds to grid[i].
[[nodiscard]] std::vector<Metrics> evaluate_grid_analytic(
    ProtocolKind kind, const std::vector<SingleHopParams>& grid,
    const GridOptions& options = {});
[[nodiscard]] std::vector<Metrics> evaluate_grid_analytic(
    ProtocolKind kind, const std::vector<MultiHopParams>& grid,
    const GridOptions& options = {});

/// Replicated simulation of a single-hop grid.  `sim.seed` is the base seed
/// of the deterministic per-replica seeding (exp::replica_seed); `sim.trace`
/// must be null (replicas run concurrently).
struct SimGridOptions {
  protocols::SimOptions sim;      ///< per-replica options; seed = base seed
  std::size_t replications = 10;  ///< independent replicas per grid point
  std::size_t threads = 0;        ///< worker threads; 0 = hardware
  exp::ParallelSweep* engine = nullptr;  ///< optional shared engine
};

[[nodiscard]] std::vector<exp::MetricsSummary> evaluate_grid_simulated(
    ProtocolKind kind, const std::vector<SingleHopParams>& grid,
    const SimGridOptions& options = {});

/// Replicated simulation of a multi-hop grid.
struct MultiHopSimGridOptions {
  protocols::MultiHopSimOptions sim;  ///< per-replica options; seed = base
  std::size_t replications = 10;
  std::size_t threads = 0;
  exp::ParallelSweep* engine = nullptr;  ///< optional shared engine
};

[[nodiscard]] std::vector<exp::MetricsSummary> evaluate_grid_simulated(
    ProtocolKind kind, const std::vector<MultiHopParams>& grid,
    const MultiHopSimGridOptions& options = {});

}  // namespace sigcomp
