// TimingWheelQueue behaves exactly like EventQueue at the interface: same
// validation, same (time, insertion-seq) pop order, same zero-allocation
// steady state.  This file mirrors test_event_queue.cpp and adds the
// wheel-specific edge cases -- far-future overflow cascade, same-tick tie
// storms, stale-handle cancel after slot reuse, and million-cycle re-arm
// churn with a flat slot pool.  Cross-backend equivalence at differential
// scale lives in test_event_core_diff.cpp.
#include "sim/timing_wheel_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace sigcomp::sim {
namespace {

TEST(TimingWheelQueue, StartsEmpty) {
  TimingWheelQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(TimingWheelQueue, RejectsBadGeometry) {
  EXPECT_THROW(TimingWheelQueue(0.0, 8), std::invalid_argument);
  EXPECT_THROW(TimingWheelQueue(-1.0, 8), std::invalid_argument);
  EXPECT_THROW(TimingWheelQueue(std::nan(""), 8), std::invalid_argument);
  EXPECT_THROW(TimingWheelQueue(0.05, 0), std::invalid_argument);
  EXPECT_THROW(TimingWheelQueue(0.05, 1), std::invalid_argument);
  EXPECT_THROW(TimingWheelQueue(0.05, 24), std::invalid_argument);
  const TimingWheelQueue q(0.25, 64);
  EXPECT_DOUBLE_EQ(q.tick_seconds(), 0.25);
  EXPECT_EQ(q.wheel_slots(), 64u);
}

TEST(TimingWheelQueue, PopsInTimeOrder) {
  TimingWheelQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimingWheelQueue, TiesBreakByInsertionOrder) {
  TimingWheelQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.push(1.0, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimingWheelQueue, SameTickTieStorm) {
  // Many events inside one bucket (and at literally identical times): the
  // due heap, not the bucket list, must order them -- time first, then
  // insertion order, exactly as the heap backend would.
  TimingWheelQueue q(0.05, 8);  // one bucket spans [0.05 * k, 0.05 * (k+1))
  std::vector<int> order;
  Rng rng(11);
  std::vector<double> times;
  for (int i = 0; i < 500; ++i) {
    // Three distinct times within one tick plus exact duplicates.
    times.push_back(1.0 + 0.01 * static_cast<double>(rng.uniform_int(3)));
  }
  for (int i = 0; i < 500; ++i) {
    q.push(times[static_cast<std::size_t>(i)], [&order, i] { order.push_back(i); });
  }
  double last = -1.0;
  std::vector<int> seen_at_time;
  double current = -1.0;
  while (!q.empty()) {
    const double t = q.next_time();
    EXPECT_LE(last, t);
    if (t != current) {
      current = t;
      seen_at_time.clear();
    }
    last = t;
    q.pop().action();
    if (!seen_at_time.empty()) {
      EXPECT_LT(seen_at_time.back(), order.back())
          << "same-time events popped out of insertion order";
    }
    seen_at_time.push_back(order.back());
  }
  EXPECT_EQ(order.size(), 500u);
}

TEST(TimingWheelQueue, NextTimePeeksWithoutPopping) {
  TimingWheelQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(TimingWheelQueue, CancelPreventsExecution) {
  TimingWheelQueue q;
  int fired = 0;
  const EventId id = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { fired += 10; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 10);
}

TEST(TimingWheelQueue, CancelTwiceReturnsFalse) {
  TimingWheelQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(TimingWheelQueue, CancelAfterPopReturnsFalse) {
  TimingWheelQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(TimingWheelQueue, CancelWorksInEveryRegion) {
  // One event per region -- due (past tick), wheel window, far overflow --
  // each cancelled in O(1) through the same handle type.
  TimingWheelQueue q(0.05, 8);  // window = 0.4 s
  int fired = 0;
  q.push(0.01, [&] { ++fired; });
  q.pop().action();  // advances the clock past tick 0
  const EventId due = q.push(0.001, [&] { fired += 100; });  // tick already due
  const EventId wheel = q.push(0.1, [&] { fired += 100; });
  const EventId far = q.push(1e6, [&] { fired += 100; });
  EXPECT_EQ(q.far_events(), 1u);
  EXPECT_TRUE(q.cancel(due));
  EXPECT_TRUE(q.cancel(wheel));
  EXPECT_TRUE(q.cancel(far));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.far_events(), 0u);
  EXPECT_EQ(q.wheel_events(), 0u);
  EXPECT_EQ(fired, 1);
}

TEST(TimingWheelQueue, CancelledHeadIsSkipped) {
  TimingWheelQueue q;
  int fired = 0;
  const EventId first = q.push(1.0, [&] { fired = 1; });
  q.push(2.0, [&] { fired = 2; });
  q.cancel(first);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().action();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(TimingWheelQueue, RejectsNonFiniteTimeAndEmptyAction) {
  TimingWheelQueue q;
  EXPECT_THROW(q.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(q.push(-std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(q.push(1.0, EventCallback{}), std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(TimingWheelQueue, FarFutureOverflowCascades) {
  // A tiny wheel (8 x 50 ms = 0.4 s window) with events far beyond the
  // horizon: they park on the far list, then cascade into the wheel when
  // the clock jumps, and still pop in exact time order.
  TimingWheelQueue q(0.05, 8);
  std::vector<double> popped;
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 500.0);  // ~1250 wheel windows
    q.push(t, [&popped, t] { popped.push_back(t); });
  }
  EXPECT_GT(q.far_events(), 0u) << "test must actually exercise the far list";
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(popped.size(), 200u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
}

TEST(TimingWheelQueue, RepeatedCascadesAcrossSparseHorizons) {
  // Events spaced many windows apart force one far-list jump per pop; each
  // jump must land exactly on the next event and preserve order.
  TimingWheelQueue q(0.05, 8);
  std::vector<double> popped;
  for (int i = 20; i >= 1; --i) {
    const double t = static_cast<double>(i) * 1000.0;
    q.push(t, [&popped, t] { popped.push_back(t); });
  }
  EXPECT_EQ(q.far_events(), 20u);
  while (!q.empty()) {
    const double head = q.next_time();
    EXPECT_DOUBLE_EQ(head, (popped.empty() ? 1000.0 : popped.back() + 1000.0));
    q.pop().action();
  }
  EXPECT_EQ(popped.size(), 20u);
}

TEST(TimingWheelQueue, InterleavedPushesLandBehindTheClock) {
  // Pushing a time whose tick the wheel has already passed must still fire
  // it before later events: it joins the due heap directly.
  TimingWheelQueue q(0.05, 8);
  std::vector<int> order;
  q.push(10.0, [&] { order.push_back(1); });
  q.pop().action();  // clock tick is now at 10.0 / 0.05
  q.push(20.0, [&] { order.push_back(3); });
  q.push(9.9, [&] { order.push_back(2); });  // behind the wheel clock
  EXPECT_DOUBLE_EQ(q.next_time(), 9.9);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimingWheelQueue, CancelHeavyWorkloadStaysCompact) {
  // The soft-state refresh pattern: schedule + cancel churn at far-future
  // times that never surface.  Wheel/far cancels unlink exactly, so unlike
  // the heap backend there is no husk garbage at all -- but the same bound
  // must hold.
  TimingWheelQueue q;
  std::vector<EventId> live;
  for (int i = 0; i < 100; ++i) {
    live.push_back(q.push(1e9 + i, [] {}));
  }
  for (int round = 0; round < 200000; ++round) {
    const EventId id = q.push(1e6 + round, [] {});
    ASSERT_TRUE(q.cancel(id));
    EXPECT_LE(q.heap_entries(), 2 * q.size() + 65)
        << "round " << round << ": dead entries accumulate";
  }
  EXPECT_EQ(q.size(), live.size());
}

TEST(TimingWheelQueue, DueHeapCompactionPreservesOrderAndLiveEvents) {
  // Force husks *inside the due heap*: drain everything into due via a
  // same-tick storm, cancel half, and check the survivors' order.
  TimingWheelQueue q(1000.0, 8);  // one tick spans all test times
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    ids.push_back(q.push(t, [] {}));
  }
  (void)q.next_time();  // rotates the single tick's bucket into the due heap
  EXPECT_EQ(q.heap_entries(), 1000u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(q.cancel(ids[i]));
    }
  }
  EXPECT_EQ(q.size(), 500u);
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 65);
  double last = -1.0;
  std::size_t popped = 0;
  while (!q.empty()) {
    const double t = q.next_time();
    EXPECT_LE(last, t);
    last = t;
    q.pop();
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

TEST(TimingWheelQueue, PopAfterDrainThrowsAndQueueStaysUsable) {
  TimingWheelQueue q;
  q.push(1.0, [] {});
  q.pop();
  EXPECT_THROW((void)q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  int fired = 0;
  q.push(2.0, [&] { ++fired; });
  q.pop().action();
  EXPECT_EQ(fired, 1);
}

TEST(TimingWheelQueue, StaleIdAfterSlotReuseCancelsNothing) {
  // The popped event's slot is recycled by the next push; the stale handle
  // must not cancel the new occupant (generation check) -- even when the
  // new occupant sits in a different region of the wheel.
  TimingWheelQueue q(0.05, 8);
  const EventId stale = q.push(1.0, [] {});
  q.pop();
  int fired = 0;
  const EventId fresh = q.push(1e9, [&] { ++fired; });  // far list
  EXPECT_EQ(stale.slot, fresh.slot);  // the pool really did recycle the slot
  EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_EQ(fired, 1);
}

TEST(TimingWheelQueue, DefaultEventIdNeverCancels) {
  TimingWheelQueue q;
  q.push(1.0, [] {});
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_EQ(q.size(), 1u);
}

TEST(TimingWheelQueue, FreeListReusePreventsPoolGrowth) {
  // One million schedule/cancel cycles against a fixed backdrop of live
  // timers: the slot pool must stay flat and no callback may spill to the
  // heap (the zero-allocation steady-state contract, same as EventQueue).
  TimingWheelQueue q;
  for (int i = 0; i < 100; ++i) q.push(1e9 + i, [] {});
  {
    const EventId id = q.push(1e6, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  const std::size_t slots_high_water = q.slot_capacity();
  const std::uint64_t heap_allocs_before = EventCallback::heap_allocations();
  for (int cycle = 0; cycle < 1000000; ++cycle) {
    const EventId id = q.push(1e6 + cycle, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_EQ(q.slot_capacity(), slots_high_water) << "slot pool grew";
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 65) << "heap garbage grew";
  EXPECT_EQ(EventCallback::heap_allocations(), heap_allocs_before)
      << "a callback spilled to the heap";
  EXPECT_EQ(q.size(), 100u);
}

TEST(TimingWheelQueue, ManyEventsStressOrderingAcrossGeometries) {
  // Pop order must be identical for every wheel geometry; the bucketing is
  // an accelerator, never an ordering authority.
  for (const auto& [tick, slots] :
       std::vector<std::pair<double, std::size_t>>{
           {0.05, 2048}, {0.05, 8}, {10.0, 4}, {0.001, 64}}) {
    TimingWheelQueue q(tick, slots);
    std::vector<double> popped;
    for (int i = 0; i < 1000; ++i) {
      const double t = static_cast<double>((i * 7919) % 1000);
      q.push(t, [&popped, t] { popped.push_back(t); });
    }
    while (!q.empty()) q.pop().action();
    ASSERT_EQ(popped.size(), 1000u);
    for (std::size_t i = 1; i < popped.size(); ++i) {
      ASSERT_LE(popped[i - 1], popped[i])
          << "tick=" << tick << " slots=" << slots;
    }
  }
}

// ------------------------------------------------ batched expiry drain --

TEST(TimingWheelQueue, DrainDueCollectsDueEventsInExactPopOrder) {
  TimingWheelQueue q;
  std::vector<int> order;
  q.push(5.0, [&] { order.push_back(50); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(3.0, [&] { order.push_back(3); });
  q.push(8.0, [&] { order.push_back(80); });
  q.push(1.0, [&] { order.push_back(2); });  // tie: insertion order
  std::vector<DrainedEvent> due;
  q.drain_due(3.0, due);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_DOUBLE_EQ(due[0].time, 1.0);
  EXPECT_DOUBLE_EQ(due[1].time, 1.0);
  EXPECT_DOUBLE_EQ(due[2].time, 3.0);
  EXPECT_EQ(q.size(), 5u);  // drained events stay live until taken
  for (const DrainedEvent& event : due) {
    EventCallback action;
    ASSERT_TRUE(q.take_drained(event, action));
    action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.size(), 2u);
  q.pop().action();
  q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 50, 80}));
}

TEST(TimingWheelQueue, DrainedEventsAreInvisibleUntilRequeued) {
  TimingWheelQueue q;
  int fired = 0;
  q.push(1.0, [&] { fired = 1; });
  q.push(5.0, [] {});
  std::vector<DrainedEvent> due;
  q.drain_due(2.0, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);  // the drained event is gone...
  Time ready = 0.0;
  ASSERT_TRUE(q.peek_ready(ready));
  EXPECT_DOUBLE_EQ(ready, 5.0);
  q.requeue_drained(due[0]);  // ...until put back, untouched
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.pop().action();
  EXPECT_EQ(fired, 1);
}

TEST(TimingWheelQueue, CancelOfADrainedEventPreventsDispatch) {
  TimingWheelQueue q;
  int fired = 0;
  const EventId id = q.push(1.0, [&] { fired += 1; });
  q.push(2.0, [&] { fired += 10; });
  std::vector<DrainedEvent> due;
  q.drain_due(3.0, due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_TRUE(q.cancel(id));
  EventCallback action;
  EXPECT_FALSE(q.take_drained(due[0], action));  // cancelled mid-slice
  ASSERT_TRUE(q.take_drained(due[1], action));
  action();
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(q.empty());
}

TEST(TimingWheelQueue, StaleDrainedHandleAfterSlotReuseIsRejected) {
  TimingWheelQueue q;
  int fired = 0;
  const EventId id = q.push(1.0, [&] { fired = 1; });
  std::vector<DrainedEvent> due;
  q.drain_due(2.0, due);
  ASSERT_EQ(due.size(), 1u);
  ASSERT_TRUE(q.cancel(id));
  q.push(7.0, [&] { fired = 7; });  // reuses the released slot
  EventCallback action;
  EXPECT_FALSE(q.take_drained(due[0], action));  // stale seq
  q.requeue_drained(due[0]);                     // must be a no-op
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  q.pop().action();
  EXPECT_EQ(fired, 7);
}

TEST(TimingWheelQueue, DrainIncludesTheHorizonAndAppendsToTheBuffer) {
  TimingWheelQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  std::vector<DrainedEvent> due;
  q.drain_due(1.0, due);  // t == horizon is due
  ASSERT_EQ(due.size(), 1u);
  q.drain_due(2.0, due);  // appends, never clears
  ASSERT_EQ(due.size(), 2u);
  EXPECT_DOUBLE_EQ(due[0].time, 1.0);
  EXPECT_DOUBLE_EQ(due[1].time, 2.0);
  EventCallback action;
  EXPECT_TRUE(q.take_drained(due[0], action));
  EXPECT_TRUE(q.take_drained(due[1], action));
  EXPECT_TRUE(q.empty());
  Time ready = 0.0;
  EXPECT_FALSE(q.peek_ready(ready));
}

TEST(TimingWheelQueue, EventsPushedMidSliceMergeAheadOfDrainedOnes) {
  // The run_slice pattern: a drained event's callback schedules new work
  // BEFORE the next drained event's time; the dispatcher peeks the queue
  // and pops it first.
  TimingWheelQueue q;
  std::vector<double> order;
  q.push(1.0, [&] { order.push_back(1.0); });
  q.push(2.0, [&] { order.push_back(2.0); });
  std::vector<DrainedEvent> due;
  q.drain_due(2.0, due);
  ASSERT_EQ(due.size(), 2u);
  EventCallback action;
  ASSERT_TRUE(q.take_drained(due[0], action));
  action();
  q.push(1.5, [&] { order.push_back(1.5); });  // scheduled "by" event 1.0
  Time ready = 0.0;
  ASSERT_TRUE(q.peek_ready(ready));
  ASSERT_LT(ready, due[1].time);
  q.pop().action();
  ASSERT_TRUE(q.take_drained(due[1], action));
  action();
  EXPECT_EQ(order, (std::vector<double>{1.0, 1.5, 2.0}));
}

TEST(TimingWheelQueue, DrainCyclesKeepTheSlotPoolFlat) {
  // The sliced-farm steady state: drain a batch, take it, schedule the
  // next batch -- forever, against a backdrop of live timers, without
  // growing the slot pool or touching the heap.
  TimingWheelQueue q;
  for (int i = 0; i < 16; ++i) q.push(1e9 + i, [] {});
  for (int i = 0; i < 16; ++i) q.push(static_cast<double>(i), [] {});
  std::vector<DrainedEvent> due;
  q.drain_due(16.0, due);
  for (const DrainedEvent& event : due) {
    EventCallback action;
    ASSERT_TRUE(q.take_drained(event, action));
  }
  const std::size_t slots_high_water = q.slot_capacity();
  const std::uint64_t heap_allocs_before = EventCallback::heap_allocations();
  double now = 16.0;
  for (int cycle = 0; cycle < 100000; ++cycle) {
    for (int i = 0; i < 16; ++i) q.push(now + i, [] {});
    due.clear();
    q.drain_due(now + 16.0, due);
    ASSERT_EQ(due.size(), 16u);
    for (const DrainedEvent& event : due) {
      EventCallback action;
      ASSERT_TRUE(q.take_drained(event, action));
    }
    now += 16.0;
  }
  EXPECT_EQ(q.slot_capacity(), slots_high_water) << "slot pool grew";
  EXPECT_EQ(EventCallback::heap_allocations(), heap_allocs_before)
      << "a callback spilled to the heap";
  EXPECT_EQ(q.size(), 16u);
}

TEST(TimingWheelQueue, NegativeTimesAreHandled) {
  // EventQueue accepts any finite time; the wheel must too (they classify
  // as already-due and order exactly).
  TimingWheelQueue q;
  std::vector<double> popped;
  for (const double t : {-1.5, 3.0, -1000.0, 0.0, -0.25}) {
    q.push(t, [&popped, t] { popped.push_back(t); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(popped, (std::vector<double>{-1000.0, -1.5, -0.25, 0.0, 3.0}));
}

TEST(TimingWheelQueue, ExtremeTimesClampWithoutBreakingOrder) {
  // Times far beyond the tick clamp share one saturated bucket; the due
  // heap still orders them exactly.
  TimingWheelQueue q;
  std::vector<double> popped;
  for (const double t : {1e300, 1.0, 1e280, -1e300, 1e300}) {
    q.push(t, [&popped, t] { popped.push_back(t); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(popped, (std::vector<double>{-1e300, 1.0, 1e280, 1e300, 1e300}));
}

}  // namespace
}  // namespace sigcomp::sim
