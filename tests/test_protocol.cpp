#include "core/protocol.hpp"

#include <gtest/gtest.h>

namespace sigcomp {
namespace {

TEST(Protocol, NamesMatchPaper) {
  EXPECT_EQ(to_string(ProtocolKind::kSS), "SS");
  EXPECT_EQ(to_string(ProtocolKind::kSSER), "SS+ER");
  EXPECT_EQ(to_string(ProtocolKind::kSSRT), "SS+RT");
  EXPECT_EQ(to_string(ProtocolKind::kSSRTR), "SS+RTR");
  EXPECT_EQ(to_string(ProtocolKind::kHS), "HS");
}

TEST(Protocol, ParseRoundTrips) {
  for (const ProtocolKind kind : kAllProtocols) {
    EXPECT_EQ(parse_protocol(to_string(kind)), kind);
  }
  EXPECT_EQ(parse_protocol("nope"), std::nullopt);
  EXPECT_EQ(parse_protocol(""), std::nullopt);
  EXPECT_EQ(parse_protocol("ss"), std::nullopt);  // case-sensitive
}

TEST(Protocol, DescriptionsAreDistinct) {
  for (const ProtocolKind a : kAllProtocols) {
    for (const ProtocolKind b : kAllProtocols) {
      if (a != b) {
        EXPECT_NE(describe(a), describe(b));
      }
    }
  }
}

TEST(Protocol, PureSoftStateMechanisms) {
  const MechanismSet m = mechanisms(ProtocolKind::kSS);
  EXPECT_TRUE(m.refresh);
  EXPECT_TRUE(m.soft_timeout);
  EXPECT_FALSE(m.explicit_removal);
  EXPECT_FALSE(m.reliable_trigger);
  EXPECT_FALSE(m.reliable_removal);
  EXPECT_FALSE(m.removal_notification);
  EXPECT_FALSE(m.external_failure_detector);
}

TEST(Protocol, ExplicitRemovalOnlyAddsRemoval) {
  const MechanismSet ss = mechanisms(ProtocolKind::kSS);
  MechanismSet expected = ss;
  expected.explicit_removal = true;
  EXPECT_EQ(mechanisms(ProtocolKind::kSSER), expected);
}

TEST(Protocol, ReliableTriggerAddsNotification) {
  const MechanismSet m = mechanisms(ProtocolKind::kSSRT);
  EXPECT_TRUE(m.reliable_trigger);
  EXPECT_TRUE(m.removal_notification);
  EXPECT_FALSE(m.explicit_removal);
  EXPECT_FALSE(m.reliable_removal);
}

TEST(Protocol, SsRtrHasEverythingSoft) {
  const MechanismSet m = mechanisms(ProtocolKind::kSSRTR);
  EXPECT_TRUE(m.refresh);
  EXPECT_TRUE(m.soft_timeout);
  EXPECT_TRUE(m.explicit_removal);
  EXPECT_TRUE(m.reliable_trigger);
  EXPECT_TRUE(m.reliable_removal);
  EXPECT_FALSE(m.external_failure_detector);
}

TEST(Protocol, HardStateHasNoSoftMechanisms) {
  const MechanismSet m = mechanisms(ProtocolKind::kHS);
  EXPECT_FALSE(m.refresh);
  EXPECT_FALSE(m.soft_timeout);
  EXPECT_TRUE(m.explicit_removal);
  EXPECT_TRUE(m.reliable_trigger);
  EXPECT_TRUE(m.reliable_removal);
  EXPECT_TRUE(m.external_failure_detector);
}

TEST(Protocol, SoftStateClassification) {
  EXPECT_TRUE(is_soft_state(ProtocolKind::kSS));
  EXPECT_TRUE(is_soft_state(ProtocolKind::kSSER));
  EXPECT_TRUE(is_soft_state(ProtocolKind::kSSRT));
  EXPECT_TRUE(is_soft_state(ProtocolKind::kSSRTR));
  EXPECT_FALSE(is_soft_state(ProtocolKind::kHS));
}

TEST(Protocol, MultiHopSubsetIsConsistent) {
  // Since the mechanism-driven StateSlot refactor every protocol runs on
  // chains and trees, in presentation order.
  ASSERT_EQ(kMultiHopProtocols.size(), kAllProtocols.size());
  for (std::size_t i = 0; i < kAllProtocols.size(); ++i) {
    EXPECT_EQ(kMultiHopProtocols[i], kAllProtocols[i]);
  }
  for (const ProtocolKind kind : kAllProtocols) {
    EXPECT_TRUE(supports_multi_hop(kind)) << to_string(kind);
  }
  // The paper's Sec. III-B subset (the distinct chain CTMCs).
  EXPECT_EQ(kPaperMultiHopProtocols.size(), 3u);
  EXPECT_EQ(kPaperMultiHopProtocols[0], ProtocolKind::kSS);
  EXPECT_EQ(kPaperMultiHopProtocols[1], ProtocolKind::kSSRT);
  EXPECT_EQ(kPaperMultiHopProtocols[2], ProtocolKind::kHS);
}

}  // namespace
}  // namespace sigcomp
