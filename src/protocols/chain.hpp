// A fully wired multi-hop signaling chain: sender -> relay 1 -> ... ->
// relay K with per-hop bidirectional channels, sinks connected, and
// optional per-hop tracing.  Since PR 4 this is a thin adapter over the
// general tree builder (protocols/topology.hpp) instantiated with
// TreeSpec::chain -- the fan-out-1 special case -- so the multi-hop harness
// (protocols/multi_hop_run.cpp), the session farm (exp/session_farm.cpp)
// and the tree machinery can never drift apart in wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/protocol.hpp"
#include "protocols/engine.hpp"
#include "protocols/multi_hop_node.hpp"
#include "protocols/topology.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sigcomp::protocols {

/// Owns the chain's nodes and channels.  Hop i's two directions share the
/// link's loss and delay configuration; channel trace labels are "dn<i>"
/// (toward the tail) and "up<i>" (toward the sender).
class Chain {
 public:
  /// `hop_loss` and `hop_delay` must have equal, nonzero size K.  Both
  /// `channel_rng` and `node_rng` must outlive the chain.
  Chain(sim::Simulator& sim, sim::Rng& channel_rng, sim::Rng& node_rng,
        MechanismSet mech, const TimerSettings& timers,
        const std::vector<sim::LossConfig>& hop_loss,
        const std::vector<sim::DelayConfig>& hop_delay,
        std::function<void()> on_change, sim::TraceLog* trace = nullptr);

  Chain(const Chain&) = delete;             ///< non-copyable
  Chain& operator=(const Chain&) = delete;  ///< non-copyable

  /// Number of hops K (== relays).
  [[nodiscard]] std::size_t hops() const noexcept { return topology_.relays(); }
  /// The sender at the head of the chain.
  [[nodiscard]] ChainSender& sender() noexcept { return topology_.sender(); }
  /// The sender (const).
  [[nodiscard]] const ChainSender& sender() const noexcept {
    return topology_.sender();
  }
  /// Relay i is hop i's far end.
  [[nodiscard]] ChainRelay& relay(std::size_t i) { return topology_.relay(i); }
  /// Relay i (const).
  [[nodiscard]] const ChainRelay& relay(std::size_t i) const {
    return topology_.relay(i);
  }

  /// Messages handed to hop i's channels (both directions).
  [[nodiscard]] std::uint64_t hop_messages_sent(std::size_t i) const noexcept {
    return topology_.edge_messages_sent(i);
  }

  /// Messages handed to all channels of the chain.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return topology_.messages_sent();
  }

  /// Soft-state timeout expirations summed across relays.
  [[nodiscard]] std::uint64_t relay_timeouts() const noexcept {
    return topology_.relay_timeouts();
  }

  /// Silently tears the whole chain down (TreeSender/TreeRelay::stop):
  /// state cleared, timers cancelled, nothing signaled.
  void stop() { topology_.stop(); }

 private:
  Topology topology_;
};

}  // namespace sigcomp::protocols
