#include "analytic/tree_paths.hpp"

#include <stdexcept>
#include <utility>

namespace sigcomp::analytic {

namespace {

TreeParams from_base(const MultiHopParams& base, TreeSpec spec) {
  base.validate();
  TreeParams out;
  out.loss.assign(spec.edges(), base.loss);
  out.delay.assign(spec.edges(), base.delay);
  if (base.loss_model != sim::LossModel::kIid) {
    out.loss_process.assign(spec.edges(), base.loss_config());
  }
  out.tree = std::move(spec);
  out.update_rate = base.update_rate;
  out.refresh_timer = base.refresh_timer;
  out.timeout_timer = base.timeout_timer;
  out.retrans_timer = base.retrans_timer;
  out.false_signal_rate = base.false_signal_rate;
  return out;
}

}  // namespace

TreeParams TreeParams::balanced(const MultiHopParams& base, std::size_t fanout,
                                std::size_t depth, std::size_t receivers) {
  return from_base(base, TreeSpec::balanced(fanout, depth, receivers));
}

TreeParams TreeParams::chain(const MultiHopParams& base) {
  return from_base(base, TreeSpec::chain(base.hops));
}

TreeParams TreeParams::uniform(const MultiHopParams& base, TreeSpec spec) {
  return from_base(base, std::move(spec));
}

sim::LossConfig TreeParams::edge_loss_config(std::size_t e) const {
  if (e >= edges()) {
    throw std::out_of_range("TreeParams::edge_loss_config");
  }
  if (loss_process.empty()) return sim::LossConfig::iid(loss[e]);
  return loss_process[e];
}

void TreeParams::set_edge_bursty(std::size_t e, double burst_length,
                                 double loss_bad) {
  if (e >= edges()) {
    throw std::out_of_range("TreeParams::set_edge_bursty");
  }
  if (loss_process.empty()) {
    loss_process.reserve(edges());
    for (const double pl : loss) {
      loss_process.push_back(sim::LossConfig::iid(pl));
    }
  }
  loss_process[e] = sim::LossConfig::gilbert_elliott_matched(
      loss[e], burst_length, loss_bad);
}

HeteroMultiHopParams TreeParams::path_params(std::size_t leaf) const {
  if (leaf == 0) {
    throw std::invalid_argument(
        "TreeParams::path_params: the root has no path to itself");
  }
  const std::vector<std::size_t> path = tree.path_edges(leaf);
  HeteroMultiHopParams out;
  out.loss.reserve(path.size());
  out.delay.reserve(path.size());
  for (const std::size_t e : path) {
    out.loss.push_back(loss[e]);
    out.delay.push_back(delay[e]);
  }
  if (!loss_process.empty()) {
    out.loss_process.reserve(path.size());
    for (const std::size_t e : path) {
      out.loss_process.push_back(loss_process[e]);
    }
  }
  out.update_rate = update_rate;
  out.refresh_timer = refresh_timer;
  out.timeout_timer = timeout_timer;
  out.retrans_timer = retrans_timer;
  out.false_signal_rate = false_signal_rate;
  return out;
}

void TreeParams::validate() const {
  tree.validate();
  if (tree.edges() == 0) {
    throw std::invalid_argument("TreeParams: the tree needs at least one edge");
  }
  if (loss.size() != tree.edges() || delay.size() != tree.edges()) {
    throw std::invalid_argument(
        "TreeParams: need one loss and one delay per edge");
  }
  // Delegate the value-domain checks to the chain validation on the
  // deepest path (every edge lies on at least one root-to-leaf path, so
  // validating all paths covers all edges; validating one per leaf is
  // enough and cheap).
  for (const std::size_t leaf : tree.leaves()) {
    path_params(leaf).validate();
  }
}

std::vector<TreePathMetrics> evaluate_tree_paths(ProtocolKind kind,
                                                 const TreeParams& params) {
  params.validate();
  std::vector<TreePathMetrics> out;
  for (const std::size_t leaf : params.tree.leaves()) {
    const HeteroMultiHopParams path = params.path_params(leaf);
    const HeteroMultiHopModel model(kind, path);
    TreePathMetrics entry;
    entry.leaf = leaf;
    entry.hops = path.hops();
    entry.metrics = model.metrics();
    out.push_back(entry);
  }
  return out;
}

TreePathMetrics worst_tree_path(ProtocolKind kind, const TreeParams& params) {
  const std::vector<TreePathMetrics> paths = evaluate_tree_paths(kind, params);
  const TreePathMetrics* worst = &paths.front();
  for (const TreePathMetrics& path : paths) {
    if (path.metrics.inconsistency > worst->metrics.inconsistency) {
      worst = &path;
    }
  }
  return *worst;
}

}  // namespace sigcomp::analytic
