#include "protocols/single_hop_run.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sigcomp::protocols {
namespace {

SimOptions quick_options(std::uint64_t seed = 1) {
  SimOptions o;
  o.seed = seed;
  o.sessions = 200;
  return o;
}

TEST(SingleHopSim, ProducesValidMetricsForEveryProtocol) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  for (const ProtocolKind kind : kAllProtocols) {
    const SimResult result = run_single_hop(kind, params, quick_options());
    EXPECT_EQ(result.sessions, 200u) << to_string(kind);
    EXPECT_GT(result.total_time, 0.0) << to_string(kind);
    EXPECT_GT(result.messages, 0u) << to_string(kind);
    EXPECT_GT(result.metrics.inconsistency, 0.0) << to_string(kind);
    EXPECT_LT(result.metrics.inconsistency, 1.0) << to_string(kind);
    EXPECT_GT(result.metrics.message_rate, 0.0) << to_string(kind);
    EXPECT_GT(result.metrics.session_length, 0.0) << to_string(kind);
  }
}

TEST(SingleHopSim, SameSeedIsBitReproducible) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const SimResult a = run_single_hop(ProtocolKind::kSSER, params, quick_options(9));
  const SimResult b = run_single_hop(ProtocolKind::kSSER, params, quick_options(9));
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.metrics.inconsistency, b.metrics.inconsistency);
}

TEST(SingleHopSim, DegenerateGilbertElliottReproducesIidBitForBit) {
  // p_gb = pl, p_bg = 1 - pl with deterministic per-state drops *is* the
  // iid channel; under a shared seed the whole run must be bit-identical.
  const SingleHopParams iid = SingleHopParams::kazaa_defaults();
  SingleHopParams ge = iid;
  ge.loss_model = sim::LossModel::kGilbertElliott;
  ge.ge_p_gb = iid.loss;
  ge.ge_p_bg = 1.0 - iid.loss;
  ge.ge_loss_bad = 1.0;
  ge.ge_loss_good = 0.0;
  for (const ProtocolKind kind : {ProtocolKind::kSS, ProtocolKind::kHS}) {
    const SimResult a = run_single_hop(kind, iid, quick_options(31));
    const SimResult b = run_single_hop(kind, ge, quick_options(31));
    EXPECT_EQ(a.messages, b.messages) << to_string(kind);
    EXPECT_DOUBLE_EQ(a.total_time, b.total_time) << to_string(kind);
    EXPECT_DOUBLE_EQ(a.metrics.inconsistency, b.metrics.inconsistency)
        << to_string(kind);
    EXPECT_DOUBLE_EQ(a.metrics.message_rate, b.metrics.message_rate)
        << to_string(kind);
  }
}

TEST(SingleHopSim, BurstyLossHurtsSoftStateAtEqualMeanLoss) {
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.loss = 0.05;
  const SingleHopParams bursty = params.with_bursty_loss(10.0);
  SimOptions options = quick_options(3);
  options.sessions = 600;
  const double iid_inconsistency =
      run_single_hop(ProtocolKind::kSS, params, options).metrics.inconsistency;
  const double ge_inconsistency =
      run_single_hop(ProtocolKind::kSS, bursty, options).metrics.inconsistency;
  EXPECT_GT(ge_inconsistency, 1.5 * iid_inconsistency);
}

TEST(SingleHopSim, DifferentSeedsDiffer) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const SimResult a = run_single_hop(ProtocolKind::kSS, params, quick_options(1));
  const SimResult b = run_single_hop(ProtocolKind::kSS, params, quick_options(2));
  EXPECT_NE(a.messages, b.messages);
}

TEST(SingleHopSim, SessionLengthTracksConfiguredLifetime) {
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.removal_rate = 1.0 / 300.0;
  SimOptions options = quick_options();
  options.sessions = 400;
  const SimResult result = run_single_hop(ProtocolKind::kSSER, params, options);
  EXPECT_NEAR(result.metrics.session_length, 300.0, 45.0);
}

TEST(SingleHopSim, LossFreeChannelHasTinyInconsistency) {
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.loss = 0.0;
  const SimResult result =
      run_single_hop(ProtocolKind::kSSER, params, quick_options());
  // Only propagation delays (30 ms per event) contribute.
  EXPECT_LT(result.metrics.inconsistency, 0.005);
  EXPECT_EQ(result.receiver_timeouts, 0u);
}

TEST(SingleHopSim, ExplicitRemovalBeatsTimeoutRemoval) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  SimOptions options = quick_options(3);
  options.sessions = 2000;  // message-per-session noise is ~1/sqrt(sessions)
  const SimResult ss = run_single_hop(ProtocolKind::kSS, params, options);
  const SimResult sser = run_single_hop(ProtocolKind::kSSER, params, options);
  EXPECT_GT(ss.metrics.inconsistency, sser.metrics.inconsistency);
  // ...while barely changing the message budget (paper's headline claim).
  EXPECT_NEAR(sser.metrics.message_rate, ss.metrics.message_rate,
              0.06 * ss.metrics.message_rate);
}

TEST(SingleHopSim, HardStateUsesFewestMessages) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const double hs =
      run_single_hop(ProtocolKind::kHS, params, quick_options(5)).metrics.message_rate;
  for (const ProtocolKind kind :
       {ProtocolKind::kSS, ProtocolKind::kSSER, ProtocolKind::kSSRT,
        ProtocolKind::kSSRTR}) {
    EXPECT_LT(hs, run_single_hop(kind, params, quick_options(5)).metrics.message_rate)
        << to_string(kind);
  }
}

TEST(SingleHopSim, SoftStateTimeoutsHappenUnderHeavyLoss) {
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.loss = 0.45;
  params.removal_rate = 1.0 / 200.0;
  const SimResult result = run_single_hop(ProtocolKind::kSS, params, quick_options());
  // With pl = 0.45, pl^3 ~ 9% of timeout windows lose all refreshes.
  EXPECT_GT(result.receiver_timeouts, 100u);
}

TEST(SingleHopSim, ExponentialTimersIncreaseFalseRemovals) {
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.loss = 0.3;
  SimOptions det = quick_options(7);
  det.timer_dist = sim::Distribution::kDeterministic;
  SimOptions expo = quick_options(7);
  expo.timer_dist = sim::Distribution::kExponential;
  // An exponential timeout can fire "early" (before 3 refresh chances), so
  // false removals are more frequent than with deterministic timers.
  const SimResult d = run_single_hop(ProtocolKind::kSS, params, det);
  const SimResult e = run_single_hop(ProtocolKind::kSS, params, expo);
  EXPECT_GT(e.receiver_timeouts, d.receiver_timeouts);
}

TEST(SingleHopSim, ZeroSessionsRejected) {
  SimOptions options;
  options.sessions = 0;
  EXPECT_THROW(
      (void)run_single_hop(ProtocolKind::kSS, SingleHopParams{}, options),
      std::invalid_argument);
}

TEST(SingleHopSim, InvalidParamsRejected) {
  SingleHopParams params;
  params.delay = -1.0;
  EXPECT_THROW((void)run_single_hop(ProtocolKind::kSS, params, quick_options()),
               std::invalid_argument);
}

TEST(SingleHopSimReplicated, ConfidenceIntervalsShrinkWithMoreReps) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  SimOptions options = quick_options();
  options.sessions = 60;
  const ReplicatedResult few =
      run_single_hop_replicated(ProtocolKind::kSS, params, options, 4);
  const ReplicatedResult many =
      run_single_hop_replicated(ProtocolKind::kSS, params, options, 16);
  EXPECT_EQ(few.replications, 4u);
  EXPECT_EQ(many.replications, 16u);
  EXPECT_GT(few.inconsistency.half_width, 0.0);
  EXPECT_LT(many.inconsistency.half_width, few.inconsistency.half_width);
}

TEST(SingleHopSimReplicated, ZeroReplicationsRejected) {
  EXPECT_THROW((void)run_single_hop_replicated(
                   ProtocolKind::kSS, SingleHopParams{}, SimOptions{}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp::protocols
