// Tests of the heavy-tailed lifetime extension: the new RNG distributions
// and the lifetime-law option of the single-hop harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "protocols/single_hop_run.hpp"
#include "sim/rng.hpp"

namespace sigcomp {
namespace {

TEST(ParetoRng, RespectsScaleMinimum) {
  sim::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
  }
}

TEST(ParetoRng, MeanMatchesClosedForm) {
  sim::Rng rng(2);
  // shape 3: light enough for the sample mean to converge quickly.
  constexpr double kShape = 3.0, kScale = 2.0;
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sum += rng.pareto(kShape, kScale);
  EXPECT_NEAR(sum / kSamples, kScale * kShape / (kShape - 1.0), 0.05);
}

TEST(ParetoRng, WithMeanHitsRequestedMean) {
  sim::Rng rng(3);
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sum += rng.pareto_with_mean(3.0, 10.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.25);
}

TEST(ParetoRng, TailFollowsPowerLaw) {
  sim::Rng rng(4);
  // P(X > 2*scale) = 2^-shape.
  constexpr double kShape = 1.5, kScale = 1.0;
  int over = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) over += (rng.pareto(kShape, kScale) > 2.0);
  EXPECT_NEAR(over / double(kSamples), std::pow(2.0, -kShape), 0.01);
}

TEST(ParetoRng, DegenerateInputsReturnZero) {
  sim::Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.pareto(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.pareto(1.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.pareto_with_mean(1.0, 10.0), 0.0);  // infinite mean
}

TEST(LognormalRng, MedianIsExpMu) {
  sim::Rng rng(6);
  std::vector<double> samples;
  constexpr int kSamples = 100001;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) samples.push_back(rng.lognormal(1.0, 0.8));
  std::nth_element(samples.begin(), samples.begin() + kSamples / 2, samples.end());
  EXPECT_NEAR(samples[kSamples / 2], std::exp(1.0), 0.1);
}

TEST(LognormalRng, WithMeanHitsRequestedMean) {
  sim::Rng rng(7);
  double sum = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sum += rng.lognormal_with_mean(5.0, 1.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.15);
}

SingleHopParams short_sessions() {
  SingleHopParams p = SingleHopParams::kazaa_defaults();
  p.removal_rate = 1.0 / 200.0;
  return p;
}

protocols::SimOptions heavy_options(protocols::LifetimeDistribution dist,
                                    double shape) {
  protocols::SimOptions o;
  o.sessions = 1500;
  o.seed = 33;
  o.lifetime_dist = dist;
  o.lifetime_shape = shape;
  return o;
}

TEST(HeavyTailLifetimes, MeanSessionLengthIsPreserved) {
  // All laws are parameterized by the same mean.
  for (const auto& [dist, shape] :
       {std::pair{protocols::LifetimeDistribution::kExponential, 0.0},
        std::pair{protocols::LifetimeDistribution::kPareto, 2.0},
        std::pair{protocols::LifetimeDistribution::kLognormal, 1.0}}) {
    const auto result = protocols::run_single_hop(
        ProtocolKind::kSSER, short_sessions(), heavy_options(dist, shape));
    EXPECT_NEAR(result.metrics.session_length, 200.0, 30.0)
        << "law " << static_cast<int>(dist);
  }
}

TEST(HeavyTailLifetimes, ParetoWithoutFiniteMeanRejected) {
  EXPECT_THROW(
      (void)protocols::run_single_hop(
          ProtocolKind::kSS, short_sessions(),
          heavy_options(protocols::LifetimeDistribution::kPareto, 1.0)),
      std::invalid_argument);
}

TEST(HeavyTailLifetimes, HeavyTailHurtsPureSoftStateMost) {
  // Under a heavy tail most sessions are much shorter than the mean, so
  // the per-session teardown penalty is paid more often: SS degrades,
  // SS+ER barely moves.
  const auto exp_opts =
      heavy_options(protocols::LifetimeDistribution::kExponential, 0.0);
  const auto pareto_opts =
      heavy_options(protocols::LifetimeDistribution::kPareto, 1.2);
  const double ss_exp = protocols::run_single_hop(ProtocolKind::kSS,
                                                  short_sessions(), exp_opts)
                            .metrics.inconsistency;
  const double ss_pareto = protocols::run_single_hop(ProtocolKind::kSS,
                                                     short_sessions(), pareto_opts)
                               .metrics.inconsistency;
  EXPECT_GT(ss_pareto, 1.2 * ss_exp);
}

TEST(HeavyTailLifetimes, ProtocolRankingSurvivesHeavyTails) {
  // The paper's headline ordering holds under every lifetime law.
  for (const auto& [dist, shape] :
       {std::pair{protocols::LifetimeDistribution::kPareto, 1.5},
        std::pair{protocols::LifetimeDistribution::kLognormal, 1.5}}) {
    const auto options = heavy_options(dist, shape);
    const double ss = protocols::run_single_hop(ProtocolKind::kSS,
                                                short_sessions(), options)
                          .metrics.inconsistency;
    const double sser = protocols::run_single_hop(ProtocolKind::kSSER,
                                                  short_sessions(), options)
                            .metrics.inconsistency;
    const double ssrtr = protocols::run_single_hop(ProtocolKind::kSSRTR,
                                                   short_sessions(), options)
                             .metrics.inconsistency;
    EXPECT_GT(ss, sser) << "law " << static_cast<int>(dist);
    EXPECT_GT(sser, ssrtr) << "law " << static_cast<int>(dist);
  }
}

}  // namespace
}  // namespace sigcomp
