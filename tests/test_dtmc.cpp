#include "markov/dtmc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "markov/stationary.hpp"

namespace sigcomp::markov {
namespace {

Ctmc ring_chain() {
  Ctmc chain;
  for (int i = 0; i < 3; ++i) chain.add_state("s" + std::to_string(i));
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(2, 0, 4.0);
  chain.add_rate(1, 0, 1.0);
  return chain;
}

TEST(EmbeddedJumpMatrix, RowsAreStochastic) {
  const DenseMatrix p = embedded_jump_matrix(ring_chain());
  EXPECT_LT(stochastic_violation(p), 1e-12);
}

TEST(EmbeddedJumpMatrix, ProbabilitiesAreRateFractions) {
  const DenseMatrix p = embedded_jump_matrix(ring_chain());
  EXPECT_NEAR(p(1, 2), 0.5, 1e-12);
  EXPECT_NEAR(p(1, 0), 0.5, 1e-12);
  EXPECT_NEAR(p(0, 1), 1.0, 1e-12);
}

TEST(EmbeddedJumpMatrix, AbsorbingStateSelfLoops) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  const DenseMatrix p = embedded_jump_matrix(chain);
  EXPECT_DOUBLE_EQ(p(1, 1), 1.0);
}

TEST(UniformizedMatrix, IsStochasticForValidLambda) {
  const Ctmc chain = ring_chain();
  const DenseMatrix p = uniformized_matrix(chain, 10.0);
  EXPECT_LT(stochastic_violation(p), 1e-12);
}

TEST(UniformizedMatrix, RejectsTooSmallLambda) {
  const Ctmc chain = ring_chain();  // max exit rate is 4
  EXPECT_THROW((void)uniformized_matrix(chain, 1.0), std::invalid_argument);
}

TEST(DtmcStationaryPower, TwoStateClosedForm) {
  const DenseMatrix p{{0.5, 0.5}, {0.25, 0.75}};
  const auto pi = dtmc_stationary_power(p);
  // Balance: pi0 * 0.5 = pi1 * 0.25 -> pi1 = 2 pi0 -> (1/3, 2/3).
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-10);
}

TEST(DtmcStationaryPower, RejectsNonSquare) {
  EXPECT_THROW((void)dtmc_stationary_power(DenseMatrix(2, 3)),
               std::invalid_argument);
}

TEST(CtmcStationaryViaJumpChain, AgreesWithGth) {
  const Ctmc chain = ring_chain();
  const auto a = stationary_distribution(chain);
  const auto b = ctmc_stationary_via_jump_chain(chain);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-8);
}

TEST(CtmcStationaryViaJumpChain, RejectsAbsorbingStates) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  EXPECT_THROW((void)ctmc_stationary_via_jump_chain(chain), std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp::markov
