#include "exp/tuning.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"

namespace sigcomp::exp {
namespace {

const SingleHopParams kDefaults = SingleHopParams::kazaa_defaults();

TEST(MinimizeLogGrid, FindsParabolaMinimum) {
  // f(x) = (log x - log 3)^2 has its minimum at x = 3.
  const auto cost = [](double x) {
    const double d = std::log(x) - std::log(3.0);
    return d * d;
  };
  const double argmin = minimize_log_grid(cost, 0.1, 100.0);
  EXPECT_NEAR(argmin, 3.0, 0.02);
}

TEST(MinimizeLogGrid, HandlesMinimumAtBoundary) {
  const auto decreasing = [](double x) { return -x; };
  EXPECT_NEAR(minimize_log_grid(decreasing, 1.0, 10.0), 10.0, 0.1);
  const auto increasing = [](double x) { return x; };
  EXPECT_NEAR(minimize_log_grid(increasing, 1.0, 10.0), 1.0, 0.1);
}

TEST(MinimizeLogGrid, InputValidation) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW((void)minimize_log_grid(f, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)minimize_log_grid(f, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)minimize_log_grid(f, 1.0, 2.0, 2), std::invalid_argument);
}

TEST(OptimalRefreshTimer, IsAnInteriorMinimumForSS) {
  const TuningResult best = optimal_refresh_timer(ProtocolKind::kSS, kDefaults);
  // Fig. 7: the SS optimum sits in the mid-single-digit seconds at w = 10.
  EXPECT_GT(best.argmin, 1.0);
  EXPECT_LT(best.argmin, 30.0);
  // It is a genuine minimum: doubling or halving R costs more.
  const auto cost_at = [&](double refresh) {
    return integrated_cost(analytic::evaluate_single_hop(
        ProtocolKind::kSS, kDefaults.with_refresh_scaled_timeout(refresh)));
  };
  EXPECT_LT(best.cost, cost_at(2.0 * best.argmin));
  EXPECT_LT(best.cost, cost_at(0.5 * best.argmin));
  EXPECT_NEAR(best.cost, cost_at(best.argmin), 1e-9);
}

TEST(OptimalRefreshTimer, SsErOptimumIsLongerThanSs) {
  // Explicit removal detaches consistency from the timeout, so SS+ER can
  // afford a longer refresh timer (Fig. 7's "not very sensitive" remark).
  const double ss = optimal_refresh_timer(ProtocolKind::kSS, kDefaults).argmin;
  const double sser = optimal_refresh_timer(ProtocolKind::kSSER, kDefaults).argmin;
  EXPECT_GT(sser, ss);
}

TEST(OptimalRefreshTimer, SsRtrPrefersTheLongestTimer) {
  const TuningResult best =
      optimal_refresh_timer(ProtocolKind::kSSRTR, kDefaults, 10.0, 0.05, 500.0);
  EXPECT_GT(best.argmin, 400.0);  // pinned near the upper bound
}

TEST(OptimalRefreshTimer, HigherWeightShortensTheTimer) {
  // The more inconsistency costs, the more refreshes are worth sending.
  const double cheap = optimal_refresh_timer(ProtocolKind::kSS, kDefaults, 1.0).argmin;
  const double dear = optimal_refresh_timer(ProtocolKind::kSS, kDefaults, 100.0).argmin;
  EXPECT_LT(dear, cheap);
}

TEST(OptimalRefreshTimer, RejectsHardState) {
  EXPECT_THROW((void)optimal_refresh_timer(ProtocolKind::kHS, kDefaults),
               std::invalid_argument);
}

TEST(OptimalTimeoutTimer, ExceedsTheRefreshTimer) {
  // Fig. 8(a): T < R is catastrophic, so any optimum must sit above R.
  for (const ProtocolKind kind :
       {ProtocolKind::kSS, ProtocolKind::kSSER, ProtocolKind::kSSRT,
        ProtocolKind::kSSRTR}) {
    const TuningResult best = optimal_timeout_timer(kind, kDefaults);
    EXPECT_GT(best.argmin, kDefaults.refresh_timer) << to_string(kind);
  }
}

TEST(OptimalTimeoutTimer, SsRtToleratesShorterTimeoutThanSs) {
  // SS+RT's notification repairs false removals, so it prefers a tighter
  // timeout than SS (paper's Fig. 8(a) discussion).
  const double ss = optimal_timeout_timer(ProtocolKind::kSS, kDefaults).argmin;
  const double ssrt = optimal_timeout_timer(ProtocolKind::kSSRT, kDefaults).argmin;
  EXPECT_LT(ssrt, ss);
}

TEST(OptimalTimeoutTimer, RejectsHardState) {
  EXPECT_THROW((void)optimal_timeout_timer(ProtocolKind::kHS, kDefaults),
               std::invalid_argument);
}

TEST(OptimalMultiHopRefresh, SsHasAnInteriorCostOptimum) {
  // With w = 10 the message budget matters, so the cost optimum sits in the
  // tens of seconds; it is a genuine interior minimum.
  const MultiHopParams p = MultiHopParams::reservation_defaults();
  const TuningResult best =
      optimal_multi_hop_refresh_timer(ProtocolKind::kSS, p, 10.0);
  EXPECT_GT(best.argmin, 3.0);
  EXPECT_LT(best.argmin, 100.0);
  const auto cost_at = [&](double refresh) {
    MultiHopParams q = p;
    q.refresh_timer = refresh;
    q.timeout_timer = 3.0 * refresh;
    return integrated_cost(analytic::evaluate_multi_hop(ProtocolKind::kSS, q));
  };
  EXPECT_LT(best.cost, cost_at(4.0 * best.argmin));
  EXPECT_LT(best.cost, cost_at(0.25 * best.argmin));
}

TEST(OptimalMultiHopRefresh, ConsistencyOnlyOptimumIsSubSecond) {
  // Fig. 19(a): the pure-inconsistency minimum of SS sits below ~1 s for
  // K = 20.  A huge weight makes the integrated cost I-dominated.
  const MultiHopParams p = MultiHopParams::reservation_defaults();
  const TuningResult best =
      optimal_multi_hop_refresh_timer(ProtocolKind::kSS, p, 1e7);
  EXPECT_GT(best.argmin, 0.05);
  EXPECT_LT(best.argmin, 1.5);
}

TEST(OptimalMultiHopRefresh, SsRtPrefersLongerTimerThanSs) {
  // Fig. 19(a): SS+RT keeps improving toward long refresh timers while SS
  // turns around early.
  const MultiHopParams p = MultiHopParams::reservation_defaults();
  const double ss =
      optimal_multi_hop_refresh_timer(ProtocolKind::kSS, p).argmin;
  const double ssrt =
      optimal_multi_hop_refresh_timer(ProtocolKind::kSSRT, p).argmin;
  EXPECT_GT(ssrt, 3.0 * ss);
}

TEST(OptimalMultiHopRefresh, RejectsHardState) {
  EXPECT_THROW((void)optimal_multi_hop_refresh_timer(
                   ProtocolKind::kHS, MultiHopParams::reservation_defaults()),
               std::invalid_argument);
}

TEST(TuningResult, MetricsMatchTheReportedOptimum) {
  const TuningResult best = optimal_refresh_timer(ProtocolKind::kSSER, kDefaults);
  const Metrics check = analytic::evaluate_single_hop(
      ProtocolKind::kSSER, kDefaults.with_refresh_scaled_timeout(best.argmin));
  EXPECT_DOUBLE_EQ(best.metrics.inconsistency, check.inconsistency);
  EXPECT_DOUBLE_EQ(best.cost, integrated_cost(check));
}

}  // namespace
}  // namespace sigcomp::exp
