// Per-path analytic composition for tree signaling topologies.
//
// The paper's multi-hop model (Sec. III-B) covers a chain.  On a tree, each
// root-to-leaf path is itself a chain whose per-edge loss/delay come from
// the edges on that path, so the chain model -- in its heterogeneous form,
// analytic::HeteroMultiHopModel -- composes per path: evaluate_tree_paths
// builds one HeteroMultiHopParams per leaf and runs the chain CTMC on it.
// Paths share their upper edges, which the per-path marginal ignores; the
// simulator (protocols/tree_run.hpp) measures the same per-leaf quantity on
// the real shared tree, so model-vs-sim columns stay comparable exactly the
// way the chain figures are.
#pragma once

#include <cstddef>
#include <vector>

#include "analytic/hetero_multi_hop.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/topology.hpp"
#include "sim/channel_process.hpp"

namespace sigcomp::analytic {

/// Per-edge channel characteristics of a signaling tree, mirroring
/// HeteroMultiHopParams with a TreeSpec in place of the implicit chain.
struct TreeParams {
  TreeSpec tree;              ///< the rooted topology (core/topology.hpp)
  std::vector<double> loss;   ///< per-edge *average* loss probability
  std::vector<double> delay;  ///< per-edge one-way delay
  /// Per-edge loss processes for the simulator.  Empty means every edge
  /// runs iid Bernoulli at loss[e]; otherwise size must equal edges() and
  /// edge e runs loss_process[e] (e.g. one bursty subtree in an otherwise
  /// iid tree).  The analytic model only ever sees the averages in `loss`.
  std::vector<sim::LossConfig> loss_process;
  double update_rate = 1.0 / 60.0;     ///< lambda_u: sender update rate
  double refresh_timer = 5.0;          ///< R
  double timeout_timer = 15.0;         ///< T
  double retrans_timer = 0.120;        ///< Gamma
  /// lambda_e: HS per-relay false external-signal rate (the chain default).
  double false_signal_rate = 0.02 * 0.02 * 0.02 * 0.02;

  /// Builds a balanced `fanout`-ary tree of the given depth (optionally
  /// pruned to exactly `receivers` leaves; see TreeSpec::balanced) whose
  /// every edge carries `base`'s per-hop loss/delay/loss-process and whose
  /// timers and rates come from `base` (base.hops is ignored -- the tree
  /// defines the shape).
  [[nodiscard]] static TreeParams balanced(const MultiHopParams& base,
                                           std::size_t fanout,
                                           std::size_t depth,
                                           std::size_t receivers = 0);

  /// The degenerate fan-out-1 tree: base.hops hops in a single path.
  [[nodiscard]] static TreeParams chain(const MultiHopParams& base);

  /// An arbitrary shape (e.g. a measured topology replayed from a
  /// parent-vector file) whose every edge carries `base`'s per-hop
  /// loss/delay/loss-process; timers and rates come from `base`
  /// (base.hops is ignored -- the spec defines the shape).
  [[nodiscard]] static TreeParams uniform(const MultiHopParams& base,
                                          TreeSpec spec);

  [[nodiscard]] std::size_t edges() const noexcept { return loss.size(); }

  /// The loss process edge e should run in the simulator.
  [[nodiscard]] sim::LossConfig edge_loss_config(std::size_t e) const;

  /// Makes edge e bursty: Gilbert-Elliott with stationary mean loss[e] and
  /// mean burst length `burst_length` messages.  Other edges keep their
  /// current process (iid when none was set).
  void set_edge_bursty(std::size_t e, double burst_length,
                       double loss_bad = 1.0);

  /// The chain-model parameters of the root -> `leaf` path (`leaf` is a
  /// node id; any node works, leaves are the interesting ones).  Throws
  /// std::out_of_range on a bad node and std::invalid_argument on the root
  /// (an empty path has no chain model).
  [[nodiscard]] HeteroMultiHopParams path_params(std::size_t leaf) const;

  /// Throws std::invalid_argument on an invalid tree or per-edge vectors
  /// that do not match it (or values out of domain).
  void validate() const;
};

/// One root-to-leaf path evaluated through the chain CTMC.
struct TreePathMetrics {
  std::size_t leaf = 0;   ///< node id of the receiver
  std::size_t hops = 0;   ///< path length in edges
  Metrics metrics;        ///< HeteroMultiHopModel::metrics() of the path
};

/// Evaluates every root-to-leaf path of the tree through
/// HeteroMultiHopModel, in increasing leaf-node order.  `kind` must be a
/// multi-hop protocol (SS, SS+RT, HS).
[[nodiscard]] std::vector<TreePathMetrics> evaluate_tree_paths(
    ProtocolKind kind, const TreeParams& params);

/// The path with the largest model inconsistency (ties: first in leaf
/// order) -- the headline "model" column of the tree experiments.
[[nodiscard]] TreePathMetrics worst_tree_path(ProtocolKind kind,
                                              const TreeParams& params);

}  // namespace sigcomp::analytic
