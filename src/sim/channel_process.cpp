#include "sim/channel_process.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "markov/dense_matrix.hpp"
#include "markov/stationary.hpp"

namespace sigcomp::sim {

namespace {

void check_unit_interval(double p, const char* name) {
  if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("LossConfig: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

LossConfig LossConfig::iid(double loss) {
  LossConfig config;
  config.model = LossModel::kIid;
  config.loss = loss;
  return config;
}

LossConfig LossConfig::gilbert_elliott(double p_gb, double p_bg,
                                       double loss_bad, double loss_good) {
  LossConfig config;
  config.model = LossModel::kGilbertElliott;
  config.p_gb = p_gb;
  config.p_bg = p_bg;
  config.loss_bad = loss_bad;
  config.loss_good = loss_good;
  return config;
}

LossConfig LossConfig::gilbert_elliott_matched(double mean_loss,
                                               double burst_length,
                                               double loss_bad,
                                               double loss_good) {
  check_unit_interval(mean_loss, "mean_loss");
  check_unit_interval(loss_bad, "loss_bad");
  check_unit_interval(loss_good, "loss_good");
  if (!std::isfinite(burst_length) || burst_length < 1.0) {
    throw std::invalid_argument(
        "LossConfig: burst_length must be >= 1 message");
  }
  if (!(loss_good <= mean_loss && mean_loss < loss_bad)) {
    throw std::invalid_argument(
        "LossConfig: need loss_good <= mean_loss < loss_bad to match the "
        "stationary mean");
  }
  // pi_bad solves mean = (1 - pi_bad) loss_good + pi_bad loss_bad, and the
  // two-state balance equation pi_bad p_bg = pi_good p_gb fixes p_gb.
  const double p_bg = 1.0 / burst_length;
  const double pi_bad = (mean_loss - loss_good) / (loss_bad - loss_good);
  const double p_gb = p_bg * pi_bad / (1.0 - pi_bad);
  if (p_gb > 1.0) {
    throw std::invalid_argument(
        "LossConfig: mean_loss too high for this burst_length (implied "
        "good->bad probability exceeds 1)");
  }
  return gilbert_elliott(p_gb, p_bg, loss_bad, loss_good);
}

double LossConfig::mean_loss() const {
  if (model == LossModel::kIid) return loss;
  // Degenerate chains are reducible (the GTH solver rightly refuses them):
  // the process starts in the good state, so p_gb = 0 never leaves it, and
  // p_bg = 0 (with p_gb > 0) is eventually absorbed in the bad state.
  if (p_gb <= 0.0) return loss_good;
  if (p_bg <= 0.0) return loss_bad;
  markov::DenseMatrix generator(2, 2);
  generator(0, 0) = -p_gb;
  generator(0, 1) = p_gb;
  generator(1, 0) = p_bg;
  generator(1, 1) = -p_bg;
  const std::vector<double> pi = markov::stationary_distribution(generator);
  return pi[0] * loss_good + pi[1] * loss_bad;
}

double LossConfig::mean_burst_length() const {
  if (model == LossModel::kIid) {
    return loss >= 1.0 ? std::numeric_limits<double>::infinity()
                       : 1.0 / (1.0 - loss);
  }
  return p_bg <= 0.0 ? std::numeric_limits<double>::infinity() : 1.0 / p_bg;
}

void LossConfig::validate() const {
  if (model == LossModel::kIid) {
    check_unit_interval(loss, "loss");
    return;
  }
  check_unit_interval(p_gb, "p_gb");
  check_unit_interval(p_bg, "p_bg");
  check_unit_interval(loss_good, "loss_good");
  check_unit_interval(loss_bad, "loss_bad");
}

LossProcess::LossProcess(LossConfig config) : config_(config) {
  config_.validate();
}

bool LossProcess::drop(Rng& rng) noexcept {
  if (config_.model == LossModel::kIid) return rng.bernoulli(config_.loss);
  // Step the chain, then drop according to the post-step state.  Sampling
  // "next state is bad" as u < P(bad | current) makes the degenerate
  // parameterization (p_gb = p, p_bg = 1 - p) consume the stream exactly
  // like iid Bernoulli(p): u < p on every send regardless of state.
  const double to_bad = bad_ ? 1.0 - config_.p_bg : config_.p_gb;
  bad_ = rng.bernoulli(to_bad);
  return rng.bernoulli(bad_ ? config_.loss_bad : config_.loss_good);
}

void LossProcess::set_loss(double loss) {
  check_unit_interval(loss, "loss");
  config_ = LossConfig::iid(loss);
  bad_ = false;
}

DelayConfig DelayConfig::deterministic(double mean) {
  return DelayConfig{DelayModel::kDeterministic, mean, 0.0};
}

DelayConfig DelayConfig::exponential(double mean) {
  return DelayConfig{DelayModel::kExponential, mean, 0.0};
}

DelayConfig DelayConfig::pareto(double mean, double shape) {
  return DelayConfig{DelayModel::kPareto, mean, shape};
}

DelayConfig DelayConfig::lognormal(double mean, double sigma) {
  return DelayConfig{DelayModel::kLognormal, mean, sigma};
}

DelayConfig DelayConfig::from(Distribution dist, double mean) {
  switch (dist) {
    case Distribution::kDeterministic: return deterministic(mean);
    case Distribution::kExponential: return exponential(mean);
  }
  return exponential(mean);
}

double DelayConfig::sample(Rng& rng) const noexcept {
  switch (model) {
    case DelayModel::kDeterministic: return mean < 0.0 ? 0.0 : mean;
    case DelayModel::kExponential: return rng.exponential(mean);
    case DelayModel::kPareto: return rng.pareto_with_mean(shape, mean);
    case DelayModel::kLognormal: return rng.lognormal_with_mean(mean, shape);
  }
  return mean;
}

void DelayConfig::validate() const {
  if (!std::isfinite(mean) || mean < 0.0) {
    throw std::invalid_argument("DelayConfig: mean must be >= 0");
  }
  if (model == DelayModel::kPareto && !(std::isfinite(shape) && shape > 1.0)) {
    throw std::invalid_argument(
        "DelayConfig: Pareto delay needs tail index > 1 (finite mean)");
  }
  if (model == DelayModel::kLognormal &&
      !(std::isfinite(shape) && shape >= 0.0)) {
    throw std::invalid_argument("DelayConfig: lognormal sigma must be >= 0");
  }
}

}  // namespace sigcomp::sim
