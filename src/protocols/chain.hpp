// A fully wired multi-hop signaling chain: sender -> relay 1 -> ... ->
// relay K with per-hop bidirectional channels, sinks connected, and
// optional per-hop tracing.  One builder shared by the multi-hop harness
// (protocols/multi_hop_run.cpp) and the session farm (exp/session_farm.cpp)
// so the two can never drift apart in topology or wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "protocols/engine.hpp"
#include "protocols/multi_hop_node.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sigcomp::protocols {

/// Owns the chain's nodes and channels.  Hop i's two directions share the
/// link's loss and delay configuration; channel trace labels are "dn<i>"
/// (toward the tail) and "up<i>" (toward the sender).
class Chain {
 public:
  /// `hop_loss` and `hop_delay` must have equal, nonzero size K.  Both
  /// `channel_rng` and `node_rng` must outlive the chain.
  Chain(sim::Simulator& sim, sim::Rng& channel_rng, sim::Rng& node_rng,
        MechanismSet mech, const TimerSettings& timers,
        const std::vector<sim::LossConfig>& hop_loss,
        const std::vector<sim::DelayConfig>& hop_delay,
        std::function<void()> on_change, sim::TraceLog* trace = nullptr);

  Chain(const Chain&) = delete;
  Chain& operator=(const Chain&) = delete;

  [[nodiscard]] std::size_t hops() const noexcept { return relays_.size(); }
  [[nodiscard]] ChainSender& sender() noexcept { return *sender_; }
  [[nodiscard]] const ChainSender& sender() const noexcept { return *sender_; }
  [[nodiscard]] ChainRelay& relay(std::size_t i) { return *relays_[i]; }
  [[nodiscard]] const ChainRelay& relay(std::size_t i) const {
    return *relays_[i];
  }

  /// Messages handed to hop i's channels (both directions).
  [[nodiscard]] std::uint64_t hop_messages_sent(std::size_t i) const noexcept;

  /// Messages handed to all channels of the chain.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept;

  /// Soft-state timeout expirations summed across relays.
  [[nodiscard]] std::uint64_t relay_timeouts() const noexcept;

  /// Silently tears the whole chain down (ChainSender/ChainRelay::stop):
  /// state cleared, timers cancelled, nothing signaled.
  void stop();

 private:
  std::vector<std::unique_ptr<MessageChannel>> down_;  ///< i: node i -> i+1
  std::vector<std::unique_ptr<MessageChannel>> up_;  ///< i: relay i+1 -> node i
  std::unique_ptr<ChainSender> sender_;
  std::vector<std::unique_ptr<ChainRelay>> relays_;
};

}  // namespace sigcomp::protocols
