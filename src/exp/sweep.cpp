#include "exp/sweep.hpp"

#include <cmath>
#include <stdexcept>

namespace sigcomp::exp {

std::vector<double> log_space(double lo, double hi, std::size_t n) {
  if (!(lo > 0.0) || hi < lo) {
    throw std::invalid_argument("log_space: require 0 < lo <= hi");
  }
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(n);
  const double step = (std::log(hi) - std::log(lo)) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::exp(std::log(lo) + step * static_cast<double>(i)));
  }
  out.back() = hi;  // avoid round-off drift at the endpoint
  return out;
}

std::vector<double> lin_space(double lo, double hi, std::size_t n) {
  if (hi < lo) throw std::invalid_argument("lin_space: require lo <= hi");
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  out.back() = hi;
  return out;
}

}  // namespace sigcomp::exp
