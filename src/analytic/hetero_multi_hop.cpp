#include "analytic/hetero_multi_hop.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "markov/stationary.hpp"

namespace sigcomp::analytic {

HeteroMultiHopParams HeteroMultiHopParams::from_homogeneous(
    const MultiHopParams& params) {
  params.validate();
  HeteroMultiHopParams out;
  out.loss.assign(params.hops, params.loss);
  out.delay.assign(params.hops, params.delay);
  out.update_rate = params.update_rate;
  out.refresh_timer = params.refresh_timer;
  out.timeout_timer = params.timeout_timer;
  out.retrans_timer = params.retrans_timer;
  out.false_signal_rate = params.false_signal_rate;
  if (params.loss_model != sim::LossModel::kIid) {
    out.loss_process.assign(params.hops, params.loss_config());
  }
  return out;
}

sim::LossConfig HeteroMultiHopParams::hop_loss_config(std::size_t hop) const {
  if (hop >= hops()) {
    throw std::out_of_range("HeteroMultiHopParams::hop_loss_config");
  }
  if (loss_process.empty()) return sim::LossConfig::iid(loss[hop]);
  return loss_process[hop];
}

void HeteroMultiHopParams::set_hop_bursty(std::size_t hop, double burst_length,
                                          double loss_bad) {
  if (hop >= hops()) {
    throw std::out_of_range("HeteroMultiHopParams::set_hop_bursty");
  }
  if (loss_process.empty()) {
    loss_process.reserve(hops());
    for (const double pl : loss) {
      loss_process.push_back(sim::LossConfig::iid(pl));
    }
  }
  loss_process[hop] = sim::LossConfig::gilbert_elliott_matched(
      loss[hop], burst_length, loss_bad);
}

double HeteroMultiHopParams::survival_through(std::size_t k) const {
  if (k > loss.size()) {
    throw std::out_of_range("HeteroMultiHopParams::survival_through");
  }
  double p = 1.0;
  for (std::size_t i = 0; i < k; ++i) p *= 1.0 - loss[i];
  return p;
}

double HeteroMultiHopParams::expected_hop_transmissions() const {
  // The message is transmitted on hop i+1 iff it survived hops 1..i.
  double expected = 0.0;
  for (std::size_t i = 0; i < hops(); ++i) expected += survival_through(i);
  return expected;
}

double HeteroMultiHopParams::recovery_rate() const {
  const double path_delay = std::accumulate(delay.begin(), delay.end(), 0.0);
  return 1.0 / (2.0 * path_delay);
}

void HeteroMultiHopParams::validate() const {
  if (loss.empty()) {
    throw std::invalid_argument("HeteroMultiHopParams: at least one hop required");
  }
  if (loss.size() != delay.size()) {
    throw std::invalid_argument(
        "HeteroMultiHopParams: loss and delay vectors must have equal size");
  }
  for (const double pl : loss) {
    if (!std::isfinite(pl) || pl < 0.0 || pl >= 1.0) {
      throw std::invalid_argument("HeteroMultiHopParams: loss must be in [0, 1)");
    }
  }
  for (const double d : delay) {
    if (!std::isfinite(d) || d <= 0.0) {
      throw std::invalid_argument("HeteroMultiHopParams: delay must be > 0");
    }
  }
  if (!loss_process.empty()) {
    if (loss_process.size() != loss.size()) {
      throw std::invalid_argument(
          "HeteroMultiHopParams: loss_process must be empty or have one "
          "entry per hop");
    }
    for (const sim::LossConfig& config : loss_process) config.validate();
  }
  if (!std::isfinite(update_rate) || update_rate < 0.0) {
    throw std::invalid_argument("HeteroMultiHopParams: update_rate must be >= 0");
  }
  for (const double timer : {refresh_timer, timeout_timer, retrans_timer}) {
    if (!std::isfinite(timer) || timer <= 0.0) {
      throw std::invalid_argument("HeteroMultiHopParams: timers must be > 0");
    }
  }
  if (!std::isfinite(false_signal_rate) || false_signal_rate < 0.0) {
    throw std::invalid_argument(
        "HeteroMultiHopParams: false_signal_rate must be >= 0");
  }
}

double HeteroMultiHopModel::timeout_rate(const HeteroMultiHopParams& params,
                                         std::size_t j) {
  const double exponent = params.timeout_timer / params.refresh_timer;
  const double upper =
      std::pow(1.0 - params.survival_through(j + 1), exponent);
  const double lower =
      j == 0 ? 0.0 : std::pow(1.0 - params.survival_through(j), exponent);
  return std::max(0.0, upper - lower) / params.timeout_timer;
}

HeteroMultiHopModel::HeteroMultiHopModel(ProtocolKind kind,
                                         HeteroMultiHopParams params)
    : kind_(kind), params_(std::move(params)) {
  params_.validate();
  if (!supports_multi_hop(kind_)) {
    throw std::invalid_argument("HeteroMultiHopModel: unsupported protocol " +
                                std::string(to_string(kind_)));
  }
  const MechanismSet mech = mechanisms(kind_);
  const std::size_t k_hops = params_.hops();

  for (std::size_t k = 0; k <= k_hops; ++k) {
    fast_.push_back(chain_.add_state("(" + std::to_string(k) + ",fast)"));
  }
  for (std::size_t k = 0; k < k_hops; ++k) {
    slow_.push_back(chain_.add_state("(" + std::to_string(k) + ",slow)"));
  }
  if (mech.external_failure_detector) {
    recovery_ = chain_.add_state("recovery");
    has_recovery_ = true;
  }

  // Fast path: hop k+1 has its own loss and delay.
  for (std::size_t k = 0; k < k_hops; ++k) {
    const double pl = params_.loss[k];
    const double d = params_.delay[k];
    chain_.add_rate(fast_[k], fast_[k + 1], (1.0 - pl) / d);
    chain_.add_rate(fast_[k], slow_[k], pl / d);
  }

  // Slow path repair: a refresh must survive hops 1..k+1; a hop-local
  // retransmission must survive hop k+1 only.
  for (std::size_t k = 0; k < k_hops; ++k) {
    double repair = 0.0;
    if (mech.refresh) {
      repair += params_.survival_through(k + 1) / params_.refresh_timer;
    }
    if (mech.reliable_trigger) {
      repair += (1.0 - params_.loss[k]) / params_.retrans_timer;
    }
    chain_.add_rate(slow_[k], fast_[k + 1], repair);
  }

  // Updates restart propagation.
  for (std::size_t k = 1; k <= k_hops; ++k) {
    chain_.add_rate(fast_[k], fast_[0], params_.update_rate);
  }
  for (std::size_t k = 0; k < k_hops; ++k) {
    chain_.add_rate(slow_[k], fast_[0], params_.update_rate);
  }

  // Soft-state timeouts (generalized Eq. 9).
  if (mech.soft_timeout) {
    for (std::size_t j = 0; j < k_hops; ++j) {
      const double rate = timeout_rate(params_, j);
      if (rate <= 0.0) continue;
      if (j < k_hops) chain_.add_rate(fast_[k_hops], slow_[j], rate);
      for (std::size_t i = j + 1; i < k_hops; ++i) {
        chain_.add_rate(slow_[i], slow_[j], rate);
      }
    }
  }

  // HS false removal and recovery.
  if (mech.external_failure_detector) {
    const double rate =
        static_cast<double>(k_hops) * params_.false_signal_rate;
    if (rate > 0.0) {
      chain_.add_rate(fast_[k_hops], recovery_, rate);
      for (std::size_t k = 0; k < k_hops; ++k) {
        chain_.add_rate(slow_[k], recovery_, rate);
      }
      chain_.add_rate(recovery_, fast_[0], params_.recovery_rate());
    }
  }

  pi_ = markov::stationary_distribution_from(chain_, fast_[0]);
}

double HeteroMultiHopModel::stationary(std::size_t k, int s) const {
  if (s == 0) {
    if (k >= fast_.size()) throw std::out_of_range("HeteroMultiHopModel: k");
    return pi_[fast_[k]];
  }
  if (s == 1) {
    if (k >= slow_.size()) return 0.0;
    return pi_[slow_[k]];
  }
  throw std::invalid_argument("HeteroMultiHopModel::stationary: s must be 0 or 1");
}

double HeteroMultiHopModel::recovery_probability() const {
  return has_recovery_ ? pi_[recovery_] : 0.0;
}

double HeteroMultiHopModel::inconsistency() const {
  return 1.0 - stationary(params_.hops(), 0);
}

double HeteroMultiHopModel::hop_inconsistency(std::size_t hop) const {
  if (hop < 1 || hop > params_.hops()) {
    throw std::out_of_range("HeteroMultiHopModel::hop_inconsistency");
  }
  double p = recovery_probability();
  for (std::size_t k = 0; k < hop; ++k) {
    p += stationary(k, 0);
    p += stationary(k, 1);
  }
  return p;
}

MessageRateBreakdown HeteroMultiHopModel::message_rates() const {
  const MechanismSet mech = mechanisms(kind_);
  const std::size_t k_hops = params_.hops();
  MessageRateBreakdown m;

  for (std::size_t k = 0; k < k_hops; ++k) {
    m.trigger += stationary(k, 0) / params_.delay[k];
  }
  if (mech.refresh) {
    m.refresh = params_.expected_hop_transmissions() / params_.refresh_timer;
  }
  if (mech.reliable_trigger) {
    double retransmissions = 0.0;
    double acks = 0.0;
    for (std::size_t k = 0; k < k_hops; ++k) {
      retransmissions += stationary(k, 1) / params_.retrans_timer;
      acks += stationary(k, 0) * (1.0 - params_.loss[k]) / params_.delay[k] +
              stationary(k, 1) * (1.0 - params_.loss[k]) / params_.retrans_timer;
    }
    m.reliable_trigger = retransmissions + acks;
  }
  if (mech.external_failure_detector) {
    const double recovery_events = recovery_probability() * params_.recovery_rate();
    m.reliable_removal = recovery_events * 2.0 * static_cast<double>(k_hops);
  }
  return m;
}

Metrics HeteroMultiHopModel::metrics() const {
  Metrics out;
  out.inconsistency = inconsistency();
  out.breakdown = message_rates();
  out.raw_message_rate = out.breakdown.total();
  out.message_rate = out.raw_message_rate;
  return out;
}

}  // namespace sigcomp::analytic
