#include "core/params.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sigcomp {
namespace {

TEST(SingleHopParams, KazaaDefaultsMatchPaper) {
  const SingleHopParams p = SingleHopParams::kazaa_defaults();
  EXPECT_DOUBLE_EQ(p.loss, 0.02);
  EXPECT_DOUBLE_EQ(p.delay, 0.030);
  EXPECT_DOUBLE_EQ(1.0 / p.update_rate, 20.0);
  EXPECT_DOUBLE_EQ(1.0 / p.removal_rate, 1800.0);
  EXPECT_DOUBLE_EQ(p.refresh_timer, 5.0);
  EXPECT_DOUBLE_EQ(p.timeout_timer, 15.0);
  EXPECT_DOUBLE_EQ(p.retrans_timer, 4.0 * p.delay);
  EXPECT_DOUBLE_EQ(p.false_signal_rate, 1e-4);
  EXPECT_NO_THROW(p.validate());
}

TEST(SingleHopParams, FalseRemovalRateFormula) {
  const SingleHopParams p = SingleHopParams::kazaa_defaults();
  // lambda_F = pl^(T/R) / T with T/R = 3.
  EXPECT_NEAR(p.false_removal_rate(), std::pow(0.02, 3.0) / 15.0, 1e-18);
}

TEST(SingleHopParams, FalseRemovalRateZeroWithoutLoss) {
  SingleHopParams p;
  p.loss = 0.0;
  EXPECT_DOUBLE_EQ(p.false_removal_rate(), 0.0);
}

TEST(SingleHopParams, FalseRemovalGrowsWithShorterTimeout) {
  SingleHopParams fast;
  fast.timeout_timer = 5.0;
  SingleHopParams slow;
  slow.timeout_timer = 30.0;
  EXPECT_GT(fast.false_removal_rate(), slow.false_removal_rate());
}

TEST(SingleHopParams, MeanLifetime) {
  SingleHopParams p;
  p.removal_rate = 0.004;
  EXPECT_DOUBLE_EQ(p.mean_lifetime(), 250.0);
}

TEST(SingleHopParams, WithDelayScaledRetrans) {
  const SingleHopParams p =
      SingleHopParams::kazaa_defaults().with_delay_scaled_retrans(0.5);
  EXPECT_DOUBLE_EQ(p.delay, 0.5);
  EXPECT_DOUBLE_EQ(p.retrans_timer, 2.0);
  EXPECT_DOUBLE_EQ(p.loss, 0.02);  // everything else untouched
}

TEST(SingleHopParams, WithRefreshScaledTimeout) {
  const SingleHopParams p =
      SingleHopParams::kazaa_defaults().with_refresh_scaled_timeout(2.0);
  EXPECT_DOUBLE_EQ(p.refresh_timer, 2.0);
  EXPECT_DOUBLE_EQ(p.timeout_timer, 6.0);
}

TEST(SingleHopParams, ValidateRejectsBadValues) {
  const auto expect_invalid = [](auto mutate) {
    SingleHopParams p;
    mutate(p);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  };
  expect_invalid([](auto& p) { p.loss = -0.1; });
  expect_invalid([](auto& p) { p.loss = 1.0; });
  expect_invalid([](auto& p) { p.loss = std::nan(""); });
  expect_invalid([](auto& p) { p.delay = 0.0; });
  expect_invalid([](auto& p) { p.delay = -1.0; });
  expect_invalid([](auto& p) { p.update_rate = -1.0; });
  expect_invalid([](auto& p) { p.removal_rate = 0.0; });
  expect_invalid([](auto& p) { p.refresh_timer = 0.0; });
  expect_invalid([](auto& p) { p.timeout_timer = -5.0; });
  expect_invalid([](auto& p) { p.retrans_timer = 0.0; });
  expect_invalid([](auto& p) { p.false_signal_rate = -1e-9; });
}

TEST(SingleHopParams, ZeroUpdateRateIsAllowed) {
  SingleHopParams p;
  p.update_rate = 0.0;
  EXPECT_NO_THROW(p.validate());
}

TEST(SingleHopParams, WithBurstyLossPinsStationaryMean) {
  SingleHopParams p;
  p.loss = 0.05;
  const SingleHopParams bursty = p.with_bursty_loss(10.0);
  EXPECT_EQ(bursty.loss_model, sim::LossModel::kGilbertElliott);
  EXPECT_DOUBLE_EQ(bursty.loss, 0.05);  // the advertised average is kept
  EXPECT_NEAR(bursty.loss_config().mean_loss(), 0.05, 1e-12);
  EXPECT_NO_THROW(bursty.validate());
}

TEST(SingleHopParams, ValidateRejectsIncoherentGeMeanLoss) {
  // A GE chain whose stationary mean disagrees with `loss` would make every
  // model-vs-sim comparison apples-to-oranges.
  SingleHopParams p;
  p.loss_model = sim::LossModel::kGilbertElliott;
  p.ge_p_gb = 0.3;  // stationary mean ~0.23, but loss still says 0.02
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.loss = p.loss_config().mean_loss();
  EXPECT_NO_THROW(p.validate());
  MultiHopParams mh;
  mh.loss_model = sim::LossModel::kGilbertElliott;
  mh.ge_p_gb = 0.3;
  EXPECT_THROW(mh.validate(), std::invalid_argument);
}

TEST(MultiHopParams, ReservationDefaultsMatchPaper) {
  const MultiHopParams p = MultiHopParams::reservation_defaults();
  EXPECT_EQ(p.hops, 20u);
  EXPECT_DOUBLE_EQ(p.loss, 0.02);
  EXPECT_DOUBLE_EQ(p.delay, 0.030);
  EXPECT_DOUBLE_EQ(1.0 / p.update_rate, 60.0);
  EXPECT_DOUBLE_EQ(p.refresh_timer, 5.0);
  EXPECT_DOUBLE_EQ(p.timeout_timer, 15.0);
  EXPECT_NO_THROW(p.validate());
}

TEST(MultiHopParams, RecoveryRateIsInverseRoundTrip) {
  MultiHopParams p;
  p.hops = 10;
  p.delay = 0.05;
  EXPECT_NEAR(p.recovery_rate(), 1.0 / (2.0 * 10 * 0.05), 1e-12);
}

TEST(MultiHopParams, ExpectedHopTransmissionsClosedForm) {
  MultiHopParams p;
  p.hops = 20;
  p.loss = 0.02;
  EXPECT_NEAR(p.expected_hop_transmissions(),
              (1.0 - std::pow(0.98, 20.0)) / 0.02, 1e-9);
}

TEST(MultiHopParams, ExpectedHopTransmissionsLossFreeEqualsHops) {
  MultiHopParams p;
  p.hops = 7;
  p.loss = 0.0;
  EXPECT_DOUBLE_EQ(p.expected_hop_transmissions(), 7.0);
}

TEST(MultiHopParams, EndToEndDeliveryProbability) {
  MultiHopParams p;
  p.hops = 3;
  p.loss = 0.1;
  EXPECT_NEAR(p.end_to_end_delivery_probability(), 0.9 * 0.9 * 0.9, 1e-12);
}

TEST(MultiHopParams, ValidateRejectsBadValues) {
  const auto expect_invalid = [](auto mutate) {
    MultiHopParams p;
    mutate(p);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  };
  expect_invalid([](auto& p) { p.hops = 0; });
  expect_invalid([](auto& p) { p.loss = 1.0; });
  expect_invalid([](auto& p) { p.delay = 0.0; });
  expect_invalid([](auto& p) { p.refresh_timer = 0.0; });
  expect_invalid([](auto& p) { p.timeout_timer = 0.0; });
  expect_invalid([](auto& p) { p.retrans_timer = 0.0; });
  expect_invalid([](auto& p) { p.false_signal_rate = -1.0; });
}

}  // namespace
}  // namespace sigcomp
