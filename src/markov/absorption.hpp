// Absorption analysis for transient CTMCs.
//
// The single-hop signaling model has one absorbing state ("state removed at
// both sender and receiver").  The expected session length L used by the
// paper's message-count normalization (Eq. 2) is the mean time to absorption
// starting from the setup state.
#pragma once

#include <vector>

#include "markov/ctmc.hpp"

namespace sigcomp::markov {

/// Result of an absorption analysis.
struct AbsorptionResult {
  /// mean_time[i] = expected time to reach any absorbing state from state i;
  /// zero for absorbing states themselves.
  std::vector<double> mean_time;
  /// Indices of the absorbing states found in the chain.
  std::vector<StateId> absorbing;
};

/// Computes expected time-to-absorption for every transient state of `chain`.
///
/// Throws std::invalid_argument when the chain has no absorbing state, and
/// std::runtime_error when some transient state cannot reach absorption.
[[nodiscard]] AbsorptionResult mean_time_to_absorption(const Ctmc& chain);

/// Probability of ending in each absorbing state, starting from `from`.
/// Indexed in the order of AbsorptionResult::absorbing.
[[nodiscard]] std::vector<double> absorption_probabilities(const Ctmc& chain,
                                                           StateId from);

/// Expected total time spent in each state before absorption when starting
/// from `from` (zero for absorbing states).  The sum over states equals the
/// mean time to absorption.  This is what the message-count accounting uses:
/// expected messages = sum_s occupancy[s] * send_rate_in_s.
[[nodiscard]] std::vector<double> expected_occupancy(const Ctmc& chain, StateId from);

}  // namespace sigcomp::markov
