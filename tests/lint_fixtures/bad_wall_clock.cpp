// Fixture: wall-clock reads in result-affecting library code.
#include <chrono>
#include <ctime>

double now_seconds() {
  auto t = std::chrono::system_clock::now();  // LINT[wall-clock]
  (void)t;
  auto m = std::chrono::steady_clock::now();  // LINT[wall-clock]
  (void)m;
  std::time_t wall = time(nullptr);  // LINT[wall-clock]
  (void)wall;
  return static_cast<double>(clock());  // LINT[wall-clock]
}

// Must not fire: "time" as part of longer identifiers or as a variable.
double timeout_timer(double lifetime) { return lifetime; }
