// Performance benchmarks of the discrete-event simulator: raw event-queue
// throughput and full protocol simulations (events per second).
#include <benchmark/benchmark.h>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/single_hop_run.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sigcomp;

void BM_EventQueueChurn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::Rng rng(1);
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      simulator.schedule_in(rng.uniform(), [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueChurn)->Range(1024, 65536);

void BM_SingleHopSim(benchmark::State& state) {
  const auto kind = kAllProtocols[static_cast<std::size_t>(state.range(0))];
  const SingleHopParams params;
  protocols::SimOptions options;
  options.sessions = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocols::run_single_hop(kind, params, options));
  }
  state.SetLabel(std::string(to_string(kind)));
}
BENCHMARK(BM_SingleHopSim)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_MultiHopSim(benchmark::State& state) {
  MultiHopParams params;
  params.hops = static_cast<std::size_t>(state.range(0));
  protocols::MultiHopSimOptions options;
  options.duration = 2000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        protocols::run_multi_hop(ProtocolKind::kSSRT, params, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MultiHopSim)->RangeMultiplier(2)->Range(2, 16)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace

BENCHMARK_MAIN();
