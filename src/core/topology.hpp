// Rooted-tree signaling topologies (multicast-style fan-out).
//
// The paper studies signaling state on a chain (sender -> relay 1 -> ... ->
// relay K), but the protocols it abstracts -- RSVP reservations, IGMP-style
// membership -- deploy their state on *trees*: one sender at the root,
// relays at interior nodes, receivers at the leaves.  TreeSpec is the shared
// topology description used by the analytic per-path composition
// (analytic/tree_paths.hpp), the wired simulation topology
// (protocols/topology.hpp) and the session farm; a chain is the degenerate
// tree with fan-out 1 everywhere.
#pragma once

#include <cstddef>
#include <vector>

namespace sigcomp {

/// A rooted tree over nodes 0..N-1.  Node 0 is the root (the signaling
/// sender); every other node is a relay holding a copy of the signaling
/// state; leaves are the receivers.  Edge e (e = 0..N-2) connects
/// `parent[e]` to node e+1, so the edge id of non-root node n is n-1.
///
/// Invariant (validated): `parent[e] <= e`, i.e. node ids are topologically
/// ordered root-first -- every parent id is smaller than its child's id.
struct TreeSpec {
  /// `parent[e]` is the node id of the parent endpoint of edge e (the child
  /// endpoint is node e+1).
  std::vector<std::size_t> parent;

  /// The K-hop chain: node i's only child is node i+1.  Throws
  /// std::invalid_argument when `hops` is 0.
  [[nodiscard]] static TreeSpec chain(std::size_t hops);

  /// Balanced tree: every node above the leaf level has `fanout` children
  /// and all leaves sit at distance `depth` from the root.  When
  /// `receivers` is nonzero, only the first `receivers` leaves (and the
  /// interior nodes on their root paths) are kept, giving exactly that many
  /// receivers at the full depth.  Throws std::invalid_argument on a zero
  /// fanout/depth, `receivers` exceeding fanout^depth, or a tree larger
  /// than kMaxNodes.
  [[nodiscard]] static TreeSpec balanced(std::size_t fanout, std::size_t depth,
                                         std::size_t receivers = 0);

  /// Guard against accidentally requesting astronomically large balanced
  /// trees (fanout^depth grows fast).
  static constexpr std::size_t kMaxNodes = 1u << 20;

  [[nodiscard]] std::size_t nodes() const noexcept { return parent.size() + 1; }
  [[nodiscard]] std::size_t edges() const noexcept { return parent.size(); }
  /// Relays == non-root nodes == edges.
  [[nodiscard]] std::size_t relays() const noexcept { return parent.size(); }

  /// Edge ids of `node`'s child edges, in increasing edge order.
  [[nodiscard]] std::vector<std::size_t> children(std::size_t node) const;

  /// True when `node` has no children (a receiver).  The root of an
  /// edgeless tree counts as a leaf.
  [[nodiscard]] bool is_leaf(std::size_t node) const;

  /// Node ids of all leaves, in increasing order.
  [[nodiscard]] std::vector<std::size_t> leaves() const;

  [[nodiscard]] std::size_t leaf_count() const;

  /// Edge ids on the root -> `node` path, in root-to-node order (empty for
  /// the root).
  [[nodiscard]] std::vector<std::size_t> path_edges(std::size_t node) const;

  /// Number of edges between the root and `node`.
  [[nodiscard]] std::size_t node_depth(std::size_t node) const;

  /// Maximum node depth (0 for an edgeless tree).
  [[nodiscard]] std::size_t depth() const;

  /// Largest child count over all nodes (0 for an edgeless tree).
  [[nodiscard]] std::size_t max_fanout() const;

  /// Throws std::invalid_argument when the parent vector violates the
  /// topological-order invariant (`parent[e] <= e`).
  void validate() const;

  friend bool operator==(const TreeSpec&, const TreeSpec&) = default;
};

}  // namespace sigcomp
