#include "protocols/single_hop_run.hpp"

#include <memory>
#include <optional>
#include <stdexcept>

#include "core/rng_streams.hpp"
#include "protocols/engine.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

namespace {

/// One self-contained replication: wiring, lifecycle and measurement.
class SingleHopRun {
 public:
  SingleHopRun(ProtocolKind kind, const SingleHopParams& params,
               const SimOptions& options)
      : params_(params),
        options_(options),
        mech_(mechanisms(kind)),
        sim_(options.event_queue),
        rng_channel_(options.seed, rng::kSessionChannel),
        rng_sender_(options.seed, rng::kSessionSender),
        rng_receiver_(options.seed, rng::kSessionReceiver),
        rng_lifecycle_(options.seed, rng::kSessionLifecycle),
        rng_failure_(options.seed, rng::kSessionFailure),
        forward_(sim_, rng_channel_, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { receiver_->handle(m); }),
        reverse_(sim_, rng_channel_, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { sender_->handle(m); }) {
    params_.validate();
    if (options_.crash_fraction < 0.0 || options_.crash_fraction > 1.0) {
      throw std::invalid_argument("SimOptions: crash_fraction must be in [0, 1]");
    }
    if (options_.crash_detection_delay < 0.0) {
      throw std::invalid_argument(
          "SimOptions: crash_detection_delay must be >= 0");
    }
    if (options_.retrans_backoff < 1.0) {
      throw std::invalid_argument("SimOptions: retrans_backoff must be >= 1");
    }
    if (options_.lifetime_dist == LifetimeDistribution::kPareto &&
        options_.lifetime_shape <= 1.0) {
      throw std::invalid_argument(
          "SimOptions: Pareto lifetimes need tail index > 1 (finite mean)");
    }
    TimerSettings timers{options.timer_dist, params.refresh_timer,
                         params.timeout_timer, params.retrans_timer};
    timers.backoff = options_.retrans_backoff;
    sender_ = std::make_unique<SenderEngine>(sim_, rng_sender_, mech_, timers,
                                             forward_, [this] { on_change(); });
    receiver_ = std::make_unique<ReceiverEngine>(sim_, rng_receiver_, mech_, timers,
                                                 reverse_, [this] { on_change(); });
    if (options_.trace != nullptr) {
      const auto describe = [](const Message& m) {
        return std::string(to_string(m.type));
      };
      forward_.set_trace(options_.trace, "fwd", describe);
      reverse_.set_trace(options_.trace, "rev", describe);
    }
  }

  SimResult run() {
    start_session();
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      schedule_false_signal();
    }
    // The lifecycle keeps scheduling events until the last session absorbs;
    // afterwards only stragglers remain.
    while (completed_ < options_.sessions && sim_.step()) {
    }
    if (completed_ < options_.sessions) {
      throw std::logic_error("single-hop simulation stalled before completing");
    }

    SimResult out;
    out.sessions = completed_;
    out.total_time = end_time_;
    out.messages = forward_.counters().sent + reverse_.counters().sent;
    out.receiver_timeouts = receiver_->timeouts();
    out.crashes = crashes_;
    out.mean_orphan_time = orphan_total_ / static_cast<double>(completed_);
    out.metrics.inconsistency = inconsistent_.mean(end_time_);
    out.metrics.session_length = end_time_ / static_cast<double>(completed_);
    out.metrics.raw_message_rate =
        end_time_ > 0.0 ? static_cast<double>(out.messages) / end_time_ : 0.0;
    // M-bar = (messages per session) * lambda_r, mirroring Eq. (2).
    out.metrics.message_rate = static_cast<double>(out.messages) /
                               static_cast<double>(completed_) *
                               params_.removal_rate;
    return out;
  }

 private:
  void start_session() {
    ++epoch_;
    sender_removed_ = false;
    sender_->begin_epoch(epoch_);
    receiver_->begin_epoch(epoch_);
    sender_->install(++version_);
    schedule_update();
    removal_event_ = sim_.schedule_in(
        draw_lifetime(), [this] {
          removal_event_.reset();
          sender_removed_ = true;
          removal_time_ = sim_.now();
          if (rng_lifecycle_.bernoulli(options_.crash_fraction)) {
            ++crashes_;
            trace_session("crash");
            sender_->crash();
            // The hard-state external detector eventually notices the
            // crash and tells the receiver to drop the orphaned state.
            if (mech_.external_failure_detector) {
              const std::uint64_t epoch = epoch_;
              sim_.schedule_in(
                  rng_lifecycle_.exponential(options_.crash_detection_delay),
                  [this, epoch] {
                    if (epoch == epoch_) receiver_->external_removal_signal();
                  });
            }
          } else {
            trace_session("remove");
            sender_->remove();
          }
          check_absorption();
        });
    trace_session("start");
    on_change();
  }

  double draw_lifetime() {
    const double mean = params_.mean_lifetime();
    switch (options_.lifetime_dist) {
      case LifetimeDistribution::kExponential:
        return rng_lifecycle_.exponential(mean);
      case LifetimeDistribution::kPareto:
        return rng_lifecycle_.pareto_with_mean(options_.lifetime_shape, mean);
      case LifetimeDistribution::kLognormal:
        return rng_lifecycle_.lognormal_with_mean(mean, options_.lifetime_shape);
    }
    return rng_lifecycle_.exponential(mean);
  }

  void trace_session(const char* what) {
    if (options_.trace != nullptr) {
      options_.trace->record(sim_.now(), sim::TraceCategory::kSession,
                             std::string(what) + " #" + std::to_string(epoch_));
    }
  }

  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    update_event_ = sim_.schedule_in(
        rng_lifecycle_.exponential(1.0 / params_.update_rate), [this] {
          update_event_.reset();
          if (!sender_removed_ && sender_->value()) {
            sender_->update(++version_);
          }
          schedule_update();
        });
  }

  void schedule_false_signal() {
    sim_.schedule_in(rng_failure_.exponential(1.0 / params_.false_signal_rate),
                     [this] {
                       receiver_->external_removal_signal();
                       schedule_false_signal();
                     });
  }

  void cancel(std::optional<sim::EventId>& id) {
    if (id) {
      sim_.cancel(*id);
      id.reset();
    }
  }

  void on_change() {
    const bool consistent = sender_->value() == receiver_->value();
    inconsistent_.set(sim_.now(), consistent ? 0.0 : 1.0);
    check_absorption();
  }

  void check_absorption() {
    if (!sender_removed_ || receiver_->value()) return;
    // Both ends are empty: the session is absorbed (the model's (0,0)).
    ++completed_;
    end_time_ = sim_.now();
    orphan_total_ += sim_.now() - removal_time_;
    trace_session("absorbed");
    sender_removed_ = false;
    cancel(update_event_);
    cancel(removal_event_);
    sender_->reset();
    receiver_->reset();
    if (completed_ < options_.sessions) {
      // Renewal: the next session starts immediately (merged (0,0)/(1,0)1).
      sim_.schedule_in(0.0, [this] { start_session(); });
    }
  }

  SingleHopParams params_;
  SimOptions options_;
  MechanismSet mech_;

  sim::Simulator sim_;
  sim::Rng rng_channel_;
  sim::Rng rng_sender_;
  sim::Rng rng_receiver_;
  sim::Rng rng_lifecycle_;
  sim::Rng rng_failure_;
  MessageChannel forward_;
  MessageChannel reverse_;
  std::unique_ptr<SenderEngine> sender_;
  std::unique_ptr<ReceiverEngine> receiver_;

  sim::TimeWeightedValue inconsistent_;
  std::optional<sim::EventId> update_event_;
  std::optional<sim::EventId> removal_event_;
  bool sender_removed_ = false;
  std::uint64_t epoch_ = 0;
  std::int64_t version_ = 0;
  std::size_t completed_ = 0;
  std::size_t crashes_ = 0;
  double end_time_ = 0.0;
  double removal_time_ = 0.0;
  double orphan_total_ = 0.0;
};

}  // namespace

SimResult run_single_hop(ProtocolKind kind, const SingleHopParams& params,
                         const SimOptions& options) {
  if (options.sessions == 0) {
    throw std::invalid_argument("run_single_hop: sessions must be > 0");
  }
  SingleHopRun run(kind, params, options);
  return run.run();
}

ReplicatedResult run_single_hop_replicated(ProtocolKind kind,
                                           const SingleHopParams& params,
                                           const SimOptions& options,
                                           std::size_t replications) {
  if (replications == 0) {
    throw std::invalid_argument("run_single_hop_replicated: need >= 1 replication");
  }
  sim::RunningStats inconsistency;
  sim::RunningStats message_rate;
  for (std::size_t r = 0; r < replications; ++r) {
    SimOptions rep = options;
    rep.seed = options.seed + r;
    const SimResult result = run_single_hop(kind, params, rep);
    inconsistency.add(result.metrics.inconsistency);
    message_rate.add(result.metrics.message_rate);
  }
  ReplicatedResult out;
  out.inconsistency = sim::confidence_interval_95(inconsistency);
  out.message_rate = sim::confidence_interval_95(message_rate);
  out.replications = replications;
  return out;
}

}  // namespace sigcomp::protocols
