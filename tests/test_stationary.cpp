#include "markov/stationary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/dtmc.hpp"

namespace sigcomp::markov {
namespace {

Ctmc two_state(double up, double down) {
  Ctmc chain;
  chain.add_state("off");
  chain.add_state("on");
  chain.add_rate(0, 1, up);
  chain.add_rate(1, 0, down);
  return chain;
}

TEST(Stationary, TwoStateClosedForm) {
  // pi = (down, up) / (up + down).
  const auto pi = stationary_distribution(two_state(2.0, 3.0));
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0], 0.6, 1e-12);
  EXPECT_NEAR(pi[1], 0.4, 1e-12);
}

TEST(Stationary, SumsToOne) {
  const auto pi = stationary_distribution(two_state(0.001, 1234.5));
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(Stationary, MM1KQueueClosedForm) {
  // M/M/1/K with lambda=1, mu=2: pi_i proportional to rho^i, rho=0.5.
  constexpr std::size_t kCapacity = 6;
  Ctmc chain;
  for (std::size_t i = 0; i <= kCapacity; ++i) {
    chain.add_state("n" + std::to_string(i));
  }
  for (std::size_t i = 0; i < kCapacity; ++i) {
    chain.add_rate(i, i + 1, 1.0);
    chain.add_rate(i + 1, i, 2.0);
  }
  const auto pi = stationary_distribution(chain);
  double norm = 0.0;
  for (std::size_t i = 0; i <= kCapacity; ++i) norm += std::pow(0.5, double(i));
  for (std::size_t i = 0; i <= kCapacity; ++i) {
    EXPECT_NEAR(pi[i], std::pow(0.5, double(i)) / norm, 1e-12) << "state " << i;
  }
}

TEST(Stationary, MatchesJumpChainCrossCheck) {
  // A 4-state irreducible chain with asymmetric rates.
  Ctmc chain;
  for (int i = 0; i < 4; ++i) chain.add_state("s" + std::to_string(i));
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 3, 3.0);
  chain.add_rate(3, 0, 4.0);
  chain.add_rate(2, 0, 0.5);
  chain.add_rate(1, 3, 0.25);
  const auto gth = stationary_distribution(chain);
  const auto via_jump = ctmc_stationary_via_jump_chain(chain);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(gth[i], via_jump[i], 1e-8) << "state " << i;
  }
}

TEST(Stationary, ResidualIsSmall) {
  const Ctmc chain = two_state(0.7, 0.9);
  const auto pi = stationary_distribution(chain);
  EXPECT_LT(stationary_residual(chain.generator(), pi), 1e-12);
}

TEST(Stationary, StiffRatesRemainAccurate) {
  // Rates spanning 8 orders of magnitude (milliseconds vs ~days) -- the
  // regime the signaling models live in; GTH must not lose mass.
  const auto pi = stationary_distribution(two_state(1e-5, 1e3));
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  EXPECT_NEAR(pi[1], 1e-5 / (1e-5 + 1e3), 1e-18);
}

TEST(Stationary, NonSquareGeneratorThrows) {
  EXPECT_THROW((void)stationary_distribution(DenseMatrix(2, 3)),
               std::invalid_argument);
}

TEST(Stationary, NonZeroRowSumThrows) {
  DenseMatrix q(2, 2);
  q(0, 0) = -1.0;
  q(0, 1) = 2.0;  // row sum 1 != 0
  q(1, 0) = 1.0;
  q(1, 1) = -1.0;
  EXPECT_THROW((void)stationary_distribution(q), std::invalid_argument);
}

TEST(Stationary, ReducibleChainThrows) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("c");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  // c is isolated: reducible.
  DenseMatrix q = chain.generator();
  EXPECT_THROW((void)stationary_distribution(q), std::runtime_error);
}

TEST(ClosedClasses, FindsTerminalComponents) {
  Ctmc chain;
  for (int i = 0; i < 4; ++i) chain.add_state("s" + std::to_string(i));
  // 0 -> 1 <-> 2 (closed), 3 isolated (closed by itself).
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(2, 1, 1.0);
  const auto classes = closed_classes(chain);
  ASSERT_EQ(classes.size(), 2u);
}

TEST(StationaryFrom, RestrictsToReachableClosedClass) {
  Ctmc chain;
  for (int i = 0; i < 4; ++i) chain.add_state("s" + std::to_string(i));
  chain.add_rate(0, 1, 1.0);   // transient start
  chain.add_rate(1, 2, 2.0);   // closed class {1, 2}
  chain.add_rate(2, 1, 3.0);
  // state 3 is an unreachable closed class
  const auto pi = stationary_distribution_from(chain, 0);
  EXPECT_DOUBLE_EQ(pi[0], 0.0);
  EXPECT_DOUBLE_EQ(pi[3], 0.0);
  EXPECT_NEAR(pi[1], 0.6, 1e-12);
  EXPECT_NEAR(pi[2], 0.4, 1e-12);
}

TEST(StationaryFrom, SingletonClosedClass) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("absorbing");
  chain.add_rate(0, 1, 1.0);
  const auto pi = stationary_distribution_from(chain, 0);
  EXPECT_DOUBLE_EQ(pi[0], 0.0);
  EXPECT_DOUBLE_EQ(pi[1], 1.0);
}

TEST(StationaryFrom, MultipleReachableClosedClassesThrow) {
  Ctmc chain;
  for (int i = 0; i < 3; ++i) chain.add_state("s" + std::to_string(i));
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 2, 1.0);
  // {1} and {2} are both absorbing and reachable: long-run law not unique.
  EXPECT_THROW((void)stationary_distribution_from(chain, 0), std::runtime_error);
}

TEST(StationaryFrom, IrreducibleChainMatchesPlainSolver) {
  const Ctmc chain = two_state(2.0, 3.0);
  const auto a = stationary_distribution(chain);
  const auto b = stationary_distribution_from(chain, 0);
  EXPECT_NEAR(a[0], b[0], 1e-14);
  EXPECT_NEAR(a[1], b[1], 1e-14);
}

TEST(StationaryFrom, InvalidStartThrows) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW((void)stationary_distribution_from(chain, 5), std::out_of_range);
}

}  // namespace
}  // namespace sigcomp::markov
