#include "exp/cli.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sigcomp::exp {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(std::string name, std::string description) {
  Spec spec;
  spec.description = std::move(description);
  spec.is_flag = true;
  specs_.emplace(std::move(name), std::move(spec));
}

void ArgParser::add_option(std::string name, std::string description,
                           std::string default_value) {
  Spec spec;
  spec.description = std::move(description);
  spec.value = std::move(default_value);
  specs_.emplace(std::move(name), std::move(spec));
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      error_ = "unknown option --" + name;
      return false;
    }
    Spec& spec = it->second;
    if (spec.is_flag) {
      if (inline_value) {
        error_ = "flag --" + name + " does not take a value";
        return false;
      }
      spec.seen = true;
      continue;
    }
    if (inline_value) {
      spec.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        error_ = "option --" + name + " requires a value";
        return false;
      }
      spec.value = argv[++i];
    }
    spec.seen = true;
  }
  return true;
}

const ArgParser::Spec& ArgParser::require(std::string_view name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::logic_error("ArgParser: option not registered: " +
                           std::string(name));
  }
  return it->second;
}

bool ArgParser::flag(std::string_view name) const {
  const Spec& spec = require(name);
  if (!spec.is_flag) {
    throw std::logic_error("ArgParser: --" + std::string(name) + " is not a flag");
  }
  return spec.seen;
}

std::string ArgParser::get(std::string_view name) const {
  const Spec& spec = require(name);
  if (spec.is_flag) {
    throw std::logic_error("ArgParser: --" + std::string(name) + " is a flag");
  }
  return spec.value;
}

std::string ArgParser::get_choice(
    std::string_view name,
    std::initializer_list<std::string_view> allowed) const {
  std::string value = get(name);
  for (const std::string_view candidate : allowed) {
    if (value == candidate) return value;
  }
  std::string message = "option --" + std::string(name) + ": must be one of {";
  bool first = true;
  for (const std::string_view candidate : allowed) {
    if (!first) message += ", ";
    message += candidate;
    first = false;
  }
  message += "}, got '" + value + "'";
  throw std::invalid_argument(message);
}

bool ArgParser::passed(std::string_view name) const { return require(name).seen; }

double ArgParser::get_double(std::string_view name) const {
  const std::string text = get(name);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("option --" + std::string(name) +
                                ": not a number: " + text);
  }
  return value;
}

long ArgParser::get_long(std::string_view name) const {
  const std::string text = get(name);
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("option --" + std::string(name) +
                                ": not an integer: " + text);
  }
  return value;
}

TreeSpec parse_tree_spec(std::istream& in, const std::string& name) {
  TreeSpec spec;
  std::string token;
  while (in >> token) {
    if (token.front() == '#') {  // comment: swallow the rest of the line
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    char* end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' ||
        token.find('-') != std::string::npos) {
      throw std::invalid_argument(name + ": not a parent node id: " + token);
    }
    spec.parent.push_back(static_cast<std::size_t>(value));
  }
  if (spec.parent.empty()) {
    throw std::invalid_argument(name + ": no edges (empty parent vector)");
  }
  try {
    spec.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(name + ": " + e.what());
  }
  return spec;
}

TreeSpec load_tree_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open topology file: " + path);
  }
  return parse_tree_spec(in, path);
}

std::string tree_shape_summary(const TreeSpec& spec) {
  // children-per-interior-node histogram, in increasing fan-out order.
  std::map<std::size_t, std::size_t> histogram;
  for (std::size_t node = 0; node < spec.nodes(); ++node) {
    const std::size_t kids = spec.children(node).size();
    if (kids > 0) ++histogram[kids];
  }
  std::ostringstream os;
  os << spec.nodes() << " nodes, " << spec.edges() << " edges, "
     << spec.leaf_count() << " receiver(s), depth " << spec.depth()
     << ", fanout histogram";
  for (const auto& [kids, count] : histogram) {
    os << ' ' << kids << ':' << count;
  }
  return os.str();
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n" << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "\n      " << spec.description;
    if (!spec.is_flag && !spec.value.empty()) {
      os << " (default: " << spec.value << ")";
    }
    os << '\n';
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace sigcomp::exp
