#include "markov/absorption.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace sigcomp::markov {
namespace {

TEST(Absorption, SingleTransientStateExponential) {
  // a -> absorbed at rate 2: mean time 0.5.
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("end");
  chain.add_rate(0, 1, 2.0);
  const auto result = mean_time_to_absorption(chain);
  ASSERT_EQ(result.absorbing.size(), 1u);
  EXPECT_EQ(result.absorbing[0], 1u);
  EXPECT_NEAR(result.mean_time[0], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(result.mean_time[1], 0.0);
}

TEST(Absorption, TwoStageErlangChain) {
  // a -> b -> end, rates 1 and 2: mean 1 + 0.5 from a.
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  const auto result = mean_time_to_absorption(chain);
  EXPECT_NEAR(result.mean_time[0], 1.5, 1e-12);
  EXPECT_NEAR(result.mean_time[1], 0.5, 1e-12);
}

TEST(Absorption, ChainWithLoopback) {
  // a -> b at 1, b -> a at 1, b -> end at 1.
  // t_a = 1 + t_b; t_b = 0.5 + 0.5 t_a  =>  t_a = 3, t_b = 2.
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(1, 2, 1.0);
  const auto result = mean_time_to_absorption(chain);
  EXPECT_NEAR(result.mean_time[0], 3.0, 1e-12);
  EXPECT_NEAR(result.mean_time[1], 2.0, 1e-12);
}

TEST(Absorption, NoAbsorbingStateThrows) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  EXPECT_THROW((void)mean_time_to_absorption(chain), std::invalid_argument);
}

TEST(Absorption, UnreachableAbsorptionThrows) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  // "end" exists but neither a nor b can reach it.
  EXPECT_THROW((void)mean_time_to_absorption(chain), std::runtime_error);
}

TEST(AbsorptionProbabilities, SplitBetweenTwoSinks) {
  // a -> end1 at 1, a -> end2 at 3: probabilities 0.25 / 0.75.
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("end1");
  chain.add_state("end2");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 2, 3.0);
  const auto probs = absorption_probabilities(chain, 0);
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0], 0.25, 1e-12);
  EXPECT_NEAR(probs[1], 0.75, 1e-12);
  EXPECT_NEAR(std::accumulate(probs.begin(), probs.end(), 0.0), 1.0, 1e-12);
}

TEST(AbsorptionProbabilities, StartingAbsorbedIsCertain) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  const auto probs = absorption_probabilities(chain, 1);
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
}

TEST(AbsorptionProbabilities, MultiStepRouting) {
  // a -> b (1), b -> end1 (1), b -> a (1); a -> end2 (1).
  // h_a = P(end1 from a): a goes to b w.p. 1/2 else end2.
  // h_b = 1/2 + 1/2 h_a; h_a = 1/2 h_b  =>  h_a = 1/3, h_b = 2/3.
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("end1");
  chain.add_state("end2");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 3, 1.0);
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(1, 0, 1.0);
  const auto probs = absorption_probabilities(chain, 0);
  EXPECT_NEAR(probs[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(probs[1], 2.0 / 3.0, 1e-12);
}

TEST(ExpectedOccupancy, SumsToMeanTimeToAbsorption) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(1, 2, 1.0);
  const auto occupancy = expected_occupancy(chain, 0);
  const auto result = mean_time_to_absorption(chain);
  EXPECT_NEAR(occupancy[0] + occupancy[1] + occupancy[2], result.mean_time[0],
              1e-12);
  EXPECT_DOUBLE_EQ(occupancy[2], 0.0);
}

TEST(ExpectedOccupancy, ErlangStagesSpendTheirMeans) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  chain.add_state("end");
  chain.add_rate(0, 1, 4.0);
  chain.add_rate(1, 2, 2.0);
  const auto occupancy = expected_occupancy(chain, 0);
  EXPECT_NEAR(occupancy[0], 0.25, 1e-12);
  EXPECT_NEAR(occupancy[1], 0.5, 1e-12);
}

TEST(ExpectedOccupancy, FromAbsorbedIsZero) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  const auto occupancy = expected_occupancy(chain, 1);
  EXPECT_DOUBLE_EQ(occupancy[0], 0.0);
  EXPECT_DOUBLE_EQ(occupancy[1], 0.0);
}

}  // namespace
}  // namespace sigcomp::markov
