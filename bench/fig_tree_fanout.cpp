// Beyond-the-paper figure: signaling state on trees (multicast-style
// fan-out).  RSVP reservations and IGMP-style membership deploy their state
// on rooted trees, not chains; this bench sweeps fan-out x depth x
// burstiness for the three tree-capable protocols (SS, SS+RT, HS) and
// compares the simulated tree against the per-path chain-CTMC composition
// (analytic/tree_paths.hpp).  All five protocols run on trees since the
// StateSlot refactor, but SS+ER and SS+RTR differ from SS/SS+RT only by
// explicit removal, which never fires in this infinite-lifetime static
// workload, so their rows would duplicate SS/SS+RT bit-for-bit and are
// omitted (bench/fig_leaf_churn is where the five genuinely diverge).
//
// All runs fan out over the parallel engine keyed by (scenario, protocol,
// replica), so the sweep is bit-identical at any thread count.  With
// --quick the binary (a) re-runs the grid at 1, 2 and 8 threads and exits 1
// on any bit difference, and (b) re-runs the fan-out-1 scenarios through
// the chain harness (run_multi_hop) and exits 1 unless the tree harness
// reproduced them bit-for-bit -- the degenerate-tree lock, CI-enforced.
//
// Usage: fig_tree_fanout [--quick] [--csv PATH] [--threads N]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/parallel.hpp"
#include "exp/table.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/tree_run.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sigcomp;

constexpr double kMeanLoss = 0.05;
constexpr std::uint64_t kBaseSeed = 7;

struct Scenario {
  std::size_t fanout = 1;
  std::size_t depth = 1;
  double burst = 0.0;  ///< 0 = iid; otherwise GE mean burst length
  analytic::TreeParams params;

  [[nodiscard]] std::string shape() const {
    return "f" + std::to_string(fanout) + " d" + std::to_string(depth);
  }
  [[nodiscard]] std::string loss_label() const {
    return burst <= 0.0 ? "iid"
                        : "ge burst " + std::to_string(static_cast<int>(burst));
  }
};

MultiHopParams base_params(double burst) {
  MultiHopParams base;
  base.loss = kMeanLoss;
  if (burst > 0.0) base = base.with_bursty_loss(burst);
  return base;
}

std::vector<Scenario> build_scenarios(bool quick) {
  const std::vector<std::pair<std::size_t, std::size_t>> shapes =
      quick ? std::vector<std::pair<std::size_t, std::size_t>>{
                  {1, 3}, {2, 2}, {4, 2}}
            : std::vector<std::pair<std::size_t, std::size_t>>{
                  {1, 3}, {2, 1}, {2, 2}, {2, 3}, {4, 2}, {8, 1}};
  const std::vector<double> bursts =
      quick ? std::vector<double>{0.0, 8.0}
            : std::vector<double>{0.0, 4.0, 16.0};
  std::vector<Scenario> out;
  for (const auto& [fanout, depth] : shapes) {
    for (const double burst : bursts) {
      Scenario s;
      s.fanout = fanout;
      s.depth = depth;
      s.burst = burst;
      s.params = analytic::TreeParams::balanced(base_params(burst), fanout,
                                                depth);
      out.push_back(std::move(s));
    }
  }
  return out;
}

/// Reduced view of one (scenario, protocol) cell across replicas.
struct Cell {
  sim::ConfidenceInterval inconsistency;
  double worst_leaf = 0.0;
  double rate = 0.0;
};

/// Every replica result of the whole grid, in (scenario, protocol, replica)
/// order -- the unit the thread-identity check compares bit-for-bit.
std::vector<protocols::TreeSimResult> run_grid(
    const std::vector<Scenario>& scenarios, std::size_t replications,
    double duration, exp::ParallelSweep& engine) {
  const std::size_t protocols_n = kPaperMultiHopProtocols.size();
  const std::size_t jobs = scenarios.size() * protocols_n * replications;
  return engine.map_indexed(jobs, [&](std::size_t job) {
    const std::size_t replica = job % replications;
    const std::size_t cell = job / replications;
    const std::size_t protocol = cell % protocols_n;
    const std::size_t scenario = cell / protocols_n;
    protocols::TreeSimOptions options;
    options.seed = exp::replica_seed(kBaseSeed, cell, replica);
    options.duration = duration;
    return protocols::run_tree(kPaperMultiHopProtocols[protocol],
                               scenarios[scenario].params, options);
  });
}

Cell reduce_cell(const std::vector<protocols::TreeSimResult>& grid,
                 std::size_t cell, std::size_t replications) {
  sim::RunningStats inconsistency;
  sim::RunningStats worst_leaf;
  sim::RunningStats rate;
  for (std::size_t r = 0; r < replications; ++r) {
    const protocols::TreeSimResult& run = grid[cell * replications + r];
    inconsistency.add(run.metrics.inconsistency);
    worst_leaf.add(*std::max_element(run.leaf_path_inconsistency.begin(),
                                     run.leaf_path_inconsistency.end()));
    rate.add(run.metrics.raw_message_rate);
  }
  Cell out;
  out.inconsistency = sim::confidence_interval_95(inconsistency);
  out.worst_leaf = worst_leaf.mean();
  out.rate = rate.mean();
  return out;
}

bool identical(const std::vector<protocols::TreeSimResult>& a,
               const std::vector<protocols::TreeSimResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].metrics.inconsistency != b[i].metrics.inconsistency ||
        a[i].messages != b[i].messages ||
        a[i].relay_timeouts != b[i].relay_timeouts ||
        a[i].leaf_path_inconsistency != b[i].leaf_path_inconsistency) {
      return false;
    }
  }
  return true;
}

/// Re-runs every fan-out-1 (scenario, protocol, replica) job through the
/// chain harness and demands bit-identical results from the tree harness.
bool degenerate_matches_chain(const std::vector<Scenario>& scenarios,
                              const std::vector<protocols::TreeSimResult>& grid,
                              std::size_t replications, double duration) {
  const std::size_t protocols_n = kPaperMultiHopProtocols.size();
  bool ok = true;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    if (scenarios[s].fanout != 1) continue;
    MultiHopParams chain = base_params(scenarios[s].burst);
    chain.hops = scenarios[s].depth;
    for (std::size_t p = 0; p < protocols_n; ++p) {
      const std::size_t cell = s * protocols_n + p;
      for (std::size_t r = 0; r < replications; ++r) {
        protocols::MultiHopSimOptions options;
        options.seed = exp::replica_seed(kBaseSeed, cell, r);
        options.duration = duration;
        const protocols::MultiHopSimResult chain_run =
            protocols::run_multi_hop(kPaperMultiHopProtocols[p], chain, options);
        const protocols::TreeSimResult& tree_run = grid[cell * replications + r];
        if (tree_run.metrics.inconsistency != chain_run.metrics.inconsistency ||
            tree_run.messages != chain_run.messages ||
            tree_run.relay_timeouts != chain_run.relay_timeouts ||
            tree_run.node_inconsistency != chain_run.hop_inconsistency) {
          std::cerr << "FAIL: fan-out-1 tree diverged from the chain harness ("
                    << scenarios[s].shape() << ' ' << scenarios[s].loss_label()
                    << ' ' << to_string(kPaperMultiHopProtocols[p]) << " replica "
                    << r << ")\n";
          ok = false;
        }
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) try {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t replications = quick ? 2 : 5;
  const double duration = quick ? 1500.0 : 20000.0;
  const std::vector<Scenario> scenarios = build_scenarios(quick);
  const std::size_t protocols_n = kPaperMultiHopProtocols.size();

  exp::ParallelSweep engine(exp::threads_from_args(argc, argv));
  const std::vector<protocols::TreeSimResult> grid =
      run_grid(scenarios, replications, duration, engine);

  exp::Table table(
      "Tree fan-out figure: per-edge mean loss " + std::to_string(kMeanLoss) +
          " (model = worst root-to-leaf path through the chain CTMC)",
      {"shape", "receivers", "loss proc", "protocol", "I model(worst path)",
       "I (sim)", "I ci95", "worst leaf I", "rate (msg/s)", "msg/s/receiver"});
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    const double receivers =
        static_cast<double>(scenario.params.tree.leaf_count());
    for (std::size_t p = 0; p < protocols_n; ++p) {
      const ProtocolKind kind = kPaperMultiHopProtocols[p];
      const Cell cell =
          reduce_cell(grid, s * protocols_n + p, replications);
      const analytic::TreePathMetrics worst =
          analytic::worst_tree_path(kind, scenario.params);
      table.add_row({scenario.shape(), receivers, scenario.loss_label(),
                     std::string(to_string(kind)), worst.metrics.inconsistency,
                     cell.inconsistency.mean, cell.inconsistency.half_width,
                     cell.worst_leaf, cell.rate, cell.rate / receivers});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: at fixed per-edge loss, fan-out multiplies receivers "
         "without deepening paths, so per-receiver consistency holds while "
         "total message cost scales with the edge count; depth is what "
         "degrades the worst path.  Burstiness at equal mean loss hurts "
         "pure soft state the most, exactly as on chains -- and the "
         "per-path chain model keeps tracking each leaf.\n";

  bool ok = true;
  if (quick) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      exp::ParallelSweep check(threads);
      if (!identical(grid, run_grid(scenarios, replications, duration, check))) {
        std::cerr << "FAIL: results at " << threads
                  << " threads differ from the --threads run\n";
        ok = false;
      }
    }
    std::cout << (ok ? "bit-identity across 1/2/8 threads: OK\n"
                     : "bit-identity across 1/2/8 threads: FAILED\n");
    const bool degenerate_ok =
        degenerate_matches_chain(scenarios, grid, replications, duration);
    std::cout << (degenerate_ok
                      ? "fan-out-1 tree == chain harness bit-for-bit: OK\n"
                      : "fan-out-1 tree == chain harness bit-for-bit: FAILED\n");
    ok = ok && degenerate_ok;
  }

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
