#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"

namespace sigcomp {
namespace {

TEST(Evaluator, SingleHopFacadeMatchesDirectModel) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  for (const ProtocolKind kind : kAllProtocols) {
    const Metrics facade = evaluate_analytic(kind, params);
    const Metrics direct = analytic::SingleHopModel(kind, params).metrics();
    EXPECT_DOUBLE_EQ(facade.inconsistency, direct.inconsistency) << to_string(kind);
    EXPECT_DOUBLE_EQ(facade.message_rate, direct.message_rate) << to_string(kind);
  }
}

TEST(Evaluator, MultiHopFacadeMatchesDirectModel) {
  const MultiHopParams params = MultiHopParams::reservation_defaults();
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const Metrics facade = evaluate_analytic(kind, params);
    const Metrics direct = analytic::MultiHopModel(kind, params).metrics();
    EXPECT_DOUBLE_EQ(facade.inconsistency, direct.inconsistency) << to_string(kind);
    EXPECT_DOUBLE_EQ(facade.raw_message_rate, direct.raw_message_rate)
        << to_string(kind);
  }
}

TEST(Evaluator, SimulatedFacadeRunsBothSettings) {
  protocols::SimOptions single_options;
  single_options.sessions = 30;
  const auto single = evaluate_simulated(
      ProtocolKind::kSSER, SingleHopParams::kazaa_defaults(), single_options);
  EXPECT_EQ(single.sessions, 30u);

  MultiHopParams mh = MultiHopParams::reservation_defaults();
  mh.hops = 3;
  protocols::MultiHopSimOptions multi_options;
  multi_options.duration = 500.0;
  const auto multi = evaluate_simulated(ProtocolKind::kSS, mh, multi_options);
  EXPECT_EQ(multi.hop_inconsistency.size(), 3u);
}

TEST(Evaluator, CompareAllSingleHopCoversAllProtocolsInOrder) {
  const auto rows = compare_all(SingleHopParams::kazaa_defaults());
  ASSERT_EQ(rows.size(), kAllProtocols.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].kind, kAllProtocols[i]);
    EXPECT_GT(rows[i].metrics.inconsistency, 0.0);
  }
}

TEST(Evaluator, CompareAllMultiHopCoversPaperProtocols) {
  const auto rows = compare_all(MultiHopParams::reservation_defaults());
  ASSERT_EQ(rows.size(), kMultiHopProtocols.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].kind, kMultiHopProtocols[i]);
  }
}

TEST(Evaluator, CompareAllReproducesHeadlineClaims) {
  // The abstract's claims as executable assertions.
  const auto rows = compare_all(SingleHopParams::kazaa_defaults());
  const auto metric = [&](ProtocolKind kind) {
    for (const auto& row : rows) {
      if (row.kind == kind) return row.metrics;
    }
    throw std::logic_error("protocol missing");
  };
  // "soft-state + explicit removal substantially improves consistency ...
  // while introducing little additional signaling overhead"
  EXPECT_LT(metric(ProtocolKind::kSSER).inconsistency,
            0.6 * metric(ProtocolKind::kSS).inconsistency);
  EXPECT_LT(metric(ProtocolKind::kSSER).message_rate,
            1.05 * metric(ProtocolKind::kSS).message_rate);
  // "reliable explicit setup/update/removal achieves comparable (and
  // sometimes better) consistency than hard state"
  EXPECT_LE(metric(ProtocolKind::kSSRTR).inconsistency,
            metric(ProtocolKind::kHS).inconsistency * 1.05);
}

}  // namespace
}  // namespace sigcomp
