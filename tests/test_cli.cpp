#include "exp/cli.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sigcomp::exp {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test parser");
  parser.add_option("loss", "loss rate", "0.02");
  parser.add_option("count", "a count", "10");
  parser.add_flag("verbose", "be chatty");
  return parser;
}

TEST(ArgParser, DefaultsApplyWhenNotPassed) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get("loss"), "0.02");
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.02);
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_FALSE(parser.passed("loss"));
}

TEST(ArgParser, SpaceSeparatedValue) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss", "0.1"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.1);
  EXPECT_TRUE(parser.passed("loss"));
}

TEST(ArgParser, EqualsSeparatedValue) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss=0.25"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.25);
}

TEST(ArgParser, FlagsAndPositionals) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "alpha", "--verbose", "beta"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_TRUE(parser.flag("verbose"));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "alpha");
  EXPECT_EQ(parser.positional()[1], "beta");
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(parser.parse(3, argv));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.error().find("requires a value"), std::string::npos);
}

TEST(ArgParser, FlagWithValueFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--help", "--bogus"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_TRUE(parser.help_requested());
}

TEST(ArgParser, HelpTextListsOptionsAndDefaults) {
  ArgParser parser = make_parser();
  const std::string help = parser.help();
  EXPECT_NE(help.find("--loss"), std::string::npos);
  EXPECT_NE(help.find("default: 0.02"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(ArgParser, NumericValidation) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss", "abc", "--count", "12"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_THROW((void)parser.get_double("loss"), std::invalid_argument);
  EXPECT_EQ(parser.get_long("count"), 12);
  const char* argv2[] = {"prog", "--count", "12.5"};
  ArgParser parser2 = make_parser();
  ASSERT_TRUE(parser2.parse(3, argv2));
  EXPECT_THROW((void)parser2.get_long("count"), std::invalid_argument);
}

TEST(ArgParser, GetChoiceAcceptsAllowedValuesOnly) {
  ArgParser parser("prog", "test parser");
  parser.add_option("loss-model", "loss process", "iid");
  const char* argv[] = {"prog", "--loss-model", "ge"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_choice("loss-model", {"iid", "ge"}), "ge");
  EXPECT_THROW((void)parser.get_choice("loss-model", {"iid", "bernoulli"}),
               std::invalid_argument);
  try {
    (void)parser.get_choice("loss-model", {"iid", "bernoulli"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("iid, bernoulli"), std::string::npos);
  }
}

TEST(ArgParser, UnregisteredAccessIsALogicError) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_THROW((void)parser.get("nope"), std::logic_error);
  EXPECT_THROW((void)parser.flag("loss"), std::logic_error);   // not a flag
  EXPECT_THROW((void)parser.get("verbose"), std::logic_error); // is a flag
}

TEST(ArgParser, LastValueWins) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss", "0.1", "--loss=0.3"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.3);
}

TEST(ArgParser, NumericErrorsNamePartialParses) {
  // strtod/strtol stop at the first bad character; a partially numeric
  // value ("12abc", "1e") must still throw, not silently truncate.
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss", "0.5x", "--count", "12abc"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_THROW((void)parser.get_double("loss"), std::invalid_argument);
  EXPECT_THROW((void)parser.get_long("count"), std::invalid_argument);
  try {
    (void)parser.get_long("count");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--count"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12abc"), std::string::npos);
  }
}

// ------------------------------------------------------- topology files --

TEST(ParseTreeSpec, ParsesParentVectorWithComments) {
  std::istringstream in(
      "# balanced binary tree, depth 2\n"
      "0 0  # two children of the root\n"
      "1 1 2 2\n");
  const TreeSpec spec = parse_tree_spec(in, "inline");
  EXPECT_EQ(spec.nodes(), 7u);
  EXPECT_EQ(spec.edges(), 6u);
  EXPECT_EQ(spec.leaf_count(), 4u);
  EXPECT_EQ(spec.depth(), 2u);
}

TEST(ParseTreeSpec, RejectsNonNumericToken) {
  std::istringstream in("0 zero 1");
  try {
    (void)parse_tree_spec(in, "bad.tree");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The stream name labels the message, and the offending token is named.
    EXPECT_NE(std::string(e.what()).find("bad.tree"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("zero"), std::string::npos);
  }
}

TEST(ParseTreeSpec, RejectsNegativeAndPartialTokens) {
  // strtoul would happily wrap "-1" and stop at the 'x' of "3x"; both must
  // be rejected as whole tokens instead.
  std::istringstream negative("0 -1");
  EXPECT_THROW((void)parse_tree_spec(negative, "neg"), std::invalid_argument);
  std::istringstream partial("0 3x");
  EXPECT_THROW((void)parse_tree_spec(partial, "part"), std::invalid_argument);
}

TEST(ParseTreeSpec, RejectsEmptyAndCommentOnlyInput) {
  std::istringstream empty("");
  EXPECT_THROW((void)parse_tree_spec(empty, "empty"), std::invalid_argument);
  std::istringstream comments("# nothing but prose\n# on every line\n");
  try {
    (void)parse_tree_spec(comments, "comments");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no edges"), std::string::npos);
  }
}

TEST(ParseTreeSpec, RejectsForwardParentReference) {
  // parent[1] = 5 violates the topological-order invariant; the TreeSpec
  // validation message must come back prefixed with the stream name.
  std::istringstream in("0 5 1");
  try {
    (void)parse_tree_spec(in, "fwd.tree");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fwd.tree"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("precede"), std::string::npos);
  }
}

TEST(LoadTreeFile, MissingFileNamesThePath) {
  try {
    (void)load_tree_file("/nonexistent/sigcomp-topology.tree");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sigcomp-topology.tree"),
              std::string::npos);
  }
}

TEST(LoadTreeFile, RoundTripsAFileOnDisk) {
  const std::string path = testing::TempDir() + "sigcomp_cli_test.tree";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "# 3-hop chain\n0 1 2\n";
  }
  const TreeSpec spec = load_tree_file(path);
  EXPECT_EQ(spec.edges(), 3u);
  EXPECT_EQ(spec.leaf_count(), 1u);
  EXPECT_EQ(spec.depth(), 3u);
  std::remove(path.c_str());
}

TEST(TreeShapeSummary, DescribesBalancedTree) {
  const std::string summary =
      tree_shape_summary(TreeSpec::balanced(/*fanout=*/2, /*depth=*/2,
                                            /*receivers=*/4));
  EXPECT_EQ(summary,
            "7 nodes, 6 edges, 4 receiver(s), depth 2, fanout histogram 2:3");
}

TEST(TreeShapeSummary, HistogramCoversMixedFanout) {
  // Root with three children, one of which has a single child: fan-outs
  // {3, 1} -> histogram "1:1 3:1", two leaves at different depths.
  TreeSpec spec;
  spec.parent = {0, 0, 0, 1};
  spec.validate();
  const std::string summary = tree_shape_summary(spec);
  EXPECT_NE(summary.find("5 nodes, 4 edges"), std::string::npos);
  EXPECT_NE(summary.find("fanout histogram 1:1 3:1"), std::string::npos);
}

}  // namespace
}  // namespace sigcomp::exp
