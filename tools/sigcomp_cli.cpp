// sigcomp -- command-line front end to the signaling-protocol library.
//
//   sigcomp_cli evaluate  [--protocol SS+ER] [--loss 0.05] [--sim] ...
//   sigcomp_cli multihop  [--hops 20] [--per-hop] ...
//   sigcomp_cli tree      [--fanout 2] [--depth 3] [--receivers 6] ...
//   sigcomp_cli sweep     --param refresh --from 0.1 --to 100 [--points 15]
//   sigcomp_cli latency   [--loss 0.1]
//   sigcomp_cli tune      [--weight 10]
//   sigcomp_cli scale     [--sessions 100000] [--arrival-rate 2000] ...
//
// Every command prints an aligned table; `--csv PATH` writes the same rows
// as CSV.  The full flag reference with worked examples is docs/CLI.md.
#include <algorithm>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "analytic/latency.hpp"
#include "analytic/multi_hop.hpp"
#include "analytic/tree_paths.hpp"
#include "core/evaluator.hpp"
#include "exp/cli.hpp"
#include "exp/parallel.hpp"
#include "exp/sensitivity.hpp"
#include "exp/session_farm.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"
#include "exp/tuning.hpp"
#include "protocols/tree_run.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sigcomp;

void add_loss_model_options(exp::ArgParser& parser) {
  parser.add_option("loss-model",
                    "channel loss process: iid (Bernoulli, the paper) or ge "
                    "(Gilbert-Elliott bursty loss)", "iid");
  parser.add_option("p-gb", "GE: good->bad transition probability per message",
                    "0");
  parser.add_option("p-bg", "GE: bad->good transition probability per message",
                    "1");
  parser.add_option("loss-bad", "GE: drop probability in the bad state", "1");
  parser.add_option("loss-good", "GE: drop probability in the good state", "0");
  parser.add_option("burst",
                    "GE shortcut: mean burst length in messages; derives "
                    "p-gb/p-bg so the stationary mean equals --loss", "0");
}

/// Applies the --loss-model family of flags to a parameter set (single- or
/// multi-hop: both carry the same loss_model/ge_* fields).  Under GE the
/// chain comes either from --burst (derived so the stationary mean equals
/// --loss) or from explicit --p-gb/--p-bg, in which case the mean-loss
/// field `p.loss` is re-derived from the chain's stationary distribution
/// so the analytic columns stay comparable at equal average loss.
/// `analytic_only` commands still accept the flags (the explicit-chain form
/// moves their mean), but the user is told burstiness itself cannot show up
/// in purely analytic numbers.
template <typename Params>
void apply_loss_model(const exp::ArgParser& parser, Params& p,
                      bool analytic_only) {
  const std::string model = parser.get_choice("loss-model", {"iid", "ge"});
  if (model == "iid") {
    // A chain flag without --loss-model ge would be a silent no-op; the
    // user almost certainly forgot the selector.
    for (const char* flag : {"burst", "p-gb", "p-bg", "loss-bad", "loss-good"}) {
      if (parser.passed(flag)) {
        throw std::invalid_argument("--" + std::string(flag) +
                                    " requires --loss-model ge");
      }
    }
    return;
  }
  if (analytic_only) {
    std::cerr << "note: the analytic model sees only the average loss rate; "
                 "--loss-model ge changes simulated columns (--sim) only\n";
  }
  if (parser.passed("burst")) {
    // --burst derives the whole chain; a simultaneously passed raw-chain
    // flag would be silently overridden, so reject the combination.
    for (const char* flag : {"p-gb", "p-bg", "loss-good"}) {
      if (parser.passed(flag)) {
        throw std::invalid_argument(
            "--burst derives the GE chain from --loss; it cannot be "
            "combined with --" + std::string(flag));
      }
    }
    p = p.with_bursty_loss(parser.get_double("burst"),
                           parser.get_double("loss-bad"));
    return;
  }
  if (!parser.passed("p-gb")) {
    throw std::invalid_argument(
        "--loss-model ge needs either --burst (mean matched to --loss) or "
        "an explicit chain via --p-gb/--p-bg");
  }
  p.loss_model = sim::LossModel::kGilbertElliott;
  p.ge_p_gb = parser.get_double("p-gb");
  p.ge_p_bg = parser.get_double("p-bg");
  p.ge_loss_bad = parser.get_double("loss-bad");
  p.ge_loss_good = parser.get_double("loss-good");
  p.loss = p.loss_config().mean_loss();
}

void add_single_hop_options(exp::ArgParser& parser) {
  parser.add_option("loss", "channel loss probability pl", "0.02");
  parser.add_option("delay", "one-way channel delay D in seconds", "0.03");
  parser.add_option("update-interval", "mean seconds between updates (1/lu)", "20");
  parser.add_option("lifetime", "mean session lifetime in seconds (1/lr)", "1800");
  parser.add_option("refresh", "refresh timer R in seconds", "5");
  parser.add_option("timeout", "state-timeout timer T in seconds", "15");
  parser.add_option("retrans", "retransmission timer Gamma in seconds", "0.12");
  parser.add_option("false-signal", "HS external false-signal rate (1/s)", "1e-4");
  add_loss_model_options(parser);
}

SingleHopParams single_hop_params(const exp::ArgParser& parser,
                                  bool analytic_only = true) {
  SingleHopParams p;
  p.loss = parser.get_double("loss");
  p.delay = parser.get_double("delay");
  const double update_interval = parser.get_double("update-interval");
  p.update_rate = update_interval <= 0.0 ? 0.0 : 1.0 / update_interval;
  p.removal_rate = 1.0 / parser.get_double("lifetime");
  p.refresh_timer = parser.get_double("refresh");
  p.timeout_timer = parser.get_double("timeout");
  p.retrans_timer = parser.get_double("retrans");
  p.false_signal_rate = parser.get_double("false-signal");
  apply_loss_model(parser, p, analytic_only);
  p.validate();
  return p;
}

/// Reads a count-valued option; rejects negatives before the size_t cast
/// (a raw cast would turn "-1" into a 2^64 allocation request).
std::size_t count_option(const exp::ArgParser& parser, std::string_view name) {
  const long value = parser.get_long(name);
  if (value < 0) {
    throw std::invalid_argument("--" + std::string(name) +
                                " must be >= 0, got " + std::to_string(value));
  }
  return static_cast<std::size_t>(value);
}

/// Chain parameters shared by `multihop`, `scale --hops N` and (as the
/// per-edge base of a TreeParams) `tree`.  `with_false_signal` and
/// `with_hops` reflect whether the command registers the --false-signal /
/// --hops options (multihop keeps the paper's pl^4 default; tree has no
/// --hops -- the topology flags define the shape).
MultiHopParams multi_hop_params(const exp::ArgParser& parser,
                                bool with_false_signal, bool analytic_only,
                                bool with_hops = true) {
  MultiHopParams p;
  p.hops = with_hops ? count_option(parser, "hops") : 1;
  p.loss = parser.get_double("loss");
  p.delay = parser.get_double("delay");
  const double update_interval = parser.get_double("update-interval");
  p.update_rate = update_interval <= 0.0 ? 0.0 : 1.0 / update_interval;
  p.refresh_timer = parser.get_double("refresh");
  p.timeout_timer = parser.get_double("timeout");
  p.retrans_timer = parser.get_double("retrans");
  if (with_false_signal) {
    p.false_signal_rate = parser.get_double("false-signal");
  }
  apply_loss_model(parser, p, analytic_only);
  p.validate();
  return p;
}

sim::DelayModel delay_model_option(const exp::ArgParser& parser) {
  const std::string model =
      parser.get_choice("delay-model", {"det", "exp", "pareto", "lognormal"});
  if (model == "det") return sim::DelayModel::kDeterministic;
  if (model == "pareto") return sim::DelayModel::kPareto;
  if (model == "lognormal") return sim::DelayModel::kLognormal;
  return sim::DelayModel::kExponential;
}

/// Registers --event-queue (the Simulator timer-core selector) with the
/// build's default backend.  Shared flag family: see docs/CLI.md.
void add_event_queue_option(exp::ArgParser& parser) {
  parser.add_option("event-queue",
                    "simulator event-queue backend: heap (pooled 4-ary heap) "
                    "or wheel (hashed timing wheel); pop order and results "
                    "are bit-identical, wheel is faster under timer churn",
                    sim::to_string(sim::kDefaultEventQueueBackend));
}

/// Parses --event-queue into a backend.  `simulating` is false when the
/// command's output is purely analytic (or the sim column is off): the
/// flag is still validated -- a typo never passes silently -- but the user
/// is told where it takes effect, mirroring the delay-model convention.
sim::EventQueueBackend event_queue_option(const exp::ArgParser& parser,
                                          bool simulating,
                                          const char* hint) {
  const std::string name = parser.get_choice("event-queue", {"heap", "wheel"});
  if (!simulating && parser.passed("event-queue")) {
    std::cerr << "note: --event-queue selects the simulator's timer core; "
              << hint << '\n';
  }
  return *sim::parse_event_queue_backend(name);
}

void finish(const exp::Table& table, const exp::ArgParser& parser) {
  table.print(std::cout);
  const std::string csv = parser.get("csv");
  if (!csv.empty()) table.write_csv_file(csv);
}

int cmd_evaluate(int argc, const char* const* argv) {
  exp::ArgParser parser("sigcomp_cli evaluate",
                        "Evaluate the five protocols at one parameter point "
                        "(analytic model; --sim adds a simulation column).");
  add_single_hop_options(parser);
  parser.add_option("weight", "inconsistency weight w for the cost C", "10");
  parser.add_option("sessions", "simulated sessions when --sim is given", "500");
  parser.add_option("seed", "simulation seed", "1");
  parser.add_option("replications", "simulation replicas per protocol", "5");
  parser.add_option("threads", "worker threads (0 = all cores)", "0");
  parser.add_option("delay-model",
                    "sim channel delay law: det, exp, pareto or lognormal",
                    "exp");
  parser.add_option("delay-shape",
                    "Pareto tail index / lognormal sigma of --delay-model",
                    "1.5");
  add_event_queue_option(parser);
  parser.add_option("csv", "write rows to this CSV file", "");
  parser.add_flag("sim", "also run the discrete-event simulator");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }
  const bool with_sim = parser.flag("sim");
  const SingleHopParams p = single_hop_params(parser, !with_sim);
  const double weight = parser.get_double("weight");
  // Validate the delay flags even when the sim column is off, so a typo
  // never passes silently -- but tell the user they have no effect there.
  const sim::DelayModel delay_model = delay_model_option(parser);
  const sim::EventQueueBackend event_queue = event_queue_option(
      parser, with_sim, "pass --sim to see the simulated columns");
  const sim::DelayConfig delay_config{delay_model, p.delay,
                                      parser.get_double("delay-shape")};
  delay_config.validate();
  if (!with_sim &&
      (parser.passed("delay-model") || parser.passed("delay-shape"))) {
    std::cerr << "note: --delay-model/--delay-shape affect only the "
                 "simulated columns; pass --sim to see them\n";
  }

  std::vector<std::string> headers{"protocol", "I", "M", "cost C"};
  if (with_sim) {
    headers.insert(headers.end(),
                   {"I (sim)", "I ci95", "M (sim)", "M ci95"});
  }
  std::unique_ptr<exp::ParallelSweep> engine;
  if (with_sim) {
    engine = std::make_unique<exp::ParallelSweep>(count_option(parser, "threads"));
  }

  exp::Table table("single-hop evaluation", std::move(headers));
  for (const auto& [kind, metrics] : compare_all(p)) {
    std::vector<exp::Cell> row{std::string(to_string(kind)),
                               metrics.inconsistency, metrics.message_rate,
                               integrated_cost(metrics, weight)};
    if (with_sim) {
      SimGridOptions options;
      options.sim.sessions = count_option(parser, "sessions");
      options.sim.seed = static_cast<std::uint64_t>(parser.get_long("seed"));
      options.sim.delay_model = delay_config.model;
      options.sim.delay_shape = delay_config.shape;
      options.sim.event_queue = event_queue;
      options.replications = count_option(parser, "replications");
      options.engine = engine.get();
      const exp::MetricsSummary sim =
          evaluate_grid_simulated(kind, {p}, options).front();
      row.emplace_back(sim.inconsistency.mean);
      row.emplace_back(sim.inconsistency.half_width);
      row.emplace_back(sim.message_rate.mean);
      row.emplace_back(sim.message_rate.half_width);
    }
    table.add_row(std::move(row));
  }
  finish(table, parser);
  return 0;
}

int cmd_multihop(int argc, const char* const* argv) {
  exp::ArgParser parser(
      "sigcomp_cli multihop",
      "Evaluate the five protocols on a K-hop chain.  (--per-hop prints "
      "SS, SS+RT and HS only: the chain CTMC has no removal transitions, "
      "so SS+ER and SS+RTR duplicate their base columns.)");
  parser.add_option("hops", "number of hops K", "20");
  parser.add_option("loss", "per-hop loss probability", "0.02");
  parser.add_option("delay", "per-hop delay in seconds", "0.03");
  parser.add_option("update-interval", "mean seconds between updates", "60");
  parser.add_option("refresh", "refresh timer R in seconds", "5");
  parser.add_option("timeout", "state-timeout timer T in seconds", "15");
  parser.add_option("retrans", "retransmission timer Gamma in seconds", "0.12");
  add_loss_model_options(parser);
  add_event_queue_option(parser);
  parser.add_option("csv", "write rows to this CSV file", "");
  parser.add_flag("per-hop", "print the per-hop inconsistency table instead");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }
  const MultiHopParams p =
      multi_hop_params(parser, /*with_false_signal=*/false,
                       /*analytic_only=*/true);
  (void)event_queue_option(parser, /*simulating=*/false,
                           "this command is purely analytic");

  if (parser.flag("per-hop")) {
    exp::Table table("per-hop inconsistency", {"hop", "SS", "SS+RT", "HS"});
    const analytic::MultiHopModel ss(ProtocolKind::kSS, p);
    const analytic::MultiHopModel ssrt(ProtocolKind::kSSRT, p);
    const analytic::MultiHopModel hs(ProtocolKind::kHS, p);
    for (std::size_t hop = 1; hop <= p.hops; ++hop) {
      table.add_row({static_cast<double>(hop), ss.hop_inconsistency(hop),
                     ssrt.hop_inconsistency(hop), hs.hop_inconsistency(hop)});
    }
    finish(table, parser);
    return 0;
  }

  exp::Table table("multi-hop evaluation",
                   {"protocol", "I", "rate (msg/s)"});
  for (const auto& [kind, metrics] : compare_all(p)) {
    table.add_row({std::string(to_string(kind)), metrics.inconsistency,
                   metrics.raw_message_rate});
  }
  finish(table, parser);
  return 0;
}

/// Topology shape flags shared by `tree` and `scale`.
void add_tree_shape_options(exp::ArgParser& parser) {
  parser.add_option("fanout", "children per interior tree node", "2");
  parser.add_option("depth", "edges from the root to every receiver", "2");
  parser.add_option("receivers",
                    "prune the balanced tree to exactly this many receivers "
                    "(0 = keep all fanout^depth)",
                    "0");
  parser.add_option("topology",
                    "replay a measured topology from a parent-vector file "
                    "(one integer per edge; '#' comments) instead of the "
                    "balanced --fanout/--depth shape",
                    "");
}

/// Resolves the tree shape: an explicit parent-vector file (validated, with
/// shape stats printed) or the balanced --fanout/--depth/--receivers shape.
TreeSpec tree_shape(const exp::ArgParser& parser) {
  if (parser.passed("topology")) {
    for (const char* flag : {"fanout", "depth", "receivers"}) {
      if (parser.passed(flag)) {
        throw std::invalid_argument(
            "--topology replays an explicit shape; it cannot be combined "
            "with --" + std::string(flag));
      }
    }
    const TreeSpec spec = exp::load_tree_file(parser.get("topology"));
    std::cout << "topology " << parser.get("topology") << ": "
              << exp::tree_shape_summary(spec) << '\n';
    return spec;
  }
  const std::size_t fanout = count_option(parser, "fanout");
  const std::size_t depth = count_option(parser, "depth");
  const std::size_t receivers = count_option(parser, "receivers");
  return TreeSpec::balanced(fanout, depth, receivers);
}

analytic::TreeParams tree_params(const exp::ArgParser& parser,
                                 const MultiHopParams& base) {
  return analytic::TreeParams::uniform(base, tree_shape(parser));
}

/// Registers the correlated-event scenario flag family shared by `tree`
/// and `scale` (interior-relay crashes, flash-crowd join storms, diurnal
/// rejoin rates, shared-risk subtree leave bursts).
void add_scenario_options(exp::ArgParser& parser) {
  parser.add_option("crash-rate",
                    "interior-relay crash rate (crashes/s; 0 = no crashes)",
                    "0");
  parser.add_option("crash-recovery", "mean relay downtime in seconds", "10");
  parser.add_option("detector-delay",
                    "mean HS external-failure-detector latency in seconds "
                    "(soft state repairs via refresh instead)",
                    "5");
  parser.add_option("flash-crowd",
                    "extra rejoin rate during the flash-crowd storm "
                    "(rejoins/s; 0 = no storm)",
                    "0");
  parser.add_option("flash-at", "storm trigger instant in simulated seconds",
                    "0");
  parser.add_option("flash-duration", "storm length in seconds", "60");
  parser.add_option("diurnal-period",
                    "diurnal rejoin-rate period in seconds (0 = no "
                    "modulation)",
                    "0");
  parser.add_option("diurnal-amplitude",
                    "diurnal relative amplitude in [0, 1]", "0.8");
  parser.add_option("shared-risk",
                    "shared-risk subtree leave-burst rate (bursts/s; 0 = "
                    "none)",
                    "0");
}

/// Parses and cross-validates the scenario flag family registered by
/// add_scenario_options.  `churn` is the already-parsed churn model: the
/// flash/diurnal modulations ride on its rejoin process, so they need a
/// source of detached leaves (churn or shared-risk bursts) to act on.
protocols::ScenarioOptions scenario_options(
    const exp::ArgParser& parser, const protocols::ChurnOptions& churn) {
  protocols::ScenarioOptions scenario;
  scenario.failure.crash_rate = parser.get_double("crash-rate");
  scenario.failure.recovery_time = parser.get_double("crash-recovery");
  scenario.failure.detector_delay = parser.get_double("detector-delay");
  scenario.shared_risk.burst_rate = parser.get_double("shared-risk");
  const double flash_rate = parser.get_double("flash-crowd");
  const double diurnal_period = parser.get_double("diurnal-period");
  if ((parser.passed("crash-recovery") || parser.passed("detector-delay")) &&
      !scenario.failure.enabled()) {
    throw std::invalid_argument(
        "--crash-recovery/--detector-delay need --crash-rate > 0 (no "
        "crashes, nothing to recover or detect)");
  }
  if ((parser.passed("flash-at") || parser.passed("flash-duration")) &&
      flash_rate <= 0.0) {
    throw std::invalid_argument(
        "--flash-at/--flash-duration need --flash-crowd > 0 (no storm to "
        "place)");
  }
  if (parser.passed("diurnal-amplitude") && diurnal_period <= 0.0) {
    throw std::invalid_argument(
        "--diurnal-amplitude needs --diurnal-period > 0 (no sinusoid to "
        "scale)");
  }
  if (flash_rate > 0.0 && diurnal_period > 0.0) {
    throw std::invalid_argument(
        "--flash-crowd and --diurnal-period are mutually exclusive rejoin "
        "modulations");
  }
  if (flash_rate > 0.0) {
    if (!churn.enabled() && !scenario.shared_risk.enabled()) {
      throw std::invalid_argument(
          "--flash-crowd needs detached leaves to storm back: enable churn "
          "(--leaf-lifetime > 0) or shared-risk bursts (--shared-risk > 0)");
    }
    scenario.arrival = protocols::ArrivalConfig::flash_crowd(
        parser.get_double("flash-at"), flash_rate,
        parser.get_double("flash-duration"));
  } else if (diurnal_period > 0.0) {
    if (churn.rejoin_rate <= 0.0) {
      throw std::invalid_argument(
          "--diurnal-period modulates the rejoin rate; it needs "
          "--churn-rate > 0");
    }
    scenario.arrival = protocols::ArrivalConfig::diurnal(
        diurnal_period, parser.get_double("diurnal-amplitude"));
  }
  scenario.validate();
  return scenario;
}

int cmd_tree(int argc, const char* const* argv) {
  exp::ArgParser parser(
      "sigcomp_cli tree",
      "Evaluate the five protocols on a rooted signaling tree "
      "(multicast-style fan-out: sender at the root, receivers at the "
      "leaves).  The model column composes the chain CTMC along each "
      "root-to-leaf path; the sim columns run the shared tree.  With "
      "--leaf-lifetime the leaves churn IGMP-style (join/leave a live "
      "tree) and the table adds per-join setup latency and per-leave "
      "orphan-window columns.");
  add_tree_shape_options(parser);
  parser.add_option("leaf-lifetime",
                    "mean seconds a leaf stays joined before leaving "
                    "(0 = static tree, no churn)",
                    "0");
  parser.add_option("churn-rate",
                    "rejoin rate of a departed leaf (rejoins/s; 0 = leaves "
                    "never return)",
                    "0");
  add_scenario_options(parser);
  parser.add_option("loss", "per-edge loss probability", "0.02");
  parser.add_option("delay", "per-edge delay in seconds", "0.03");
  parser.add_option("update-interval", "mean seconds between updates", "60");
  parser.add_option("refresh", "refresh timer R in seconds", "5");
  parser.add_option("timeout", "state-timeout timer T in seconds", "15");
  parser.add_option("retrans", "retransmission timer Gamma in seconds", "0.12");
  parser.add_option("false-signal",
                    "HS per-relay external false-signal rate (1/s)", "1.6e-07");
  add_loss_model_options(parser);
  parser.add_option("duration", "simulated seconds per replication", "20000");
  parser.add_option("seed", "simulation seed", "1");
  parser.add_option("replications", "simulation replicas per protocol", "5");
  parser.add_option("threads", "worker threads (0 = all cores)", "0");
  parser.add_option("delay-model",
                    "channel delay law: det, exp, pareto or lognormal", "exp");
  parser.add_option("delay-shape",
                    "Pareto tail index / lognormal sigma of --delay-model",
                    "1.5");
  add_event_queue_option(parser);
  parser.add_option("csv", "write rows to this CSV file", "");
  parser.add_flag("per-leaf", "print the per-leaf path table instead");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }

  const MultiHopParams base =
      multi_hop_params(parser, /*with_false_signal=*/true,
                       /*analytic_only=*/false, /*with_hops=*/false);
  const analytic::TreeParams tree = tree_params(parser, base);

  protocols::TreeSimOptions options;
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed"));
  options.duration = parser.get_double("duration");
  options.delay_model = delay_model_option(parser);
  options.delay_shape = parser.get_double("delay-shape");
  options.event_queue = event_queue_option(parser, /*simulating=*/true, "");
  options.churn.leaf_lifetime = parser.get_double("leaf-lifetime");
  options.churn.rejoin_rate = parser.get_double("churn-rate");
  options.churn.validate();
  if (parser.passed("churn-rate") && !options.churn.enabled()) {
    throw std::invalid_argument(
        "--churn-rate needs --leaf-lifetime > 0 (nothing churns until a "
        "leaf can leave)");
  }
  options.scenario = scenario_options(parser, options.churn);
  const bool churning = options.churn.enabled();
  const bool crashing = options.scenario.failure.enabled();
  const std::size_t replications = count_option(parser, "replications");
  if (replications == 0) {
    throw std::invalid_argument("tree: need --replications >= 1");
  }
  exp::ParallelSweep engine(count_option(parser, "threads"));

  // Replicas fan out across the pool; reducing in replica order keeps the
  // output bit-identical to a serial run (seeds seed, seed+1, ..., the
  // run_tree_replicated convention).
  const auto replicate = [&](ProtocolKind kind) {
    return engine.map_indexed(replications, [&](std::size_t r) {
      protocols::TreeSimOptions rep = options;
      rep.seed = options.seed + r;
      return protocols::run_tree(kind, tree, rep);
    });
  };

  const std::size_t leaf_count = tree.tree.leaf_count();
  if (parser.flag("per-leaf")) {
    std::vector<std::string> headers{"leaf", "hops"};
    for (const ProtocolKind kind : kMultiHopProtocols) {
      headers.push_back("I model(" + std::string(to_string(kind)) + ")");
      headers.push_back("I sim(" + std::string(to_string(kind)) + ")");
    }
    exp::Table table(
        "per-leaf path inconsistency (model = chain CTMC along the path)",
        std::move(headers));
    // One evaluate_tree_paths per protocol; leaf ids and hop counts are
    // protocol-independent, so the first protocol's paths also label the
    // rows.
    std::vector<std::vector<analytic::TreePathMetrics>> model_columns;
    std::vector<std::vector<double>> sim_columns;
    for (const ProtocolKind kind : kMultiHopProtocols) {
      model_columns.push_back(analytic::evaluate_tree_paths(kind, tree));
      std::vector<double> sim_column(leaf_count, 0.0);
      for (const protocols::TreeSimResult& run : replicate(kind)) {
        for (std::size_t l = 0; l < leaf_count; ++l) {
          sim_column[l] += run.leaf_path_inconsistency[l] /
                           static_cast<double>(replications);
        }
      }
      sim_columns.push_back(std::move(sim_column));
    }
    for (std::size_t l = 0; l < leaf_count; ++l) {
      std::vector<exp::Cell> row{
          static_cast<double>(model_columns.front()[l].leaf),
          static_cast<double>(model_columns.front()[l].hops)};
      for (std::size_t k = 0; k < model_columns.size(); ++k) {
        row.emplace_back(model_columns[k][l].metrics.inconsistency);
        row.emplace_back(sim_columns[k][l]);
      }
      table.add_row(std::move(row));
    }
    finish(table, parser);
    return 0;
  }

  std::vector<std::string> headers{"protocol", "I model(worst path)",
                                   "I (sim)", "I ci95", "worst leaf I",
                                   "rate (msg/s)", "timeouts"};
  if (churning) {
    headers.insert(headers.end(), {"joins", "setup lat (s)", "leaves",
                                   "orphan win (s)", "orphan lb (s)"});
  }
  if (crashing) {
    headers.insert(headers.end(), {"crashes", "recoveries"});
  }
  exp::Table table("tree evaluation: " + exp::tree_shape_summary(tree.tree) +
                       (churning ? ", churning leaves" : "") +
                       (crashing ? ", crashing relays" : ""),
                   std::move(headers));
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const analytic::TreePathMetrics worst = analytic::worst_tree_path(kind, tree);
    const std::vector<protocols::TreeSimResult> runs = replicate(kind);
    sim::RunningStats inconsistency;
    sim::RunningStats worst_leaf;
    sim::RunningStats rate;
    double timeouts = 0.0;
    double crashes = 0.0;
    double recoveries = 0.0;
    protocols::ChurnReport churn;
    for (const protocols::TreeSimResult& run : runs) {
      inconsistency.add(run.metrics.inconsistency);
      worst_leaf.add(*std::max_element(run.leaf_path_inconsistency.begin(),
                                       run.leaf_path_inconsistency.end()));
      rate.add(run.metrics.raw_message_rate);
      timeouts += static_cast<double>(run.relay_timeouts) /
                  static_cast<double>(replications);
      crashes += static_cast<double>(run.relay_crashes) /
                 static_cast<double>(replications);
      recoveries += static_cast<double>(run.relay_recoveries) /
                    static_cast<double>(replications);
      churn.absorb(run.churn);
    }
    const sim::ConfidenceInterval ci = sim::confidence_interval_95(inconsistency);
    std::vector<exp::Cell> row{std::string(to_string(kind)),
                               worst.metrics.inconsistency, ci.mean,
                               ci.half_width, worst_leaf.mean(), rate.mean(),
                               timeouts};
    if (churning) {
      row.emplace_back(static_cast<double>(churn.joins));
      row.emplace_back(churn.mean_setup_latency());
      row.emplace_back(static_cast<double>(churn.leaves));
      row.emplace_back(churn.mean_orphan_window());
      row.emplace_back(churn.mean_orphan_window_bound());
    }
    if (crashing) {
      row.emplace_back(crashes);
      row.emplace_back(recoveries);
    }
    table.add_row(std::move(row));
  }
  finish(table, parser);
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  exp::ArgParser parser(
      "sigcomp_cli sweep",
      "Sweep one single-hop parameter and print I per protocol.  --param is "
      "one of: loss, delay, refresh, timeout, retrans, lifetime, "
      "update-interval.");
  add_single_hop_options(parser);
  parser.add_option("param", "parameter to sweep", "refresh");
  parser.add_option("from", "sweep start", "0.1");
  parser.add_option("to", "sweep end", "100");
  parser.add_option("points", "number of sweep points", "15");
  parser.add_option("threads", "worker threads (0 = all cores)", "0");
  add_event_queue_option(parser);
  parser.add_option("csv", "write rows to this CSV file", "");
  parser.add_flag("linear", "linear spacing instead of logarithmic");
  parser.add_flag("couple-timeout", "keep T = 3R while sweeping refresh");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }
  const SingleHopParams base = single_hop_params(parser);
  (void)event_queue_option(parser, /*simulating=*/false,
                           "this command is purely analytic");
  const std::string param = parser.get("param");
  const auto apply = [&](double v) {
    SingleHopParams p = base;
    if (param == "loss") {
      if (p.loss_model == sim::LossModel::kGilbertElliott) {
        // Sweep the mean at constant burstiness: rebuild the chain per
        // point (keeping burst length and per-state drop probabilities)
        // so `loss` stays coherent with the GE stationary mean.
        if (p.ge_p_bg <= 0.0) {
          throw std::invalid_argument(
              "cannot sweep loss under an absorbing GE chain (p-bg = 0)");
        }
        const sim::LossConfig matched =
            sim::LossConfig::gilbert_elliott_matched(
                v, 1.0 / base.ge_p_bg, base.ge_loss_bad, base.ge_loss_good);
        p.ge_p_gb = matched.p_gb;
        p.ge_p_bg = matched.p_bg;
      }
      p.loss = v;
    } else if (param == "delay") {
      p.delay = v;
    } else if (param == "refresh") {
      if (parser.flag("couple-timeout")) {
        p = p.with_refresh_scaled_timeout(v);
      } else {
        p.refresh_timer = v;
      }
    } else if (param == "timeout") {
      p.timeout_timer = v;
    } else if (param == "retrans") {
      p.retrans_timer = v;
    } else if (param == "lifetime") {
      p.removal_rate = 1.0 / v;
    } else if (param == "update-interval") {
      p.update_rate = 1.0 / v;
    } else {
      throw std::invalid_argument("unknown sweep parameter: " + param);
    }
    p.validate();
    return p;
  };

  const double from = parser.get_double("from");
  const double to = parser.get_double("to");
  const std::size_t points = count_option(parser, "points");
  const std::vector<double> axis = parser.flag("linear")
                                       ? exp::lin_space(from, to, points)
                                       : exp::log_space(from, to, points);

  std::vector<SingleHopParams> grid;
  grid.reserve(axis.size());
  for (const double v : axis) grid.push_back(apply(v));

  exp::ParallelSweep engine(count_option(parser, "threads"));
  GridOptions grid_options;
  grid_options.engine = &engine;
  std::vector<std::vector<Metrics>> series;
  std::size_t ss_index = 0;
  std::size_t hs_index = 0;
  for (std::size_t k = 0; k < kAllProtocols.size(); ++k) {
    if (kAllProtocols[k] == ProtocolKind::kSS) ss_index = k;
    if (kAllProtocols[k] == ProtocolKind::kHS) hs_index = k;
    series.push_back(
        evaluate_grid_analytic(kAllProtocols[k], grid, grid_options));
  }

  exp::Table table("sweep of " + param,
                   {param, "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)",
                    "I(HS)", "M(SS)", "M(HS)"});
  for (std::size_t i = 0; i < axis.size(); ++i) {
    std::vector<exp::Cell> row{axis[i]};
    for (const auto& protocol_series : series) {
      row.emplace_back(protocol_series[i].inconsistency);
    }
    row.emplace_back(series[ss_index][i].message_rate);
    row.emplace_back(series[hs_index][i].message_rate);
    table.add_row(std::move(row));
  }
  finish(table, parser);
  return 0;
}

int cmd_latency(int argc, const char* const* argv) {
  exp::ArgParser parser("sigcomp_cli latency",
                        "First-passage-to-consistency latency per protocol.");
  add_single_hop_options(parser);
  parser.add_option("csv", "write rows to this CSV file", "");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }
  const SingleHopParams p = single_hop_params(parser);
  exp::Table table("convergence latency",
                   {"protocol", "mean (s)", "p50", "p95", "p99"});
  for (const ProtocolKind kind : kAllProtocols) {
    const analytic::LatencyAnalysis latency(kind, p);
    table.add_row({std::string(to_string(kind)), latency.mean_setup_latency(),
                   latency.setup_quantile(0.5), latency.setup_quantile(0.95),
                   latency.setup_quantile(0.99)});
  }
  finish(table, parser);
  return 0;
}

int cmd_tune(int argc, const char* const* argv) {
  exp::ArgParser parser("sigcomp_cli tune",
                        "Cost-optimal refresh timer per soft-state protocol.");
  add_single_hop_options(parser);
  parser.add_option("weight", "inconsistency weight w", "10");
  parser.add_option("csv", "write rows to this CSV file", "");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }
  const SingleHopParams p = single_hop_params(parser);
  const double weight = parser.get_double("weight");
  exp::Table table("optimal refresh timer (T = 3R)",
                   {"protocol", "R* (s)", "cost", "I", "M"});
  for (const ProtocolKind kind :
       {ProtocolKind::kSS, ProtocolKind::kSSER, ProtocolKind::kSSRT,
        ProtocolKind::kSSRTR}) {
    const exp::TuningResult best = exp::optimal_refresh_timer(kind, p, weight);
    table.add_row({std::string(to_string(kind)), best.argmin, best.cost,
                   best.metrics.inconsistency, best.metrics.message_rate});
  }
  finish(table, parser);
  return 0;
}

int cmd_sensitivity(int argc, const char* const* argv) {
  exp::ArgParser parser("sigcomp_cli sensitivity",
                        "Parameter elasticities d(log I)/d(log param).");
  add_single_hop_options(parser);
  parser.add_option("csv", "write rows to this CSV file", "");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }
  const SingleHopParams p = single_hop_params(parser);
  exp::Table table("elasticities of the inconsistency ratio",
                   {"parameter", "SS", "SS+ER", "SS+RT", "SS+RTR", "HS"});
  std::vector<std::vector<exp::Sensitivity>> per_protocol;
  for (const ProtocolKind kind : kAllProtocols) {
    per_protocol.push_back(exp::sensitivity_analysis(kind, p));
  }
  const auto names = exp::sensitivity_parameters();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<exp::Cell> row{names[i]};
    for (const auto& s : per_protocol) row.emplace_back(s[i].inconsistency);
    table.add_row(std::move(row));
  }
  finish(table, parser);
  return 0;
}

int cmd_scale(int argc, const char* const* argv) {
  exp::ArgParser parser(
      "sigcomp_cli scale",
      "Drive N concurrent sessions per protocol through the session farm "
      "(Poisson arrivals, exponential lifetimes) and report throughput and "
      "per-session metrics.  --hops > 1 switches to chain sessions; "
      "--fanout/--depth/--receivers or --topology FILE to tree sessions "
      "(all five protocols run on every shape).  --leaf-lifetime adds "
      "IGMP-style per-leaf churn inside each tree session.");
  add_single_hop_options(parser);
  add_tree_shape_options(parser);
  parser.add_option("leaf-lifetime",
                    "tree sessions: mean seconds a leaf stays joined "
                    "(0 = static trees, no churn)",
                    "0");
  parser.add_option("churn-rate",
                    "tree sessions: rejoin rate of a departed leaf "
                    "(rejoins/s)",
                    "0");
  add_scenario_options(parser);
  parser.add_option("sessions", "concurrent sessions N to drive", "10000");
  parser.add_option("arrival-rate",
                    "Poisson session arrival rate (sessions/s); the arrival "
                    "window is N divided by this",
                    "1000");
  parser.add_option("session-lifetime", "mean session lifetime in seconds",
                    "60");
  parser.add_option("hops", "hops per session (1 = sender/receiver pair)",
                    "1");
  parser.add_option("shared-relays",
                    "single-hop farms: shared relay sessions fed through the "
                    "cross-shard ring fabric (0 = no inter-session traffic)",
                    "0");
  parser.add_option("subscribers-per-relay",
                    "farm sessions wired to each shared relay",
                    "16");
  parser.add_flag("teardown",
                  "tree/chain sessions: end each lifetime window with an "
                  "explicit remove() and price the teardown messages");
  parser.add_option("shard-size", "sessions per simulator shard", "4096");
  parser.add_option("seed", "base seed of the per-session keying", "1");
  parser.add_option("threads", "worker threads (0 = all cores)", "0");
  parser.add_option("delay-model",
                    "channel delay law: det, exp, pareto or lognormal", "exp");
  parser.add_option("delay-shape",
                    "Pareto tail index / lognormal sigma of --delay-model",
                    "1.5");
  add_event_queue_option(parser);
  parser.add_option("csv", "write rows to this CSV file", "");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n';
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }
  if (parser.passed("lifetime")) {
    // The farm draws lifetimes from --session-lifetime and ignores the
    // parameter set's removal_rate; accepting --lifetime here would be a
    // silent no-op.
    throw std::invalid_argument(
        "scale: use --session-lifetime (the farm ignores --lifetime)");
  }

  exp::SessionFarmOptions options;
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed"));
  options.sessions = count_option(parser, "sessions");
  options.arrival_rate = parser.get_double("arrival-rate");
  options.session_lifetime = parser.get_double("session-lifetime");
  options.shard_size = count_option(parser, "shard-size");
  options.delay_model = delay_model_option(parser);
  options.delay_shape = parser.get_double("delay-shape");
  options.event_queue = event_queue_option(parser, /*simulating=*/true, "");
  exp::ParallelSweep engine(count_option(parser, "threads"));
  options.engine = &engine;

  const bool tree_sessions =
      parser.passed("fanout") || parser.passed("depth") ||
      parser.passed("receivers") || parser.passed("topology");
  if (tree_sessions && parser.passed("hops")) {
    throw std::invalid_argument(
        "scale: --hops selects chain sessions; it cannot be combined with "
        "the tree flags --fanout/--depth/--receivers/--topology");
  }
  options.leaf_churn.leaf_lifetime = parser.get_double("leaf-lifetime");
  options.leaf_churn.rejoin_rate = parser.get_double("churn-rate");
  options.leaf_churn.validate();
  if (parser.passed("churn-rate") && !options.leaf_churn.enabled()) {
    throw std::invalid_argument(
        "--churn-rate needs --leaf-lifetime > 0 (nothing churns until a "
        "leaf can leave)");
  }
  if (options.leaf_churn.enabled() && !tree_sessions) {
    throw std::invalid_argument(
        "scale: --leaf-lifetime churns tree sessions; pass a tree shape "
        "(--fanout/--depth/--receivers or --topology)");
  }
  options.scenario = scenario_options(parser, options.leaf_churn);
  if (options.scenario.enabled() && !tree_sessions) {
    throw std::invalid_argument(
        "scale: scenario processes (crashes, storms, bursts) act on tree "
        "sessions; pass a tree shape (--fanout/--depth/--receivers or "
        "--topology)");
  }
  const bool churning = options.leaf_churn.enabled();
  const bool crashing = options.scenario.failure.enabled();
  const std::size_t hops = count_option(parser, "hops");
  options.shared_relays =
      static_cast<std::size_t>(parser.get_long("shared-relays"));
  options.subscribers_per_relay =
      count_option(parser, "subscribers-per-relay");
  options.teardown = parser.flag("teardown");
  if (options.shared_relays > 0 && (tree_sessions || hops > 1)) {
    throw std::invalid_argument(
        "scale: --shared-relays drives single-hop sessions through the "
        "cross-shard fabric; it cannot be combined with --hops or a tree "
        "shape");
  }
  if (parser.passed("subscribers-per-relay") && options.shared_relays == 0) {
    throw std::invalid_argument(
        "scale: --subscribers-per-relay needs --shared-relays > 0 (nothing "
        "subscribes without a relay)");
  }
  if (options.teardown && !tree_sessions && hops <= 1) {
    throw std::invalid_argument(
        "scale: --teardown prices tree/chain teardown; single-hop sessions "
        "already end with an explicit remove (pass --hops > 1 or a tree "
        "shape)");
  }
  const std::string shape =
      tree_sessions ? (parser.passed("topology")
                           ? parser.get("topology") + " tree(s)"
                           : "fanout " + parser.get("fanout") + " depth " +
                                 parser.get("depth") + " tree(s)")
                    : std::to_string(hops) + " hop(s)";
  std::vector<std::string> headers{"protocol", "peak in flight", "messages",
                                   "I (mean)", "I ci95", "M (mean)",
                                   "msg/s/session", "timeouts"};
  if (churning) {
    headers.insert(headers.end(), {"joins", "setup lat (s)", "leaves",
                                   "orphan win (s)", "orphan lb (s)"});
  }
  if (crashing) {
    headers.insert(headers.end(), {"crashes", "recoveries"});
  }
  const bool relaying = options.shared_relays > 0;
  if (relaying) {
    headers.insert(headers.end(), {"fabric msgs", "fabric drop"});
  }
  if (options.teardown) headers.emplace_back("teardown msgs");
  exp::Table table(
      "session farm: " + std::to_string(options.sessions) + " sessions, " +
          shape + (churning ? ", churning leaves" : "") +
          (crashing ? ", crashing relays" : "") +
          (relaying ? ", " + std::to_string(options.shared_relays) +
                          " shared relays"
                    : "") +
          (options.teardown ? ", explicit teardown" : ""),
      std::move(headers));
  const auto add_row = [&](ProtocolKind kind,
                           const exp::SessionFarmResult& result) {
    std::vector<exp::Cell> row{
        std::string(to_string(kind)),
        static_cast<double>(result.peak_sessions_in_flight),
        static_cast<double>(result.messages),
        result.summary.mean.inconsistency,
        result.summary.inconsistency.half_width,
        result.summary.mean.message_rate,
        result.summary.mean.raw_message_rate,
        static_cast<double>(result.receiver_timeouts)};
    if (churning) {
      row.emplace_back(static_cast<double>(result.churn.joins));
      row.emplace_back(result.churn.mean_setup_latency());
      row.emplace_back(static_cast<double>(result.churn.leaves));
      row.emplace_back(result.churn.mean_orphan_window());
      row.emplace_back(result.churn.mean_orphan_window_bound());
    }
    if (crashing) {
      row.emplace_back(static_cast<double>(result.relay_crashes));
      row.emplace_back(static_cast<double>(result.relay_recoveries));
    }
    if (relaying) {
      row.emplace_back(static_cast<double>(result.fabric_messages));
      row.emplace_back(static_cast<double>(result.fabric_dropped));
    }
    if (options.teardown) {
      row.emplace_back(static_cast<double>(result.teardown_messages));
    }
    table.add_row(std::move(row));
  };
  if (tree_sessions) {
    const MultiHopParams p =
        multi_hop_params(parser, /*with_false_signal=*/true,
                         /*analytic_only=*/false);
    const analytic::TreeParams tree = tree_params(parser, p);
    for (const ProtocolKind kind : kMultiHopProtocols) {
      add_row(kind, run_session_farm(kind, tree, options));
    }
  } else if (hops <= 1) {
    const SingleHopParams p =
        single_hop_params(parser, /*analytic_only=*/false);
    for (const ProtocolKind kind : kAllProtocols) {
      add_row(kind, run_session_farm(kind, p, options));
    }
  } else {
    const MultiHopParams p =
        multi_hop_params(parser, /*with_false_signal=*/true,
                         /*analytic_only=*/false);
    for (const ProtocolKind kind : kMultiHopProtocols) {
      add_row(kind, run_session_farm(kind, p, options));
    }
  }
  finish(table, parser);
  return 0;
}

void print_usage() {
  std::cout << "usage: sigcomp_cli <command> [options]\n\n"
               "commands:\n"
               "  evaluate     compare the five protocols at one point\n"
               "  multihop     evaluate the five protocols on a K-hop chain\n"
               "  tree         evaluate a fan-out signaling tree (five protocols,\n"
               "               optional IGMP-style leaf churn)\n"
               "  sweep        sweep one parameter across a range\n"
               "  latency      convergence-latency distribution\n"
               "  tune         cost-optimal refresh timer\n"
               "  sensitivity  parameter elasticities\n"
               "  scale        many-session scale harness (session farm)\n\n"
               "run 'sigcomp_cli <command> --help' for command options;\n"
               "docs/CLI.md has the full reference with worked examples.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "evaluate") return cmd_evaluate(argc - 1, argv + 1);
    if (command == "multihop") return cmd_multihop(argc - 1, argv + 1);
    if (command == "tree") return cmd_tree(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "latency") return cmd_latency(argc - 1, argv + 1);
    if (command == "tune") return cmd_tune(argc - 1, argv + 1);
    if (command == "sensitivity") return cmd_sensitivity(argc - 1, argv + 1);
    if (command == "scale") return cmd_scale(argc - 1, argv + 1);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "unknown command: " << command << '\n';
  print_usage();
  return 2;
}
