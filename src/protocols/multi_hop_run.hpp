// Multi-hop simulation harness: a sender plus K relays connected by lossy
// per-hop channels, running SS, SS+RT or HS, measured against the multi-hop
// analytic model (Figs. 17-19).
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/hetero_multi_hop.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace sigcomp::protocols {

/// Execution options of one multi-hop chain simulation.
struct MultiHopSimOptions {
  std::uint64_t seed = 1;     ///< base seed of the run's RNG streams
  /// Event-queue backend of the run's Simulator.  A pure performance knob:
  /// both backends pop in the identical (time, insertion-seq) order, so the
  /// run -- golden digests included -- is bit-identical either way.
  sim::EventQueueBackend event_queue = sim::kDefaultEventQueueBackend;
  double duration = 50000.0;  ///< simulated seconds
  /// Timer law at every node (deterministic = real protocols).
  sim::Distribution timer_dist = sim::Distribution::kDeterministic;
  /// Per-hop channel delay law (mean = the per-hop delay parameter; see
  /// SimOptions::delay_model).  The per-hop loss processes come from the
  /// parameter set (MultiHopParams::loss_config /
  /// HeteroMultiHopParams::loss_process).
  sim::DelayModel delay_model = sim::DelayModel::kExponential;
  double delay_shape = 1.5;  ///< Pareto tail index / lognormal sigma
  /// Optional trace sink; when set, every per-hop channel records its
  /// send/drop/deliver events (labels "dn0"/"up0", "dn1"/"up1", ...).
  /// Formatting is fully skipped when null -- tracing costs nothing when
  /// absent.
  sim::TraceLog* trace = nullptr;
};

/// Aggregate outcome of one multi-hop chain simulation.
struct MultiHopSimResult {
  Metrics metrics;  ///< inconsistency = P(not all hops consistent); raw rate
  std::vector<double> hop_inconsistency;  ///< per hop 1..K (index 0 = hop 1)
  std::uint64_t messages = 0;  ///< across every hop, both directions
  double duration = 0.0;       ///< simulated seconds
  std::uint64_t relay_timeouts = 0;  ///< total soft-state timeouts across relays
};

/// Runs one multi-hop replication.  Throws std::invalid_argument on bad
/// parameters or a protocol outside {SS, SS+RT, HS}.
[[nodiscard]] MultiHopSimResult run_multi_hop(ProtocolKind kind,
                                              const MultiHopParams& params,
                                              const MultiHopSimOptions& options);

/// Heterogeneous-path variant: each hop has its own loss and delay
/// (pairs with analytic::HeteroMultiHopModel).
[[nodiscard]] MultiHopSimResult run_multi_hop(
    ProtocolKind kind, const analytic::HeteroMultiHopParams& params,
    const MultiHopSimOptions& options);

/// Replicated multi-hop estimates with 95% confidence intervals (seeds
/// options.seed, options.seed + 1, ...), mirroring the single-hop API.
struct MultiHopReplicatedResult {
  sim::ConfidenceInterval inconsistency;     ///< whole-chain inconsistency
  sim::ConfidenceInterval message_rate;      ///< raw msg/s across the chain
  sim::ConfidenceInterval last_hop_inconsistency;  ///< hop K's inconsistency
  std::size_t replications = 0;              ///< independent runs aggregated
};

/// Runs `replications` independent multi-hop simulations and aggregates
/// them (see MultiHopReplicatedResult).
[[nodiscard]] MultiHopReplicatedResult run_multi_hop_replicated(
    ProtocolKind kind, const MultiHopParams& params,
    const MultiHopSimOptions& options, std::size_t replications);

}  // namespace sigcomp::protocols
