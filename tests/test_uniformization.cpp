#include "markov/uniformization.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/stationary.hpp"

namespace sigcomp::markov {
namespace {

Ctmc two_state(double up, double down) {
  Ctmc chain;
  chain.add_state("off");
  chain.add_state("on");
  chain.add_rate(0, 1, up);
  chain.add_rate(1, 0, down);
  return chain;
}

TEST(Uniformization, TimeZeroReturnsInitialDistribution) {
  const Ctmc chain = two_state(1.0, 2.0);
  const auto p = transient_distribution(chain, {0.3, 0.7}, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.3);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
}

TEST(Uniformization, TwoStateClosedForm) {
  // p_on(t) = pi_on + (p_on(0) - pi_on) e^{-(a+b) t}, a=up, b=down.
  const double up = 1.5, down = 0.5;
  const Ctmc chain = two_state(up, down);
  const double pi_on = up / (up + down);
  for (const double t : {0.1, 0.5, 1.0, 3.0}) {
    const double expected = pi_on - pi_on * std::exp(-(up + down) * t);
    EXPECT_NEAR(transient_probability(chain, 0, 1, t), expected, 1e-9)
        << "t = " << t;
  }
}

TEST(Uniformization, ConvergesToStationary) {
  const Ctmc chain = two_state(2.0, 3.0);
  const auto pi = stationary_distribution(chain);
  const auto p = transient_distribution(chain, {1.0, 0.0}, 100.0);
  EXPECT_NEAR(p[0], pi[0], 1e-9);
  EXPECT_NEAR(p[1], pi[1], 1e-9);
}

TEST(Uniformization, MassIsConserved) {
  Ctmc chain;
  for (int i = 0; i < 5; ++i) chain.add_state("s" + std::to_string(i));
  for (int i = 0; i < 4; ++i) {
    chain.add_rate(i, i + 1, 1.0 + i);
    chain.add_rate(i + 1, i, 2.0);
  }
  const auto p = transient_distribution(chain, {1.0, 0.0, 0.0, 0.0, 0.0}, 2.5);
  double total = 0.0;
  for (const double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Uniformization, AbsorbingChainAccumulatesInSink) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("end");
  chain.add_rate(0, 1, 1.0);
  // P(absorbed by t) = 1 - e^{-t}.
  EXPECT_NEAR(transient_probability(chain, 0, 1, 2.0), 1.0 - std::exp(-2.0), 1e-9);
}

TEST(Uniformization, NoTransitionsIsIdentity) {
  Ctmc chain;
  chain.add_state("a");
  chain.add_state("b");
  const auto p = transient_distribution(chain, {0.25, 0.75}, 10.0);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Uniformization, InputValidation) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW((void)transient_distribution(chain, {1.0}, 1.0),
               std::invalid_argument);  // wrong size
  EXPECT_THROW((void)transient_distribution(chain, {0.4, 0.4}, 1.0),
               std::invalid_argument);  // does not sum to 1
  EXPECT_THROW((void)transient_distribution(chain, {1.0, 0.0}, -1.0),
               std::invalid_argument);  // negative time
  EXPECT_THROW((void)transient_probability(chain, 0, 7, 1.0), std::out_of_range);
}

}  // namespace
}  // namespace sigcomp::markov
