#include "protocols/scenario.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <string>

namespace sigcomp::protocols {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void require_finite_nonnegative(double value, const char* name) {
  if (!std::isfinite(value) || value < 0.0) {
    throw std::invalid_argument(std::string("ScenarioOptions: ") + name +
                                " must be finite and >= 0");
  }
}

}  // namespace

// --------------------------------------------------------- ArrivalConfig --

ArrivalConfig ArrivalConfig::poisson() { return ArrivalConfig{}; }

ArrivalConfig ArrivalConfig::flash_crowd(double at, double rate,
                                         double duration) {
  ArrivalConfig out;
  out.model = ArrivalModel::kFlashCrowd;
  out.flash_time = at;
  out.flash_rate = rate;
  out.flash_duration = duration;
  out.validate();
  return out;
}

ArrivalConfig ArrivalConfig::diurnal(double period, double amplitude) {
  ArrivalConfig out;
  out.model = ArrivalModel::kDiurnal;
  out.period = period;
  out.amplitude = amplitude;
  out.validate();
  return out;
}

void ArrivalConfig::validate() const {
  require_finite_nonnegative(flash_time, "flash_time");
  require_finite_nonnegative(flash_rate, "flash_rate");
  require_finite_nonnegative(flash_duration, "flash_duration");
  require_finite_nonnegative(period, "period");
  require_finite_nonnegative(amplitude, "amplitude");
  if (amplitude > 1.0) {
    throw std::invalid_argument(
        "ScenarioOptions: amplitude must be within [0, 1]");
  }
  if (model == ArrivalModel::kDiurnal && period <= 0.0) {
    throw std::invalid_argument(
        "ScenarioOptions: a diurnal arrival model needs period > 0");
  }
}

// -------------------------------------------------------- ArrivalProcess --

ArrivalProcess::ArrivalProcess(ArrivalConfig config, double base_rate)
    : config_(config), base_rate_(base_rate) {
  config_.validate();
  require_finite_nonnegative(base_rate, "base rejoin rate");
}

double ArrivalProcess::rate_at(double t) const noexcept {
  switch (config_.model) {
    case ArrivalModel::kPoisson:
      return base_rate_;
    case ArrivalModel::kFlashCrowd:
      return base_rate_ + (t >= config_.flash_time &&
                                   t < config_.flash_time +
                                           config_.flash_duration
                               ? config_.flash_rate
                               : 0.0);
    case ArrivalModel::kDiurnal:
      return base_rate_ *
             (1.0 + config_.amplitude *
                        std::sin(2.0 * std::numbers::pi * t / config_.period));
  }
  return base_rate_;  // unreachable; keeps -Werror=return-type happy
}

double ArrivalProcess::next_delay(double now, sim::Rng& rng) const {
  switch (config_.model) {
    case ArrivalModel::kPoisson:
      return base_rate_ > 0.0 ? rng.exponential(1.0 / base_rate_) : kInf;
    case ArrivalModel::kFlashCrowd: {
      // Exact inversion of the piecewise-constant integrated hazard: walk
      // the [now, flash), [flash, flash_end), [flash_end, inf) segments
      // spending the unit-mean exponential target as we go.
      double need = rng.exponential(1.0);
      double t = now;
      const double storm_start = config_.flash_time;
      const double storm_end = config_.flash_time + config_.flash_duration;
      while (true) {
        double rate = base_rate_;
        double segment_end = kInf;
        if (t < storm_start) {
          segment_end = storm_start;
        } else if (t < storm_end) {
          rate += config_.flash_rate;
          segment_end = storm_end;
        }
        if (rate > 0.0) {
          const double dt = need / rate;
          if (t + dt <= segment_end) return t + dt - now;
          need -= rate * (segment_end - t);
        }
        if (!std::isfinite(segment_end)) return kInf;  // tail rate is zero
        t = segment_end;
      }
    }
    case ArrivalModel::kDiurnal: {
      if (base_rate_ <= 0.0) return kInf;
      // Lewis-Shedler thinning at the envelope rate base * (1 + amplitude);
      // the acceptance probability is at least (1 - a) / (1 + a), so the
      // loop terminates quickly for every amplitude < 1 (and almost surely
      // at a = 1).
      const double rate_max = base_rate_ * (1.0 + config_.amplitude);
      double t = now;
      while (true) {
        t += rng.exponential(1.0 / rate_max);
        if (rng.uniform() * rate_max <= rate_at(t)) return t - now;
      }
    }
  }
  return kInf;  // unreachable; keeps -Werror=return-type happy
}

// --------------------------------------------------------- FailureConfig --

FailureConfig FailureConfig::relay_crash(double rate, double recovery,
                                         double detector) {
  FailureConfig out;
  out.crash_rate = rate;
  out.recovery_time = recovery;
  out.detector_delay = detector;
  out.validate();
  return out;
}

void FailureConfig::validate() const {
  require_finite_nonnegative(crash_rate, "crash_rate");
  require_finite_nonnegative(recovery_time, "recovery_time");
  require_finite_nonnegative(detector_delay, "detector_delay");
}

// ------------------------------------------------------ SharedRiskConfig --

SharedRiskConfig SharedRiskConfig::bursts(double rate) {
  SharedRiskConfig out;
  out.burst_rate = rate;
  out.validate();
  return out;
}

void SharedRiskConfig::validate() const {
  require_finite_nonnegative(burst_rate, "burst_rate");
}

// -------------------------------------------------------- ScenarioOptions --

void ScenarioOptions::validate() const {
  arrival.validate();
  shared_risk.validate();
  failure.validate();
}

// --------------------------------------------------- RelayFailureProcess --

RelayFailureProcess::RelayFailureProcess(sim::Simulator& sim,
                                         Topology& topology, sim::Rng& rng,
                                         const FailureConfig& config,
                                         bool external_detector)
    : sim_(sim),
      topology_(topology),
      rng_(rng),
      config_(config),
      external_detector_(external_detector),
      down_(topology.relays(), 0),
      detected_(topology.relays(), 0),
      recovery_event_(topology.relays()),
      detect_event_(topology.relays()) {
  config_.validate();
  for (std::size_t r = 0; r < topology_.relays(); ++r) {
    if (topology_.relay(r).fanout() > 0) interior_.push_back(r);
  }
}

void RelayFailureProcess::start() {
  if (!config_.enabled() || interior_.empty()) return;
  schedule_crash();
}

void RelayFailureProcess::stop() {
  if (crash_timer_) {
    sim_.cancel(*crash_timer_);
    crash_timer_.reset();
  }
  for (std::size_t r = 0; r < down_.size(); ++r) {
    if (recovery_event_[r]) {
      sim_.cancel(*recovery_event_[r]);
      recovery_event_[r].reset();
    }
    if (detect_event_[r]) {
      sim_.cancel(*detect_event_[r]);
      detect_event_[r].reset();
    }
  }
}

void RelayFailureProcess::schedule_crash() {
  crash_timer_ = sim_.schedule_in(rng_.exponential(1.0 / config_.crash_rate),
                                  [this] { crash_tick(); });
}

void RelayFailureProcess::crash_tick() {
  crash_timer_.reset();
  // The victim draw happens on every tick (a fixed number of draws per
  // crash event keeps the stream layout simple); a victim that is already
  // down just wastes the tick.
  const std::size_t r = interior_[rng_.uniform_int(interior_.size())];
  if (down_[r] == 0) {
    ++crashes_;
    down_[r] = 1;
    detected_[r] = 0;
    topology_.relay(r).crash();
    recovery_event_[r] =
        sim_.schedule_in(rng_.exponential(config_.recovery_time),
                         [this, r] { complete_recovery(r); });
    if (external_detector_) {
      detect_event_[r] =
          sim_.schedule_in(rng_.exponential(config_.detector_delay),
                           [this, r] { complete_detection(r); });
    }
  }
  schedule_crash();
}

void RelayFailureProcess::complete_recovery(std::size_t r) {
  recovery_event_[r].reset();
  down_[r] = 0;
  ++recoveries_;
  topology_.relay(r).recover();
  // Hard state repairs at max(recovery, detection); soft state is left to
  // the next refresh forwarded by the parent.
  if (external_detector_ && detected_[r] != 0) repair(r);
}

void RelayFailureProcess::complete_detection(std::size_t r) {
  detect_event_[r].reset();
  detected_[r] = 1;
  if (down_[r] == 0) repair(r);
}

void RelayFailureProcess::repair(std::size_t r) {
  // Re-install the parent's cached copy down edge r -- unless the subtree
  // lost its last joined leaf meanwhile (churn pruned the edge; grafting
  // would wrongly re-activate it).
  if (topology_.node_required(r + 1)) topology_.regraft_edge(r);
}

}  // namespace sigcomp::protocols
