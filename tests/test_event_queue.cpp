#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace sigcomp::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.push(1.0, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { fired += 10; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  int fired = 0;
  const EventId first = q.push(1.0, [&] { fired = 1; });
  q.push(2.0, [&] { fired = 2; });
  q.cancel(first);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().action();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsNonFiniteTimeAndEmptyAction) {
  EventQueue q;
  EXPECT_THROW(q.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(q.push(1.0, std::function<void()>{}), std::invalid_argument);
}

TEST(EventQueue, CancelHeavyWorkloadKeepsHeapCompact) {
  // Regression: cancel() used to leave dead entries in the heap until they
  // surfaced, so a refresh/backoff-heavy run (schedule + cancel churn at
  // far-future times that never surface) carried O(cancelled) garbage.
  EventQueue q;
  std::vector<EventId> live;
  for (int i = 0; i < 100; ++i) {
    live.push_back(q.push(1e9 + i, [] {}));  // long-lived timers, never pop
  }
  for (int round = 0; round < 200000; ++round) {
    // A timer is set and re-set before ever firing -- the soft-state
    // refresh pattern.
    const EventId id = q.push(1e6 + round, [] {});
    ASSERT_TRUE(q.cancel(id));
    EXPECT_LE(q.heap_entries(), 2 * q.size() + 65)
        << "round " << round << ": dead entries accumulate";
  }
  EXPECT_EQ(q.size(), live.size());
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 65);
}

TEST(EventQueue, CompactionPreservesOrderAndLiveEvents) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    ids.push_back(q.push(t, [] {}));
  }
  // Cancel enough to trigger compaction several times over.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(q.cancel(ids[i]));
    }
  }
  EXPECT_EQ(q.size(), 500u);
  double last = -1.0;
  std::size_t popped = 0;
  while (!q.empty()) {
    const double t = q.next_time();
    EXPECT_LE(last, t);
    last = t;
    q.pop();
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> popped;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.push(t, [&popped, t] { popped.push_back(t); });
  }
  while (!q.empty()) q.pop().action();
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
}

}  // namespace
}  // namespace sigcomp::sim
