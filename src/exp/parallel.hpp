// Parallel experiment engine: fans parameter grids and simulation replicas
// across a fixed ThreadPool with results that are bit-identical to a serial
// run of the same grid.
//
// Determinism contract: every unit of work is keyed by its grid index (and
// replica index), draws randomness only from replica_seed(base, point,
// replica), and writes its result into a slot owned by that index.  Thread
// count and scheduling order therefore cannot change any output bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/metrics.hpp"
#include "exp/thread_pool.hpp"
#include "sim/stats.hpp"

namespace sigcomp::exp {

/// Deterministic per-replica RNG seed: a SplitMix64-style avalanche of
/// (base_seed, point_index, replica_index).  The result feeds sim::Rng as
/// its family seed.  Unlike the `base + replica` convention, nearby grid
/// points get statistically unrelated streams, and the value is independent
/// of thread count and execution order by construction.
[[nodiscard]] std::uint64_t replica_seed(std::uint64_t base_seed,
                                         std::uint64_t point_index,
                                         std::uint64_t replica_index) noexcept;

/// Parses "--threads N" out of an argv-style argument list; returns
/// `fallback` (default 0 = hardware concurrency) when absent.  Companion to
/// csv_path_from_args for the bench binaries.
[[nodiscard]] std::size_t threads_from_args(int argc, const char* const* argv,
                                            std::size_t fallback = 0);

/// Runs an indexed computation over a parameter grid on a fixed pool.
/// Results come back in grid order regardless of which worker finished
/// first, so parallel output is bit-identical to `threads = 1`.
class ParallelSweep {
 public:
  /// 0 = one worker per hardware thread.
  explicit ParallelSweep(std::size_t threads = 0) : pool_(threads) {}

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  /// map_indexed(n, fn) -> {fn(0), ..., fn(n-1)}, computed in parallel.
  /// The result type must be default-constructible (slots are pre-allocated
  /// so workers only ever write their own index).
  template <typename Fn>
  [[nodiscard]] auto map_indexed(std::size_t n, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> out(n);
    parallel_for(pool_, n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// map(items, fn) -> {fn(items[0]), ...}: the grid is an explicit vector
  /// of parameter points (e.g. from log_space/lin_space).
  template <typename T, typename Fn>
  [[nodiscard]] auto map(const std::vector<T>& items, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(items[std::size_t{0}])) >> {
    return map_indexed(items.size(),
                       [&](std::size_t i) { return fn(items[i]); });
  }

 private:
  ThreadPool pool_;
};

/// Mean/stddev/95%-CI aggregate of replicated Metrics -- the Metrics-shaped
/// members are field-wise, the named intervals cover the headline metrics.
struct MetricsSummary {
  Metrics mean;    ///< field-wise mean across replicas
  Metrics stddev;  ///< field-wise unbiased sample stddev
  sim::ConfidenceInterval inconsistency;    ///< 95% CI of Metrics::inconsistency
  sim::ConfidenceInterval message_rate;     ///< 95% CI of Metrics::message_rate
  sim::ConfidenceInterval raw_message_rate; ///< 95% CI of the raw msg/s rate
  std::size_t replications = 0;
};

/// Reduces one grid point's replica results (in replica order).
[[nodiscard]] MetricsSummary summarize_replicas(const std::vector<Metrics>& replicas);

/// Executes N independent replicas per grid point, flattened across the
/// pool as point-major jobs, and reduces each point's replicas in replica
/// order.  `run(point_index, seed)` performs one replica with the given
/// deterministic seed and returns its Metrics.
class ReplicatedRun {
 public:
  ReplicatedRun(std::size_t replications, std::uint64_t base_seed)
      : replications_(replications == 0 ? 1 : replications),
        base_seed_(base_seed) {}

  [[nodiscard]] std::size_t replications() const noexcept {
    return replications_;
  }
  [[nodiscard]] std::uint64_t base_seed() const noexcept { return base_seed_; }

  /// Seed of replica r at grid point p under this run's base seed.
  [[nodiscard]] std::uint64_t seed_for(std::size_t point,
                                       std::size_t replica) const noexcept {
    return replica_seed(base_seed_, point, replica);
  }

  template <typename RunFn>
  [[nodiscard]] std::vector<MetricsSummary> over_grid(ParallelSweep& sweep,
                                                      std::size_t points,
                                                      RunFn&& run) const {
    const std::size_t jobs = points * replications_;
    const std::vector<Metrics> flat =
        sweep.map_indexed(jobs, [&](std::size_t job) {
          const std::size_t point = job / replications_;
          const std::size_t replica = job % replications_;
          return run(point, seed_for(point, replica));
        });
    std::vector<MetricsSummary> out;
    out.reserve(points);
    for (std::size_t p = 0; p < points; ++p) {
      const auto first = flat.begin() + static_cast<std::ptrdiff_t>(p * replications_);
      out.push_back(summarize_replicas(std::vector<Metrics>(
          first, first + static_cast<std::ptrdiff_t>(replications_))));
    }
    return out;
  }

 private:
  std::size_t replications_;
  std::uint64_t base_seed_;
};

}  // namespace sigcomp::exp
