// Figure 11: analytic model (exponential timers) versus discrete-event
// simulation (deterministic timers), inconsistency ratio and normalized
// message rate as a function of the mean state lifetime 1/lambda_r.
// Simulation columns carry 95% confidence half-widths.  The replicated
// sweep runs through the parallel experiment engine (evaluate_grid_simulated
// with deterministic per-replica seeding), so thread count never changes
// the numbers.
//
// Usage: fig11_sim_lifetime [--csv PATH] [--quick] [--threads N]
#include <iostream>
#include <string_view>

#include "core/evaluator.hpp"
#include "exp/parallel.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) try {
  using namespace sigcomp;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") quick = true;
  }
  const std::size_t replications = quick ? 5 : 10;
  const std::size_t sessions = quick ? 200 : 600;

  const std::vector<double> lifetimes = exp::log_space(10.0, 10000.0, 7);
  std::vector<SingleHopParams> grid;
  for (const double lifetime : lifetimes) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.removal_rate = 1.0 / lifetime;
    grid.push_back(p);
  }

  exp::ParallelSweep engine(exp::threads_from_args(argc, argv));
  SimGridOptions options;
  options.sim.sessions = sessions;
  options.sim.seed = 42;
  options.sim.timer_dist = sim::Distribution::kDeterministic;
  options.replications = replications;
  options.engine = &engine;

  exp::Table table(
      "Fig. 11: analytic (exp timers) vs simulation (deterministic timers) "
      "vs mean lifetime 1/lr",
      {"lifetime_s", "protocol", "I(model)", "I(sim)", "I(sim)ci95",
       "M(model)", "M(sim)", "M(sim)ci95"});

  GridOptions analytic_options;
  analytic_options.engine = &engine;
  std::vector<std::vector<Metrics>> model_series;
  std::vector<std::vector<exp::MetricsSummary>> sim_series;
  for (const ProtocolKind kind : kAllProtocols) {
    model_series.push_back(evaluate_grid_analytic(kind, grid, analytic_options));
    sim_series.push_back(evaluate_grid_simulated(kind, grid, options));
  }
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    for (std::size_t k = 0; k < kAllProtocols.size(); ++k) {
      const Metrics& model = model_series[k][i];
      const exp::MetricsSummary& sim = sim_series[k][i];
      table.add_row({lifetimes[i], std::string(to_string(kAllProtocols[k])),
                     model.inconsistency, sim.inconsistency.mean,
                     sim.inconsistency.half_width, model.message_rate,
                     sim.message_rate.mean, sim.message_rate.half_width});
    }
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
