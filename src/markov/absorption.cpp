#include "markov/absorption.hpp"

#include <algorithm>
#include <stdexcept>

#include "markov/linear_solver.hpp"

namespace sigcomp::markov {

namespace {

/// Partitions states into (transient, absorbing) and returns the index of
/// each transient state inside the reduced system.
struct Partition {
  std::vector<StateId> transient;
  std::vector<StateId> absorbing;
  std::vector<std::ptrdiff_t> reduced_index;  // -1 for absorbing states
};

Partition partition_states(const Ctmc& chain) {
  Partition p;
  p.absorbing = chain.absorbing_states();
  if (p.absorbing.empty()) {
    throw std::invalid_argument("absorption analysis: chain has no absorbing state");
  }
  p.reduced_index.assign(chain.num_states(), -1);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (std::find(p.absorbing.begin(), p.absorbing.end(), s) == p.absorbing.end()) {
      p.reduced_index[s] = static_cast<std::ptrdiff_t>(p.transient.size());
      p.transient.push_back(s);
    }
  }
  for (StateId s : p.transient) {
    bool can_absorb = false;
    for (StateId a : p.absorbing) {
      if (chain.reachable(s, a)) {
        can_absorb = true;
        break;
      }
    }
    if (!can_absorb) {
      throw std::runtime_error("absorption analysis: state '" + chain.name(s) +
                               "' cannot reach absorption");
    }
  }
  return p;
}

/// Builds -Q restricted to transient states (a nonsingular M-matrix).
DenseMatrix negative_restricted_generator(const Ctmc& chain, const Partition& p) {
  const std::size_t m = p.transient.size();
  DenseMatrix a(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    const StateId s = p.transient[i];
    a(i, i) = chain.exit_rate(s);
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      a(i, j) = -chain.rate(s, p.transient[j]);
    }
  }
  return a;
}

}  // namespace

AbsorptionResult mean_time_to_absorption(const Ctmc& chain) {
  const Partition p = partition_states(chain);
  const DenseMatrix a = negative_restricted_generator(chain, p);
  const std::vector<double> ones(p.transient.size(), 1.0);
  const std::vector<double> t = solve_linear(a, ones);

  AbsorptionResult out;
  out.absorbing = p.absorbing;
  out.mean_time.assign(chain.num_states(), 0.0);
  for (std::size_t i = 0; i < p.transient.size(); ++i) {
    out.mean_time[p.transient[i]] = t[i];
  }
  return out;
}

std::vector<double> absorption_probabilities(const Ctmc& chain, StateId from) {
  const Partition p = partition_states(chain);
  if (from >= chain.num_states()) {
    throw std::out_of_range("absorption_probabilities: invalid start state");
  }
  std::vector<double> probs(p.absorbing.size(), 0.0);
  // Starting in an absorbing state: probability 1 for that state.
  for (std::size_t k = 0; k < p.absorbing.size(); ++k) {
    if (p.absorbing[k] == from) {
      probs[k] = 1.0;
      return probs;
    }
  }
  const DenseMatrix a = negative_restricted_generator(chain, p);
  for (std::size_t k = 0; k < p.absorbing.size(); ++k) {
    // Solve A h = r where r_i = rate(i -> absorbing_k).
    std::vector<double> r(p.transient.size(), 0.0);
    for (std::size_t i = 0; i < p.transient.size(); ++i) {
      r[i] = chain.rate(p.transient[i], p.absorbing[k]);
    }
    const std::vector<double> h = solve_linear(a, std::move(r));
    probs[k] = h[static_cast<std::size_t>(p.reduced_index[from])];
  }
  return probs;
}

std::vector<double> expected_occupancy(const Ctmc& chain, StateId from) {
  const Partition p = partition_states(chain);
  if (from >= chain.num_states()) {
    throw std::out_of_range("expected_occupancy: invalid start state");
  }
  std::vector<double> occupancy(chain.num_states(), 0.0);
  const auto idx = p.reduced_index[from];
  if (idx < 0) return occupancy;  // started absorbed: zero occupancy everywhere

  // Expected occupancy row vector u solves u A = e_from, i.e. A^T u = e_from,
  // where A = -Q restricted to transient states.
  const DenseMatrix a = negative_restricted_generator(chain, p);
  std::vector<double> e(p.transient.size(), 0.0);
  e[static_cast<std::size_t>(idx)] = 1.0;
  const std::vector<double> u = solve_linear(a.transposed(), std::move(e));
  for (std::size_t i = 0; i < p.transient.size(); ++i) {
    occupancy[p.transient[i]] = u[i];
  }
  return occupancy;
}

}  // namespace sigcomp::markov
