// Tests of the tree signaling topology subsystem: TreeSpec geometry, the
// per-path analytic composition (analytic/tree_paths.hpp), the wired
// protocols::Topology, chain degeneracy (fan-out 1 == the multi-hop chain,
// bit for bit), teardown hygiene (stop() leaves no dangling events and the
// event pool stays flat), and tree sessions in the session farm.
#include "protocols/topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "analytic/hetero_multi_hop.hpp"
#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/topology.hpp"
#include "exp/session_farm.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/tree_run.hpp"
#include "sim/simulator.hpp"

namespace sigcomp {
namespace {

// ---------------------------------------------------------------- TreeSpec --

TEST(TreeSpec, ChainGeometry) {
  const TreeSpec spec = TreeSpec::chain(3);
  EXPECT_EQ(spec.parent, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(spec.nodes(), 4u);
  EXPECT_EQ(spec.edges(), 3u);
  EXPECT_EQ(spec.depth(), 3u);
  EXPECT_EQ(spec.max_fanout(), 1u);
  EXPECT_EQ(spec.leaves(), (std::vector<std::size_t>{3}));
  EXPECT_EQ(spec.path_edges(3), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(spec.node_depth(3), 3u);
  EXPECT_THROW((void)TreeSpec::chain(0), std::invalid_argument);
}

TEST(TreeSpec, BalancedBinaryDepthTwo) {
  // Breadth-first ids: 0; 1 2; 3 4 5 6.
  const TreeSpec spec = TreeSpec::balanced(2, 2);
  EXPECT_EQ(spec.parent, (std::vector<std::size_t>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(spec.nodes(), 7u);
  EXPECT_EQ(spec.depth(), 2u);
  EXPECT_EQ(spec.max_fanout(), 2u);
  EXPECT_EQ(spec.leaf_count(), 4u);
  EXPECT_EQ(spec.leaves(), (std::vector<std::size_t>{3, 4, 5, 6}));
  EXPECT_EQ(spec.path_edges(6), (std::vector<std::size_t>{1, 5}));
  EXPECT_EQ(spec.children(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(spec.children(2), (std::vector<std::size_t>{4, 5}));
  EXPECT_TRUE(spec.is_leaf(3));
  EXPECT_FALSE(spec.is_leaf(1));
}

TEST(TreeSpec, BalancedPrunedToReceiverCount) {
  // Keep 3 of the 4 depth-2 leaves: nodes {0,1,2,3,4,5} renumbered.
  const TreeSpec spec = TreeSpec::balanced(2, 2, 3);
  EXPECT_EQ(spec.nodes(), 6u);
  EXPECT_EQ(spec.leaf_count(), 3u);
  EXPECT_EQ(spec.depth(), 2u);
  for (const std::size_t leaf : spec.leaves()) {
    EXPECT_EQ(spec.node_depth(leaf), 2u) << "receiver not at full depth";
  }
  // receivers == fanout^depth is a no-op prune.
  EXPECT_EQ(TreeSpec::balanced(2, 2, 4), TreeSpec::balanced(2, 2));
  EXPECT_THROW((void)TreeSpec::balanced(2, 2, 5), std::invalid_argument);
  EXPECT_THROW((void)TreeSpec::balanced(0, 2), std::invalid_argument);
  EXPECT_THROW((void)TreeSpec::balanced(2, 0), std::invalid_argument);
}

TEST(TreeSpec, ValidateRejectsForwardParents) {
  TreeSpec bad;
  bad.parent = {0, 2};  // node 2's parent would be node 3
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// -------------------------------------------------------------- TreeParams --

TEST(TreeParams, ChainPathParamsMatchHomogeneousChain) {
  MultiHopParams base;
  base.hops = 4;
  base.loss = 0.03;
  const analytic::TreeParams tree = analytic::TreeParams::chain(base);
  const analytic::HeteroMultiHopParams path = tree.path_params(4);
  const analytic::HeteroMultiHopParams expected =
      analytic::HeteroMultiHopParams::from_homogeneous(base);
  EXPECT_EQ(path.loss, expected.loss);
  EXPECT_EQ(path.delay, expected.delay);
  EXPECT_EQ(path.update_rate, expected.update_rate);
  EXPECT_EQ(path.refresh_timer, expected.refresh_timer);
  EXPECT_EQ(path.timeout_timer, expected.timeout_timer);
  EXPECT_EQ(path.retrans_timer, expected.retrans_timer);
  EXPECT_EQ(path.false_signal_rate, expected.false_signal_rate);
}

TEST(TreeParams, PathModelEqualsChainModelOnDegenerateTree) {
  MultiHopParams base;
  base.hops = 3;
  const analytic::TreeParams tree = analytic::TreeParams::chain(base);
  const auto paths = analytic::evaluate_tree_paths(ProtocolKind::kSSRT, tree);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops, 3u);
  const analytic::HeteroMultiHopModel chain_model(
      ProtocolKind::kSSRT,
      analytic::HeteroMultiHopParams::from_homogeneous(base));
  EXPECT_EQ(paths[0].metrics.inconsistency, chain_model.inconsistency());
}

TEST(TreeParams, WorstPathFollowsTheLossySubtree) {
  MultiHopParams base;
  base.hops = 2;  // ignored by balanced()
  analytic::TreeParams tree = analytic::TreeParams::balanced(base, 2, 2);
  // Make the edge into node 2 (edge 1) much lossier: both leaves under
  // node 2 (nodes 5 and 6) now sit on the worst paths.
  tree.loss[1] = 0.2;
  const analytic::TreePathMetrics worst =
      analytic::worst_tree_path(ProtocolKind::kSS, tree);
  EXPECT_TRUE(worst.leaf == 5 || worst.leaf == 6) << "worst leaf " << worst.leaf;
  // And the per-leaf evaluation orders leaves ascending.
  const auto paths = analytic::evaluate_tree_paths(ProtocolKind::kSS, tree);
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_LT(paths[0].metrics.inconsistency, worst.metrics.inconsistency);
}

TEST(TreeParams, BurstyEdgeKeepsAnalyticAverages) {
  analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 2);
  tree.set_edge_bursty(1, 8.0);
  EXPECT_NEAR(tree.edge_loss_config(1).mean_loss(), tree.loss[1], 1e-12);
  EXPECT_EQ(tree.edge_loss_config(0).mean_loss(), tree.loss[0]);
  tree.validate();
}

TEST(TreeParams, ValidateRejectsMismatchedVectors) {
  analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 1);
  tree.loss.pop_back();
  EXPECT_THROW(tree.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------- run_tree --

TEST(TreeRun, DegenerateTreeIsBitIdenticalToMultiHopChain) {
  // Fan-out 1, depth 3 == the 3-hop chain harness, to the last bit.
  MultiHopParams base;
  base.hops = 3;
  protocols::MultiHopSimOptions chain_options;
  chain_options.seed = 77;
  chain_options.duration = 2000.0;
  const protocols::MultiHopSimResult chain =
      protocols::run_multi_hop(ProtocolKind::kSSRT, base, chain_options);

  protocols::TreeSimOptions tree_options;
  tree_options.seed = 77;
  tree_options.duration = 2000.0;
  const protocols::TreeSimResult tree = protocols::run_tree(
      ProtocolKind::kSSRT, analytic::TreeParams::chain(base), tree_options);

  EXPECT_EQ(tree.metrics.inconsistency, chain.metrics.inconsistency);
  EXPECT_EQ(tree.metrics.raw_message_rate, chain.metrics.raw_message_rate);
  EXPECT_EQ(tree.messages, chain.messages);
  EXPECT_EQ(tree.relay_timeouts, chain.relay_timeouts);
  ASSERT_EQ(tree.node_inconsistency.size(), chain.hop_inconsistency.size());
  for (std::size_t i = 0; i < tree.node_inconsistency.size(); ++i) {
    EXPECT_EQ(tree.node_inconsistency[i], chain.hop_inconsistency[i]);
  }
  // The chain's one leaf path covers every node.
  ASSERT_EQ(tree.leaf_path_inconsistency.size(), 1u);
  EXPECT_EQ(tree.leaf_path_inconsistency[0], tree.metrics.inconsistency);
}

TEST(TreeRun, DepthOneFanoutOneIsBitIdenticalToSingleHopPath) {
  // The smallest tree -- one sender, one receiver -- must reproduce the
  // existing single-hop path (the 1-hop chain) exactly.
  MultiHopParams base;
  base.hops = 1;
  protocols::MultiHopSimOptions chain_options;
  chain_options.seed = 9;
  chain_options.duration = 2000.0;
  protocols::TreeSimOptions tree_options;
  tree_options.seed = 9;
  tree_options.duration = 2000.0;
  const analytic::TreeParams tiny =
      analytic::TreeParams::balanced(base, 1, 1);
  EXPECT_EQ(tiny.tree, TreeSpec::chain(1));
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const protocols::MultiHopSimResult chain =
        protocols::run_multi_hop(kind, base, chain_options);
    const protocols::TreeSimResult tree =
        protocols::run_tree(kind, tiny, tree_options);
    EXPECT_EQ(tree.metrics.inconsistency, chain.metrics.inconsistency)
        << to_string(kind);
    EXPECT_EQ(tree.messages, chain.messages) << to_string(kind);
    EXPECT_EQ(tree.relay_timeouts, chain.relay_timeouts) << to_string(kind);
  }
}

TEST(TreeRun, LosslessTreeInstallsEveryReceiver) {
  MultiHopParams base;
  base.loss = 0.0;
  const analytic::TreeParams tree = analytic::TreeParams::balanced(base, 3, 2);
  protocols::TreeSimOptions options;
  options.duration = 1000.0;
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const protocols::TreeSimResult result =
        protocols::run_tree(kind, tree, options);
    // Lossless channels: only propagation delay after each update keeps
    // nodes briefly inconsistent.
    EXPECT_LT(result.metrics.inconsistency, 0.01) << to_string(kind);
    EXPECT_GT(result.messages, 0u) << to_string(kind);
    EXPECT_EQ(result.relay_timeouts, 0u) << to_string(kind);
  }
}

TEST(TreeRun, DeeperPathsAreWorseInModelAndSim) {
  MultiHopParams base;
  base.loss = 0.05;
  const analytic::TreeParams shallow =
      analytic::TreeParams::balanced(base, 2, 1);
  const analytic::TreeParams deep = analytic::TreeParams::balanced(base, 2, 3);
  EXPECT_LT(analytic::worst_tree_path(ProtocolKind::kSS, shallow)
                .metrics.inconsistency,
            analytic::worst_tree_path(ProtocolKind::kSS, deep)
                .metrics.inconsistency);
  protocols::TreeSimOptions options;
  options.duration = 5000.0;
  const protocols::TreeSimResult sim_shallow =
      protocols::run_tree(ProtocolKind::kSS, shallow, options);
  const protocols::TreeSimResult sim_deep =
      protocols::run_tree(ProtocolKind::kSS, deep, options);
  EXPECT_LT(sim_shallow.metrics.inconsistency, sim_deep.metrics.inconsistency);
}

TEST(TreeRun, AcceptsAllFiveProtocolsAndRejectsBadOptions) {
  const analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 1);
  protocols::TreeSimOptions options;
  options.duration = 200.0;
  for (const ProtocolKind kind : kAllProtocols) {
    const protocols::TreeSimResult result =
        protocols::run_tree(kind, tree, options);
    EXPECT_GT(result.messages, 0u) << to_string(kind);
  }
  options.duration = 0.0;
  EXPECT_THROW((void)protocols::run_tree(ProtocolKind::kSS, tree, options),
               std::invalid_argument);
  EXPECT_THROW((void)protocols::run_tree_replicated(ProtocolKind::kSS, tree,
                                                    protocols::TreeSimOptions{},
                                                    0),
               std::invalid_argument);
}

TEST(TreeRun, ReplicatedEstimatesCoverTheMean) {
  const analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 2);
  protocols::TreeSimOptions options;
  options.duration = 2000.0;
  const protocols::TreeReplicatedResult result =
      protocols::run_tree_replicated(ProtocolKind::kSS, tree, options, 4);
  EXPECT_EQ(result.replications, 4u);
  EXPECT_GT(result.message_rate.mean, 0.0);
  EXPECT_GE(result.worst_leaf_inconsistency.mean,
            result.inconsistency.mean * 0.0);  // defined and non-negative
}

// ---------------------------------------------------- teardown / pool churn --

/// Builds a topology, runs it mid-refresh, stops an interior relay's whole
/// session, drains, and verifies no event leaks and no pool growth across
/// many cycles -- the satellite teardown contract.
void run_stop_churn(ProtocolKind kind) {
  sim::Simulator sim;
  sim::Rng channel_rng(33, 0);
  sim::Rng node_rng(33, 1);
  const MechanismSet mech = mechanisms(kind);
  protocols::TimerSettings timers;  // deterministic: cycles are identical
  const TreeSpec spec = TreeSpec::balanced(2, 2);
  const std::vector<sim::LossConfig> loss(spec.edges(),
                                          sim::LossConfig::iid(0.0));
  const std::vector<sim::DelayConfig> delay(
      spec.edges(),
      sim::DelayConfig{sim::DelayModel::kDeterministic, 0.03, 1.5});

  std::size_t flat_capacity = 0;
  for (int cycle = 0; cycle < 25; ++cycle) {
    auto topology = std::make_unique<protocols::Topology>(
        sim, channel_rng, node_rng, mech, timers, spec, loss, delay, nullptr);
    topology->sender().start(cycle + 1);
    // Mid-refresh, mid-timeout: refresh timers (R = 5) armed for t+5,
    // soft-state timeouts (T = 15) pending, and for HS a teardown flood in
    // flight from an interior relay.
    sim.run_until(sim.now() + 7.3);
    if (mech.external_failure_detector) {
      topology->relay(0).external_removal_signal();  // interior node 1
      sim.run_until(sim.now() + 0.01);               // flood partly in flight
    }
    topology->stop();
    // stop() cancelled every timer; only already-scheduled channel
    // deliveries may remain, and they must drain without resurrecting any
    // timer loop (the sender is stopped, so nothing refreshes).
    sim.run();
    EXPECT_TRUE(sim.idle()) << to_string(kind) << " cycle " << cycle;
    EXPECT_EQ(sim.pending_events(), 0u);
    topology.reset();
    if (cycle == 0) {
      flat_capacity = sim.slot_capacity();
    } else {
      EXPECT_EQ(sim.slot_capacity(), flat_capacity)
          << to_string(kind) << ": event pool grew at cycle " << cycle;
    }
  }
}

TEST(TopologyTeardown, StopMidRefreshLeavesNoDanglingEvents) {
  for (const ProtocolKind kind : kMultiHopProtocols) {
    run_stop_churn(kind);
  }
}

// ------------------------------------------------------- tree session farm --

exp::SessionFarmOptions small_tree_farm(std::size_t sessions) {
  exp::SessionFarmOptions options;
  options.seed = 21;
  options.sessions = sessions;
  options.arrival_rate = static_cast<double>(sessions) / 15.0;
  options.session_lifetime = 25.0;
  options.threads = 1;
  return options;
}

TEST(TreeSessionFarm, RunsAndTearsDownEveryProtocol) {
  const analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 2);
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const exp::SessionFarmResult result =
        exp::run_session_farm(kind, tree, small_tree_farm(60));
    EXPECT_EQ(result.sessions, 60u) << to_string(kind);
    EXPECT_GT(result.messages, 0u) << to_string(kind);
    EXPECT_GE(result.summary.mean.inconsistency, 0.0) << to_string(kind);
    EXPECT_LT(result.summary.mean.inconsistency, 0.5) << to_string(kind);
  }
}

TEST(TreeSessionFarm, BitIdenticalAcrossShardSizesAndThreads) {
  const analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 2);
  exp::SessionFarmOptions base = small_tree_farm(90);
  base.shard_size = 90;
  const exp::SessionFarmResult one_shard =
      exp::run_session_farm(ProtocolKind::kSSRT, tree, base);
  exp::SessionFarmOptions sharded = base;
  sharded.shard_size = 11;
  sharded.threads = 4;
  const exp::SessionFarmResult many_shards =
      exp::run_session_farm(ProtocolKind::kSSRT, tree, sharded);
  EXPECT_EQ(one_shard.summary.mean.inconsistency,
            many_shards.summary.mean.inconsistency);
  EXPECT_EQ(one_shard.summary.inconsistency.half_width,
            many_shards.summary.inconsistency.half_width);
  EXPECT_EQ(one_shard.summary.mean.message_rate,
            many_shards.summary.mean.message_rate);
  EXPECT_EQ(one_shard.messages, many_shards.messages);
  EXPECT_EQ(one_shard.receiver_timeouts, many_shards.receiver_timeouts);
}

TEST(TreeSessionFarm, AcceptsAllFiveProtocols) {
  const analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 1);
  for (const ProtocolKind kind : kAllProtocols) {
    const exp::SessionFarmResult result =
        exp::run_session_farm(kind, tree, small_tree_farm(6));
    EXPECT_EQ(result.sessions, 6u) << to_string(kind);
    EXPECT_GT(result.messages, 0u) << to_string(kind);
  }
}

}  // namespace
}  // namespace sigcomp
