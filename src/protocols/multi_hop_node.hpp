// Executable nodes of multi-hop signaling topologies (Sec. III-B,
// generalized from the paper's chain to arbitrary rooted trees).
//
// Topology: a sender at the root, relays at interior nodes, receivers at
// the leaves; a chain is the degenerate tree with fan-out 1.  Every node's
// state copy lives in a protocols::StateSlot -- the same mechanism-driven
// core the single-hop engines use -- so all FIVE protocols run here:
// triggers propagate edge-by-edge down every branch (reliably for SS+RT,
// SS+RTR and HS), refreshes propagate as forwarded best-effort copies down
// every branch (the soft-state protocols), explicit removals propagate
// down every branch (best-effort for SS+ER, reliably for SS+RTR and HS),
// and the HS recovery protocol floods notices upstream and teardowns
// downstream when a false external signal fires.  Acks aggregate up the
// branches through per-child reliable slots.
//
// Dynamic membership (IGMP-style leaf churn): each child edge carries an
// activity flag.  Triggers and refreshes flow only down ACTIVE edges;
// graft_child re-activates an edge and re-installs the local copy down it,
// prune_child deactivates an edge using the protocol's own removal
// semantics (nothing for timeout-pruned soft state, a best-effort or
// reliable removal otherwise).  Removals and teardowns are not gated --
// they chase whatever state was installed, tracked per child.  With every
// edge active (the static default) the nodes behave bit-identically to the
// PR 4 nodes, and with exactly one child to the PR 3 chain nodes (the
// golden-trace tests pin both).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "protocols/engine.hpp"
#include "protocols/message.hpp"
#include "protocols/state_slot.hpp"
#include "sim/channel.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

/// The signaling sender at the root of the tree.  The state value changes
/// on updates and is removed only by an explicit remove() (graceful,
/// signaled) or stop() (silent).  Fan-out: triggers and refreshes go down
/// every active child edge; each child edge has its own reliable slot so
/// one slow branch cannot stall another.
class TreeSender {
 public:
  /// `down[c]` is the channel toward child c; the vector's order defines
  /// the child indices used by handle_from_downstream.
  TreeSender(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
             TimerSettings timers, std::vector<MessageChannel*> down,
             std::function<void()> on_change);

  TreeSender(const TreeSender&) = delete;             ///< non-copyable
  TreeSender& operator=(const TreeSender&) = delete;  ///< non-copyable

  /// Installs the initial value and starts the refresh process.
  void start(std::int64_t value);

  /// Updates the state value (a new trigger propagates down every branch).
  void update(std::int64_t value);

  /// Gracefully removes the state: where the protocol has explicit removal
  /// a removal message goes down every branch that was ever installed
  /// (reliably when the protocol's removals are reliable); otherwise the
  /// downstream copies are left to their soft-state timeouts.
  void remove();

  /// Message arriving from child `child` (ACKs, notices).
  void handle_from_downstream(const Message& msg, std::size_t child = 0);

  /// Re-activates child edge `c` (a leaf joined somewhere below it) and
  /// re-installs the current value down it if one is held.
  void graft_child(std::size_t c);

  /// Deactivates child edge `c` (the last leaf below it left) using the
  /// protocol's removal semantics: a best-effort or reliable removal where
  /// the mechanisms provide one, nothing (timeout prune) otherwise.
  void prune_child(std::size_t c);

  /// Deactivates child edge `c` without signaling anything (used for the
  /// deeper edges of a pruned path -- the removal, if any, arrives via the
  /// propagation from the prune point).
  void deactivate_child(std::size_t c);

  /// True when signaling flows down child edge `c`.
  [[nodiscard]] bool child_active(std::size_t c) const {
    return child_active_[c] != 0;
  }

  /// Silently ends the session: clears state and cancels every pending
  /// timer WITHOUT signaling anything.  Used by the session farm when a
  /// finite-lifetime session's observation window closes.
  void stop();

  /// The installed state value (nullopt before start / after stop).
  [[nodiscard]] std::optional<std::int64_t> value() const noexcept {
    return slot_.value();
  }
  /// Number of child edges.
  [[nodiscard]] std::size_t fanout() const noexcept { return down_.size(); }

 private:
  void send_trigger();
  void send_trigger_to(std::size_t c);
  void send_removal_to(std::size_t c, std::uint64_t seq);
  void arm_refresh();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  std::vector<MessageChannel*> down_;
  std::function<void()> on_change_;
  std::vector<ReliableSlot> reliable_down_;  ///< one per child, fixed size
  std::vector<char> child_active_;     ///< signaling flows down edge c
  std::vector<char> child_installed_;  ///< state was pushed down edge c

  StateSlot slot_;  ///< the authoritative root copy (never armed)
  std::uint64_t next_seq_ = 1;
  std::uint64_t trigger_seq_ = 0;
  std::optional<sim::EventId> refresh_timer_;
};

/// A relay node (any non-root node of the tree).  Holds state, forwards
/// signaling down its child edges; a leaf (no children) is a receiver.
class TreeRelay {
 public:
  /// `up` sends toward the parent; `down[c]` toward child c (empty for a
  /// leaf).  The vector's order defines the child indices used by
  /// handle_from_downstream.
  TreeRelay(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
            TimerSettings timers, MessageChannel* up,
            std::vector<MessageChannel*> down,
            std::function<void()> on_change);

  TreeRelay(const TreeRelay&) = delete;             ///< non-copyable
  TreeRelay& operator=(const TreeRelay&) = delete;  ///< non-copyable

  /// Message arriving from the parent (triggers, refreshes, removals,
  /// teardowns).
  void handle_from_upstream(const Message& msg);

  /// Message arriving from child `child` (ACKs, notices).
  void handle_from_downstream(const Message& msg, std::size_t child = 0);

  /// HS external failure detector fired (falsely) at this node: remove
  /// state, notify upstream (toward the sender) and tear down every branch
  /// below.
  void external_removal_signal();

  /// Re-activates child edge `c` and re-installs the locally cached value
  /// down it if one is held (see TreeSender::graft_child).
  void graft_child(std::size_t c);

  /// Deactivates child edge `c` with the protocol's removal semantics
  /// (see TreeSender::prune_child).
  void prune_child(std::size_t c);

  /// Deactivates child edge `c` silently (see TreeSender::deactivate_child).
  void deactivate_child(std::size_t c);

  /// True when signaling flows down child edge `c`.
  [[nodiscard]] bool child_active(std::size_t c) const {
    return child_active_[c] != 0;
  }

  /// Silently ends the session (see TreeSender::stop).
  void stop();

  /// Crashes the relay: the held copy and every pending timer vanish
  /// silently (a dead process signals nothing) and the node goes deaf --
  /// every arriving message is dropped until recover().  The parent keeps
  /// the edge active and keeps refreshing/retransmitting into the void;
  /// after recover() the next refresh (soft state), pending reliable
  /// retransmission, or an explicit re-graft (the HS detector path)
  /// re-installs state.
  void crash();

  /// Ends a crash: the relay processes messages again.  It holds no state
  /// until the upstream re-installs one.
  void recover();

  /// True while the relay is crashed (deaf and stateless).
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  /// The held state value (nullopt when no state is installed).
  [[nodiscard]] std::optional<std::int64_t> value() const noexcept {
    return slot_.value();
  }
  /// Number of soft-state timeout expirations at this relay.
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return slot_.timeouts();
  }
  /// Number of child edges (0 = this relay is a receiver).
  [[nodiscard]] std::size_t fanout() const noexcept { return down_.size(); }

 private:
  void on_expire();
  void forward_trigger(std::int64_t value);
  void forward_trigger_to(std::size_t child, std::int64_t value);
  void send_removal_to(std::size_t c, std::uint64_t seq);
  void forward_removal();
  void notify();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  MessageChannel* up_;
  std::vector<MessageChannel*> down_;  ///< empty for a leaf
  std::function<void()> on_change_;
  std::vector<ReliableSlot> reliable_down_;  ///< one per child, fixed size
  ReliableSlot reliable_up_;
  std::vector<char> child_active_;     ///< signaling flows down edge c
  std::vector<char> child_installed_;  ///< state was pushed down edge c

  StateSlot slot_;  ///< the held copy plus its soft-state timeout
  std::uint64_t next_seq_ = 1;
  std::uint64_t removal_seq_seen_ = 0;  ///< dedup of retransmitted removals
  bool removal_seen_ = false;
  bool crashed_ = false;  ///< deaf and stateless between crash()/recover()
};

/// Chain-era names: the PR 3 chain nodes are the fan-out-1 special case.
using ChainSender = TreeSender;
using ChainRelay = TreeRelay;

}  // namespace sigcomp::protocols
