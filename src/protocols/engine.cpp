#include "protocols/engine.hpp"

#include <algorithm>
#include <utility>

namespace sigcomp::protocols {

// ---------------------------------------------------------------- sender --

SenderEngine::SenderEngine(sim::Simulator& sim, sim::Rng& rng,
                           MechanismSet mechanisms, TimerSettings timers,
                           MessageChannel& out, std::function<void()> on_change)
    : sim_(sim),
      rng_(rng),
      mech_(mechanisms),
      timers_(timers),
      out_(out),
      on_change_(std::move(on_change)),
      slot_(sim, rng, mechanisms, timers, nullptr) {}

void SenderEngine::notify() {
  if (on_change_) on_change_();
}

void SenderEngine::cancel(std::optional<sim::EventId>& id) {
  if (id) {
    sim_.cancel(*id);
    id.reset();
  }
}

void SenderEngine::begin_epoch(std::uint64_t epoch) {
  reset();
  epoch_ = epoch;
}

void SenderEngine::reset() {
  cancel(refresh_timer_);
  cancel(trigger_retrans_timer_);
  cancel(removal_retrans_timer_);
  awaiting_trigger_ack_ = false;
  removal_pending_ = false;
  slot_.clear();
}

void SenderEngine::send_trigger() {
  out_.send(Message{MessageType::kTrigger, *slot_.value(), trigger_seq_, epoch_});
  if (mech_.reliable_trigger) {
    awaiting_trigger_ack_ = true;
    trigger_retrans_interval_ = timers_.retrans;  // fresh content: reset stage
    arm_trigger_retrans();
  }
}

void SenderEngine::install(std::int64_t value) {
  slot_.set(value);
  trigger_seq_ = next_seq_++;
  // An install supersedes a pending removal of the previous incarnation.
  removal_pending_ = false;
  cancel(removal_retrans_timer_);
  send_trigger();
  if (mech_.refresh && !refresh_timer_) arm_refresh();
  notify();
}

void SenderEngine::update(std::int64_t value) {
  if (!slot_.value()) {
    install(value);
    return;
  }
  slot_.set(value);
  trigger_seq_ = next_seq_++;
  cancel(trigger_retrans_timer_);
  send_trigger();
  notify();
}

void SenderEngine::remove() {
  slot_.clear();
  cancel(refresh_timer_);
  cancel(trigger_retrans_timer_);
  awaiting_trigger_ack_ = false;
  if (mech_.explicit_removal) {
    removal_seq_ = next_seq_++;
    out_.send(Message{MessageType::kRemove, 0, removal_seq_, epoch_});
    if (mech_.reliable_removal) {
      removal_pending_ = true;
      removal_retrans_interval_ = timers_.retrans;
      arm_removal_retrans();
    }
  }
  notify();
}

void SenderEngine::crash() {
  slot_.clear();
  cancel(refresh_timer_);
  cancel(trigger_retrans_timer_);
  cancel(removal_retrans_timer_);
  awaiting_trigger_ack_ = false;
  removal_pending_ = false;
  notify();
}

void SenderEngine::arm_refresh() {
  refresh_timer_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, timers_.refresh), [this] { on_refresh_timer(); });
}

void SenderEngine::on_refresh_timer() {
  refresh_timer_.reset();
  if (!slot_.value()) return;
  out_.send(Message{MessageType::kRefresh, *slot_.value(), trigger_seq_, epoch_});
  arm_refresh();
}

namespace {

/// Advances a staged retransmission interval by one backoff step.
double next_stage(double current, const TimerSettings& timers) {
  const double cap = timers.backoff_cap * timers.retrans;
  return std::min(current * std::max(1.0, timers.backoff), cap);
}

}  // namespace

void SenderEngine::arm_trigger_retrans() {
  cancel(trigger_retrans_timer_);
  trigger_retrans_timer_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, trigger_retrans_interval_),
      [this] { on_trigger_retrans(); });
}

void SenderEngine::on_trigger_retrans() {
  trigger_retrans_timer_.reset();
  if (!slot_.value() || !awaiting_trigger_ack_) return;
  out_.send(Message{MessageType::kTrigger, *slot_.value(), trigger_seq_, epoch_});
  trigger_retrans_interval_ = next_stage(trigger_retrans_interval_, timers_);
  arm_trigger_retrans();
}

void SenderEngine::arm_removal_retrans() {
  cancel(removal_retrans_timer_);
  removal_retrans_timer_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, removal_retrans_interval_),
      [this] { on_removal_retrans(); });
}

void SenderEngine::on_removal_retrans() {
  removal_retrans_timer_.reset();
  if (!removal_pending_) return;
  out_.send(Message{MessageType::kRemove, 0, removal_seq_, epoch_});
  removal_retrans_interval_ = next_stage(removal_retrans_interval_, timers_);
  arm_removal_retrans();
}

void SenderEngine::handle(const Message& msg) {
  if (msg.epoch != epoch_) return;  // straggler from a finished session
  switch (msg.type) {
    case MessageType::kAckTrigger:
      if (msg.seq == trigger_seq_ && awaiting_trigger_ack_) {
        awaiting_trigger_ack_ = false;
        cancel(trigger_retrans_timer_);
      }
      break;
    case MessageType::kAckRemove:
      if (msg.seq == removal_seq_ && removal_pending_) {
        removal_pending_ = false;
        cancel(removal_retrans_timer_);
      }
      break;
    case MessageType::kNotice:
      // The receiver (falsely or via timeout) removed our state; if we still
      // have it, re-install.
      if (slot_.value()) {
        trigger_seq_ = next_seq_++;
        cancel(trigger_retrans_timer_);
        send_trigger();
      }
      break;
    default:
      break;  // data-plane messages never reach the sender
  }
}

// -------------------------------------------------------------- receiver --

ReceiverEngine::ReceiverEngine(sim::Simulator& sim, sim::Rng& rng,
                               MechanismSet mechanisms, TimerSettings timers,
                               MessageChannel& out,
                               std::function<void()> on_change)
    : sim_(sim),
      rng_(rng),
      mech_(mechanisms),
      timers_(timers),
      out_(out),
      on_change_(std::move(on_change)),
      slot_(sim, rng, mechanisms, timers, [this] { on_expire(); }) {}

void ReceiverEngine::notify() {
  if (on_change_) on_change_();
}

void ReceiverEngine::begin_epoch(std::uint64_t epoch) {
  reset();
  epoch_ = epoch;
}

void ReceiverEngine::reset() {
  slot_.clear();
}

/// The soft-state timeout fired and the slot dropped the value: emit the
/// (possibly false-) removal notification if the protocol has one.
void ReceiverEngine::on_expire() {
  if (mech_.removal_notification) {
    out_.send(Message{MessageType::kNotice, 0, 0, epoch_});
  }
  notify();
}

void ReceiverEngine::external_removal_signal() {
  if (!slot_.clear()) return;
  if (mech_.removal_notification) {
    out_.send(Message{MessageType::kNotice, 0, 0, epoch_});
  }
  notify();
}

void ReceiverEngine::handle(const Message& msg) {
  if (msg.epoch != epoch_) return;
  switch (msg.type) {
    case MessageType::kTrigger:
      slot_.set(msg.value);
      if (mech_.reliable_trigger) {
        out_.send(Message{MessageType::kAckTrigger, 0, msg.seq, epoch_});
      }
      slot_.arm_timeout();
      notify();
      break;
    case MessageType::kRefresh:
      slot_.set(msg.value);
      slot_.arm_timeout();
      notify();
      break;
    case MessageType::kRemove:
      // Idempotent: always acknowledge so a lost ACK is repaired by the
      // sender's retransmission.
      if (mech_.reliable_removal) {
        out_.send(Message{MessageType::kAckRemove, 0, msg.seq, epoch_});
      }
      if (slot_.clear()) notify();
      break;
    default:
      break;
  }
}

}  // namespace sigcomp::protocols
