// Extension experiment: convergence-latency distributions.  The paper's
// metrics are long-run averages; here the same Markov model answers the
// designer's follow-up question -- "when I install or update state, how
// long until the receiver agrees?" -- as a first-passage-time distribution
// (mean, median, p99) per protocol and loss rate.
//
// Usage: ext_latency [--csv PATH]
#include <iostream>

#include "analytic/latency.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table table(
      "Setup/update convergence latency (first passage to consistency), "
      "single-hop defaults except loss",
      {"loss", "protocol", "mean setup (s)", "p50 setup", "p99 setup",
       "mean update (s)", "p99 update", "P(converged<100ms)"});

  for (const double loss : {0.02, 0.1, 0.3}) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.loss = loss;
    for (const ProtocolKind kind : kAllProtocols) {
      const analytic::LatencyAnalysis latency(kind, p);
      table.add_row({loss, std::string(to_string(kind)),
                     latency.mean_setup_latency(), latency.setup_quantile(0.5),
                     latency.setup_quantile(0.99),
                     latency.mean_update_latency(),
                     latency.update_quantile(0.99), latency.setup_cdf(0.1)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the fast path dominates the median for everyone (one "
         "channel delay).  Loss moves the tail: refresh-only protocols drag "
         "a multi-second p99 (wait for the next refresh), while reliable "
         "triggers cap it near the retransmission timer.\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
