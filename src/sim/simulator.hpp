// The discrete-event simulation engine: a clock plus the pending-event set.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/timing_wheel_queue.hpp"

namespace sigcomp::sim {

/// Which pending-event structure a Simulator runs on.  Both backends expose
/// the same interface and the same observable pop order -- (time, then
/// insertion seq) -- so the choice is a pure performance knob; the golden-
/// trace and differential suites lock the equivalence.
enum class EventQueueBackend {
  kHeap,   ///< pooled 4-ary heap (EventQueue): O(log n) arm/cancel
  kWheel,  ///< hashed timing wheel (TimingWheelQueue): O(1) arm/cancel
};

/// CLI/bench spelling of a backend: "heap" or "wheel".
[[nodiscard]] const char* to_string(EventQueueBackend backend) noexcept;

/// Parses "heap"/"wheel" (the to_string spellings); nullopt on anything
/// else.
[[nodiscard]] std::optional<EventQueueBackend> parse_event_queue_backend(
    std::string_view name) noexcept;

/// Build-selected default backend: kHeap unless the build sets
/// -DSIGCOMP_DEFAULT_EVENT_QUEUE=wheel (the CI matrix leg that runs the
/// whole suite -- golden traces included -- on the wheel).
#if defined(SIGCOMP_DEFAULT_EVENT_QUEUE_WHEEL)
inline constexpr EventQueueBackend kDefaultEventQueueBackend =
    EventQueueBackend::kWheel;
#else
inline constexpr EventQueueBackend kDefaultEventQueueBackend =
    EventQueueBackend::kHeap;
#endif

/// Sequential discrete-event simulator.
///
/// Typical use:
///   Simulator sim;
///   sim.schedule_in(1.0, [&] { ... });
///   sim.run_until(100.0);
class Simulator {
 public:
  /// Constructs a simulator on the build-selected default backend.
  Simulator() : Simulator(kDefaultEventQueueBackend) {}

  /// Constructs a simulator on an explicit event-queue backend.
  explicit Simulator(EventQueueBackend backend);

  /// The event-queue backend this simulator runs on.
  [[nodiscard]] EventQueueBackend backend() const noexcept {
    return std::holds_alternative<TimingWheelQueue>(queue_)
               ? EventQueueBackend::kWheel
               : EventQueueBackend::kHeap;
  }

  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `t` (must be >= now()).  Callbacks
  /// are EventCallback: any `void()` callable, stored inline when its
  /// captures fit kInlineCapacity (always, on the library's own paths).
  EventId schedule_at(Time t, EventCallback action);

  /// Schedules `action` after `delay` seconds (negative delays are clamped
  /// to "immediately").
  EventId schedule_in(Time delay, EventCallback action);

  /// Cancels a pending event.  Returns false when it already ran/cancelled.
  bool cancel(EventId id) {
    return std::visit([id](auto& queue) { return queue.cancel(id); }, queue_);
  }

  /// Executes the next event, if any.  Returns false when the queue is empty.
  bool step();

  /// Runs events up to and including time `t`; the clock then rests at `t`.
  void run_until(Time t);

  /// Runs until no events remain or `max_events` have executed.
  void run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// Advances through every event with time <= `horizon` using batched
  /// expiry delivery: all due events are drained from the queue in one pass
  /// (amortizing pops on the refresh-storm hot path), then dispatched in
  /// exact pop order, merging in any event the callbacks schedule inside the
  /// slice.  `stop` is polled after every executed event; when it returns
  /// true the slice aborts immediately -- undispatched drained events are
  /// requeued untouched -- and run_slice returns true.  Unlike run_until,
  /// the clock is NOT bumped to `horizon`; it rests at the last executed
  /// event so a caller observing now() after a stop sees the same value a
  /// step()-driven loop would.  The executed event sequence is bit-identical
  /// to a step() loop over the same horizon.
  template <typename Stop>
  bool run_slice(Time horizon, Stop&& stop) {
    return std::visit(
        [&](auto& queue) { return run_slice_on(queue, horizon, stop); },
        queue_);
  }

  /// Time of the earliest pending event, or nullopt when idle.  The
  /// non-throwing companion to the queue backends' next_time().
  [[nodiscard]] std::optional<Time> next_pending_time() const {
    return std::visit(
        [](const auto& queue) -> std::optional<Time> {
          Time t = 0.0;
          if (!queue.peek_ready(t)) return std::nullopt;
          return t;
        },
        queue_);
  }

  /// Bounded companion to next_pending_time(), for negotiating a common
  /// slice horizon across many simulators: returns the earliest pending
  /// time only when it is <= `bound`, and lets the backend prove "nothing
  /// at or before the bound" cheaply (the timing wheel answers from its
  /// tick cursor without rotating).  The cross-shard fabric computes its
  /// epoch barrier as a running min over every shard through this call.
  [[nodiscard]] std::optional<Time> next_pending_within(Time bound) const {
    return std::visit(
        [bound](const auto& queue) -> std::optional<Time> {
          Time t = 0.0;
          if (!queue.peek_ready_within(bound, t)) return std::nullopt;
          return t;
        },
        queue_);
  }

  /// True when no events are pending.
  [[nodiscard]] bool idle() const noexcept {
    return std::visit([](const auto& queue) { return queue.empty(); }, queue_);
  }
  /// Number of pending (live) events.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return std::visit([](const auto& queue) { return queue.size(); }, queue_);
  }
  /// Events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  /// Slot-pool high-water mark of the underlying event queue
  /// (EventQueue::slot_capacity).  Tests assert it stays flat across
  /// session start/stop churn -- the zero-allocation teardown contract.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return std::visit([](const auto& queue) { return queue.slot_capacity(); },
                      queue_);
  }

 private:
  // Pops and executes the queue's front event (precondition: non-empty).
  template <typename Queue>
  void execute_next(Queue& queue) {
    auto event = queue.pop();
    now_ = event.time;
    ++executed_;
    event.action();
  }

  // Returns every undispatched drained event (from index `from` on) to the
  // queue, preserving (time, seq) so pop order is unchanged.  Returns true
  // -- the "stopped" result -- so the dispatch loop can `return
  // requeue_rest(...)`.
  template <typename Queue>
  bool requeue_rest(Queue& queue, std::size_t from) {
    for (std::size_t i = from; i < drain_buf_.size(); ++i) {
      queue.requeue_drained(drain_buf_[i]);
    }
    return true;
  }

  // run_slice over a concrete backend.  One drain_due pass, then dispatch:
  // before each buffered event, pop-execute any queue event scheduled
  // strictly earlier (events pushed by slice callbacks; at equal times the
  // buffered event has the smaller seq, so strict < preserves pop order).
  // take_drained's generation check skips buffered events that a callback
  // cancelled mid-slice.  A tail pop loop handles callback-scheduled events
  // still inside the horizon after the buffer is exhausted.
  template <typename Queue, typename Stop>
  bool run_slice_on(Queue& queue, Time horizon, Stop& stop) {
    drain_buf_.clear();
    queue.drain_due(horizon, drain_buf_);
    for (std::size_t i = 0; i < drain_buf_.size(); ++i) {
      const DrainedEvent& e = drain_buf_[i];
      Time t = 0.0;
      while (queue.peek_ready(t) && t < e.time) {
        execute_next(queue);
        if (stop()) return requeue_rest(queue, i);
      }
      EventCallback action;
      if (!queue.take_drained(e, action)) continue;  // cancelled mid-slice
      now_ = e.time;
      ++executed_;
      action();
      if (stop()) return requeue_rest(queue, i + 1);
    }
    Time t = 0.0;
    while (queue.peek_ready(t) && t <= horizon) {
      execute_next(queue);
      if (stop()) return true;
    }
    return false;
  }

  std::variant<EventQueue, TimingWheelQueue> queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
  // Scratch buffer for run_slice's batched expiry delivery; member so the
  // per-slice drain reuses capacity instead of reallocating.
  std::vector<DrainedEvent> drain_buf_;
};

}  // namespace sigcomp::sim
