// Aligned table printing and CSV export for the experiment binaries.
//
// Every figure bench prints the paper's series as a fixed-width table on
// stdout and, when asked, writes the same rows to a CSV file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace sigcomp::exp {

/// A table cell: text or a number (formatted with %.6g).
using Cell = std::variant<std::string, double>;

/// Column-aligned table with a title, headers and homogeneous rows.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Adds a row; must match the header count.  Throws otherwise.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Cell accessor for tests; throws std::out_of_range.
  [[nodiscard]] const Cell& at(std::size_t row, std::size_t col) const;

  /// Renders the aligned table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quoting cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to a file path; throws std::runtime_error on
  /// I/O failure.
  void write_csv_file(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a double the way tables do ("%.6g"); exposed for tests.
[[nodiscard]] std::string format_number(double v);

/// Parses "--csv PATH" out of an argv-style argument list; returns an empty
/// string when absent.  Used by the bench binaries.
[[nodiscard]] std::string csv_path_from_args(int argc, const char* const* argv);

}  // namespace sigcomp::exp
