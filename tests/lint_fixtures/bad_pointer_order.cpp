// Fixture: ordering or hashing by pointer value leaks the allocator's
// address-space layout into results.
#include <cstdint>
#include <functional>
#include <map>

struct Node {};

std::size_t hash_by_address(Node* n) {
  return std::hash<Node*>{}(n);  // LINT[pointer-order]
}

using NodeOrder = std::map<Node*, int, std::less<Node*>>;  // LINT[pointer-order]

std::uintptr_t as_int(Node* n) {             // LINT[pointer-order]
  return reinterpret_cast<std::uintptr_t>(n);  // LINT[pointer-order]
}

// Must not fire: type-erasure casts between pointer types (the event
// queue's small-buffer storage does this) and transparent comparators.
void* erase(Node* n) { return static_cast<void*>(n); }
using TransparentMap = std::map<int, int, std::less<>>;
