#include "sim/channel_process.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/stats.hpp"

namespace sigcomp::sim {
namespace {

TEST(LossConfig, IidMeanLossIsTheLossItself) {
  EXPECT_DOUBLE_EQ(LossConfig::iid(0.0).mean_loss(), 0.0);
  EXPECT_DOUBLE_EQ(LossConfig::iid(0.3).mean_loss(), 0.3);
}

TEST(LossConfig, GeStationaryMeanMatchesClosedForm) {
  // pi_bad = p_gb / (p_gb + p_bg); the GTH route must agree with it.
  const LossConfig config = LossConfig::gilbert_elliott(0.01, 0.2, 0.8, 0.001);
  const double pi_bad = 0.01 / (0.01 + 0.2);
  const double expected = (1.0 - pi_bad) * 0.001 + pi_bad * 0.8;
  EXPECT_NEAR(config.mean_loss(), expected, 1e-12);
}

TEST(LossConfig, GeDegenerateChainsResolveAnalytically) {
  // p_gb = 0: the chain starts good and never leaves it.
  EXPECT_DOUBLE_EQ(LossConfig::gilbert_elliott(0.0, 0.5, 1.0, 0.1).mean_loss(),
                   0.1);
  // p_bg = 0 with p_gb > 0: eventually absorbed in the bad state.
  EXPECT_DOUBLE_EQ(LossConfig::gilbert_elliott(0.5, 0.0, 0.9, 0.0).mean_loss(),
                   0.9);
}

TEST(LossConfig, MatchedConstructionPinsMeanAndBurstLength) {
  for (const double burst : {1.0, 2.0, 5.0, 20.0}) {
    const LossConfig config = LossConfig::gilbert_elliott_matched(0.05, burst);
    EXPECT_NEAR(config.mean_loss(), 0.05, 1e-12) << "burst " << burst;
    EXPECT_NEAR(config.mean_burst_length(), burst, 1e-12) << "burst " << burst;
  }
  // With loss_good > 0 the mean still pins.
  const LossConfig mixed =
      LossConfig::gilbert_elliott_matched(0.1, 4.0, 0.9, 0.01);
  EXPECT_NEAR(mixed.mean_loss(), 0.1, 1e-12);
}

TEST(LossConfig, MatchedConstructionRejectsInfeasibleChains) {
  EXPECT_THROW((void)LossConfig::gilbert_elliott_matched(0.05, 0.5),
               std::invalid_argument);  // burst < 1 message
  EXPECT_THROW((void)LossConfig::gilbert_elliott_matched(1.0, 5.0),
               std::invalid_argument);  // mean >= loss_bad
  EXPECT_THROW((void)LossConfig::gilbert_elliott_matched(0.05, 5.0, 0.5, 0.2),
               std::invalid_argument);  // mean < loss_good
  // Mean so high the implied p_gb would exceed 1.
  EXPECT_THROW((void)LossConfig::gilbert_elliott_matched(0.9, 1.0, 0.91),
               std::invalid_argument);
}

TEST(LossConfig, ValidateRejectsOutOfRangeProbabilities) {
  EXPECT_THROW(LossConfig::iid(-0.1).validate(), std::invalid_argument);
  EXPECT_THROW(LossConfig::iid(1.1).validate(), std::invalid_argument);
  EXPECT_THROW(LossConfig::iid(std::nan("")).validate(), std::invalid_argument);
  EXPECT_NO_THROW(LossConfig::iid(1.0).validate());  // blackhole is legal
  EXPECT_THROW(LossConfig::gilbert_elliott(1.5, 0.5).validate(),
               std::invalid_argument);
  EXPECT_THROW(LossConfig::gilbert_elliott(0.5, -0.5).validate(),
               std::invalid_argument);
  EXPECT_THROW(LossConfig::gilbert_elliott(0.5, 0.5, 2.0).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(LossConfig::gilbert_elliott(0.5, 0.5, 1.0, 0.0).validate());
}

TEST(LossConfig, MeanBurstLengthAgreesAcrossModelsOnDegenerateChain) {
  // p_gb = p, p_bg = 1 - p *is* iid Bernoulli(p); the burst formulas agree.
  const double p = 0.3;
  const LossConfig iid = LossConfig::iid(p);
  const LossConfig degenerate = LossConfig::gilbert_elliott(p, 1.0 - p);
  EXPECT_NEAR(iid.mean_burst_length(), degenerate.mean_burst_length(), 1e-12);
  EXPECT_DOUBLE_EQ(LossConfig::iid(1.0).mean_burst_length(),
                   std::numeric_limits<double>::infinity());
}

TEST(LossProcess, EmpiricalLossRateMatchesStationaryWithin95Ci) {
  // Block means of the drop indicator across independent replicas; the 95%
  // CI of their average must cover the GTH-derived stationary mean.
  const LossConfig config = LossConfig::gilbert_elliott(0.02, 0.25, 0.9, 0.005);
  const double stationary = config.mean_loss();
  RunningStats blocks;
  constexpr int kReplicas = 40;
  constexpr int kDrawsPerReplica = 20000;
  for (int r = 0; r < kReplicas; ++r) {
    Rng rng(1234, static_cast<std::uint64_t>(r));
    LossProcess process(config);
    int drops = 0;
    for (int i = 0; i < kDrawsPerReplica; ++i) drops += process.drop(rng);
    blocks.add(static_cast<double>(drops) / kDrawsPerReplica);
  }
  const ConfidenceInterval ci = confidence_interval_95(blocks);
  EXPECT_TRUE(ci.contains(stationary))
      << "empirical " << ci.mean << " +/- " << ci.half_width
      << " vs stationary " << stationary;
}

TEST(LossProcess, MeanBurstLengthScalesAsInversePbg) {
  for (const double p_bg : {0.5, 0.2, 0.1}) {
    // Keep the stationary mean fixed at 0.05 while the burst length moves.
    const LossConfig config =
        LossConfig::gilbert_elliott_matched(0.05, 1.0 / p_bg);
    Rng rng(77);
    LossProcess process(config);
    std::vector<int> bursts;
    int current = 0;
    for (int i = 0; i < 400000; ++i) {
      if (process.drop(rng)) {
        ++current;
      } else if (current > 0) {
        bursts.push_back(current);
        current = 0;
      }
    }
    double total = 0.0;
    for (const int b : bursts) total += b;
    const double mean_burst = total / static_cast<double>(bursts.size());
    EXPECT_NEAR(mean_burst, 1.0 / p_bg, 0.1 / p_bg)
        << "p_bg " << p_bg << " (" << bursts.size() << " bursts)";
  }
}

TEST(LossProcess, DegenerateGeIsBitIdenticalToIid) {
  // p_gb = p, p_bg = 1 - p, loss_bad = 1, loss_good = 0 consumes the random
  // stream exactly like iid Bernoulli(p): same seed, same drop sequence,
  // bit for bit.
  const double p = 0.13;
  Rng rng_iid(2024);
  Rng rng_ge(2024);
  LossProcess iid(LossConfig::iid(p));
  LossProcess ge(LossConfig::gilbert_elliott(p, 1.0 - p, 1.0, 0.0));
  for (int i = 0; i < 100000; ++i) {
    ASSERT_EQ(iid.drop(rng_iid), ge.drop(rng_ge)) << "draw " << i;
  }
  // The underlying generators stayed in lockstep, too.
  EXPECT_EQ(rng_iid.next_u64(), rng_ge.next_u64());
}

TEST(LossProcess, SetLossSwitchesToIidAndValidates) {
  LossProcess process(LossConfig::gilbert_elliott(0.5, 0.5));
  process.set_loss(0.0);
  EXPECT_EQ(process.config().model, LossModel::kIid);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(process.drop(rng));
  EXPECT_THROW(process.set_loss(1.5), std::invalid_argument);
}

TEST(DelayConfig, LegacyBridgeMatchesSampleHelper) {
  Rng a(17), b(17);
  const DelayConfig exponential =
      DelayConfig::from(Distribution::kExponential, 0.4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(exponential.sample(a),
                     sample(b, Distribution::kExponential, 0.4));
  }
  const DelayConfig deterministic =
      DelayConfig::from(Distribution::kDeterministic, 0.4);
  EXPECT_DOUBLE_EQ(deterministic.sample(a), 0.4);
}

TEST(DelayConfig, HeavyTailLawsHaveRequestedMean) {
  Rng rng(23);
  constexpr int kSamples = 400000;
  double pareto_sum = 0.0;
  double lognormal_sum = 0.0;
  const DelayConfig pareto = DelayConfig::pareto(0.1, 2.5);
  const DelayConfig lognormal = DelayConfig::lognormal(0.1, 1.0);
  for (int i = 0; i < kSamples; ++i) {
    pareto_sum += pareto.sample(rng);
    lognormal_sum += lognormal.sample(rng);
  }
  EXPECT_NEAR(pareto_sum / kSamples, 0.1, 0.005);
  EXPECT_NEAR(lognormal_sum / kSamples, 0.1, 0.005);
}

TEST(DelayConfig, ValidateRejectsOutOfDomainParameters) {
  EXPECT_THROW(DelayConfig::exponential(-1.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(DelayConfig::pareto(0.1, 1.0).validate(), std::invalid_argument);
  EXPECT_THROW(DelayConfig::lognormal(0.1, -0.5).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(DelayConfig::pareto(0.1, 1.5).validate());
  EXPECT_NO_THROW(DelayConfig::deterministic(0.0).validate());
}

}  // namespace
}  // namespace sigcomp::sim
