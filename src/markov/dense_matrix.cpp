#include "markov/dense_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace sigcomp::markov {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix::DenseMatrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("DenseMatrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& DenseMatrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("DenseMatrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

const double& DenseMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("DenseMatrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

double DenseMatrix::row_sum(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("DenseMatrix::row_sum: row out of range");
  double sum = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c);
  return sum;
}

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("DenseMatrix::multiply: dimension mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::left_multiply(const std::vector<double>& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("DenseMatrix::left_multiply: dimension mismatch");
  }
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * (*this)(r, c);
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("DenseMatrix::multiply: dimension mismatch");
  }
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += v * other(k, c);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void DenseMatrix::scale(double factor) noexcept {
  for (double& v : data_) v *= factor;
}

void DenseMatrix::add(const DenseMatrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("DenseMatrix::add: dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

double DenseMatrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

std::ostream& operator<<(std::ostream& os, const DenseMatrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << '[';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << (c ? ", " : "") << m(r, c);
    }
    os << "]\n";
  }
  return os;
}

}  // namespace sigcomp::markov
