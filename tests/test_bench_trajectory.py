#!/usr/bin/env python3
"""Unit tests of tools/bench_trajectory.py (ctest: bench_trajectory_validation).

The load-bearing path is the duplicate-label rejection: `validate` must exit
nonzero on a trajectory carrying the same label twice (silently appending a
duplicate is how a CI re-run used to corrupt the tracked history), while
`ingest` of an existing label REPLACES the entry, keeping re-runs idempotent
and the file forever valid.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(ROOT, "tools", "bench_trajectory.py")


def snapshot(tag):
    """A minimal perf_scale --json payload (one row per required table)."""
    return {
        "bench": "perf_scale",
        "quick": True,
        "threads": 2,
        "farm_backend": "heap",
        "event_core": [
            {"workload": tag, "reference_ops_per_s": 1.0,
             "heap_ops_per_s": 2.0, "wheel_ops_per_s": 3.0},
        ],
        "farm": [
            {"workload": tag, "backend": "heap", "sessions": 10,
             "events_per_s": 4.0},
        ],
    }


def trajectory(labels):
    return {
        "bench": "perf_scale",
        "schema": 2,
        "trajectory": [
            {"label": label, "snapshot": snapshot(label)} for label in labels
        ],
    }


def run_tool(*args):
    return subprocess.run(
        [sys.executable, TOOL, *args], capture_output=True, text=True)


class BenchTrajectoryTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path

    def test_validate_accepts_unique_labels(self):
        path = self.write("ok.json", trajectory(["pr9", "pr10"]))
        result = run_tool("validate", "--trajectory", path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_validate_rejects_duplicate_labels(self):
        path = self.write("dup.json", trajectory(["pr9", "pr10", "pr9"]))
        result = run_tool("validate", "--trajectory", path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("duplicate label", result.stderr)
        self.assertIn("pr9", result.stderr)

    def test_validate_rejects_unlabelled_entry(self):
        payload = trajectory(["pr9"])
        del payload["trajectory"][0]["label"]
        path = self.write("unlabelled.json", payload)
        result = run_tool("validate", "--trajectory", path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("lacks a label", result.stderr)

    def test_ingest_replaces_existing_label_instead_of_duplicating(self):
        path = self.write("traj.json", trajectory(["pr9"]))
        snap = self.write("snap.json", snapshot("rerun"))
        for _ in range(2):  # second run must replace, not append
            result = run_tool("ingest", "--trajectory", path,
                              "--snapshot", snap, "--label", "pr9")
            self.assertEqual(result.returncode, 0, result.stderr)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        labels = [entry["label"] for entry in data["trajectory"]]
        self.assertEqual(labels, ["pr9"])
        self.assertEqual(
            data["trajectory"][0]["snapshot"]["farm"][0]["workload"], "rerun")
        # The rewritten file still validates (no duplicates introduced).
        self.assertEqual(
            run_tool("validate", "--trajectory", path).returncode, 0)


if __name__ == "__main__":
    unittest.main()
