// Extension experiment (beyond the paper): bursty channel loss.  The paper's
// channel loses messages iid Bernoulli; real signaling paths lose them in
// bursts (congestion episodes, wireless fades).  Here a Gilbert-Elliott
// two-state loss process sweeps the mean burst length at a *fixed* average
// loss rate -- the stationary mean is pinned with the markov/stationary
// solver -- so any movement is purely the correlation structure.  Soft-state
// refresh (a lost refresh is re-sent a full R later) and hard-state reliable
// retransmission (Gamma << R) respond very differently to the same average.
//
// All five protocols run through evaluate_grid_simulated, so the sweep
// parallelizes and stays bit-identical at any thread count; with --quick the
// binary re-runs the grid at 1, 2 and 8 threads and exits 1 on any mismatch
// (the CI smoke test).
//
// Usage: ext_bursty_loss [--quick] [--csv PATH] [--threads N]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "exp/parallel.hpp"
#include "exp/table.hpp"

namespace {

using namespace sigcomp;

/// The sweep: an iid reference point plus GE chains of growing burst length,
/// all with the same stationary mean loss.
struct Scenario {
  std::string name;
  SingleHopParams params;
};

std::vector<Scenario> build_scenarios(double mean_loss) {
  SingleHopParams base = SingleHopParams::kazaa_defaults();
  base.loss = mean_loss;
  std::vector<Scenario> scenarios{{"iid", base}};
  for (const int burst : {2, 5, 10, 20}) {
    scenarios.push_back({"ge burst " + std::to_string(burst),
                         base.with_bursty_loss(burst)});
  }
  return scenarios;
}

std::vector<exp::MetricsSummary> run_grid(const std::vector<SingleHopParams>& grid,
                                          ProtocolKind kind,
                                          std::size_t sessions,
                                          std::size_t replications,
                                          exp::ParallelSweep& engine) {
  SimGridOptions options;
  options.sim.sessions = sessions;
  options.sim.seed = 7;
  options.replications = replications;
  options.engine = &engine;
  return evaluate_grid_simulated(kind, grid, options);
}

bool identical(const std::vector<exp::MetricsSummary>& a,
               const std::vector<exp::MetricsSummary>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].inconsistency.mean != b[i].inconsistency.mean ||
        a[i].inconsistency.half_width != b[i].inconsistency.half_width ||
        a[i].message_rate.mean != b[i].message_rate.mean ||
        a[i].message_rate.half_width != b[i].message_rate.half_width) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t sessions = quick ? 120 : 2000;
  const std::size_t replications = quick ? 4 : 10;
  const double mean_loss = 0.05;

  const std::vector<Scenario> scenarios = build_scenarios(mean_loss);
  std::vector<SingleHopParams> grid;
  grid.reserve(scenarios.size());
  for (const Scenario& s : scenarios) grid.push_back(s.params);

  exp::Table table(
      "Bursty-loss extension: Gilbert-Elliott loss at fixed mean loss " +
          std::to_string(mean_loss) +
          " (burst = mean consecutive losses; iid = the paper's channel)",
      {"scenario", "protocol", "I (sim)", "I ci95", "M (sim)", "M ci95"});

  exp::ParallelSweep engine(exp::threads_from_args(argc, argv));
  bool bit_identical = true;
  for (const ProtocolKind kind : kAllProtocols) {
    const std::vector<exp::MetricsSummary> summaries =
        run_grid(grid, kind, sessions, replications, engine);
    if (quick) {
      // CI smoke test: the engine's determinism contract says thread count
      // cannot change any output bit -- verify it on this new scenario.
      for (const std::size_t threads : {1u, 2u, 8u}) {
        exp::ParallelSweep check(threads);
        if (!identical(summaries,
                       run_grid(grid, kind, sessions, replications, check))) {
          std::cerr << "FAIL: results at " << threads
                    << " threads differ from --threads run for "
                    << to_string(kind) << '\n';
          bit_identical = false;
        }
      }
    }
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      table.add_row({scenarios[i].name, std::string(to_string(kind)),
                     summaries[i].inconsistency.mean,
                     summaries[i].inconsistency.half_width,
                     summaries[i].message_rate.mean,
                     summaries[i].message_rate.half_width});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: at equal average loss, longer bursts hurt pure soft "
         "state the most -- a burst can swallow every refresh within a "
         "timeout interval, so false removals grow with burst length even "
         "though the mean loss is unchanged.  Retransmission-based repair "
         "(SS+RT, SS+RTR, HS) rides out bursts once they end, and its "
         "message cost barely moves.\n";
  if (quick) {
    std::cout << (bit_identical
                      ? "bit-identity across 1/2/8 threads: OK\n"
                      : "bit-identity across 1/2/8 threads: FAILED\n");
  }

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return bit_identical ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
