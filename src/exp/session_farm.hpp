// Many-session scale harness: drives N concurrent signaling sessions --
// single-hop sender/receiver pairs, multi-hop chains, or fan-out trees --
// inside shared discrete-event simulators, the way a real RSVP/IGMP-style
// router juggles hundreds of thousands of soft-state sessions at once.
//
// Workload model: session i (i = 0..N-1) arrives at a time drawn uniformly
// from the arrival window [0, N / arrival_rate) -- the order statistics of a
// Poisson process of rate `arrival_rate` conditioned on N arrivals -- lives
// an exponential lifetime with the configured mean, is removed gracefully,
// and is measured from arrival to absorption (single-hop) or over its
// lifetime window (multi-hop).  Per-session metrics aggregate into the
// MetricsSummary machinery: each session is one "replica".
//
// Determinism contract (the ParallelSweep contract, extended): every
// session's randomness is keyed to its GLOBAL index through
// replica_seed(seed, session, stream), and sessions never interact, so
// results are bit-identical at any thread count AND any shard size.  Shards
// partition [0, N) into fixed consecutive blocks, each simulated in its own
// Simulator and fanned across the pool; per-session metrics are concatenated
// back in global session order before summarizing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/parallel.hpp"
#include "protocols/membership.hpp"
#include "protocols/scenario.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::exp {

/// Workload and execution options of a session-farm run.
struct SessionFarmOptions {
  std::uint64_t seed = 1;        ///< base seed of the per-session keying
  /// Event-queue backend of the run's Simulator.  A pure performance knob:
  /// both backends pop in the identical (time, insertion-seq) order, so the
  /// run -- golden digests included -- is bit-identical either way.
  sim::EventQueueBackend event_queue = sim::kDefaultEventQueueBackend;
  std::size_t sessions = 1000;   ///< N: total sessions to drive
  /// Poisson arrival rate (sessions/second).  The arrival window is
  /// N / arrival_rate long; with lifetimes longer than the window most of
  /// the N sessions are concurrently in flight.
  double arrival_rate = 100.0;
  double session_lifetime = 60.0;  ///< mean exponential lifetime (seconds)
  sim::Distribution timer_dist = sim::Distribution::kDeterministic;
  sim::DelayModel delay_model = sim::DelayModel::kExponential;
  double delay_shape = 1.5;
  /// Sessions per shard (per Simulator).  Shard boundaries are fixed by
  /// this value alone, so results do not depend on the thread count; they
  /// do not depend on the shard size either (see the file comment), which
  /// lets the scale bench pit one 100k-session simulator against many
  /// small ones and get the same numbers.
  std::size_t shard_size = 4096;
  /// Worker threads when no engine is passed (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Optional shared pool; `threads` is ignored when set.
  ParallelSweep* engine = nullptr;
  /// Per-leaf lifetime model (tree/chain sessions only): when enabled,
  /// every leaf of every session churns independently -- joined for a mean
  /// `leaf_churn.leaf_lifetime`, detached until its rejoin timer --
  /// while the session itself still spans its own lifetime window.  The
  /// churn timers draw from a dedicated per-session stream keyed to the
  /// session's global index, so the determinism contract (bit-identical
  /// across thread counts AND shard sizes) extends to churn runs.
  /// Single-hop farms reject enabled churn (there is no tree to prune).
  protocols::ChurnOptions leaf_churn;
  /// Correlated-event scenario per session (flash-crowd rejoin storms,
  /// shared-risk subtree leave bursts, interior-relay crash/recovery).  The
  /// scenario processes draw from two dedicated per-session streams keyed
  /// to the global index (kSessionScenarioArrival/kSessionScenarioFailure),
  /// so the bit-identity contract extends to scenario runs -- and with
  /// every rate at zero those streams are never touched and the run
  /// replays the scenario-free farm exactly.  Single-hop farms reject an
  /// enabled scenario (there is no tree to crash or burst).
  protocols::ScenarioOptions scenario;
  /// When true, SessionFarmResult::per_session carries every session's
  /// Metrics in global session order -- the differential suite, the farm
  /// golden digests and the scale bench's determinism check diff these
  /// element-wise.  Off by default: a million-session run should not haul
  /// a million Metrics back unless asked.
  bool keep_per_session = false;
  /// Shared relay sessions (single-hop farms only).  0 -- the default --
  /// runs the exact pre-fabric farm code path, bit for bit.  R > 0 adds R
  /// relay sessions at global indices [sessions, sessions + R): the first
  /// R * subscribers_per_relay farm sessions each install state through
  /// relay (index mod R) across the cross-shard message ring, with fan-in
  /// at the relay and per-subscriber refresh fan-out back (see
  /// protocols/shared_relay.hpp and docs/ARCHITECTURE.md, "The cross-shard
  /// fabric").  Results stay element-wise identical across thread counts
  /// AND shard sizes; the fabric's epoch-batched delivery (latency up to
  /// one fabric slice) is part of the workload model.
  std::size_t shared_relays = 0;
  /// Subscribers wired to each shared relay.  Requires
  /// shared_relays * subscribers_per_relay <= sessions (every subscriber is
  /// an ordinary farm session; the rest of the farm runs undisturbed).
  std::size_t subscribers_per_relay = 16;
  /// Teardown pricing (tree/chain farms only): when true, a session's
  /// lifetime window ends with an explicit TreeSender::remove() -- removal
  /// messages propagate down every branch, priced into the session's
  /// message counts and surfaced in SessionFarmResult::teardown_messages --
  /// followed by a deterministic grace period of one timeout interval
  /// before the tree is silently stopped.  The default (false) keeps the
  /// historical silent Topology::stop(), bit for bit.
  bool teardown = false;
};

/// Aggregate outcome of a farm run.
struct SessionFarmResult {
  /// Per-session metrics summarized as mean/stddev/95%-CI ("replications"
  /// = completed sessions).
  MetricsSummary summary;
  std::size_t sessions = 0;  ///< completed sessions (== options.sessions)
  std::size_t shards = 0;
  std::uint64_t messages = 0;  ///< signaling messages across all sessions
  std::uint64_t events_executed = 0;  ///< simulator events across all shards
  std::uint64_t receiver_timeouts = 0;  ///< soft-state timeout expirations
  /// Latest session end time across shards (the simulated horizon).
  double horizon = 0.0;
  /// Peak number of sessions simultaneously in flight -- EXACT at any shard
  /// size: the reduce step merges every session's [begin, completion]
  /// interval endpoints across shards and sweeps them globally, so the
  /// sharded value equals the single-shard truth (a test locks this).
  std::size_t peak_sessions_in_flight = 0;
  /// Leaf-churn outcome summed across sessions in global session order
  /// (all-zero when churn is disabled).
  protocols::ChurnReport churn;
  /// Interior-relay crashes across all sessions (0 without a failure
  /// scenario).
  std::uint64_t relay_crashes = 0;
  /// Completed relay recoveries across all sessions.
  std::uint64_t relay_recoveries = 0;
  /// Every session's metrics in global session order; filled only when
  /// SessionFarmOptions::keep_per_session is set (empty otherwise).
  std::vector<Metrics> per_session;
  /// Largest per-shard arena high-water mark (SessionArena::slot_capacity):
  /// the most sessions any shard ever held constructed at once.  Under
  /// churn this sits far below the shard's session count -- the free-list
  /// recycling proof the soak tests assert.
  std::size_t arena_slot_high_water = 0;
  /// Total arena chunk allocations across shards
  /// (SessionArena::chunk_allocations summed).  Flat once the pools reach
  /// their high-water marks -- the farm's zero-steady-state-allocation
  /// counter.
  std::size_t arena_chunk_allocations = 0;
  /// Shared relay sessions driven (== options.shared_relays; their metrics
  /// occupy the last relay_sessions entries of per_session).  `sessions`
  /// counts them too when relays are enabled.
  std::size_t relay_sessions = 0;
  /// Messages carried by the cross-shard ring fabric (every stamped entry
  /// pushed by clients and hubs; 0 without shared relays).
  std::uint64_t fabric_messages = 0;
  /// Fabric deliveries dropped at the destination (the session had already
  /// completed, or the hub rejected the source).  Deterministic: drop
  /// decisions depend only on the decomposition-invariant epoch timeline.
  std::uint64_t fabric_dropped = 0;
  /// ShardRings materialized (directed shard pairs that carry traffic).
  std::size_t fabric_rings = 0;
  /// Epoch barriers executed by the fabric's lockstep worker loop.
  std::size_t fabric_epochs = 0;
  /// Installs accepted across every relay hub (first installs plus
  /// re-installs after a soft-state expiry).
  std::uint64_t relay_installs = 0;
  /// Subscriber refreshes accepted across every relay hub.
  std::uint64_t relay_refreshes = 0;
  /// Soft-state expirations across every relay hub's subscriber slots.
  std::uint64_t relay_soft_timeouts = 0;
  /// Messages attributable to explicit session teardown (tree/chain farms
  /// with SessionFarmOptions::teardown; 0 otherwise): everything sent
  /// between the window-end remove() and the end of the grace period.
  std::uint64_t teardown_messages = 0;
};

/// Runs N single-hop sessions of `kind`.  `params.removal_rate` is ignored
/// (the lifetime law comes from the options); everything else -- loss
/// process, delay, timers, update rate -- is honored per session.  Throws
/// std::invalid_argument on bad options.
[[nodiscard]] SessionFarmResult run_session_farm(
    ProtocolKind kind, const SingleHopParams& params,
    const SessionFarmOptions& options);

/// Runs N multi-hop chain sessions of `kind` (SS, SS+RT or HS) with
/// `params.hops` hops each.  Sessions are measured over their lifetime
/// window and then silently torn down (protocols::TreeSender::stop).
[[nodiscard]] SessionFarmResult run_session_farm(
    ProtocolKind kind, const MultiHopParams& params,
    const SessionFarmOptions& options);

/// Runs N tree sessions of `kind` (SS, SS+RT or HS), each one a full
/// `params.tree` topology (protocols::Topology) with per-edge channels.
/// Like chain sessions, they are measured over their lifetime window and
/// then silently torn down; `receiver_timeouts` counts soft-state timeouts
/// across every relay of every session.
[[nodiscard]] SessionFarmResult run_session_farm(
    ProtocolKind kind, const analytic::TreeParams& params,
    const SessionFarmOptions& options);

}  // namespace sigcomp::exp
