#include "protocols/multi_hop_node.hpp"

#include <utility>

namespace sigcomp::protocols {

// ---------------------------------------------------------- ReliableSlot --

ReliableSlot::ReliableSlot(sim::Simulator& sim, sim::Rng& rng,
                           sim::Distribution dist, double retrans_timer,
                           MessageChannel* channel)
    : sim_(sim), rng_(rng), dist_(dist), retrans_timer_(retrans_timer),
      channel_(channel) {}

void ReliableSlot::send(Message msg) {
  pending_ = msg;
  outstanding_ = true;
  channel_->send(pending_);
  arm();
}

bool ReliableSlot::acknowledge(std::uint64_t seq) {
  if (!outstanding_ || pending_.seq != seq) return false;
  cancel();
  return true;
}

void ReliableSlot::cancel() {
  outstanding_ = false;
  if (timer_) {
    sim_.cancel(*timer_);
    timer_.reset();
  }
}

void ReliableSlot::arm() {
  if (timer_) sim_.cancel(*timer_);
  timer_ = sim_.schedule_in(sim::sample(rng_, dist_, retrans_timer_),
                            [this] { on_timer(); });
}

void ReliableSlot::on_timer() {
  timer_.reset();
  if (!outstanding_) return;
  channel_->send(pending_);
  arm();
}

// ------------------------------------------------------------ TreeSender --

TreeSender::TreeSender(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
                       TimerSettings timers,
                       std::vector<MessageChannel*> down,
                       std::function<void()> on_change)
    : sim_(sim),
      rng_(rng),
      mech_(mech),
      timers_(timers),
      down_(std::move(down)),
      on_change_(std::move(on_change)) {
  // Sized once, before any timer can be armed: slots capture `this`-stable
  // addresses in their retransmission closures, so the vector must never
  // reallocate afterwards.
  reliable_down_.reserve(down_.size());
  for (MessageChannel* channel : down_) {
    reliable_down_.emplace_back(sim, rng, timers.dist, timers.retrans, channel);
  }
}

void TreeSender::send_trigger() {
  const Message msg{MessageType::kTrigger, *value_, trigger_seq_, 0};
  for (std::size_t c = 0; c < down_.size(); ++c) {
    if (mech_.reliable_trigger) {
      reliable_down_[c].send(msg);
    } else {
      down_[c]->send(msg);
    }
  }
}

void TreeSender::start(std::int64_t value) {
  value_ = value;
  trigger_seq_ = next_seq_++;
  send_trigger();
  if (mech_.refresh && !refresh_timer_) arm_refresh();
  if (on_change_) on_change_();
}

void TreeSender::update(std::int64_t value) {
  if (!value_) {
    start(value);
    return;
  }
  value_ = value;
  trigger_seq_ = next_seq_++;
  send_trigger();
  if (on_change_) on_change_();
}

void TreeSender::arm_refresh() {
  refresh_timer_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, timers_.refresh), [this] {
        refresh_timer_.reset();
        if (value_) {
          const Message msg{MessageType::kRefresh, *value_, trigger_seq_, 0};
          for (MessageChannel* channel : down_) channel->send(msg);
          arm_refresh();
        }
      });
}

void TreeSender::stop() {
  value_.reset();
  if (refresh_timer_) {
    sim_.cancel(*refresh_timer_);
    refresh_timer_.reset();
  }
  for (ReliableSlot& slot : reliable_down_) slot.cancel();
}

void TreeSender::handle_from_downstream(const Message& msg, std::size_t child) {
  switch (msg.type) {
    case MessageType::kAckTrigger:
      reliable_down_[child].acknowledge(msg.seq);
      break;
    case MessageType::kNotice:
      // A receiver removed our state (timeout or false external signal);
      // re-install.  Under HS the notice traveled reliably, so acknowledge.
      // The fresh trigger goes down every branch: relays that still hold
      // the value re-ack the duplicate without re-forwarding it.
      if (mech_.external_failure_detector) {
        down_[child]->send(Message{MessageType::kAckNotice, 0, msg.seq, 0});
      }
      if (value_) {
        trigger_seq_ = next_seq_++;
        send_trigger();
      }
      break;
    default:
      break;
  }
}

// ------------------------------------------------------------- TreeRelay --

TreeRelay::TreeRelay(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
                     TimerSettings timers, MessageChannel* up,
                     std::vector<MessageChannel*> down,
                     std::function<void()> on_change)
    : sim_(sim),
      rng_(rng),
      mech_(mech),
      timers_(timers),
      up_(up),
      down_(std::move(down)),
      on_change_(std::move(on_change)),
      reliable_up_(sim, rng, timers.dist, timers.retrans, up) {
  reliable_down_.reserve(down_.size());  // fixed size; see TreeSender
  for (MessageChannel* channel : down_) {
    reliable_down_.emplace_back(sim, rng, timers.dist, timers.retrans, channel);
  }
}

void TreeRelay::notify() {
  if (on_change_) on_change_();
}

void TreeRelay::clear_timeout() {
  if (timeout_timer_) {
    sim_.cancel(*timeout_timer_);
    timeout_timer_.reset();
  }
}

void TreeRelay::arm_timeout() {
  clear_timeout();
  timeout_timer_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, timers_.timeout), [this] { on_timeout(); });
}

void TreeRelay::on_timeout() {
  timeout_timer_.reset();
  if (!value_) return;
  value_.reset();
  ++timeouts_;
  if (mech_.removal_notification) {
    // One-hop repair notice (SS+RT): the upstream neighbor re-triggers.
    up_->send(Message{MessageType::kNotice, 0, 0, 0});
  }
  notify();
}

void TreeRelay::forward_trigger_to(std::size_t child, std::int64_t value) {
  const Message msg{MessageType::kTrigger, value, next_seq_++, 0};
  if (mech_.reliable_trigger) {
    reliable_down_[child].send(msg);
  } else {
    down_[child]->send(msg);
  }
}

void TreeRelay::forward_trigger(std::int64_t value) {
  for (std::size_t c = 0; c < down_.size(); ++c) forward_trigger_to(c, value);
}

void TreeRelay::handle_from_upstream(const Message& msg) {
  switch (msg.type) {
    case MessageType::kTrigger: {
      const bool duplicate = value_ && *value_ == msg.value;
      if (mech_.reliable_trigger) {
        up_->send(Message{MessageType::kAckTrigger, 0, msg.seq, 0});
      }
      value_ = msg.value;
      if (mech_.soft_timeout) arm_timeout();
      // Duplicates (retransmission after a lost ACK) are re-ACKed but not
      // re-forwarded: the downstream copies are already in flight or pending.
      if (!duplicate) {
        forward_trigger(msg.value);
        notify();
      }
      break;
    }
    case MessageType::kRefresh:
      value_ = msg.value;
      if (mech_.soft_timeout) arm_timeout();
      // Forward the refresh copy down every branch, best effort.
      for (MessageChannel* channel : down_) channel->send(msg);
      notify();
      break;
    case MessageType::kTeardown:
      // Reliable downstream propagation of a removal signal (HS recovery).
      up_->send(Message{MessageType::kAckNotice, 0, msg.seq, 0});
      if (value_) {
        value_.reset();
        clear_timeout();
        notify();
      }
      for (std::size_t c = 0; c < down_.size(); ++c) {
        reliable_down_[c].send(
            Message{MessageType::kTeardown, 0, next_seq_++, 0});
      }
      break;
    case MessageType::kAckNotice:
      reliable_up_.acknowledge(msg.seq);
      break;
    default:
      break;
  }
}

void TreeRelay::handle_from_downstream(const Message& msg, std::size_t child) {
  switch (msg.type) {
    case MessageType::kAckTrigger:
    case MessageType::kAckNotice:
      reliable_down_[child].acknowledge(msg.seq);
      break;
    case MessageType::kNotice:
      if (mech_.external_failure_detector) {
        // HS recovery: acknowledge, drop our own state, keep flooding the
        // notice toward the sender.
        down_[child]->send(Message{MessageType::kAckNotice, 0, msg.seq, 0});
        if (value_) {
          value_.reset();
          notify();
        }
        reliable_up_.send(Message{MessageType::kNotice, 0, next_seq_++, 0});
      } else if (value_) {
        // SS+RT one-hop repair: re-install our value down the branch the
        // notice came from (the other branches kept their copies).
        forward_trigger_to(child, *value_);
      }
      break;
    default:
      break;
  }
}

void TreeRelay::stop() {
  value_.reset();
  clear_timeout();
  reliable_up_.cancel();
  for (ReliableSlot& slot : reliable_down_) slot.cancel();
}

void TreeRelay::external_removal_signal() {
  if (!value_) return;
  value_.reset();
  clear_timeout();
  notify();
  reliable_up_.send(Message{MessageType::kNotice, 0, next_seq_++, 0});
  for (std::size_t c = 0; c < down_.size(); ++c) {
    reliable_down_[c].send(Message{MessageType::kTeardown, 0, next_seq_++, 0});
  }
}

}  // namespace sigcomp::protocols
