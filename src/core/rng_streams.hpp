// RNG substream registry: the single source of truth for every (seed, stream)
// substream ID used anywhere in the library.
//
// Bit-identity across threads, shards and event-queue backends rests on two
// properties of the randomness plan: (1) every subsystem draws from its own
// dedicated substream of sim::Rng, and (2) no two subsystems ever share a
// substream ID by accident.  Both are enforced here: every stream ID is a
// named constant, and a static_assert rejects duplicates at compile time.
// tools/lint/sigcomp_lint.py rejects any numeric-literal stream ID outside
// this header (rule `rng-stream-literal`), so adding a stream means adding a
// constant here -- which is exactly where the uniqueness check lives.
//
// Layouts (see docs/ARCHITECTURE.md, "RNG stream registry"):
//  * Single-hop session layout (streams 0-5): used both by the single-hop
//    replication harness (protocols/single_hop_run.cpp) and, keyed to the
//    session's global index via exp::replica_seed, by every session of the
//    farm (exp/session_farm.cpp).  The two MUST stay identical -- the farm
//    mirrors the harness stream-for-stream.  kSessionMembership is consumed
//    only by churn-enabled tree sessions but is reserved in the shared
//    layout so enabling churn never shifts the other five streams.
//  * Tree/chain harness layout (streams 100-104): used identically by the
//    chain harness (protocols/multi_hop_run.cpp) and the tree harness
//    (protocols/tree_run.cpp); the tree mirrors the chain stream-for-stream
//    so a fan-out-1 tree replays the chain bit-for-bit.  kTreeMembership is
//    the dedicated leaf-churn substream (tree harness only), so a
//    zero-churn run replays the static tree exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>

namespace sigcomp::rng {

// ------------------------------------------ single-hop session layout --

/// Channel loss/delay draws (both directions share one stream).
inline constexpr std::uint64_t kSessionChannel = 0;
/// Sender-side timers (refresh, retransmission, backoff).
inline constexpr std::uint64_t kSessionSender = 1;
/// Receiver-side timers (soft-state timeout).
inline constexpr std::uint64_t kSessionReceiver = 2;
/// Session lifecycle: arrival stagger and lifetime draws.
inline constexpr std::uint64_t kSessionLifecycle = 3;
/// False-external-signal (crash) injection.
inline constexpr std::uint64_t kSessionFailure = 4;
/// Per-leaf membership churn timers (farm tree sessions only; reserved in
/// the shared layout so enabling churn never shifts streams 0-4).
inline constexpr std::uint64_t kSessionMembership = 5;
/// Scenario arrival modulation (flash-crowd / diurnal rejoin rates) for
/// farm tree sessions; reserved so enabling a scenario never shifts 0-5.
inline constexpr std::uint64_t kSessionScenarioArrival = 6;
/// Scenario failure process (interior-relay crash/recovery/detection and
/// shared-risk leave bursts) for farm tree sessions.
inline constexpr std::uint64_t kSessionScenarioFailure = 7;
/// Shared-relay client timers (install/refresh jitter toward the shared
/// relay) for farm sessions subscribed to a cross-shard relay.  Reserved in
/// the shared layout so enabling shared relays never shifts streams 0-7 --
/// which is what keeps a `--shared-relays 0` run bit-identical to the
/// pre-fabric farm.
inline constexpr std::uint64_t kSessionRelay = 8;

// ------------------------------------------- tree/chain harness layout --

/// Per-edge channel loss/delay draws (all edges share one stream).
inline constexpr std::uint64_t kTreeChannel = 100;
/// Node timers for sender and every relay (refresh, timeout, retrans).
inline constexpr std::uint64_t kTreeNodes = 101;
/// Run lifecycle: trigger and removal scheduling.
inline constexpr std::uint64_t kTreeLifecycle = 102;
/// False-external-signal (crash) injection.
inline constexpr std::uint64_t kTreeFailure = 103;
/// Leaf join/leave churn timers (MembershipController).
inline constexpr std::uint64_t kTreeMembership = 104;
/// Scenario arrival modulation (flash-crowd / diurnal rejoin rates).
inline constexpr std::uint64_t kTreeScenarioArrival = 105;
/// Scenario failure process (interior-relay crash/recovery/detection and
/// shared-risk leave bursts).
inline constexpr std::uint64_t kTreeScenarioFailure = 106;

namespace detail {

/// Every registered substream ID.  Append new streams here as well as
/// above; the uniqueness check below covers exactly this list.
inline constexpr std::uint64_t kAllStreams[] = {
    kSessionChannel,
    kSessionSender,
    kSessionReceiver,
    kSessionLifecycle,
    kSessionFailure,
    kSessionMembership,
    kSessionScenarioArrival,
    kSessionScenarioFailure,
    kSessionRelay,
    kTreeChannel,
    kTreeNodes,
    kTreeLifecycle,
    kTreeFailure,
    kTreeMembership,
    kTreeScenarioArrival,
    kTreeScenarioFailure,
};

/// True when no two registered stream IDs collide.
constexpr bool all_streams_unique() noexcept {
  constexpr std::size_t n = std::size(kAllStreams);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (kAllStreams[i] == kAllStreams[j]) return false;
    }
  }
  return true;
}

}  // namespace detail

static_assert(detail::all_streams_unique(),
              "duplicate RNG substream ID in core/rng_streams.hpp -- two "
              "subsystems would draw correlated randomness");

}  // namespace sigcomp::rng
