// Dynamic leaf membership (IGMP-style churn) on a live signaling tree.
//
// The paper motivates the protocol spectrum with multicast group
// membership: hosts join and leave while the tree keeps running, and the
// cost of a protocol shows up in two windows -- how long a fresh member
// waits for state to reach it (setup latency) and how long removed members'
// state lingers on the pruned branch (the orphan window, IGMPv1's
// timeout-only leave vs IGMPv2's explicit Leave).  MembershipController
// drives that workload over a protocols::Topology: every leaf alternates
// joined (mean `leaf_lifetime`) and detached (rejoin rate `rejoin_rate`)
// periods, joins graft state down the path only where missing, and leaves
// prune with the protocol's own removal semantics (timeout, best-effort
// removal, reliable removal, or hard-state teardown).
//
// Determinism: every timer draw comes from the single Rng handed in, and
// membership events interleave with protocol events through the simulator's
// deterministic order, so a run is a pure function of (seed, options) --
// the churn benches exploit this for thread- and shard-identity checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "protocols/scenario.hpp"
#include "protocols/topology.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

/// Workload knobs of the leaf-churn process.  Defaults disable churn
/// entirely (a static tree -- the bit-identity baseline).
struct ChurnOptions {
  /// Mean joined duration of a leaf in seconds (exponential); <= 0 disables
  /// churn: all leaves stay joined forever.
  double leaf_lifetime = 0.0;
  /// Rejoin rate of a detached leaf (1/s, exponential waiting time); <= 0
  /// means departed leaves never come back.
  double rejoin_rate = 0.0;

  /// True when the controller has anything to do.
  [[nodiscard]] bool enabled() const noexcept { return leaf_lifetime > 0.0; }

  /// Throws std::invalid_argument on non-finite or negative values.
  void validate() const;
};

/// Aggregate churn outcome.  Plain counters and sums (no streaming
/// variance) so reports can be summed across sessions in a deterministic
/// order and compared bit-for-bit across thread counts and shard sizes.
struct ChurnReport {
  std::uint64_t joins = 0;   ///< join events driven
  std::uint64_t leaves = 0;  ///< leave events driven
  /// Joins whose setup completed (the leaf held the sender's current value).
  std::uint64_t completed_joins = 0;
  /// Leaves whose pruned branch fully dropped its state (or held none).
  std::uint64_t resolved_orphans = 0;
  double setup_latency_sum = 0.0;  ///< over completed joins, seconds
  double setup_latency_max = 0.0;  ///< worst completed join
  double orphan_window_sum = 0.0;  ///< over resolved leaves, seconds
  double orphan_window_max = 0.0;  ///< worst resolved leave
  /// Joins / pruned branches still unresolved when the run ended.
  std::uint64_t pending_joins = 0;
  std::uint64_t pending_orphans = 0;
  /// Right-censored orphan time: the elapsed (still-running) windows of the
  /// branches counted in pending_orphans, frozen at the horizon.  Without
  /// this term the mean is biased low exactly when orphaning is worst
  /// (slow soft-state timeouts, crashed relays) -- the windows that never
  /// resolve are the longest ones.
  double censored_orphan_window_sum = 0.0;

  /// Mean per-join setup latency over completed joins (0 when none).
  [[nodiscard]] double mean_setup_latency() const noexcept;
  /// Mean orphan window over resolved leaves (0 when none).  Excludes the
  /// censored windows -- see mean_orphan_window_bound for the
  /// censoring-aware companion.
  [[nodiscard]] double mean_orphan_window() const noexcept;
  /// Censoring-aware lower bound on the mean orphan window: still-orphaned
  /// branches at the horizon contribute their elapsed windows (a lower
  /// bound on their eventual lengths), averaged over resolved AND pending
  /// orphans.  Equals mean_orphan_window when nothing was pending.
  [[nodiscard]] double mean_orphan_window_bound() const noexcept;
  /// Accumulates `other` (counters add, maxima combine).
  void absorb(const ChurnReport& other) noexcept;

  friend bool operator==(const ChurnReport&,
                         const ChurnReport&) = default;  ///< field-wise
};

/// Drives the join/leave process of every leaf of a topology and measures
/// per-join setup latency and per-leave orphan windows.  All leaves start
/// joined (matching the static tree).  The owner must invoke
/// on_state_change() from its topology on_change hook so pending joins and
/// orphans resolve the instant node state moves.
class MembershipController {
 public:
  /// `changed` (may be null) fires after every membership flip so the
  /// owner's consistency monitors can resample; `rng` must outlive the
  /// controller and is its only randomness source.
  MembershipController(sim::Simulator& sim, Topology& topology, sim::Rng& rng,
                       const ChurnOptions& options,
                       std::function<void()> changed);

  /// Scenario-aware overload: `scenario` may modulate the rejoin process
  /// (flash crowds / diurnal rates) and add shared-risk subtree leave
  /// bursts, all drawing from `scenario_rng` (the dedicated scenario
  /// substream; must be non-null and outlive the controller whenever
  /// scenario.membership_processes() is true).  With every scenario rate
  /// at zero this is bit-identical to the plain overload: the iid churn
  /// draws come from `rng` exactly as before and `scenario_rng` is never
  /// touched.
  MembershipController(sim::Simulator& sim, Topology& topology, sim::Rng& rng,
                       const ChurnOptions& options,
                       const ScenarioOptions& scenario,
                       sim::Rng* scenario_rng, std::function<void()> changed);

  MembershipController(const MembershipController&) = delete;  ///< non-copyable
  MembershipController& operator=(const MembershipController&) = delete;

  /// Schedules the first leave timer of every (joined) leaf.  No-op when
  /// churn is disabled.
  void start();

  /// Resolves pending joins and orphan windows against the current node
  /// state; called by the owner on every topology state change.
  void on_state_change();

  /// Freezes the report: whatever is still pending is counted as such.
  /// Call once, after the simulation horizon.
  void finish();

  /// The (possibly frozen) churn outcome.
  [[nodiscard]] const ChurnReport& report() const noexcept { return report_; }

 private:
  void schedule_leave(std::size_t leaf);
  void schedule_join(std::size_t leaf);
  void do_leave(std::size_t leaf);
  void do_join(std::size_t leaf);
  void schedule_burst();
  void do_burst();

  /// One join awaiting its first consistent sample at the leaf.
  struct PendingJoin {
    std::size_t leaf = 0;
    double at = 0.0;
  };
  /// One pruned branch whose relays still held state at leave time.
  struct Orphan {
    double at = 0.0;
    std::vector<std::size_t> relays;  ///< relay ids still holding state
  };

  sim::Simulator& sim_;
  Topology& topology_;
  sim::Rng& rng_;
  ChurnOptions options_;
  ScenarioOptions scenario_;
  sim::Rng* scenario_rng_ = nullptr;  ///< scenario substream (may be null)
  ArrivalProcess arrival_;            ///< rejoin-process sampler
  std::function<void()> changed_;

  std::vector<PendingJoin> pending_joins_;
  std::vector<Orphan> orphans_;
  ChurnReport report_;
  bool finished_ = false;
};

}  // namespace sigcomp::protocols
