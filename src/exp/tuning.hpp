// Timer tuning: find the refresh-timer setting that minimizes the
// integrated cost C = w*I + M (Fig. 7's "sensitive optimal operating
// point"), and related one-dimensional optimizations.
#pragma once

#include <functional>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"

namespace sigcomp::exp {

/// Result of a scalar minimization.
struct TuningResult {
  double argmin = 0.0;  ///< optimal parameter value
  double cost = 0.0;    ///< cost at the optimum
  Metrics metrics;      ///< metrics at the optimum
};

/// Minimizes `cost` over [lo, hi] with a coarse logarithmic grid scan
/// followed by golden-section refinement around the best grid cell.
/// Robust for the mildly non-convex cost curves the models produce.
///
/// Throws std::invalid_argument unless 0 < lo < hi and grid_points >= 4.
[[nodiscard]] double minimize_log_grid(const std::function<double(double)>& cost,
                                       double lo, double hi,
                                       std::size_t grid_points = 32,
                                       double tolerance = 1e-3);

/// Optimal refresh timer for a protocol under the integrated cost with the
/// paper's coupling T = 3R (soft-state protocols only; HS ignores R, and
/// asking for its optimum throws std::invalid_argument).
[[nodiscard]] TuningResult optimal_refresh_timer(
    ProtocolKind kind, const SingleHopParams& params,
    double weight = kDefaultCostWeight, double lo = 0.05, double hi = 500.0);

/// Optimal state-timeout timer with the refresh timer held fixed
/// (the Fig. 8(a) question: "how should T relate to R?").
[[nodiscard]] TuningResult optimal_timeout_timer(
    ProtocolKind kind, const SingleHopParams& params,
    double weight = kDefaultCostWeight, double lo = 0.1, double hi = 1000.0);

/// Optimal refresh timer for the multi-hop chain (Fig. 19's minima), with
/// T = 3R; the cost here is w*I + raw message rate.  SS and SS+RT only.
[[nodiscard]] TuningResult optimal_multi_hop_refresh_timer(
    ProtocolKind kind, const MultiHopParams& params,
    double weight = kDefaultCostWeight, double lo = 0.05, double hi = 1000.0);

}  // namespace sigcomp::exp
