// Executable nodes of multi-hop signaling topologies (Sec. III-B,
// generalized from the paper's chain to arbitrary rooted trees).
//
// Topology: a sender at the root, relays at interior nodes, receivers at
// the leaves; a chain is the degenerate tree with fan-out 1.  Every relay
// holds a copy of the signaling state.  Triggers propagate edge-by-edge
// down every branch (reliably for SS+RT and HS), refreshes propagate as
// forwarded best-effort copies down every branch (SS and SS+RT), and the
// HS recovery protocol floods notices upstream and teardowns downstream
// when a false external signal fires.  Hard-state install/remove acks
// aggregate up the branches through per-child reliable slots.
//
// With exactly one child per node these classes behave bit-identically to
// the PR 3 chain nodes (the golden-trace tests pin this).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "protocols/engine.hpp"
#include "protocols/message.hpp"
#include "sim/channel.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

/// Per-direction reliable transmission slot: at most one outstanding message
/// per link direction; a newer reliable send supersedes the pending one
/// (it always carries more recent information).
class ReliableSlot {
 public:
  /// `channel` may be null only if send() is never called.
  ReliableSlot(sim::Simulator& sim, sim::Rng& rng, sim::Distribution dist,
               double retrans_timer, MessageChannel* channel);

  /// Sends `msg` reliably: transmit now, retransmit until acknowledged.
  void send(Message msg);

  /// Processes an acknowledgment sequence number; returns true if it matched
  /// the outstanding message (which is then considered delivered).
  bool acknowledge(std::uint64_t seq);

  /// Drops any outstanding message.
  void cancel();

  /// True while a sent message awaits its acknowledgment.
  [[nodiscard]] bool outstanding() const noexcept { return outstanding_; }

 private:
  void arm();
  void on_timer();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  sim::Distribution dist_;
  double retrans_timer_;
  MessageChannel* channel_;
  Message pending_{};
  bool outstanding_ = false;
  std::optional<sim::EventId> timer_;
};

/// The signaling sender at the root of the tree.  Infinite state lifetime:
/// the state value changes on updates but is never removed.  Fan-out:
/// triggers and refreshes go down every child edge; each child edge has its
/// own reliable slot so one slow branch cannot stall another.
class TreeSender {
 public:
  /// `down[c]` is the channel toward child c; the vector's order defines
  /// the child indices used by handle_from_downstream.
  TreeSender(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
             TimerSettings timers, std::vector<MessageChannel*> down,
             std::function<void()> on_change);

  TreeSender(const TreeSender&) = delete;             ///< non-copyable
  TreeSender& operator=(const TreeSender&) = delete;  ///< non-copyable

  /// Installs the initial value and starts the refresh process.
  void start(std::int64_t value);

  /// Updates the state value (a new trigger propagates down every branch).
  void update(std::int64_t value);

  /// Message arriving from child `child` (ACKs, notices).
  void handle_from_downstream(const Message& msg, std::size_t child = 0);

  /// Silently ends the session: clears state and cancels every pending
  /// timer WITHOUT signaling anything.  Used by the session farm when a
  /// finite-lifetime session's observation window closes.
  void stop();

  /// The installed state value (nullopt before start / after stop).
  [[nodiscard]] std::optional<std::int64_t> value() const noexcept { return value_; }
  /// Number of child edges.
  [[nodiscard]] std::size_t fanout() const noexcept { return down_.size(); }

 private:
  void send_trigger();
  void arm_refresh();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  std::vector<MessageChannel*> down_;
  std::function<void()> on_change_;
  std::vector<ReliableSlot> reliable_down_;  ///< one per child, fixed size

  std::optional<std::int64_t> value_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t trigger_seq_ = 0;
  std::optional<sim::EventId> refresh_timer_;
};

/// A relay node (any non-root node of the tree).  Holds state, forwards
/// signaling down its child edges; a leaf (no children) is a receiver.
class TreeRelay {
 public:
  /// `up` sends toward the parent; `down[c]` toward child c (empty for a
  /// leaf).  The vector's order defines the child indices used by
  /// handle_from_downstream.
  TreeRelay(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
            TimerSettings timers, MessageChannel* up,
            std::vector<MessageChannel*> down,
            std::function<void()> on_change);

  TreeRelay(const TreeRelay&) = delete;             ///< non-copyable
  TreeRelay& operator=(const TreeRelay&) = delete;  ///< non-copyable

  /// Message arriving from the parent (triggers, refreshes, teardowns).
  void handle_from_upstream(const Message& msg);

  /// Message arriving from child `child` (ACKs, notices).
  void handle_from_downstream(const Message& msg, std::size_t child = 0);

  /// HS external failure detector fired (falsely) at this node: remove
  /// state, notify upstream (toward the sender) and tear down every branch
  /// below.
  void external_removal_signal();

  /// Silently ends the session (see TreeSender::stop).
  void stop();

  /// The held state value (nullopt when no state is installed).
  [[nodiscard]] std::optional<std::int64_t> value() const noexcept { return value_; }
  /// Number of soft-state timeout expirations at this relay.
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  /// Number of child edges (0 = this relay is a receiver).
  [[nodiscard]] std::size_t fanout() const noexcept { return down_.size(); }

 private:
  void arm_timeout();
  void on_timeout();
  void clear_timeout();
  void forward_trigger(std::int64_t value);
  void forward_trigger_to(std::size_t child, std::int64_t value);
  void notify();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  MessageChannel* up_;
  std::vector<MessageChannel*> down_;  ///< empty for a leaf
  std::function<void()> on_change_;
  std::vector<ReliableSlot> reliable_down_;  ///< one per child, fixed size
  ReliableSlot reliable_up_;

  std::optional<std::int64_t> value_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t timeouts_ = 0;
  std::optional<sim::EventId> timeout_timer_;
};

/// Chain-era names: the PR 3 chain nodes are the fan-out-1 special case.
using ChainSender = TreeSender;
using ChainRelay = TreeRelay;

}  // namespace sigcomp::protocols
