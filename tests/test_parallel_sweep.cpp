// The engine's determinism contract: parallel results are bit-identical to
// a serial run of the same grid, and replica seeding depends only on
// (base_seed, point, replica) -- never on thread count or scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/evaluator.hpp"
#include "exp/parallel.hpp"
#include "exp/sweep.hpp"
#include "protocols/single_hop_run.hpp"
#include "sim/trace.hpp"

namespace sigcomp {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

std::vector<SingleHopParams> loss_grid(std::size_t points) {
  std::vector<SingleHopParams> grid;
  for (const double loss : exp::lin_space(0.0, 0.25, points)) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.loss = loss;
    grid.push_back(p);
  }
  return grid;
}

TEST(ReplicaSeed, IsAPureFunctionOfItsInputs) {
  EXPECT_EQ(exp::replica_seed(1, 2, 3), exp::replica_seed(1, 2, 3));
  EXPECT_NE(exp::replica_seed(1, 2, 3), exp::replica_seed(1, 2, 4));
  EXPECT_NE(exp::replica_seed(1, 2, 3), exp::replica_seed(1, 3, 3));
  EXPECT_NE(exp::replica_seed(1, 2, 3), exp::replica_seed(2, 2, 3));
}

TEST(ReplicaSeed, HasNoCollisionsOnASmallLattice) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {1ULL, 42ULL}) {
    for (std::uint64_t point = 0; point < 50; ++point) {
      for (std::uint64_t replica = 0; replica < 20; ++replica) {
        seeds.insert(exp::replica_seed(base, point, replica));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 2u * 50u * 20u);
}

TEST(ReplicaSeed, DiffersFromNeighborsInEveryByte) {
  // The old `base + replica` convention gave nearly identical xoshiro
  // families to adjacent replicas; the avalanche must not.
  const std::uint64_t a = exp::replica_seed(1, 0, 0);
  const std::uint64_t b = exp::replica_seed(1, 0, 1);
  int differing_bits = 0;
  for (std::uint64_t diff = a ^ b; diff != 0; diff &= diff - 1) {
    ++differing_bits;
  }
  EXPECT_GE(differing_bits, 16);
}

TEST(ReplicatedRun, SeedForMatchesFreeFunction) {
  const exp::ReplicatedRun run(7, 99);
  EXPECT_EQ(run.seed_for(3, 5), exp::replica_seed(99, 3, 5));
  EXPECT_EQ(run.replications(), 7u);
}

TEST(ReplicatedRun, ZeroReplicationsClampsToOne) {
  EXPECT_EQ(exp::ReplicatedRun(0, 1).replications(), 1u);
}

TEST(ParallelSweep, MapPreservesGridOrder) {
  const std::vector<double> axis = exp::lin_space(0.0, 1.0, 100);
  for (const std::size_t threads : kThreadCounts) {
    exp::ParallelSweep sweep(threads);
    const std::vector<double> out =
        sweep.map(axis, [](double v) { return 3.0 * v + 1.0; });
    ASSERT_EQ(out.size(), axis.size());
    for (std::size_t i = 0; i < axis.size(); ++i) {
      EXPECT_EQ(out[i], 3.0 * axis[i] + 1.0) << "threads " << threads;
    }
  }
}

TEST(ParallelSweep, AnalyticGridIsBitIdenticalAcrossThreadCounts) {
  const std::vector<SingleHopParams> grid = loss_grid(9);
  const std::vector<Metrics> serial =
      evaluate_grid_analytic(ProtocolKind::kSSRT, grid, {1});
  ASSERT_EQ(serial.size(), grid.size());
  for (const std::size_t threads : kThreadCounts) {
    const std::vector<Metrics> parallel =
        evaluate_grid_analytic(ProtocolKind::kSSRT, grid, {threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Exact equality on purpose: same grid point must produce the same
      // bits no matter how many workers ran the sweep.
      EXPECT_EQ(parallel[i].inconsistency, serial[i].inconsistency);
      EXPECT_EQ(parallel[i].message_rate, serial[i].message_rate);
      EXPECT_EQ(parallel[i].raw_message_rate, serial[i].raw_message_rate);
      EXPECT_EQ(parallel[i].session_length, serial[i].session_length);
    }
  }
}

TEST(ParallelSweep, SimulatedGridIsBitIdenticalAcrossThreadCounts) {
  const std::vector<SingleHopParams> grid = loss_grid(3);
  SimGridOptions options;
  options.sim.sessions = 40;
  options.sim.seed = 11;
  options.replications = 4;

  options.threads = 1;
  const auto serial = evaluate_grid_simulated(ProtocolKind::kSS, grid, options);
  ASSERT_EQ(serial.size(), grid.size());

  for (const std::size_t threads : kThreadCounts) {
    options.threads = threads;
    const auto parallel =
        evaluate_grid_simulated(ProtocolKind::kSS, grid, options);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].mean.inconsistency, serial[i].mean.inconsistency);
      EXPECT_EQ(parallel[i].mean.message_rate, serial[i].mean.message_rate);
      EXPECT_EQ(parallel[i].stddev.inconsistency,
                serial[i].stddev.inconsistency);
      EXPECT_EQ(parallel[i].inconsistency.half_width,
                serial[i].inconsistency.half_width);
      EXPECT_EQ(parallel[i].mean.breakdown.refresh,
                serial[i].mean.breakdown.refresh);
      EXPECT_EQ(parallel[i].replications, options.replications);
    }
  }
}

TEST(ParallelSweep, SimulatedGridMatchesManualSerialReplicas) {
  // The engine must be exactly "run_single_hop once per (point, replica)
  // with seed = replica_seed(base, point, replica), then summarize".
  const std::vector<SingleHopParams> grid = loss_grid(2);
  SimGridOptions options;
  options.sim.sessions = 30;
  options.sim.seed = 5;
  options.replications = 3;
  options.threads = 2;
  const auto engine = evaluate_grid_simulated(ProtocolKind::kHS, grid, options);

  for (std::size_t point = 0; point < grid.size(); ++point) {
    std::vector<Metrics> replicas;
    for (std::size_t r = 0; r < options.replications; ++r) {
      protocols::SimOptions sim = options.sim;
      sim.seed = exp::replica_seed(options.sim.seed, point, r);
      replicas.push_back(
          protocols::run_single_hop(ProtocolKind::kHS, grid[point], sim).metrics);
    }
    const exp::MetricsSummary expected = exp::summarize_replicas(replicas);
    EXPECT_EQ(engine[point].mean.inconsistency, expected.mean.inconsistency);
    EXPECT_EQ(engine[point].mean.raw_message_rate,
              expected.mean.raw_message_rate);
    EXPECT_EQ(engine[point].inconsistency.half_width,
              expected.inconsistency.half_width);
  }
}

TEST(ParallelSweep, MultiHopSimulatedGridIsDeterministic) {
  std::vector<MultiHopParams> grid(2, MultiHopParams::reservation_defaults());
  grid[0].hops = 2;
  grid[1].hops = 4;
  MultiHopSimGridOptions options;
  options.sim.duration = 500.0;
  options.sim.seed = 3;
  options.replications = 2;

  options.threads = 1;
  const auto serial =
      evaluate_grid_simulated(ProtocolKind::kSSRT, grid, options);
  options.threads = 8;
  const auto parallel =
      evaluate_grid_simulated(ProtocolKind::kSSRT, grid, options);
  ASSERT_EQ(serial.size(), 2u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].mean.inconsistency, serial[i].mean.inconsistency);
    EXPECT_EQ(parallel[i].mean.raw_message_rate,
              serial[i].mean.raw_message_rate);
  }
}

TEST(ParallelSweep, SharedEngineMatchesOwnedPool) {
  // GridOptions::engine reuses a caller-owned pool across many calls; the
  // results must be exactly what a per-call pool produces.
  const std::vector<SingleHopParams> grid = loss_grid(5);
  const std::vector<Metrics> owned =
      evaluate_grid_analytic(ProtocolKind::kHS, grid, {2, nullptr});

  exp::ParallelSweep engine(2);
  GridOptions shared;
  shared.engine = &engine;
  for (int call = 0; call < 3; ++call) {
    const std::vector<Metrics> result =
        evaluate_grid_analytic(ProtocolKind::kHS, grid, shared);
    ASSERT_EQ(result.size(), owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(result[i].inconsistency, owned[i].inconsistency);
      EXPECT_EQ(result[i].message_rate, owned[i].message_rate);
    }
  }

  SimGridOptions sim_shared;
  sim_shared.sim.sessions = 20;
  sim_shared.replications = 2;
  sim_shared.engine = &engine;
  SimGridOptions sim_owned = sim_shared;
  sim_owned.engine = nullptr;
  sim_owned.threads = 2;
  const auto a = evaluate_grid_simulated(ProtocolKind::kSS, grid, sim_shared);
  const auto b = evaluate_grid_simulated(ProtocolKind::kSS, grid, sim_owned);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean.inconsistency, b[i].mean.inconsistency);
  }
}

TEST(ParallelSweep, SimulatedGridRejectsTracing) {
  sim::TraceLog trace;
  SimGridOptions options;
  options.sim.trace = &trace;
  EXPECT_THROW(
      (void)evaluate_grid_simulated(ProtocolKind::kSS, loss_grid(2), options),
      std::invalid_argument);
}

TEST(SummarizeReplicas, MatchesHandComputedStatistics) {
  std::vector<Metrics> replicas(3);
  replicas[0].inconsistency = 0.01;
  replicas[1].inconsistency = 0.02;
  replicas[2].inconsistency = 0.03;
  replicas[0].message_rate = 1.0;
  replicas[1].message_rate = 1.0;
  replicas[2].message_rate = 1.0;
  const exp::MetricsSummary s = exp::summarize_replicas(replicas);
  EXPECT_NEAR(s.mean.inconsistency, 0.02, 1e-15);
  EXPECT_NEAR(s.stddev.inconsistency, 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean.message_rate, 1.0);
  EXPECT_DOUBLE_EQ(s.stddev.message_rate, 0.0);
  EXPECT_EQ(s.replications, 3u);
  EXPECT_DOUBLE_EQ(s.inconsistency.mean, 0.02);
  EXPECT_GT(s.inconsistency.half_width, 0.0);
  EXPECT_DOUBLE_EQ(s.message_rate.half_width, 0.0);
}

TEST(SummarizeReplicas, RejectsEmptyInput) {
  EXPECT_THROW((void)exp::summarize_replicas({}), std::invalid_argument);
}

TEST(ThreadsFromArgs, ParsesAndDefaults) {
  const char* args[] = {"bench", "--threads", "6", "--csv", "x.csv"};
  EXPECT_EQ(exp::threads_from_args(5, args), 6u);
  const char* none[] = {"bench", "--csv", "x.csv"};
  EXPECT_EQ(exp::threads_from_args(3, none), 0u);
  EXPECT_EQ(exp::threads_from_args(3, none, 4), 4u);
  const char* negative[] = {"bench", "--threads", "-2"};
  EXPECT_THROW((void)exp::threads_from_args(3, negative),
               std::invalid_argument);
  const char* garbage[] = {"bench", "--threads", "abc"};
  EXPECT_THROW((void)exp::threads_from_args(3, garbage),
               std::invalid_argument);
  const char* trailing[] = {"bench", "--threads"};
  EXPECT_THROW((void)exp::threads_from_args(2, trailing),
               std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp
