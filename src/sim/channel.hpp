// Lossy, delaying, order-preserving channel (the paper's network model:
// "a network that can delay and lose, but not reorder, messages").
//
// Templated on the message payload so the sim substrate stays independent of
// the protocol layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sigcomp::sim {

/// Counters exposed by a channel; the experiment harness aggregates these
/// into signaling-message-rate metrics.
struct ChannelCounters {
  std::uint64_t sent = 0;       ///< messages handed to the channel
  std::uint64_t delivered = 0;  ///< messages that reached the sink
  std::uint64_t lost = 0;       ///< messages dropped by the loss process
};

/// Unidirectional point-to-point channel.
template <typename Payload>
class Channel {
 public:
  using Sink = std::function<void(const Payload&)>;

  /// `delay_dist` selects deterministic vs exponential per-message delay.
  /// Losses are iid Bernoulli(loss).  FIFO order is enforced even with
  /// random delays: a message never arrives before one sent earlier.
  Channel(Simulator& sim, Rng& rng, double loss, double mean_delay,
          Distribution delay_dist, Sink sink)
      : sim_(&sim),
        rng_(&rng),
        loss_(loss),
        mean_delay_(mean_delay),
        delay_dist_(delay_dist),
        sink_(std::move(sink)) {}

  /// Sends a message: counts it, applies the loss process, and if it
  /// survives schedules delivery after the (order-corrected) delay.
  void send(Payload message) {
    ++counters_.sent;
    trace(TraceCategory::kSend, message);
    if (rng_->bernoulli(loss_)) {
      ++counters_.lost;
      trace(TraceCategory::kDrop, message);
      return;
    }
    Time arrival = sim_->now() + sample(*rng_, delay_dist_, mean_delay_);
    if (arrival < last_arrival_) arrival = last_arrival_;  // no reordering
    last_arrival_ = arrival;
    sim_->schedule_at(arrival, [this, m = std::move(message)] {
      ++counters_.delivered;
      trace(TraceCategory::kDeliver, m);
      sink_(m);
    });
  }

  [[nodiscard]] const ChannelCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] double loss() const noexcept { return loss_; }
  [[nodiscard]] double mean_delay() const noexcept { return mean_delay_; }

  /// Replaces the delivery sink (used when wiring mutually-connected nodes).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Changes the loss probability mid-run (fault injection in tests:
  /// blackhole a link with loss = 1, then heal it).
  void set_loss(double loss) noexcept { loss_ = loss; }

  /// Attaches a trace log.  `describe` renders a payload for the trace
  /// detail field; `label` identifies this channel in the records.
  void set_trace(TraceLog* log, std::string label,
                 std::function<std::string(const Payload&)> describe) {
    trace_ = log;
    trace_label_ = std::move(label);
    describe_ = std::move(describe);
  }

 private:
  void trace(TraceCategory category, const Payload& message) {
    if (!trace_) return;
    std::string detail = trace_label_;
    if (describe_) {
      detail += ' ';
      detail += describe_(message);
    }
    trace_->record(sim_->now(), category, std::move(detail));
  }

  Simulator* sim_;
  Rng* rng_;
  double loss_;
  double mean_delay_;
  Distribution delay_dist_;
  Sink sink_;
  Time last_arrival_ = 0.0;
  ChannelCounters counters_;
  TraceLog* trace_ = nullptr;
  std::string trace_label_;
  std::function<std::string(const Payload&)> describe_;
};

}  // namespace sigcomp::sim
