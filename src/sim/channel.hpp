// Lossy, delaying, order-preserving channel (the paper's network model:
// "a network that can delay and lose, but not reorder, messages").
//
// Templated on the message payload so the sim substrate stays independent of
// the protocol layer.  Loss and delay are pluggable processes
// (sim/channel_process.hpp): iid Bernoulli loss with deterministic or
// exponential delay reproduces the paper; the Gilbert-Elliott loss process
// and the heavy-tail delay laws extend it to bursty, correlated channels.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sigcomp::sim {

/// Counters exposed by a channel; the experiment harness aggregates these
/// into signaling-message-rate metrics.
struct ChannelCounters {
  std::uint64_t sent = 0;       ///< messages handed to the channel
  std::uint64_t delivered = 0;  ///< messages that reached the sink
  std::uint64_t lost = 0;       ///< messages dropped by the loss process
};

/// Unidirectional point-to-point channel.
template <typename Payload>
class Channel {
 public:
  /// Delivery callback invoked for every message that survives the loss
  /// process, after its sampled delay.
  using Sink = std::function<void(const Payload&)>;

  /// Fully configured channel.  Both configurations are validated (throws
  /// std::invalid_argument -- e.g. a loss probability outside [0, 1]).
  /// FIFO order is enforced even with random delays: a message never
  /// arrives before one sent earlier.
  Channel(Simulator& sim, Rng& rng, LossConfig loss, DelayConfig delay,
          Sink sink)
      : sim_(&sim),
        rng_(&rng),
        loss_(loss),
        delay_(delay),
        sink_(std::move(sink)) {
    delay_.validate();
  }

  /// Legacy convenience: iid Bernoulli(loss) with deterministic or
  /// exponential per-message delay -- the paper's channel.
  Channel(Simulator& sim, Rng& rng, double loss, double mean_delay,
          Distribution delay_dist, Sink sink)
      : Channel(sim, rng, LossConfig::iid(loss),
                DelayConfig::from(delay_dist, mean_delay), std::move(sink)) {}

  /// Sends a message: counts it, applies the loss process, and if it
  /// survives schedules delivery after the (order-corrected) delay.
  void send(Payload message) {
    ++counters_.sent;
    trace(TraceCategory::kSend, message);
    if (loss_.drop(*rng_)) {
      ++counters_.lost;
      trace(TraceCategory::kDrop, message);
      return;
    }
    Time arrival = sim_->now() + delay_.sample(*rng_);
    if (arrival < last_arrival_) arrival = last_arrival_;  // no reordering
    last_arrival_ = arrival;
    sim_->schedule_at(arrival, [this, m = std::move(message)] {
      ++counters_.delivered;
      trace(TraceCategory::kDeliver, m);
      sink_(m);
    });
  }

  /// Sent/delivered/lost counters since construction.
  [[nodiscard]] const ChannelCounters& counters() const noexcept { return counters_; }

  /// Long-run average loss probability (the iid loss, or the GE stationary
  /// mean).
  [[nodiscard]] double loss() const { return loss_.config().mean_loss(); }
  /// Mean one-way delay in seconds.
  [[nodiscard]] double mean_delay() const noexcept { return delay_.mean; }

  /// The loss process configuration this channel runs.
  [[nodiscard]] const LossConfig& loss_config() const noexcept {
    return loss_.config();
  }
  /// The delay process configuration this channel runs.
  [[nodiscard]] const DelayConfig& delay_config() const noexcept {
    return delay_;
  }

  /// Replaces the delivery sink (used when wiring mutually-connected nodes).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Changes the loss process mid-run to iid Bernoulli(loss) -- fault
  /// injection in tests: blackhole a link with loss = 1, then heal it.
  /// Throws std::invalid_argument when `loss` is outside [0, 1].
  void set_loss(double loss) { loss_.set_loss(loss); }

  /// Attaches a trace log.  `describe` renders a payload for the trace
  /// detail field; `label` identifies this channel in the records.
  void set_trace(TraceLog* log, std::string label,
                 std::function<std::string(const Payload&)> describe) {
    trace_ = log;
    trace_label_ = std::move(label);
    describe_ = std::move(describe);
  }

 private:
  void trace(TraceCategory category, const Payload& message) {
    if (!trace_) return;
    std::string detail = trace_label_;
    if (describe_) {
      detail += ' ';
      detail += describe_(message);
    }
    trace_->record(sim_->now(), category, std::move(detail));
  }

  Simulator* sim_;
  Rng* rng_;
  LossProcess loss_;
  DelayConfig delay_;
  Sink sink_;
  Time last_arrival_ = 0.0;
  ChannelCounters counters_;
  TraceLog* trace_ = nullptr;
  std::string trace_label_;
  std::function<std::string(const Payload&)> describe_;
};

}  // namespace sigcomp::sim
