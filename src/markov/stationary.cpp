#include "markov/stationary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sigcomp::markov {

namespace {
constexpr double kRowSumTolerance = 1e-8;
}

std::vector<double> stationary_distribution(const DenseMatrix& q) {
  if (!q.is_square()) {
    throw std::invalid_argument("stationary_distribution: generator must be square");
  }
  const std::size_t n = q.rows();
  if (n == 0) {
    throw std::invalid_argument("stationary_distribution: empty generator");
  }
  for (std::size_t r = 0; r < n; ++r) {
    // Row sums of a generator are zero; allow a relative tolerance scaled by
    // the largest rate in the row.
    double scale = 0.0;
    for (std::size_t c = 0; c < n; ++c) scale = std::max(scale, std::abs(q(r, c)));
    if (std::abs(q.row_sum(r)) > kRowSumTolerance * std::max(1.0, scale)) {
      throw std::invalid_argument(
          "stationary_distribution: generator row sums must be zero");
    }
  }
  if (n == 1) return {1.0};

  // GTH elimination works on the off-diagonal rates only.
  DenseMatrix a = q;  // we will only read/write off-diagonal entries
  // Eliminate states n-1, n-2, ..., 1.
  for (std::size_t k = n - 1; k >= 1; --k) {
    double denom = 0.0;
    for (std::size_t c = 0; c < k; ++c) denom += a(k, c);
    if (denom <= 0.0 || !std::isfinite(denom)) {
      throw std::runtime_error(
          "stationary_distribution: reducible chain (GTH pivot vanished)");
    }
    for (std::size_t i = 0; i < k; ++i) {
      const double factor = a(i, k) / denom;
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        a(i, j) += factor * a(k, j);
      }
    }
  }

  // Back substitution: unnormalized stationary vector.
  std::vector<double> x(n, 0.0);
  x[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double denom = 0.0;
    for (std::size_t c = 0; c < k; ++c) denom += a(k, c);
    double num = 0.0;
    for (std::size_t i = 0; i < k; ++i) num += x[i] * a(i, k);
    x[k] = num / denom;
  }

  double total = 0.0;
  for (double v : x) total += v;
  for (double& v : x) v /= total;
  return x;
}

std::vector<double> stationary_distribution(const Ctmc& chain) {
  return stationary_distribution(chain.generator());
}

namespace {

/// Iterative Tarjan SCC over the positive-rate transition graph.
std::vector<std::vector<StateId>> strongly_connected_components(const Ctmc& chain) {
  const std::size_t n = chain.num_states();
  std::vector<std::vector<StateId>> adj(n);
  for (const Transition& t : chain.transitions()) adj[t.from].push_back(t.to);

  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> stack;
  std::vector<std::vector<StateId>> components;
  int next_index = 0;

  struct Frame {
    StateId v;
    std::size_t edge;
  };
  for (StateId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.v].size()) {
        const StateId w = adj[f.v][f.edge++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<StateId> component;
          for (;;) {
            const StateId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == f.v) break;
          }
          components.push_back(std::move(component));
        }
        const StateId child = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[child]);
        }
      }
    }
  }
  return components;
}

}  // namespace

std::vector<std::vector<StateId>> closed_classes(const Ctmc& chain) {
  std::vector<std::vector<StateId>> out;
  for (auto& component : strongly_connected_components(chain)) {
    bool closed = true;
    for (const StateId s : component) {
      for (const Transition& t : chain.transitions()) {
        if (t.from != s) continue;
        if (std::find(component.begin(), component.end(), t.to) == component.end()) {
          closed = false;
          break;
        }
      }
      if (!closed) break;
    }
    if (closed) out.push_back(std::move(component));
  }
  return out;
}

std::vector<double> stationary_distribution_from(const Ctmc& chain, StateId start) {
  if (start >= chain.num_states()) {
    throw std::out_of_range("stationary_distribution_from: invalid start state");
  }
  std::vector<std::vector<StateId>> classes = closed_classes(chain);
  std::erase_if(classes, [&](const std::vector<StateId>& c) {
    return !chain.reachable(start, c.front());
  });
  if (classes.empty()) {
    throw std::runtime_error(
        "stationary_distribution_from: no closed class reachable (internal error)");
  }
  if (classes.size() > 1) {
    throw std::runtime_error(
        "stationary_distribution_from: multiple closed classes reachable; "
        "long-run distribution is not unique");
  }
  std::vector<StateId> support = std::move(classes.front());
  std::sort(support.begin(), support.end());

  std::vector<double> pi(chain.num_states(), 0.0);
  if (support.size() == 1) {
    pi[support.front()] = 1.0;
    return pi;
  }
  const std::size_t m = support.size();
  DenseMatrix q(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    double exit = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const double r = chain.rate(support[i], support[j]);
      q(i, j) = r;
      exit += r;
    }
    q(i, i) = -exit;
  }
  const std::vector<double> sub_pi = stationary_distribution(q);
  for (std::size_t i = 0; i < m; ++i) pi[support[i]] = sub_pi[i];
  return pi;
}

double stationary_residual(const DenseMatrix& q, const std::vector<double>& pi) {
  const std::vector<double> piq = q.left_multiply(pi);
  double worst = 0.0;
  for (double v : piq) worst = std::max(worst, std::abs(v));
  return worst;
}

}  // namespace sigcomp::markov
