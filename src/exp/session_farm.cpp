// Arena-backed farm execution layer.
//
// Three structural changes over the task-per-shard farm that
// tests/reference_session_farm.cpp preserves (and the differential suite
// diffs against, element-wise per session):
//
//  * Arena/SoA session state: every per-session object lives in a pre-sized
//    per-shard SessionArena (exp/session_arena.hpp).  Single-hop sessions
//    are flattened -- channels and engines are direct members, no
//    unique_ptr indirection -- and their slots are recycled through a
//    free list once quiescent, so steady-state arrival/teardown performs
//    zero heap allocations (asserted by tests via the arena counters and
//    EventCallback::heap_allocations()).
//  * Persistent per-core shard workers: instead of fanning one task per
//    shard through parallel_for, each of W = min(threads, shards) workers
//    owns the strided shard set {w, w+W, ...} and advances each shard's
//    Simulator in time slices (Simulator::run_slice), with batched
//    timer-expiry delivery amortizing queue pops on the refresh-storm hot
//    path.
//  * Exact peak_sessions_in_flight: the reduce step merges every session's
//    [begin, completion] endpoints across shards and sweeps them globally,
//    replacing the summed-per-shard upper bound.
//
// The determinism contract is unchanged and load-bearing: per-session
// randomness stays keyed to the global session index, shard boundaries stay
// fixed by shard_size alone, and per-session metrics are reduced in global
// session order.  The rewrite is bit-identical to the reference farm at any
// thread count and shard size because every shard's EVENT STREAM is
// identical:
//
//  * The reference constructs all sessions up front, and each construction
//    pushes exactly ONE event (the arrival; everything else a session ctor
//    does is passive).  The arena farm's pre-scan pushes the same arrival
//    events, in the same session order (same seqs), at the same times --
//    it re-derives each arrival from a fresh kSessionLifecycle stream, the
//    same first draw the session itself repeats at spawn time.
//  * When an arrival fires, the session is placement-constructed (passive)
//    and begin() runs inside that same event -- exactly the work the
//    reference's arrival event performs, pushing the same follow-up events
//    in the same order.  By induction the two farms' queues hold identical
//    (time, seq) sets at every step, and run_slice dispatches in exact pop
//    order, so every RNG draw, message and metric lands identically.
#include "exp/session_farm.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rng_streams.hpp"
#include "exp/session_arena.hpp"
#include "exp/shard_ring.hpp"
#include "exp/thread_pool.hpp"
#include "protocols/engine.hpp"
#include "protocols/shared_relay.hpp"
#include "protocols/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace sigcomp::exp {

namespace {

using protocols::MessageChannel;
using protocols::Message;

/// Slice width of the shard workers' round-robin (simulated seconds).  A
/// pure performance knob: each slice is anchored at the shard's next
/// pending event, and run_slice preserves exact pop order, so any width
/// yields the same results.  10 s spans several refresh periods, batching
/// enough expiries per drain to amortize the pops.
constexpr double kSliceSeconds = 10.0;

/// Epoch width of the cross-shard fabric (simulated seconds).  UNLIKE
/// kSliceSeconds this is a MODEL parameter, not a performance knob: fabric
/// messages are delivered at the next epoch boundary, so the width bounds
/// the inter-session delivery latency -- and results must not depend on
/// thread count or shard size, which they would if the width ever varied
/// with either.  Hence a fixed constant: 1 s sits well under the default
/// refresh period (an install is visible at the relay before the first
/// refresh fires) while keeping epoch-barrier counts in the thousands.
constexpr double kFabricSliceSeconds = 1.0;

void validate_options(const SessionFarmOptions& options) {
  if (options.sessions == 0) {
    throw std::invalid_argument("SessionFarmOptions: sessions must be > 0");
  }
  if (options.arrival_rate <= 0.0) {
    throw std::invalid_argument("SessionFarmOptions: arrival_rate must be > 0");
  }
  if (options.session_lifetime <= 0.0) {
    throw std::invalid_argument(
        "SessionFarmOptions: session_lifetime must be > 0");
  }
  if (options.shard_size == 0) {
    throw std::invalid_argument("SessionFarmOptions: shard_size must be > 0");
  }
  options.leaf_churn.validate();
  options.scenario.validate();
}

/// Global-index -> shard mapping of a fabric run.  Subscriber shards
/// partition [0, sessions) into the SAME fixed blocks as the base farm;
/// relay shards partition [sessions, sessions + relays) with the same
/// shard_size, starting at a fresh shard boundary (a shard never mixes the
/// two session types).  Pure arithmetic on global indices, so every worker
/// can route without shared state.
struct FabricMap {
  std::size_t shard_size = 1;
  std::size_t sessions = 0;    ///< subscriber count (relays start here)
  std::size_t sub_shards = 0;  ///< number of subscriber shards

  [[nodiscard]] std::uint32_t shard_of(std::uint64_t g) const noexcept {
    if (g < sessions) return static_cast<std::uint32_t>(g / shard_size);
    return static_cast<std::uint32_t>(sub_shards +
                                      (g - sessions) / shard_size);
  }
};

class FabricPort;

/// A session's fabric identity: its port (the owning shard's producer
/// half), its global index, and its private send counter -- the seq of the
/// delivery stamp.  Per-SESSION, not per-ring or per-shard: only a counter
/// keyed to the global index survives re-sharding unchanged, which is what
/// keeps the stamp order shard-size-invariant.  Sessions hold this by
/// value; the FabricSend closures capture one pointer to it (so they stay
/// inside the std::function small-buffer and sends never allocate).
struct FabricCtx {
  FabricPort* port = nullptr;
  std::uint64_t source = 0;  ///< sending session's global index
  std::uint64_t seq = 0;     ///< per-source send counter
};

/// Producer half of a shard's fabric attachment: stamps and pushes outgoing
/// messages onto the ring toward the destination's shard.  Called only from
/// inside the owning shard's own events (the advance phase), which is the
/// ring-growth-safe producer window.
class FabricPort {
 public:
  FabricPort(sim::Simulator& sim, CrossShardFabric& fabric,
             std::uint32_t shard, FabricMap map)
      : sim_(sim), fabric_(fabric), shard_(shard), map_(map) {}

  void send(FabricCtx& ctx, std::uint64_t dest, const Message& message) {
    ShardRing* ring = fabric_.find_ring(shard_, map_.shard_of(dest));
    if (ring == nullptr) {
      // Every communicating pair is materialized at setup from the static
      // subscription map; a miss is a routing bug, not a runtime condition.
      throw std::logic_error("session farm: fabric send on unwired pair");
    }
    ring->push(CrossShardEntry{sim_.now(), ctx.source, ctx.seq++, dest,
                               message});
  }

 private:
  sim::Simulator& sim_;
  CrossShardFabric& fabric_;
  std::uint32_t shard_;
  FabricMap map_;
};

/// Where sessions deposit their results, indexed by the session's local
/// (within-shard) index so completion order cannot affect anything.
/// Completion-time recording replaces the reference farm's
/// read-the-session-at-shard-end extraction: recycled sessions are
/// destroyed long before the shard finishes, so everything a session will
/// ever report is captured the moment it completes.
struct ShardSink {
  std::vector<Metrics> metrics;              ///< per local index
  std::vector<protocols::ChurnReport> churn;  ///< per local index
  std::vector<double> arrival;  ///< begin times, filled by the pre-scan
  std::vector<double> end;      ///< completion times, filled on completion
  std::uint64_t messages = 0;
  std::uint64_t receiver_timeouts = 0;
  std::uint64_t relay_crashes = 0;
  std::uint64_t relay_recoveries = 0;
  std::uint64_t teardown_messages = 0;  ///< explicit-teardown traffic (trees)
  std::uint64_t relay_installs = 0;     ///< hub installs (relay shards)
  std::uint64_t relay_refreshes = 0;    ///< hub refreshes (relay shards)
  std::uint64_t relay_soft_timeouts = 0;  ///< hub slot expiries
  std::size_t completed = 0;
  /// Hands a completed session's slot to the arena's cooling list.  Bound
  /// by the shard (captures one pointer; fits the std::function SBO, so
  /// completion stays allocation-free).
  std::function<void(std::uint32_t)> retire;
  /// Fabric runs only: the shard nulls the completed session's endpoint so
  /// late fabric deliveries are dropped deterministically.  Empty (and
  /// never invoked) outside fabric mode -- the branch keeps the zero-relay
  /// farm bit-identical.
  std::function<void(std::size_t)> fabric_done;
};

/// Per-session randomness: eight independent streams keyed to the session's
/// global index, mirroring the stream layout of the single-hop harness
/// (the membership and scenario streams are consumed only by tree sessions
/// that enable the corresponding workload).
/// The stream IDs come from the registry in core/rng_streams.hpp -- the
/// farm layout and the single-hop harness layout are the SAME constants,
/// which is what makes the mirroring self-evident.
struct SessionRngs {
  sim::Rng channel;
  sim::Rng sender;
  sim::Rng receiver;
  sim::Rng lifecycle;
  sim::Rng failure;
  sim::Rng membership;
  sim::Rng scenario_arrival;
  sim::Rng scenario_failure;
  sim::Rng relay;

  SessionRngs(std::uint64_t base_seed, std::uint64_t global_index)
      : channel(session_seed(base_seed, global_index), rng::kSessionChannel),
        sender(session_seed(base_seed, global_index), rng::kSessionSender),
        receiver(session_seed(base_seed, global_index), rng::kSessionReceiver),
        lifecycle(session_seed(base_seed, global_index),
                  rng::kSessionLifecycle),
        failure(session_seed(base_seed, global_index), rng::kSessionFailure),
        membership(session_seed(base_seed, global_index),
                   rng::kSessionMembership),
        scenario_arrival(session_seed(base_seed, global_index),
                         rng::kSessionScenarioArrival),
        scenario_failure(session_seed(base_seed, global_index),
                         rng::kSessionScenarioFailure),
        relay(session_seed(base_seed, global_index), rng::kSessionRelay) {}

 private:
  /// The per-session seed family: replica_seed keyed to the session's
  /// global index (replica lane 0 -- the substream split happens in
  /// sim::Rng's stream argument, not here).
  static std::uint64_t session_seed(std::uint64_t base_seed,
                                    std::uint64_t global_index) {
    return replica_seed(base_seed, global_index, 0);
  }
};

/// One single-hop session: arrival -> install -> updates -> removal ->
/// absorption, measured over [arrival, absorption].  A one-shot version of
/// the renewal construction in protocols/single_hop_run.cpp, flattened for
/// arena placement: channels and engines are direct members (every closure
/// they store captures one pointer and stays inside its small-buffer
/// storage), so constructing a session in a recycled slot allocates
/// nothing.  Constructed INSIDE its own pre-scanned arrival event; the
/// shard calls begin() immediately after.
class SingleHopSession {
 public:
  SingleHopSession(sim::Simulator& sim, ProtocolKind kind,
                   const SingleHopParams& params,
                   const SessionFarmOptions& options,
                   std::uint64_t global_index, ShardSink& sink,
                   std::size_t local)
      : sim_(sim),
        params_(params),
        options_(options),
        mech_(mechanisms(kind)),
        sink_(sink),
        local_(local),
        rngs_(options.seed, global_index),
        forward_(sim, rngs_.channel, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { receiver_.handle(m); }),
        reverse_(sim, rngs_.channel, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { sender_.handle(m); }),
        sender_(sim_, rngs_.sender, mech_,
                protocols::TimerSettings{options.timer_dist,
                                         params.refresh_timer,
                                         params.timeout_timer,
                                         params.retrans_timer},
                forward_, [this] { on_change(); }),
        receiver_(sim_, rngs_.receiver, mech_,
                  protocols::TimerSettings{options.timer_dist,
                                           params.refresh_timer,
                                           params.timeout_timer,
                                           params.retrans_timer},
                  reverse_, [this] { on_change(); }) {
    // Staggered Poisson arrivals: conditioned on N arrivals in the window,
    // arrival times are iid uniform over it -- and drawing from the
    // session's own stream keys the time to the global index alone.  The
    // draw repeats the pre-scan's (same stream, same first draw), so the
    // session materializes at exactly the time its arrival event fired.
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    arrival_ = window * rngs_.lifecycle.uniform();
    lifetime_ = rngs_.lifecycle.exponential(options.session_lifetime);
  }

  /// The arena slot this session occupies; handed back on retirement.
  void set_slot(std::uint32_t slot) noexcept { slot_ = slot; }

  /// Fabric runs only, before begin(): wires a RelayClient that installs
  /// this session's state at relay session `relay` (global index) across
  /// the cross-shard fabric.  `self` is this session's global index -- the
  /// source half of every outgoing stamp and the installed value.
  void attach_relay(FabricPort* port, std::uint64_t self,
                    std::uint64_t relay) {
    fabric_ctx_ = FabricCtx{port, self, 0};
    relay_client_.emplace(
        sim_, rngs_.relay,
        protocols::TimerSettings{options_.timer_dist, params_.refresh_timer,
                                 params_.timeout_timer,
                                 params_.retrans_timer},
        relay, [ctx = &fabric_ctx_](std::uint64_t dest, const Message& m) {
          ctx->port->send(*ctx, dest, m);
        });
  }

  /// A fabric delivery addressed to this session (relay echoes).
  void deliver_fabric(const Message& message) {
    if (relay_client_) relay_client_->handle(message);
  }

  /// Starts the session (the body of its arrival event).
  void begin() {
    inconsistent_ = sim::TimeWeightedValue(arrival_);
    sender_.begin_epoch(1);
    receiver_.begin_epoch(1);
    sender_.install(++version_);
    schedule_update();
    removal_event_ = sim_.schedule_in(lifetime_, [this] {
      removal_event_.reset();
      sender_removed_ = true;
      sender_.remove();
      check_absorption();
    });
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      schedule_false_signal();
    }
    if (relay_client_) {
      relay_client_->start(static_cast<std::int64_t>(fabric_ctx_.source));
    }
    on_change();
  }

  /// Slot-recycling safety: absorbed AND both channels drained.  After
  /// absorption both engines sit in a dead epoch with every timer
  /// cancelled, and a stale delivery is dropped without a reply, so the
  /// in-flight counts fall monotonically to zero -- after which no pending
  /// event references this object and destruction is safe.
  [[nodiscard]] bool quiescent() const noexcept {
    if (!done_) return false;
    const sim::ChannelCounters& f = forward_.counters();
    const sim::ChannelCounters& r = reverse_.counters();
    return f.sent == f.delivered + f.lost && r.sent == r.delivered + r.lost;
  }

 private:
  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    update_event_ = sim_.schedule_in(
        rngs_.lifecycle.exponential(1.0 / params_.update_rate), [this] {
          update_event_.reset();
          if (!sender_removed_ && sender_.value()) {
            sender_.update(++version_);
          }
          schedule_update();
        });
  }

  void schedule_false_signal() {
    false_signal_event_ = sim_.schedule_in(
        rngs_.failure.exponential(1.0 / params_.false_signal_rate), [this] {
          false_signal_event_.reset();
          receiver_.external_removal_signal();
          schedule_false_signal();
        });
  }

  void cancel(std::optional<sim::EventId>& id) {
    if (id) {
      sim_.cancel(*id);
      id.reset();
    }
  }

  void on_change() {
    if (done_) return;
    const bool consistent = sender_.value() == receiver_.value();
    inconsistent_.set(sim_.now(), consistent ? 0.0 : 1.0);
    check_absorption();
  }

  void check_absorption() {
    if (done_ || !sender_removed_ || receiver_.value()) return;
    done_ = true;
    const double end = sim_.now();
    const double length = end - arrival_;
    // Counters frozen at absorption time, so results cannot depend on which
    // straggler events the shard's simulator happened to execute afterwards.
    std::uint64_t messages =
        forward_.counters().sent + reverse_.counters().sent;
    if (relay_client_) {
      // Goodbye before the count: the REMOVE is part of the session's
      // priced traffic, and stop() also cancels the refresh timer so the
      // recycled slot leaves no dangling event behind.
      relay_client_->stop();
      messages += relay_client_->messages_sent();
    }
    const auto sent = static_cast<double>(messages);
    Metrics& metrics = sink_.metrics[local_];
    metrics.inconsistency = inconsistent_.mean(end);
    metrics.session_length = length;
    metrics.raw_message_rate = length > 0.0 ? sent / length : 0.0;
    // M-bar = (messages per session) * lambda_r, as in Eq. (2); the farm's
    // removal rate is 1 / mean lifetime.
    metrics.message_rate = sent / options_.session_lifetime;
    cancel(update_event_);
    cancel(false_signal_event_);
    cancel(removal_event_);
    // Jump both engines to a dead epoch: stragglers still in flight can no
    // longer resurrect state, re-arm timers or send replies -- which is
    // also what drives quiescent()'s in-flight counts to zero.
    sender_.begin_epoch(2);
    receiver_.begin_epoch(2);
    sink_.end[local_] = end;
    sink_.messages += messages;
    sink_.receiver_timeouts += receiver_.timeouts();
    ++sink_.completed;
    if (sink_.fabric_done) sink_.fabric_done(local_);
    sink_.retire(slot_);
  }

  sim::Simulator& sim_;
  // The shard keeps params/options alive for the sessions' whole lifetime;
  // 100k sessions should not hold 100k copies.
  const SingleHopParams& params_;
  const SessionFarmOptions& options_;
  MechanismSet mech_;
  ShardSink& sink_;
  std::size_t local_;
  std::uint32_t slot_ = 0;
  SessionRngs rngs_;
  MessageChannel forward_;
  MessageChannel reverse_;
  protocols::SenderEngine sender_;
  protocols::ReceiverEngine receiver_;

  double arrival_ = 0.0;
  double lifetime_ = 0.0;
  std::int64_t version_ = 0;
  bool sender_removed_ = false;
  bool done_ = false;
  sim::TimeWeightedValue inconsistent_;
  std::optional<sim::EventId> update_event_;
  std::optional<sim::EventId> removal_event_;
  std::optional<sim::EventId> false_signal_event_;
  // Fabric runs only (both empty/inactive otherwise).  The optional holds
  // the immovable RelayClient in place -- emplace-only, never moved.
  FabricCtx fabric_ctx_;
  std::optional<protocols::RelayClient> relay_client_;
};

/// One tree session: arrival -> start -> updates over a full
/// protocols::Topology -- one sender, relays at interior nodes, receivers
/// at the leaves, per-edge channels.  Chain sessions run through this very
/// class as fan-out-1 trees.  Measured over the lifetime window
/// [arrival, arrival + lifetime], then silently torn down with
/// Topology::stop().
///
/// Tree sessions are arena-placed but NEVER recycled: quiescent() is
/// constant false, so a finished tree stays constructed (absorbing
/// stragglers harmlessly) until the arena is destroyed -- the same memory
/// behavior as the reference farm, which keeps every session alive to the
/// end of its shard.  Proving tree quiescence would need in-flight
/// accounting across every edge of every session for a workload (the 1M
/// scale leg is single-hop) that does not recycle anyway.
class TreeSession {
 public:
  TreeSession(sim::Simulator& sim, ProtocolKind kind,
              const analytic::TreeParams& params,
              const SessionFarmOptions& options, std::uint64_t global_index,
              ShardSink& sink, std::size_t local)
      : sim_(sim),
        params_(params),
        options_(options),
        mech_(mechanisms(kind)),
        sink_(sink),
        local_(local),
        rngs_(options.seed, global_index) {
    protocols::TimerSettings timers{options.timer_dist, params.refresh_timer,
                                    params.timeout_timer,
                                    params.retrans_timer};
    std::vector<sim::LossConfig> edge_loss;
    std::vector<sim::DelayConfig> edge_delay;
    edge_loss.reserve(params.edges());
    edge_delay.reserve(params.edges());
    for (std::size_t e = 0; e < params.edges(); ++e) {
      edge_loss.push_back(params.edge_loss_config(e));
      edge_delay.push_back(sim::DelayConfig{options.delay_model,
                                            params.delay[e],
                                            options.delay_shape});
    }
    topology_ = std::make_unique<protocols::Topology>(
        sim, rngs_.channel, rngs_.sender, mech_, timers, params.tree,
        edge_loss, edge_delay, [this] { on_change(); });
    if (options.leaf_churn.enabled() ||
        options.scenario.membership_processes()) {
      membership_ = std::make_unique<protocols::MembershipController>(
          sim, *topology_, rngs_.membership, options.leaf_churn,
          options.scenario, &rngs_.scenario_arrival, [this] { on_change(); });
    }
    if (options.scenario.failure.enabled()) {
      failure_ = std::make_unique<protocols::RelayFailureProcess>(
          sim, *topology_, rngs_.scenario_failure, options.scenario.failure,
          mech_.external_failure_detector);
    }
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    arrival_ = window * rngs_.lifecycle.uniform();
    lifetime_ = rngs_.lifecycle.exponential(options.session_lifetime);
  }

  /// The arena slot this session occupies (unused: trees never retire, but
  /// the shard's spawn path is session-type-agnostic).
  void set_slot(std::uint32_t slot) noexcept { slot_ = slot; }

  /// Starts the session (the body of its arrival event).
  void begin() {
    inconsistent_ = sim::TimeWeightedValue(arrival_);
    topology_->sender().start(++version_);
    schedule_update();
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      false_signal_events_.resize(topology_->relays());
      for (std::size_t i = 0; i < topology_->relays(); ++i) {
        schedule_false_signal(i);
      }
    }
    if (membership_) membership_->start();
    if (failure_) failure_->start();
    sim_.schedule_in(lifetime_, [this] { finish(); });
    on_change();
  }

  /// Never recyclable -- see the class comment.
  [[nodiscard]] bool quiescent() const noexcept { return false; }

 private:
  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    update_event_ = sim_.schedule_in(
        rngs_.lifecycle.exponential(1.0 / params_.update_rate), [this] {
          update_event_.reset();
          topology_->sender().update(++version_);
          schedule_update();
        });
  }

  void schedule_false_signal(std::size_t relay) {
    false_signal_events_[relay] = sim_.schedule_in(
        rngs_.failure.exponential(1.0 / params_.false_signal_rate),
        [this, relay] {
          false_signal_events_[relay].reset();
          topology_->relay(relay).external_removal_signal();
          schedule_false_signal(relay);
        });
  }

  void on_change() {
    if (done_) return;
    if (membership_) membership_->on_state_change();
    bool all_ok = true;
    for (std::size_t i = 0; i < topology_->relays(); ++i) {
      // Required nodes must mirror the sender; detached nodes must hold
      // nothing (without churn every node is required -- the historical
      // definition, bit for bit).
      const bool ok = topology_->node_required(i + 1)
                          ? topology_->relay(i).value() ==
                                topology_->sender().value()
                          : !topology_->relay(i).value().has_value();
      all_ok = all_ok && ok;
    }
    inconsistent_.set(sim_.now(), all_ok ? 0.0 : 1.0);
  }

  void finish() {
    if (options_.teardown) {
      finish_with_teardown();
      return;
    }
    done_ = true;
    const double end = sim_.now();
    if (membership_) {
      membership_->finish();
      sink_.churn[local_] = membership_->report();
    }
    if (failure_) {
      // Cancel the pending crash/recovery/detection events BEFORE the
      // counters are frozen, so no scenario event straggles past the
      // window (the teardown tests pin a flat event pool).
      failure_->stop();
      sink_.relay_crashes += failure_->crashes();
      sink_.relay_recoveries += failure_->recoveries();
    }
    // Counters frozen at window end: stragglers delivered to a stopped
    // tree may still execute (and even re-install relay state briefly),
    // and how many do depends on how long the shard keeps simulating --
    // snapshotting keeps results independent of the shard decomposition.
    const std::uint64_t messages = topology_->messages_sent();
    const auto sent = static_cast<double>(messages);
    Metrics& metrics = sink_.metrics[local_];
    metrics.inconsistency = inconsistent_.mean(end);
    metrics.session_length = lifetime_;
    metrics.raw_message_rate = lifetime_ > 0.0 ? sent / lifetime_ : 0.0;
    metrics.message_rate = metrics.raw_message_rate;
    if (update_event_) {
      sim_.cancel(*update_event_);
      update_event_.reset();
    }
    for (auto& id : false_signal_events_) {
      if (id) sim_.cancel(*id);
    }
    false_signal_events_.clear();
    topology_->stop();
    sink_.end[local_] = end;
    sink_.messages += messages;
    sink_.receiver_timeouts += topology_->relay_timeouts();
    ++sink_.completed;
    // No sink_.retire: the slot cools forever (never quiescent).
  }

  /// Explicit-teardown variant of finish() (SessionFarmOptions::teardown):
  /// the window still ends now -- inconsistency tracking stops, churn and
  /// scenario processes freeze, pending update/false-signal events are
  /// cancelled -- but instead of silently stopping the tree, the sender
  /// issues an explicit remove() whose teardown messages propagate down
  /// every branch during a grace period of one timeout interval.  Only then
  /// does the session finalize, pricing the teardown traffic into its
  /// message counts and the sink's teardown_messages.
  void finish_with_teardown() {
    done_ = true;
    end_time_ = sim_.now();
    if (membership_) {
      membership_->finish();
      sink_.churn[local_] = membership_->report();
    }
    if (failure_) {
      failure_->stop();
      sink_.relay_crashes += failure_->crashes();
      sink_.relay_recoveries += failure_->recoveries();
    }
    if (update_event_) {
      sim_.cancel(*update_event_);
      update_event_.reset();
    }
    for (auto& id : false_signal_events_) {
      if (id) sim_.cancel(*id);
    }
    false_signal_events_.clear();
    window_messages_ = topology_->messages_sent();
    topology_->sender().remove();
    sim_.schedule_in(params_.timeout_timer, [this] { finalize_teardown(); });
  }

  void finalize_teardown() {
    const double end = end_time_;
    const std::uint64_t messages = topology_->messages_sent();
    const auto sent = static_cast<double>(messages);
    Metrics& metrics = sink_.metrics[local_];
    metrics.inconsistency = inconsistent_.mean(end);
    metrics.session_length = lifetime_;
    metrics.raw_message_rate = lifetime_ > 0.0 ? sent / lifetime_ : 0.0;
    metrics.message_rate = metrics.raw_message_rate;
    topology_->stop();
    sink_.teardown_messages += messages - window_messages_;
    sink_.end[local_] = end;
    sink_.messages += messages;
    sink_.receiver_timeouts += topology_->relay_timeouts();
    ++sink_.completed;
  }

  sim::Simulator& sim_;
  const analytic::TreeParams& params_;
  const SessionFarmOptions& options_;
  MechanismSet mech_;
  ShardSink& sink_;
  std::size_t local_;
  std::uint32_t slot_ = 0;
  SessionRngs rngs_;
  std::unique_ptr<protocols::Topology> topology_;
  std::unique_ptr<protocols::MembershipController> membership_;
  std::unique_ptr<protocols::RelayFailureProcess> failure_;

  double arrival_ = 0.0;
  double lifetime_ = 0.0;
  std::int64_t version_ = 0;
  bool done_ = false;
  double end_time_ = 0.0;              ///< teardown: the frozen window end
  std::uint64_t window_messages_ = 0;  ///< teardown: count at window end
  sim::TimeWeightedValue inconsistent_;
  std::optional<sim::EventId> update_event_;
  std::vector<std::optional<sim::EventId>> false_signal_events_;
};

/// Everything one shard reports back to the aggregator.
struct ShardOutcome {
  std::vector<Metrics> per_session;  ///< in global session order
  /// Per-session churn reports in global session order: summed by the
  /// aggregator in that order, so the reduced report cannot depend on the
  /// shard decomposition (floating-point addition is order-sensitive).
  std::vector<protocols::ChurnReport> per_session_churn;
  std::vector<double> arrival;  ///< per-session begin times
  std::vector<double> end;      ///< per-session completion times
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t receiver_timeouts = 0;
  std::uint64_t relay_crashes = 0;
  std::uint64_t relay_recoveries = 0;
  std::uint64_t teardown_messages = 0;
  std::uint64_t fabric_dropped = 0;
  std::uint64_t relay_installs = 0;
  std::uint64_t relay_refreshes = 0;
  std::uint64_t relay_soft_timeouts = 0;
  double end_time = 0.0;
  std::size_t arena_high_water = 0;
  std::size_t arena_chunks = 0;
};

/// Moves a completed shard's sink into a ShardOutcome (shared by the base
/// farm shard and both fabric shard types; call once).
ShardOutcome drain_sink(ShardSink& sink, const sim::Simulator& sim) {
  ShardOutcome out;
  out.per_session = std::move(sink.metrics);
  out.per_session_churn = std::move(sink.churn);
  out.arrival = std::move(sink.arrival);
  out.end = std::move(sink.end);
  out.messages = sink.messages;
  out.receiver_timeouts = sink.receiver_timeouts;
  out.relay_crashes = sink.relay_crashes;
  out.relay_recoveries = sink.relay_recoveries;
  out.teardown_messages = sink.teardown_messages;
  out.relay_installs = sink.relay_installs;
  out.relay_refreshes = sink.relay_refreshes;
  out.relay_soft_timeouts = sink.relay_soft_timeouts;
  out.events = sim.events_executed();
  out.end_time = sim.now();
  return out;
}

/// Reduces completed shard outcomes, in shard (= global session) order,
/// into a SessionFarmResult.  Shared by the base farm and the fabric farm;
/// `total_sessions` is only a reserve hint.
SessionFarmResult aggregate_outcomes(std::vector<ShardOutcome>& outcomes,
                                     const SessionFarmOptions& options,
                                     std::size_t total_sessions) {
  SessionFarmResult result;
  result.shards = outcomes.size();
  std::vector<Metrics> all_sessions;
  all_sessions.reserve(total_sessions);
  std::vector<double> starts;
  std::vector<double> ends;
  starts.reserve(total_sessions);
  ends.reserve(total_sessions);
  for (ShardOutcome& outcome : outcomes) {
    all_sessions.insert(all_sessions.end(), outcome.per_session.begin(),
                        outcome.per_session.end());
    for (const protocols::ChurnReport& churn : outcome.per_session_churn) {
      result.churn.absorb(churn);
    }
    result.messages += outcome.messages;
    result.events_executed += outcome.events;
    result.receiver_timeouts += outcome.receiver_timeouts;
    result.relay_crashes += outcome.relay_crashes;
    result.relay_recoveries += outcome.relay_recoveries;
    result.teardown_messages += outcome.teardown_messages;
    result.fabric_dropped += outcome.fabric_dropped;
    result.relay_installs += outcome.relay_installs;
    result.relay_refreshes += outcome.relay_refreshes;
    result.relay_soft_timeouts += outcome.relay_soft_timeouts;
    result.horizon = std::max(result.horizon, outcome.end_time);
    result.arena_slot_high_water =
        std::max(result.arena_slot_high_water, outcome.arena_high_water);
    result.arena_chunk_allocations += outcome.arena_chunks;
    starts.insert(starts.end(), outcome.arrival.begin(), outcome.arrival.end());
    ends.insert(ends.end(), outcome.end.begin(), outcome.end.end());
  }
  // Exact global peak: merge every session's [begin, completion] endpoints
  // across shards and sweep.  A start at exactly an end's time counts as
  // overlapping (starts first at ties), matching the in-simulator
  // convention that a session is in flight from begin() through its
  // completion event.
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  std::size_t active = 0;
  std::size_t next_end = 0;
  for (const double start : starts) {
    while (next_end < ends.size() && ends[next_end] < start) {
      --active;
      ++next_end;
    }
    ++active;
    result.peak_sessions_in_flight =
        std::max(result.peak_sessions_in_flight, active);
  }
  result.sessions = all_sessions.size();
  result.summary = summarize_replicas(all_sessions);
  if (options.keep_per_session) result.per_session = std::move(all_sessions);
  return result;
}

/// Sessions [first, first + count) of the farm: one Simulator, one arena,
/// one sink.  Construction pre-scans the arrivals; a shard worker then
/// drives advance_slice() until complete().
template <typename Session, typename Params>
class Shard {
 public:
  Shard(ProtocolKind kind, const Params& params,
        const SessionFarmOptions& options, std::size_t first,
        std::size_t count)
      : kind_(kind),
        params_(params),
        options_(options),
        first_(first),
        count_(count),
        sim_(options.event_queue),
        arena_(count) {
    sink_.metrics.resize(count);
    sink_.churn.resize(count);
    sink_.arrival.resize(count);
    sink_.end.resize(count);
    sink_.retire = [this](std::uint32_t slot) { arena_.retire(slot); };
    // Arrival pre-scan: push one arrival event per session, in session
    // order, at the time the session will re-derive for itself at spawn --
    // the first draw of a fresh kSessionLifecycle stream.  This reproduces
    // the reference farm's construction-time pushes exactly (same times,
    // same seq order), which is the base case of the bit-identity argument
    // in the file comment.
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    for (std::size_t i = 0; i < count; ++i) {
      const auto g = static_cast<std::uint64_t>(first + i);
      sim::Rng lifecycle(replica_seed(options.seed, g, 0),
                         rng::kSessionLifecycle);
      const double arrival = window * lifecycle.uniform();
      sink_.arrival[i] = arrival;
      sim_.schedule_at(arrival, [this, g, i] { spawn(g, i); });
    }
  }

  [[nodiscard]] bool complete() const noexcept {
    return sink_.completed >= count_;
  }

  /// Advances one time slice, anchored at the next pending event.  Returns
  /// as soon as the shard completes mid-slice (undispatched expiries are
  /// requeued untouched), leaving the clock on the completing event.
  void advance_slice() {
    const std::optional<double> next = sim_.next_pending_time();
    if (!next) {
      throw std::logic_error("session farm: shard stalled before completing");
    }
    sim_.run_slice(*next + kSliceSeconds, [this] { return complete(); });
  }

  /// Extracts the shard's results (call once, after completion).
  ShardOutcome finish() {
    ShardOutcome out = drain_sink(sink_, sim_);
    out.arena_high_water = arena_.slot_capacity();
    out.arena_chunks = arena_.chunk_allocations();
    return out;
  }

 private:
  void spawn(std::uint64_t global_index, std::size_t local) {
    const auto [slot, session] = arena_.spawn(
        sim_, kind_, params_, options_, global_index, sink_, local);
    session->set_slot(slot);
    session->begin();
  }

  ProtocolKind kind_;
  const Params& params_;
  const SessionFarmOptions& options_;
  std::size_t first_;
  std::size_t count_;
  ShardSink sink_;
  sim::Simulator sim_;
  // Declared after sim_ so sessions are destroyed BEFORE the simulator
  // (their destructors may cancel events); pending closures that still
  // point at destroyed sessions are merely destroyed with the queue, never
  // invoked.
  SessionArena<Session> arena_;
};

template <typename Session, typename Params>
SessionFarmResult run_farm(ProtocolKind kind, const Params& params,
                           const SessionFarmOptions& options) {
  validate_options(options);
  params.validate();

  const std::size_t n = options.sessions;
  const std::size_t shard_size = std::min(options.shard_size, n);
  const std::size_t shards = (n + shard_size - 1) / shard_size;

  std::optional<ParallelSweep> local_engine;
  ParallelSweep* engine = options.engine;
  if (engine == nullptr) {
    local_engine.emplace(options.threads);
    engine = &*local_engine;
  }

  // Persistent per-core shard workers: worker w owns the strided shard set
  // {w, w + W, ...}, builds every owned shard up front, and round-robins
  // one time slice per incomplete shard until all of them finish.
  // Ownership and slicing cannot affect results: shards are independent
  // simulators and run_slice preserves exact pop order, so this is the
  // task-per-shard farm's schedule merely interleaved differently in
  // wall-clock time.
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(engine->threads(), shards));
  std::vector<ShardOutcome> outcomes(shards);
  parallel_for(engine->pool(), workers, [&](std::size_t w) {
    std::vector<std::unique_ptr<Shard<Session, Params>>> owned;
    for (std::size_t s = w; s < shards; s += workers) {
      const std::size_t first = s * shard_size;
      const std::size_t count = std::min(shard_size, n - first);
      owned.push_back(std::make_unique<Shard<Session, Params>>(
          kind, params, options, first, count));
    }
    bool all_done = false;
    while (!all_done) {
      all_done = true;
      for (auto& shard : owned) {
        if (shard->complete()) continue;
        shard->advance_slice();
        all_done = all_done && shard->complete();
      }
    }
    std::size_t next = 0;
    for (std::size_t s = w; s < shards; s += workers) {
      outcomes[s] = owned[next++]->finish();
    }
  });

  return aggregate_outcomes(outcomes, options, n);
}

// ------------------------------------------------------ the fabric farm --
//
// Shared relays turn independent shards into a communicating system, so the
// free-running round-robin above no longer preserves determinism: a shard
// racing ahead could observe (or miss) messages depending on wall-clock
// scheduling.  The fabric farm instead runs global LOCKSTEP EPOCHS:
//
//   1. negotiate (serial):  H_k = min over all shards of the earliest
//      pending event time, plus kFabricSliceSeconds.  The minimum is over
//      the union of every shard's pending events, which is invariant to the
//      shard decomposition -- so the epoch timeline is too.
//   2. advance (parallel):  every worker runs its owned shards' simulators
//      up to exactly H_k.  Sessions push outgoing fabric messages onto
//      their shard's rings (producer side; ring growth is legal here).
//   3. drain (parallel):    every worker drains its owned shards' INCOMING
//      rings, sorts the merged entries by the (send_time, source, seq)
//      stamp, and schedules one inbox-flush event at H_k per shard.
//
// Each parallel_for join is a full barrier, so the advance and drain phases
// never overlap anywhere -- that is what makes each ring's SPSC use
// phase-separated and growth safe.  Messages sent during epoch k are
// delivered at exactly H_k (the destination's clock cannot have passed H_k,
// so no message ever arrives in the past), in stamp order, via a flush
// event scheduled AFTER every event of the slice -- deliveries therefore
// sort after the destination's own H_k-time events deterministically.
// Every piece of that discipline is decomposition-invariant, which is the
// bit-identity argument docs/ARCHITECTURE.md spells out in full.

/// Type-erased fabric shard: the epoch loop drives subscriber and relay
/// shards uniformly through this interface (a handful of virtual calls per
/// shard per epoch -- noise next to the slice itself).
class FabricShard {
 public:
  virtual ~FabricShard() = default;
  [[nodiscard]] virtual bool complete() const = 0;
  [[nodiscard]] virtual std::optional<double> next_pending_within(
      double bound) const = 0;
  virtual void advance_to(double horizon) = 0;
  virtual void drain_incoming(double boundary) = 0;
  virtual ShardOutcome finish() = 0;
};

/// The simulator, fabric port and inbox machinery common to both fabric
/// shard types.
class FabricShardBase : public FabricShard {
 public:
  [[nodiscard]] std::optional<double> next_pending_within(
      double bound) const final {
    return sim_.next_pending_within(bound);
  }

  /// Advance phase: run every event with time <= horizon.  Never stops
  /// early -- a completed shard keeps executing stragglers so its clock
  /// tracks the epoch timeline.
  void advance_to(double horizon) final {
    sim_.run_slice(horizon, [] { return false; });
  }

  /// Drain phase: collect this shard's incoming rings, stamp-sort, and
  /// schedule one flush event at the epoch boundary.  The inbox is always
  /// empty on entry: the previous epoch's flush ran during this epoch's
  /// advance phase (its boundary <= this epoch's horizon).
  void drain_incoming(double boundary) final {
    if (fabric_.drain_into(shard_id_, inbox_) == 0) return;
    sort_fabric(inbox_);
    sim_.schedule_at(boundary, [this] { flush_inbox(); });
  }

 protected:
  FabricShardBase(const SessionFarmOptions& options, CrossShardFabric& fabric,
                  std::uint32_t shard_id, const FabricMap& map)
      : sim_(options.event_queue),
        fabric_(fabric),
        shard_id_(shard_id),
        port_(sim_, fabric, shard_id, map) {}

  /// Dispatches one in-order fabric delivery to its destination session.
  virtual void deliver(const CrossShardEntry& entry) = 0;

  void flush_inbox() {
    for (const CrossShardEntry& entry : inbox_) deliver(entry);
    inbox_.clear();
  }

  sim::Simulator sim_;
  CrossShardFabric& fabric_;
  std::uint32_t shard_id_;
  FabricPort port_;
  std::vector<CrossShardEntry> inbox_;
};

/// A subscriber shard of the fabric farm: ordinary single-hop farm sessions
/// (same arena, same arrival pre-scan, same recycling), the first
/// relays * subscribers_per_relay of which carry a RelayClient wired to the
/// shard's fabric port.  An endpoint table, nulled at completion, routes
/// incoming relay echoes; late echoes are dropped deterministically.
class SubscriberFabricShard final : public FabricShardBase {
 public:
  SubscriberFabricShard(ProtocolKind kind, const SingleHopParams& params,
                        const SessionFarmOptions& options,
                        const FabricMap& map, CrossShardFabric& fabric,
                        std::uint32_t shard_id, std::size_t first,
                        std::size_t count)
      : FabricShardBase(options, fabric, shard_id, map),
        kind_(kind),
        params_(params),
        options_(options),
        first_(first),
        count_(count),
        participating_(options.shared_relays * options.subscribers_per_relay),
        arena_(count),
        endpoints_(count, nullptr) {
    sink_.metrics.resize(count);
    sink_.churn.resize(count);
    sink_.arrival.resize(count);
    sink_.end.resize(count);
    sink_.retire = [this](std::uint32_t slot) { arena_.retire(slot); };
    sink_.fabric_done = [this](std::size_t local) {
      endpoints_[local] = nullptr;
    };
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    for (std::size_t i = 0; i < count; ++i) {
      const auto g = static_cast<std::uint64_t>(first + i);
      sim::Rng lifecycle(replica_seed(options.seed, g, 0),
                         rng::kSessionLifecycle);
      const double arrival = window * lifecycle.uniform();
      sink_.arrival[i] = arrival;
      sim_.schedule_at(arrival, [this, g, i] { spawn(g, i); });
    }
  }

  [[nodiscard]] bool complete() const override {
    return sink_.completed >= count_;
  }

  ShardOutcome finish() override {
    ShardOutcome out = drain_sink(sink_, sim_);
    out.fabric_dropped = dropped_;
    out.arena_high_water = arena_.slot_capacity();
    out.arena_chunks = arena_.chunk_allocations();
    return out;
  }

 private:
  void spawn(std::uint64_t global_index, std::size_t local) {
    const auto [slot, session] = arena_.spawn(
        sim_, kind_, params_, options_, global_index, sink_, local);
    session->set_slot(slot);
    if (global_index < participating_) {
      const auto relay = static_cast<std::uint64_t>(
          options_.sessions + global_index % options_.shared_relays);
      session->attach_relay(&port_, global_index, relay);
      endpoints_[local] = session;
    }
    session->begin();
  }

  void deliver(const CrossShardEntry& entry) override {
    const auto local = static_cast<std::size_t>(entry.dest) - first_;
    SingleHopSession* endpoint = endpoints_[local];
    if (endpoint == nullptr) {
      ++dropped_;
      return;
    }
    endpoint->deliver_fabric(entry.message);
  }

  ProtocolKind kind_;
  const SingleHopParams& params_;
  const SessionFarmOptions& options_;
  std::size_t first_;
  std::size_t count_;
  std::size_t participating_;
  ShardSink sink_;
  SessionArena<SingleHopSession> arena_;
  /// Live fabric endpoints by local index (nullptr = not participating or
  /// already completed).
  std::vector<SingleHopSession*> endpoints_;
  std::uint64_t dropped_ = 0;
};

/// One shared relay session: a SharedRelayHub plus its fabric identity and
/// completion-time metrics capture.  Relay sessions begin at t = 0 (they
/// predate every subscriber) and complete when the last subscriber's REMOVE
/// is delivered; their Metrics ride in the same per-session machinery as
/// everyone else's, at global indices [sessions, sessions + relays).
class RelaySession {
 public:
  RelaySession(sim::Simulator& sim, ProtocolKind kind,
               const SingleHopParams& params,
               const SessionFarmOptions& options, std::uint64_t global_index,
               ShardSink& sink, std::size_t local, FabricPort* port,
               std::vector<std::uint64_t> subscribers)
      : sim_(sim),
        sink_(sink),
        local_(local),
        rng_(replica_seed(options.seed, global_index, 0), rng::kSessionRelay),
        fabric_ctx_{port, global_index, 0},
        hub_(sim, rng_, mechanisms(kind),
             protocols::TimerSettings{options.timer_dist,
                                      params.refresh_timer,
                                      params.timeout_timer,
                                      params.retrans_timer},
             std::move(subscribers),
             [this](std::uint64_t dest, const Message& m) {
               fabric_ctx_.port->send(fabric_ctx_, dest, m);
             },
             [this] { on_complete(); }) {}

  RelaySession(const RelaySession&) = delete;
  RelaySession& operator=(const RelaySession&) = delete;

  void begin() { hub_.begin(); }

  void deliver(const CrossShardEntry& entry) {
    hub_.handle(entry.source, entry.message);
  }

  [[nodiscard]] const protocols::SharedRelayHub& hub() const noexcept {
    return hub_;
  }

 private:
  void on_complete() {
    const double end = sim_.now();
    const auto sent = static_cast<double>(hub_.messages_sent());
    Metrics& metrics = sink_.metrics[local_];
    metrics.inconsistency = hub_.missing_fraction(end);
    metrics.session_length = end;  // relays live from t = 0
    metrics.raw_message_rate = end > 0.0 ? sent / end : 0.0;
    metrics.message_rate = metrics.raw_message_rate;
    sink_.end[local_] = end;
    sink_.messages += hub_.messages_sent();
    sink_.receiver_timeouts += hub_.soft_timeouts();
    sink_.relay_installs += hub_.installs();
    sink_.relay_refreshes += hub_.refreshes();
    sink_.relay_soft_timeouts += hub_.soft_timeouts();
    ++sink_.completed;
  }

  sim::Simulator& sim_;
  ShardSink& sink_;
  std::size_t local_;
  sim::Rng rng_;
  FabricCtx fabric_ctx_;
  protocols::SharedRelayHub hub_;
};

/// A relay shard: RelaySessions for relays [first_relay, first_relay +
/// count), all spawned at t = 0 and never recycled (a deque holds them --
/// no arena, no relocation).
class RelayFabricShard final : public FabricShardBase {
 public:
  RelayFabricShard(ProtocolKind kind, const SingleHopParams& params,
                   const SessionFarmOptions& options, const FabricMap& map,
                   CrossShardFabric& fabric, std::uint32_t shard_id,
                   std::size_t first_relay, std::size_t count)
      : FabricShardBase(options, fabric, shard_id, map),
        kind_(kind),
        params_(params),
        options_(options),
        first_relay_(first_relay),
        count_(count) {
    sink_.metrics.resize(count);
    sink_.churn.resize(count);
    sink_.arrival.resize(count);
    sink_.end.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      sink_.arrival[i] = 0.0;
      sim_.schedule_at(0.0, [this, i] { spawn(i); });
    }
  }

  [[nodiscard]] bool complete() const override {
    return sink_.completed >= count_;
  }

  ShardOutcome finish() override {
    ShardOutcome out = drain_sink(sink_, sim_);
    for (const RelaySession& relay : relays_) {
      out.fabric_dropped += relay.hub().unknown_dropped();
    }
    return out;
  }

 private:
  void spawn(std::size_t local) {
    const std::size_t r = first_relay_ + local;
    const auto g = static_cast<std::uint64_t>(options_.sessions + r);
    // Relay r serves subscribers {r, r + R, r + 2R, ...}: the static
    // subscription map both sides derive independently.
    std::vector<std::uint64_t> subscribers;
    subscribers.reserve(options_.subscribers_per_relay);
    for (std::size_t k = 0; k < options_.subscribers_per_relay; ++k) {
      subscribers.push_back(
          static_cast<std::uint64_t>(r + k * options_.shared_relays));
    }
    relays_.emplace_back(sim_, kind_, params_, options_, g, sink_, local,
                         &port_, std::move(subscribers));
    relays_.back().begin();
  }

  void deliver(const CrossShardEntry& entry) override {
    const auto local = static_cast<std::size_t>(entry.dest) -
                       options_.sessions - first_relay_;
    relays_[local].deliver(entry);
  }

  ProtocolKind kind_;
  const SingleHopParams& params_;
  const SessionFarmOptions& options_;
  std::size_t first_relay_;
  std::size_t count_;
  ShardSink sink_;
  /// Spawn events run in local order at t = 0, so relays_[i] is relay i.
  std::deque<RelaySession> relays_;
};

SessionFarmResult run_fabric_farm(ProtocolKind kind,
                                  const SingleHopParams& params,
                                  const SessionFarmOptions& options) {
  validate_options(options);
  params.validate();
  if (options.subscribers_per_relay == 0) {
    throw std::invalid_argument(
        "SessionFarmOptions: subscribers_per_relay must be > 0 with shared "
        "relays");
  }
  if (options.subscribers_per_relay >
      options.sessions / options.shared_relays) {
    throw std::invalid_argument(
        "SessionFarmOptions: shared_relays * subscribers_per_relay must be "
        "<= sessions");
  }

  const std::size_t n = options.sessions;
  const std::size_t relays = options.shared_relays;
  const std::size_t shard_size = std::min(options.shard_size, n);
  const std::size_t sub_shards = (n + shard_size - 1) / shard_size;
  const std::size_t relay_shards = (relays + shard_size - 1) / shard_size;
  const std::size_t shards = sub_shards + relay_shards;
  const FabricMap map{shard_size, n, sub_shards};

  // Materialize the rings from the static subscription map: subscriber i
  // talks to relay (i mod R) and back.  Deduplicate the directed shard
  // pairs first so ensure_ring runs once per ring, not once per session.
  CrossShardFabric fabric(shards);
  const std::size_t participating = relays * options.subscribers_per_relay;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(participating * 2);
  for (std::size_t i = 0; i < participating; ++i) {
    const std::uint32_t s = map.shard_of(static_cast<std::uint64_t>(i));
    const std::uint32_t d =
        map.shard_of(static_cast<std::uint64_t>(n + i % relays));
    pairs.emplace_back(s, d);
    pairs.emplace_back(d, s);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [src, dst] : pairs) fabric.ensure_ring(src, dst);

  std::optional<ParallelSweep> local_engine;
  ParallelSweep* engine = options.engine;
  if (engine == nullptr) {
    local_engine.emplace(options.threads);
    engine = &*local_engine;
  }
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(engine->threads(), shards));

  // Build every shard up front (parallel, strided like the base farm).
  std::vector<std::unique_ptr<FabricShard>> shard_objs(shards);
  parallel_for(engine->pool(), workers, [&](std::size_t w) {
    for (std::size_t s = w; s < shards; s += workers) {
      if (s < sub_shards) {
        const std::size_t first = s * shard_size;
        const std::size_t count = std::min(shard_size, n - first);
        shard_objs[s] = std::make_unique<SubscriberFabricShard>(
            kind, params, options, map, fabric,
            static_cast<std::uint32_t>(s), first, count);
      } else {
        const std::size_t first = (s - sub_shards) * shard_size;
        const std::size_t count = std::min(shard_size, relays - first);
        shard_objs[s] = std::make_unique<RelayFabricShard>(
            kind, params, options, map, fabric,
            static_cast<std::uint32_t>(s), first, count);
      }
    }
  });

  // The lockstep epoch loop (see the section comment above).  Each
  // parallel_for join is the phase barrier; the negotiation and completion
  // check run serially on the calling thread between joins.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t epochs = 0;
  while (true) {
    bool all_complete = true;
    for (const auto& shard : shard_objs) {
      if (!shard->complete()) {
        all_complete = false;
        break;
      }
    }
    if (all_complete) break;
    double min_next = kInf;
    for (const auto& shard : shard_objs) {
      const std::optional<double> next = shard->next_pending_within(min_next);
      if (next && *next < min_next) min_next = *next;
    }
    if (min_next == kInf) {
      throw std::logic_error("session farm: fabric stalled before completing");
    }
    const double horizon = min_next + kFabricSliceSeconds;
    ++epochs;
    parallel_for(engine->pool(), workers, [&](std::size_t w) {
      for (std::size_t s = w; s < shards; s += workers) {
        shard_objs[s]->advance_to(horizon);
      }
    });
    parallel_for(engine->pool(), workers, [&](std::size_t w) {
      for (std::size_t s = w; s < shards; s += workers) {
        shard_objs[s]->drain_incoming(horizon);
      }
    });
  }

  std::vector<ShardOutcome> outcomes(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    outcomes[s] = shard_objs[s]->finish();
  }
  const std::uint64_t fabric_messages = fabric.total_pushed();
  SessionFarmResult result = aggregate_outcomes(outcomes, options, n + relays);
  result.relay_sessions = relays;
  result.fabric_messages = fabric_messages;
  result.fabric_rings = fabric.rings();
  result.fabric_epochs = epochs;
  return result;
}

}  // namespace

SessionFarmResult run_session_farm(ProtocolKind kind,
                                   const SingleHopParams& params,
                                   const SessionFarmOptions& options) {
  if (options.leaf_churn.enabled()) {
    throw std::invalid_argument(
        "run_session_farm: leaf churn needs tree or chain sessions");
  }
  if (options.scenario.enabled()) {
    throw std::invalid_argument(
        "run_session_farm: scenario processes need tree or chain sessions");
  }
  if (options.teardown) {
    throw std::invalid_argument(
        "run_session_farm: teardown pricing needs tree or chain sessions "
        "(single-hop sessions already end with an explicit remove)");
  }
  if (options.shared_relays > 0) {
    return run_fabric_farm(kind, params, options);
  }
  return run_farm<SingleHopSession>(kind, params, options);
}

SessionFarmResult run_session_farm(ProtocolKind kind,
                                   const MultiHopParams& params,
                                   const SessionFarmOptions& options) {
  if (!supports_multi_hop(kind)) {
    throw std::invalid_argument(
        "run_session_farm: unsupported multi-hop protocol");
  }
  if (options.shared_relays > 0) {
    throw std::invalid_argument(
        "run_session_farm: shared relays need single-hop sessions");
  }
  // A chain session IS a fan-out-1 tree session: one session class, one
  // wiring path (TreeSession's Topology == Chain's, bit for bit).
  return run_farm<TreeSession>(kind, analytic::TreeParams::chain(params),
                               options);
}

SessionFarmResult run_session_farm(ProtocolKind kind,
                                   const analytic::TreeParams& params,
                                   const SessionFarmOptions& options) {
  if (!supports_multi_hop(kind)) {
    throw std::invalid_argument(
        "run_session_farm: unsupported multi-hop protocol");
  }
  if (options.shared_relays > 0) {
    throw std::invalid_argument(
        "run_session_farm: shared relays need single-hop sessions");
  }
  return run_farm<TreeSession>(kind, params, options);
}

}  // namespace sigcomp::exp
