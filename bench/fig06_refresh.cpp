// Figure 6: inconsistency ratio (a) and normalized message rate (b) versus
// the soft-state refresh timer R in [0.1, 100] s, with T = 3R (single hop).
// HS uses no refresh timer; its flat value is printed in every row.
//
// Usage: fig06_refresh [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table table("Fig. 6: I and M vs soft-state refresh timer R (T = 3R)",
                   {"refresh_s", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)",
                    "I(HS)", "M(SS)", "M(SS+ER)", "M(SS+RT)", "M(SS+RTR)",
                    "M(HS)"});

  for (const double refresh : exp::log_space(0.1, 100.0, 16)) {
    const SingleHopParams p =
        SingleHopParams::kazaa_defaults().with_refresh_scaled_timeout(refresh);
    std::vector<exp::Cell> row{refresh};
    std::vector<double> rates;
    for (const ProtocolKind kind : kAllProtocols) {
      const Metrics m = evaluate_analytic(kind, p);
      row.emplace_back(m.inconsistency);
      rates.push_back(m.message_rate);
    }
    for (const double rate : rates) row.emplace_back(rate);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
