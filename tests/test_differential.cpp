// Randomized differential tests: independent implementations must agree.
//  * GTH stationary solver vs embedded-jump-chain power iteration on random
//    irreducible chains.
//  * Mean-time-to-absorption (linear solve) vs Monte-Carlo trajectory
//    simulation of the same chain.
//  * Analytic single-hop metrics vs the packet-level simulator at random
//    parameter points (loose band: different abstraction levels).
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/single_hop.hpp"
#include "markov/absorption.hpp"
#include "markov/dtmc.hpp"
#include "markov/stationary.hpp"
#include "protocols/single_hop_run.hpp"
#include "sim/rng.hpp"

namespace sigcomp {
namespace {

/// Random irreducible chain: a directed cycle (guarantees irreducibility)
/// plus random extra edges with rates spanning three decades.
markov::Ctmc random_irreducible_chain(sim::Rng& rng, std::size_t n) {
  markov::Ctmc chain;
  for (std::size_t i = 0; i < n; ++i) chain.add_state("s" + std::to_string(i));
  for (std::size_t i = 0; i < n; ++i) {
    chain.add_rate(i, (i + 1) % n, std::pow(10.0, rng.uniform(-1.5, 1.5)));
  }
  const std::size_t extras = n + rng.uniform_int(2 * n);
  for (std::size_t e = 0; e < extras; ++e) {
    const std::size_t from = rng.uniform_int(n);
    const std::size_t to = rng.uniform_int(n);
    if (from == to) continue;
    chain.add_rate(from, to, std::pow(10.0, rng.uniform(-1.5, 1.5)));
  }
  return chain;
}

TEST(Differential, GthAgreesWithPowerIterationOnRandomChains) {
  sim::Rng rng(20260612);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(8);
    const markov::Ctmc chain = random_irreducible_chain(rng, n);
    const auto gth = markov::stationary_distribution(chain);
    const auto power = markov::ctmc_stationary_via_jump_chain(chain);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(gth[i], power[i], 1e-7) << "trial " << trial << " state " << i;
    }
  }
}

TEST(Differential, MttaAgreesWithMonteCarloTrajectories) {
  sim::Rng rng(777);
  // A fixed 4-state chain with one absorbing state.
  markov::Ctmc chain;
  for (int i = 0; i < 4; ++i) chain.add_state("s" + std::to_string(i));
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(1, 2, 0.5);
  chain.add_rate(2, 0, 0.25);
  chain.add_rate(2, 3, 0.75);  // state 3 absorbing

  const auto analytic_result = markov::mean_time_to_absorption(chain);

  // Monte-Carlo: jump-chain trajectories with exponential holding times.
  constexpr int kTrajectories = 40000;
  double total = 0.0;
  for (int t = 0; t < kTrajectories; ++t) {
    markov::StateId s = 0;
    double clock = 0.0;
    while (s != 3) {
      const double exit = chain.exit_rate(s);
      clock += rng.exponential(1.0 / exit);
      // Choose the next state proportionally to the outgoing rates.
      double u = rng.uniform() * exit;
      markov::StateId next = s;
      for (const auto& tr : chain.transitions()) {
        if (tr.from != s) continue;
        if (u < tr.rate) {
          next = tr.to;
          break;
        }
        u -= tr.rate;
      }
      s = next;
    }
    total += clock;
  }
  const double empirical = total / kTrajectories;
  EXPECT_NEAR(empirical, analytic_result.mean_time[0],
              0.03 * analytic_result.mean_time[0]);
}

class RandomPointDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomPointDifferential, SimulatorTracksModelAtRandomParameters) {
  sim::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  SingleHopParams p;
  p.loss = rng.uniform(0.0, 0.15);
  p.delay = rng.uniform(0.005, 0.1);
  p.update_rate = 1.0 / rng.uniform(5.0, 60.0);
  p.removal_rate = 1.0 / rng.uniform(120.0, 2400.0);
  p.refresh_timer = rng.uniform(1.0, 12.0);
  p.timeout_timer = 3.0 * p.refresh_timer;
  p.retrans_timer = 4.0 * p.delay;
  p.validate();

  for (const ProtocolKind kind : {ProtocolKind::kSSER, ProtocolKind::kHS}) {
    const Metrics model = analytic::evaluate_single_hop(kind, p);
    protocols::SimOptions options;
    options.sessions = 500;
    options.seed = 42 + static_cast<std::uint64_t>(GetParam());
    const protocols::SimResult sim = protocols::run_single_hop(kind, p, options);
    // Loose band: same order, same ballpark.
    EXPECT_GT(sim.metrics.inconsistency, 0.3 * model.inconsistency)
        << to_string(kind) << " " << GetParam();
    EXPECT_LT(sim.metrics.inconsistency, 3.0 * model.inconsistency + 1e-4)
        << to_string(kind) << " " << GetParam();
    EXPECT_NEAR(sim.metrics.message_rate, model.message_rate,
                0.35 * model.message_rate)
        << to_string(kind) << " " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPoints, RandomPointDifferential,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace sigcomp
