// Tests of staged (exponentially backed-off) retransmission timers.
#include <gtest/gtest.h>

#include <memory>

#include "protocols/engine.hpp"
#include "protocols/single_hop_run.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {
namespace {

/// Sender facing a blackholed channel; counts transmissions over time.
struct BlackholeSender {
  explicit BlackholeSender(double backoff)
      : rng(1),
        out(sim, rng, 1.0, 0.03, sim::Distribution::kDeterministic,
            [](const Message&) {}) {
    TimerSettings timers;
    timers.dist = sim::Distribution::kDeterministic;
    timers.retrans = 0.1;
    timers.backoff = backoff;
    sender = std::make_unique<SenderEngine>(
        sim, rng, mechanisms(ProtocolKind::kHS), timers, out, nullptr);
  }

  sim::Simulator sim;
  sim::Rng rng;
  MessageChannel out;
  std::unique_ptr<SenderEngine> sender;
};

TEST(Backoff, FixedTimerRetransmitsLinearly) {
  BlackholeSender fixture(1.0);
  fixture.sender->install(1);
  fixture.sim.run_until(2.0);
  // Initial send + one retransmission per 0.1 s.
  EXPECT_NEAR(double(fixture.out.counters().sent), 21.0, 1.0);
}

TEST(Backoff, StagedTimerRetransmitsLogarithmically) {
  BlackholeSender fixture(2.0);
  fixture.sender->install(1);
  fixture.sim.run_until(2.0);
  // Retransmissions at 0.1, 0.3, 0.7, 1.5 after the initial send: 5 total.
  EXPECT_EQ(fixture.out.counters().sent, 5u);
}

TEST(Backoff, StageResetsOnNewContent) {
  BlackholeSender fixture(2.0);
  fixture.sender->install(1);
  fixture.sim.run_until(2.0);  // interval now backed off to 1.6
  const auto before = fixture.out.counters().sent;
  fixture.sender->update(2);   // fresh trigger: stage resets to 0.1
  fixture.sim.run_until(2.45); // 0.45 s: sends at 2.0, 2.1, 2.3 (next 2.7)
  EXPECT_EQ(fixture.out.counters().sent, before + 3);
}

TEST(Backoff, CapBoundsTheInterval) {
  BlackholeSender fixture(1000.0);  // absurd factor: capped at 64 * 0.1
  fixture.sender->install(1);
  fixture.sim.run_until(20.0);
  // Sends at 0 and 0.1; then capped 6.4 s stages: 6.5, 12.9, 19.3.
  EXPECT_EQ(fixture.out.counters().sent, 5u);
}

TEST(Backoff, AckStillCancelsStagedRetransmission) {
  BlackholeSender fixture(2.0);
  fixture.sender->install(1);
  fixture.sim.run_until(0.25);  // two sends so far (0, 0.1)
  fixture.sender->handle(Message{MessageType::kAckTrigger, 0, 1, 0});
  fixture.sim.run_until(30.0);
  EXPECT_EQ(fixture.out.counters().sent, 2u);
}

TEST(Backoff, HarnessRejectsFactorBelowOne) {
  SimOptions options;
  options.retrans_backoff = 0.5;
  EXPECT_THROW(
      (void)run_single_hop(ProtocolKind::kHS, SingleHopParams{}, options),
      std::invalid_argument);
}

TEST(Backoff, SavesMessagesUnderHeavyLossAtSomeConsistencyCost) {
  SingleHopParams p = SingleHopParams::kazaa_defaults();
  p.loss = 0.4;
  p.removal_rate = 1.0 / 300.0;
  SimOptions fixed;
  fixed.sessions = 300;
  fixed.seed = 12;
  SimOptions staged = fixed;
  staged.retrans_backoff = 2.0;
  const SimResult f = run_single_hop(ProtocolKind::kHS, p, fixed);
  const SimResult s = run_single_hop(ProtocolKind::kHS, p, staged);
  EXPECT_LT(s.metrics.message_rate, f.metrics.message_rate);
  EXPECT_GE(s.metrics.inconsistency, 0.8 * f.metrics.inconsistency);
}

TEST(Backoff, DefaultIsFixedTimerBehaviour) {
  // retrans_backoff defaults to 1.0: results identical to an explicit 1.0.
  const SingleHopParams p = SingleHopParams::kazaa_defaults();
  SimOptions a;
  a.sessions = 100;
  a.seed = 5;
  SimOptions b = a;
  b.retrans_backoff = 1.0;
  const SimResult ra = run_single_hop(ProtocolKind::kSSRT, p, a);
  const SimResult rb = run_single_hop(ProtocolKind::kSSRT, p, b);
  EXPECT_EQ(ra.messages, rb.messages);
  EXPECT_DOUBLE_EQ(ra.metrics.inconsistency, rb.metrics.inconsistency);
}

}  // namespace
}  // namespace sigcomp::protocols
