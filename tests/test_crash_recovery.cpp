// Tests of the sender-crash extension: orphaned state cleanup per protocol
// (Clark's survivability scenario, Sec. II of the paper).
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "protocols/engine.hpp"
#include "protocols/single_hop_run.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {
namespace {

SingleHopParams short_sessions() {
  SingleHopParams p = SingleHopParams::kazaa_defaults();
  p.removal_rate = 1.0 / 120.0;
  return p;
}

SimOptions crash_options(double fraction, double detection_delay = 10.0,
                         std::uint64_t seed = 1) {
  SimOptions o;
  o.sessions = 400;
  o.seed = seed;
  o.crash_fraction = fraction;
  o.crash_detection_delay = detection_delay;
  return o;
}

TEST(EngineCrash, CrashIsSilent) {
  sim::Simulator sim;
  sim::Rng rng(1);
  MessageChannel out(sim, rng, 0.0, 0.03, sim::Distribution::kDeterministic,
                     [](const Message&) {});
  SenderEngine sender(sim, rng, mechanisms(ProtocolKind::kSSER),
                      TimerSettings{}, out, nullptr);
  sender.install(1);
  sim.run_until(0.1);
  const auto sent_before = out.counters().sent;
  sender.crash();
  sim.run_until(1000.0);
  EXPECT_EQ(out.counters().sent, sent_before);  // no removal, no refreshes
  EXPECT_EQ(sender.value(), std::nullopt);
  EXPECT_FALSE(sender.removal_pending());
}

TEST(CrashRecovery, CrashCountMatchesFraction) {
  const SimResult all =
      run_single_hop(ProtocolKind::kSSER, short_sessions(), crash_options(1.0));
  EXPECT_EQ(all.crashes, all.sessions);
  const SimResult none =
      run_single_hop(ProtocolKind::kSSER, short_sessions(), crash_options(0.0));
  EXPECT_EQ(none.crashes, 0u);
  const SimResult half =
      run_single_hop(ProtocolKind::kSSER, short_sessions(), crash_options(0.5));
  EXPECT_NEAR(double(half.crashes) / double(half.sessions), 0.5, 0.08);
}

TEST(CrashRecovery, InvalidFractionRejected) {
  EXPECT_THROW((void)run_single_hop(ProtocolKind::kSS, short_sessions(),
                                    crash_options(1.5)),
               std::invalid_argument);
  EXPECT_THROW((void)run_single_hop(ProtocolKind::kSS, short_sessions(),
                                    crash_options(-0.1)),
               std::invalid_argument);
}

TEST(CrashRecovery, SoftStateOrphanWindowIsBoundedByTimeout) {
  // With deterministic timers the receiver's timeout fires at most T after
  // the last refresh, so the orphan window lives in (T - R, T].
  const SingleHopParams p = short_sessions();  // R = 5, T = 15
  const SimResult result =
      run_single_hop(ProtocolKind::kSS, p, crash_options(1.0));
  EXPECT_GT(result.mean_orphan_time, p.timeout_timer - p.refresh_timer - 1.0);
  EXPECT_LT(result.mean_orphan_time, p.timeout_timer + 1.0);
}

TEST(CrashRecovery, ExplicitRemovalDoesNotHelpAgainstCrashes) {
  // SS+ER's advantage is the graceful path; a crashed sender never sends
  // the removal, so SS and SS+ER orphan windows match under 100% crashes.
  const SimResult ss =
      run_single_hop(ProtocolKind::kSS, short_sessions(), crash_options(1.0, 10, 4));
  const SimResult sser =
      run_single_hop(ProtocolKind::kSSER, short_sessions(), crash_options(1.0, 10, 4));
  EXPECT_NEAR(ss.mean_orphan_time, sser.mean_orphan_time,
              0.15 * ss.mean_orphan_time);
}

TEST(CrashRecovery, HardStateOrphanWindowIsDetectorLatency) {
  for (const double delay : {2.0, 20.0}) {
    const SimResult hs = run_single_hop(ProtocolKind::kHS, short_sessions(),
                                        crash_options(1.0, delay));
    EXPECT_NEAR(hs.mean_orphan_time, delay, 0.25 * delay) << "delay " << delay;
  }
}

TEST(CrashRecovery, FastDetectorBeatsSoftStateSlowDetectorLoses) {
  const SingleHopParams p = short_sessions();  // timeout T = 15 s
  const SimResult fast =
      run_single_hop(ProtocolKind::kHS, p, crash_options(1.0, 1.0));
  const SimResult slow =
      run_single_hop(ProtocolKind::kHS, p, crash_options(1.0, 120.0));
  const SimResult soft =
      run_single_hop(ProtocolKind::kSSRTR, p, crash_options(1.0, 1.0));
  EXPECT_LT(fast.metrics.inconsistency, soft.metrics.inconsistency);
  EXPECT_GT(slow.metrics.inconsistency, soft.metrics.inconsistency);
}

TEST(CrashRecovery, GracefulOrphanWindowIsMuchSmallerWithExplicitRemoval) {
  const SimResult graceful =
      run_single_hop(ProtocolKind::kSSER, short_sessions(), crash_options(0.0));
  const SimResult crashed =
      run_single_hop(ProtocolKind::kSSER, short_sessions(), crash_options(1.0));
  EXPECT_LT(graceful.mean_orphan_time, 0.1 * crashed.mean_orphan_time);
}

TEST(CrashRecovery, CrashesDegradeConsistencyMonotonically) {
  double previous = -1.0;
  for (const double f : {0.0, 0.5, 1.0}) {
    const SimResult r = run_single_hop(ProtocolKind::kSSRTR, short_sessions(),
                                       crash_options(f, 10.0, 11));
    EXPECT_GT(r.metrics.inconsistency, previous) << "fraction " << f;
    previous = r.metrics.inconsistency;
  }
}

}  // namespace
}  // namespace sigcomp::protocols
