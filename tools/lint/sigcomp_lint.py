#!/usr/bin/env python3
"""sigcomp_lint -- static determinism checker for the sigcomp library.

The repo's crown-jewel invariant is bit-identical results across threads,
shards and event-queue backends.  The differential suites and pinned golden
digests enforce it dynamically; this pass enforces it at the source level,
before any test runs, by rejecting the constructs that historically break
bit-identity:

  random-device       std::random_device -- nondeterministic hardware
                      entropy; all randomness must come from sim::Rng.
  libc-rand           rand()/srand()/random()/drand48() and friends --
                      global hidden state, vendor-specific sequences.
  wall-clock          std::chrono::{system,steady,high_resolution}_clock,
                      time(), clock(), gettimeofday(), clock_gettime(),
                      localtime()/gmtime() -- wall-clock reads in library
                      code make results depend on when/where they run.
                      (Benches time themselves; the library must not.)
  thread-sleep        std::this_thread::{sleep_for,sleep_until,yield} --
                      scheduling-dependent timing in library code.
  pointer-order       std::hash/std::less over pointer types, or casting
                      pointers to (u)intptr_t -- address-space layout leaks
                      into ordering or hashing.
  unordered-container std::unordered_{map,set,multimap,multiset} in library
                      code -- hash iteration order is vendor-specific, and
                      iteration (including float accumulation) over it is
                      the classic silent bit-identity breaker.
  unordered-iteration range-for or begin()/end() over a variable declared
                      as (or holding) an unordered container -- the sharp
                      end of the rule above, reported separately so a
                      waived *declaration* still cannot be iterated
                      silently.
  rng-stream-literal  sim::Rng constructed with a numeric-literal stream
                      ID -- every substream ID must be a named constant
                      from src/core/rng_streams.hpp, where a static_assert
                      proves global uniqueness.
  raw-atomic          std::atomic (and std::atomic_* free functions) outside
                      the audited cross-thread fabric -- exp/shard_ring and
                      exp/thread_pool -- in library code.  Ad-hoc atomics
                      are how nondeterministic cross-thread channels sneak
                      in; inter-shard traffic must ride the stamped ring
                      fabric, and worker coordination the pool.

Escape hatch (same line, or a comment line directly above the code):

    // sigcomp-lint: allow(<rule>[, <rule>...]) <reason -- required>

A waiver with an unknown rule or a missing reason is itself a finding
(`bad-waiver`), and a waiver that suppresses nothing is reported as
`unused-waiver` so stale waivers cannot accumulate.

Usage:
    tools/lint/sigcomp_lint.py [--root DIR] [--format text|json] [PATH...]

PATH defaults to `src`.  Paths are files or directories (searched
recursively for *.hpp/*.cpp).  Exits 1 when any finding survives waivers,
0 on a clean tree.  Comments and string/character literals are stripped
before rules run, so prose and error messages never trip a rule.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

RULE_DOCS = {
    "random-device": "std::random_device is nondeterministic; draw from "
                     "sim::Rng instead",
    "libc-rand": "C library RNG has hidden global state; draw from sim::Rng "
                 "instead",
    "wall-clock": "wall-clock read in library code; results must not depend "
                  "on when they run",
    "thread-sleep": "std::this_thread sleep/yield makes timing "
                    "scheduling-dependent",
    "pointer-order": "ordering/hashing by pointer value leaks address-space "
                     "layout into results",
    "unordered-container": "hash-container iteration order is "
                           "vendor-specific; use an ordered or indexed "
                           "container",
    "unordered-iteration": "iterating an unordered container; order is "
                           "vendor-specific",
    "rng-stream-literal": "numeric-literal RNG stream ID; use a named "
                          "constant from core/rng_streams.hpp",
    "raw-atomic": "raw std::atomic outside the audited fabric "
                  "(exp/shard_ring, exp/thread_pool); cross-thread traffic "
                  "goes through the stamped ring",
    "bad-waiver": "malformed sigcomp-lint waiver",
    "unused-waiver": "waiver suppresses no finding; remove it",
}

# Rules a waiver may name (bad-waiver/unused-waiver are meta, not waivable).
WAIVABLE_RULES = frozenset(
    r for r in RULE_DOCS if r not in ("bad-waiver", "unused-waiver"))

WAIVER_RE = re.compile(
    r"sigcomp-lint:\s*allow\s*\(\s*([A-Za-z0-9_,\s-]*?)\s*\)\s*(.*)")

SOURCE_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str


@dataclass
class Waiver:
    line: int  # 1-based line the waiver comment sits on
    rules: tuple
    reason: str
    target_line: int  # code line the waiver applies to
    used_rules: set = field(default_factory=set)


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal *contents*, preserving the
    line structure exactly.  Returns (code_text, comment_text): each the
    same shape as `text`, with non-code (resp. non-comment) bytes replaced
    by spaces.  Handles //, /* */, "..." and '...' with escapes; raw
    strings are not used in this codebase (documented limitation)."""
    code = []
    comment = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                code.append("  ")
                comment.append("//")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                code.append("  ")
                comment.append("/*")
                i += 2
                continue
            if c == '"':
                state = STRING
                code.append('"')
                comment.append(" ")
                i += 1
                continue
            if c == "'":
                state = CHAR
                code.append("'")
                comment.append(" ")
                i += 1
                continue
            code.append(c)
            comment.append(c if c == "\n" else " ")
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                code.append("\n")
                comment.append("\n")
            else:
                code.append(" ")
                comment.append(c)
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                code.append("  ")
                comment.append("*/")
                i += 2
                continue
            code.append("\n" if c == "\n" else " ")
            comment.append(c)
            i += 1
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                code.append("  ")
                comment.append("  ")
                i += 2
                continue
            if c == quote:
                state = NORMAL
                code.append(quote)
            elif c == "\n":  # unterminated literal; keep line structure
                state = NORMAL
                code.append("\n")
            else:
                code.append(" ")
            comment.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(code), "".join(comment)


def parse_waivers(comment_lines, code_lines, findings, path):
    """Extracts waivers from comment text.  A waiver applies to its own
    line when that line has code, otherwise to the next line that does."""
    waivers = []

    def next_code_line(start):
        for j in range(start, len(code_lines)):
            if code_lines[j].strip():
                return j + 1
        return len(code_lines)  # dangling; applies to nothing

    for idx, comment in enumerate(comment_lines):
        match = WAIVER_RE.search(comment)
        if not match:
            if "sigcomp-lint" in comment:
                findings.append(Finding(
                    path, idx + 1, "bad-waiver",
                    "unrecognized sigcomp-lint directive; expected "
                    "'sigcomp-lint: allow(<rule>) <reason>'"))
            continue
        rules = tuple(
            r.strip() for r in match.group(1).split(",") if r.strip())
        reason = match.group(2).strip()
        bad = [r for r in rules if r not in WAIVABLE_RULES]
        if not rules or bad:
            findings.append(Finding(
                path, idx + 1, "bad-waiver",
                "unknown rule(s) in waiver: {}".format(
                    ", ".join(bad) if bad else "(none given)")))
            continue
        if not reason:
            findings.append(Finding(
                path, idx + 1, "bad-waiver",
                "waiver needs a reason: sigcomp-lint: allow({}) <why>".format(
                    ", ".join(rules))))
            continue
        has_code = bool(code_lines[idx].strip())
        target = idx + 1 if has_code else next_code_line(idx + 1)
        waivers.append(Waiver(idx + 1, rules, reason, target))
    return waivers


# ------------------------------------------------------- simple rules --

SIMPLE_RULES = [
    ("random-device", re.compile(r"\bstd\s*::\s*random_device\b")),
    ("libc-rand", re.compile(
        r"\b(?:rand|srand|random|srandom|rand_r|drand48|erand48|lrand48|"
        r"mrand48|random_r)\s*\(")),
    ("wall-clock", re.compile(
        r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
        r"|\bstd\s*::\s*time\s*\("
        r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
        r"|\b(?:gettimeofday|clock_gettime|localtime|gmtime|mktime)\s*\("
        r"|\bclock\s*\(\s*\)")),
    ("thread-sleep", re.compile(r"\bstd\s*::\s*this_thread\b")),
    ("pointer-order", re.compile(
        r"\bstd\s*::\s*(?:hash|less|greater)\s*<[^<>;]*\*\s*>"
        r"|\bu?intptr_t\b")),
    ("unordered-container", re.compile(
        r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")),
]

# raw-atomic: std::atomic<T>, std::atomic_flag, std::atomic_thread_fence and
# friends.  Path-scoped rather than purely syntactic: the two audited
# cross-thread primitives -- the stamped SPSC ring fabric and the thread
# pool's work-claiming counter -- are the only library files allowed to hold
# raw atomics (anywhere else, waive with a reason).
ATOMIC_RE = re.compile(r"\bstd\s*::\s*atomic(?:_\w+)?\b")
ATOMIC_FABRIC_FILES = (
    "exp/shard_ring.hpp",
    "exp/thread_pool.hpp",
    "exp/thread_pool.cpp",
)

# ------------------------------------------- declaration collectors --

# `std::unordered_map<...> name` possibly nested inside another template
# (e.g. std::vector<std::unordered_map<K, V>> rates_;).  Greedy match to
# the last '>' on the line, then the declared name.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*(\w+)\s*"
    r"[;={(]")

# `sim::Rng name;` / `Rng name(...)` member or local declarations.
RNG_DECL_RE = re.compile(
    r"\b(?:sim\s*::\s*)?Rng\s+(\w+)\s*[;={(,)]")

# Direct construction with a literal stream: Rng(seed_expr, 42).  The
# argument list is matched with one nesting level of parentheses.
ARGS = r"(?:[^()]|\([^()]*\))*"
RNG_DIRECT_LITERAL_RE = re.compile(
    r"\b(?:sim\s*::\s*)?Rng\s*(?:\w+\s*)?\(\s*" + ARGS +
    r"?,\s*(?:0[xX][0-9a-fA-F]+|\d+)\s*(?:[uU]?[lL]{0,2})\s*\)")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*):([^)]*)\)")
# begin() only: `it != container.end()` is the harmless lookup-sentinel
# idiom, and explicit iterator loops need a begin() to start from.
ITER_CALL_RE = re.compile(
    r"\b(\w+)\s*(?:\[[^\]]*\]\s*)?\.\s*c?r?begin\s*\(")


def member_init_literal_re(name):
    """ctor-init-list / declaration `name(<args>, <int literal>)`."""
    return re.compile(
        r"\b" + re.escape(name) + r"\s*\(\s*" + ARGS +
        r",\s*(?:0[xX][0-9a-fA-F]+|\d+)\s*(?:[uU]?[lL]{0,2})\s*\)")


@dataclass
class FileView:
    path: str
    rel: str
    raw_lines: list
    code_lines: list
    comment_lines: list


def load_view(path, rel):
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    code, comment = strip_comments_and_strings(text)
    return FileView(path, rel, text.splitlines(), code.splitlines(),
                    comment.splitlines())


def collect_declared_names(views):
    """Pass A over every file: names declared as unordered containers and
    as sim::Rng instances (matched repo-wide, since members are declared
    in headers and used in .cpp files)."""
    unordered, rngs = set(), set()
    for view in views:
        for line in view.code_lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered.add(m.group(1))
            for m in RNG_DECL_RE.finditer(line):
                # `Rng name` inside a parameter list declares a reference
                # handle, not a stream owner; constructing through it is
                # still caught by the member-init pattern below.
                rngs.add(m.group(1))
    return unordered, rngs


def lint_file(view, unordered_names, rng_names, registry_rel):
    findings = []
    waivers = parse_waivers(view.comment_lines, view.code_lines, findings,
                            view.rel)
    raw = []  # (line, rule, message) before waiver filtering

    rng_member_res = [member_init_literal_re(n) for n in sorted(rng_names)]

    rel_posix = view.rel.replace(os.sep, "/")
    in_registry = rel_posix.endswith(registry_rel)
    in_fabric = rel_posix.endswith(ATOMIC_FABRIC_FILES)
    for idx, line in enumerate(view.code_lines):
        lineno = idx + 1
        for rule, rx in SIMPLE_RULES:
            if rx.search(line):
                raw.append((lineno, rule, RULE_DOCS[rule]))
        if not in_fabric and ATOMIC_RE.search(line):
            raw.append((lineno, "raw-atomic", RULE_DOCS["raw-atomic"]))
        # unordered-iteration: range-for or begin()/end() over a known name.
        tokens = None
        for m in RANGE_FOR_RE.finditer(line):
            tokens = set(re.findall(r"\w+", m.group(2)))
            if tokens & unordered_names:
                raw.append((lineno, "unordered-iteration",
                            "range-for over unordered container '{}'".format(
                                ", ".join(sorted(tokens & unordered_names)))))
        for m in ITER_CALL_RE.finditer(line):
            if m.group(1) in unordered_names:
                raw.append((lineno, "unordered-iteration",
                            "iterator over unordered container '{}'".format(
                                m.group(1))))
        # rng-stream-literal: skipped inside the registry header itself.
        if in_registry:
            continue
        if RNG_DIRECT_LITERAL_RE.search(line):
            raw.append((lineno, "rng-stream-literal",
                        RULE_DOCS["rng-stream-literal"]))
        else:
            for rx in rng_member_res:
                if rx.search(line):
                    raw.append((lineno, "rng-stream-literal",
                                RULE_DOCS["rng-stream-literal"]))
                    break

    # Apply waivers.
    by_target = {}
    for w in waivers:
        by_target.setdefault(w.target_line, []).append(w)
    for lineno, rule, message in raw:
        waived = False
        for w in by_target.get(lineno, []):
            if rule in w.rules:
                w.used_rules.add(rule)
                waived = True
        if not waived:
            findings.append(Finding(view.rel, lineno, rule, message))

    for w in waivers:
        for rule in w.rules:
            if rule not in w.used_rules:
                findings.append(Finding(
                    view.rel, w.line, "unused-waiver",
                    "allow({}) suppresses no finding on line {}".format(
                        rule, w.target_line)))
    return findings


def gather_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
            continue
        if not os.path.isdir(full):
            raise SystemExit("sigcomp_lint: no such path: {}".format(p))
        for dirpath, _, names in sorted(os.walk(full)):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="sigcomp_lint.py",
        description="static determinism checker for the sigcomp library")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from "
                             "this script)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print("{:20s} {}".format(rule, RULE_DOCS[rule]))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or ["src"]
    files = gather_files(root, paths)

    views = []
    for f in files:
        rel = os.path.relpath(f, root)
        views.append(load_view(f, rel))

    unordered_names, rng_names = collect_declared_names(views)

    findings = []
    for view in views:
        findings.extend(
            lint_file(view, unordered_names, rng_names,
                      registry_rel="core/rng_streams.hpp"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.format == "json":
        print(json.dumps(
            [{"file": f.path, "line": f.line, "rule": f.rule,
              "message": f.message} for f in findings], indent=2))
    else:
        for f in findings:
            print("{}:{}: [{}] {}".format(f.path, f.line, f.rule, f.message))
        print("sigcomp_lint: {} file(s), {} finding(s)".format(
            len(files), len(findings)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
