// Table I of the paper: protocol-specific transition rates of the unified
// single-hop Markov model, printed symbolically and numerically at the
// default parameter point.
//
// Usage: table1 [--csv PATH]
#include <iostream>
#include <map>
#include <string>
#include <utility>

#include "analytic/single_hop.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;
  using analytic::ShState;
  using analytic::SingleHopModel;

  const SingleHopParams params = SingleHopParams::kazaa_defaults();

  // Collect per-protocol formulas keyed by (from, to).
  std::map<std::pair<ShState, ShState>, std::map<ProtocolKind, std::string>> rows;
  for (const ProtocolKind kind : kAllProtocols) {
    for (const auto& spec : SingleHopModel::transition_table(kind, params)) {
      std::string cell = spec.formula;
      if (spec.rate > 0.0) {
        cell += " = " + exp::format_number(spec.rate);
      }
      rows[{spec.from, spec.to}][kind] = std::move(cell);
    }
  }

  exp::Table table(
      "Table I: model transitions (defaults: pl=0.02, D=0.03s, R=5s, T=15s, "
      "G=0.12s, lu=0.05/s, lr=1/1800s, le=1e-4/s)",
      {"transition", "SS", "SS+ER", "SS+RT", "SS+RTR", "HS"});
  for (const auto& [edge, formulas] : rows) {
    std::vector<exp::Cell> cells;
    cells.emplace_back(std::string(to_string(edge.first)) + " -> " +
                       std::string(to_string(edge.second)));
    for (const ProtocolKind kind : kAllProtocols) {
      const auto it = formulas.find(kind);
      cells.emplace_back(it == formulas.end() ? std::string("-") : it->second);
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
