#include "core/params.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace sigcomp {

namespace {

void require(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

void check_probability(double p, const char* name) {
  require(std::isfinite(p) && p >= 0.0 && p < 1.0,
          std::string(name) + " must be in [0, 1)");
}

void check_positive(double v, const char* name) {
  require(std::isfinite(v) && v > 0.0, std::string(name) + " must be > 0");
}

void check_non_negative(double v, const char* name) {
  require(std::isfinite(v) && v >= 0.0, std::string(name) + " must be >= 0");
}

/// Copies a matched GE parameterization into the ge_* fields shared by the
/// single- and multi-hop parameter structs.
template <typename Params>
Params bursty_copy(const Params& base, double burst_length, double loss_bad) {
  const sim::LossConfig config = sim::LossConfig::gilbert_elliott_matched(
      base.loss, burst_length, loss_bad);
  Params p = base;
  p.loss_model = sim::LossModel::kGilbertElliott;
  p.ge_p_gb = config.p_gb;
  p.ge_p_bg = config.p_bg;
  p.ge_loss_good = config.loss_good;
  p.ge_loss_bad = config.loss_bad;
  return p;
}

template <typename Params>
sim::LossConfig loss_config_of(const Params& p) {
  if (p.loss_model == sim::LossModel::kIid) return sim::LossConfig::iid(p.loss);
  return sim::LossConfig::gilbert_elliott(p.ge_p_gb, p.ge_p_bg, p.ge_loss_bad,
                                          p.ge_loss_good);
}

/// Analytic results use `loss`, the simulator uses the GE chain; silently
/// letting them disagree would make every model-vs-sim comparison
/// apples-to-oranges, so validation pins `loss` to the stationary mean.
void check_mean_loss_coherence(const sim::LossConfig& config, double loss) {
  if (config.model == sim::LossModel::kIid) return;
  if (std::abs(config.mean_loss() - loss) > 1e-9) {
    throw std::invalid_argument(
        "loss must equal the Gilbert-Elliott stationary mean; use "
        "with_bursty_loss(), or set loss = loss_config().mean_loss()");
  }
}

}  // namespace

double SingleHopParams::false_removal_rate() const {
  if (loss <= 0.0) return 0.0;
  return std::pow(loss, timeout_timer / refresh_timer) / timeout_timer;
}

SingleHopParams SingleHopParams::with_delay_scaled_retrans(double new_delay) const {
  SingleHopParams p = *this;
  p.delay = new_delay;
  p.retrans_timer = 4.0 * new_delay;
  return p;
}

SingleHopParams SingleHopParams::with_refresh_scaled_timeout(double new_refresh) const {
  SingleHopParams p = *this;
  p.refresh_timer = new_refresh;
  p.timeout_timer = 3.0 * new_refresh;
  return p;
}

sim::LossConfig SingleHopParams::loss_config() const {
  return loss_config_of(*this);
}

SingleHopParams SingleHopParams::with_bursty_loss(double burst_length,
                                                  double loss_bad) const {
  return bursty_copy(*this, burst_length, loss_bad);
}

void SingleHopParams::validate() const {
  check_probability(loss, "loss");
  loss_config().validate();
  check_mean_loss_coherence(loss_config(), loss);
  check_positive(delay, "delay");
  check_non_negative(update_rate, "update_rate");
  check_positive(removal_rate, "removal_rate");
  check_positive(refresh_timer, "refresh_timer");
  check_positive(timeout_timer, "timeout_timer");
  check_positive(retrans_timer, "retrans_timer");
  check_non_negative(false_signal_rate, "false_signal_rate");
}

double MultiHopParams::recovery_rate() const {
  return 1.0 / (2.0 * static_cast<double>(hops) * delay);
}

double MultiHopParams::expected_hop_transmissions() const {
  const double k = static_cast<double>(hops);
  if (loss <= 0.0) return k;
  return (1.0 - std::pow(1.0 - loss, k)) / loss;
}

double MultiHopParams::end_to_end_delivery_probability() const {
  return std::pow(1.0 - loss, static_cast<double>(hops));
}

sim::LossConfig MultiHopParams::loss_config() const {
  return loss_config_of(*this);
}

MultiHopParams MultiHopParams::with_bursty_loss(double burst_length,
                                                double loss_bad) const {
  return bursty_copy(*this, burst_length, loss_bad);
}

void MultiHopParams::validate() const {
  require(hops >= 1, "hops must be >= 1");
  check_probability(loss, "loss");
  loss_config().validate();
  check_mean_loss_coherence(loss_config(), loss);
  check_positive(delay, "delay");
  check_non_negative(update_rate, "update_rate");
  check_positive(refresh_timer, "refresh_timer");
  check_positive(timeout_timer, "timeout_timer");
  check_positive(retrans_timer, "retrans_timer");
  check_non_negative(false_signal_rate, "false_signal_rate");
}

}  // namespace sigcomp
