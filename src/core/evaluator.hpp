// Facade over the two evaluation engines: the analytic Markov models and
// the discrete-event simulator.  This is the entry point most library users
// need -- see examples/quickstart.cpp.
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/single_hop_run.hpp"

namespace sigcomp {

/// Analytic metrics of one protocol in the single-hop setting (Sec. III-A).
[[nodiscard]] Metrics evaluate_analytic(ProtocolKind kind,
                                        const SingleHopParams& params);

/// Analytic metrics of one protocol in the multi-hop setting (Sec. III-B;
/// SS, SS+RT and HS only).
[[nodiscard]] Metrics evaluate_analytic(ProtocolKind kind,
                                        const MultiHopParams& params);

/// Simulated metrics of one protocol in the single-hop setting.
[[nodiscard]] protocols::SimResult evaluate_simulated(
    ProtocolKind kind, const SingleHopParams& params,
    const protocols::SimOptions& options = {});

/// Simulated metrics of one protocol in the multi-hop setting.
[[nodiscard]] protocols::MultiHopSimResult evaluate_simulated(
    ProtocolKind kind, const MultiHopParams& params,
    const protocols::MultiHopSimOptions& options = {});

/// One (protocol, metrics) row of a protocol comparison.
struct ProtocolMetrics {
  ProtocolKind kind;
  Metrics metrics;
};

/// Analytic comparison of all five protocols at one parameter point.
[[nodiscard]] std::vector<ProtocolMetrics> compare_all(const SingleHopParams& params);

/// Analytic comparison of the three multi-hop protocols.
[[nodiscard]] std::vector<ProtocolMetrics> compare_all(const MultiHopParams& params);

}  // namespace sigcomp
