// Scale benchmarks of the event core and the many-session farm.
//
// Part 1 pits the pooled, allocation-free sim::EventQueue against the
// pre-refactor reference implementation (sim::ReferenceEventQueue:
// std::function + unordered_map + lazily-deleted binary heap) on identical
// operation streams: a schedule/pop flood with small (timer-sized) and
// large (delivery-sized) captures, and the soft-state re-arm churn pattern
// (schedule + cancel, the hot path of refresh timers).
//
// Part 2 drives the session farm at N in {1k, 10k, 100k} concurrent
// single-hop sessions for all five protocols, plus a 100k-session
// single-simulator stress row and a multi-hop farm row, reporting events/s
// and sessions/s.
//
// --quick shrinks the Ns for CI and always runs the determinism self-check:
// farm results must be bit-identical across thread counts AND shard sizes
// (exit 1 on mismatch).
//
// Usage: perf_scale [--quick] [--csv PATH] [--threads N]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/session_farm.hpp"
#include "exp/table.hpp"
#include "sim/event_queue.hpp"
#include "sim/reference_event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace sigcomp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------- event core --

/// Timer-sized capture: one pointer, like the engines' `[this]` lambdas.
struct SmallPayload {
  std::uint64_t* counter;
  void operator()() const { ++*counter; }
};

/// Delivery-sized capture: pointer + a wire-message-sized value, like the
/// channel's `[this, m]` delivery closures (40 bytes).
struct LargePayload {
  std::uint64_t* counter;
  std::uint64_t body[4] = {1, 2, 3, 4};
  void operator()() const { *counter += body[0]; }
};

/// Set false when any workload loses or invents callback executions; the
/// process exits nonzero so the CI smoke run catches event-core
/// regressions, not just determinism breaks.
bool g_core_ok = true;

void expect_fired(const char* workload, std::uint64_t got,
                  std::uint64_t want) {
  if (got != want) {
    std::cerr << workload << ": executed " << got << " callbacks, expected "
              << want << "\n";
    g_core_ok = false;
  }
}

/// Schedule `events` callbacks at random times, then pop-execute all.
/// Returns ops/second (one push + one pop per event).
template <typename Queue, typename Payload>
double flood_rate(std::size_t events) {
  Queue q;
  sim::Rng rng(7);
  std::uint64_t fired = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < events; ++i) {
    q.push(rng.uniform(0.0, 1000.0), Payload{&fired});
  }
  while (!q.empty()) q.pop().action();
  const double elapsed = seconds_since(start);
  expect_fired("flood", fired, events);
  return static_cast<double>(2 * events) / elapsed;
}

/// The classic DES "hold" pattern: steady-state depth, each round pops the
/// earliest event and schedules a successor.  Returns ops/second.
template <typename Queue>
double hold_rate(std::size_t depth, std::size_t rounds) {
  Queue q;
  sim::Rng rng(9);
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    q.push(rng.uniform(0.0, 100.0), SmallPayload{&fired});
  }
  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    auto event = q.pop();
    event.action();
    q.push(event.time + rng.uniform(0.0, 100.0), SmallPayload{&fired});
  }
  const double elapsed = seconds_since(start);
  while (!q.empty()) q.pop();  // drained without executing
  expect_fired("hold", fired, rounds);
  return static_cast<double>(2 * rounds) / elapsed;
}

/// The soft-state refresh pattern: `live` long-lived timers, each round
/// re-arms one (cancel + push at a later time).  Returns ops/second.
template <typename Queue>
double churn_rate(std::size_t live, std::size_t rounds) {
  Queue q;
  sim::Rng rng(11);
  std::uint64_t fired = 0;
  std::vector<decltype(q.push(0.0, SmallPayload{nullptr}))> ids;
  ids.reserve(live);
  for (std::size_t i = 0; i < live; ++i) {
    ids.push_back(q.push(rng.uniform(0.0, 100.0), SmallPayload{&fired}));
  }
  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t victim = r % live;
    q.cancel(ids[victim]);
    ids[victim] = q.push(100.0 + static_cast<double>(r) * 0.01 + rng.uniform(),
                         SmallPayload{&fired});
  }
  const double elapsed = seconds_since(start);
  while (!q.empty()) q.pop();  // drained without executing
  expect_fired("churn", fired, 0);  // every timer was cancelled or drained
  return static_cast<double>(2 * rounds) / elapsed;
}

/// Ratio of pooled-queue to reference-queue throughput per workload.
double add_core_row(exp::Table& table, const std::string& name, double pooled,
                    double reference) {
  const double speedup = pooled / reference;
  table.add_row({name, reference, pooled, speedup});
  return speedup;
}

double bench_event_core(exp::Table& table, bool quick) {
  const std::size_t flood = quick ? 100000 : 1000000;
  const std::size_t live = 10000;
  const std::size_t rounds = quick ? 200000 : 2000000;
  const std::size_t hold_depth = quick ? 10000 : 100000;

  add_core_row(table, "flood, timer-sized capture",
               flood_rate<sim::EventQueue, SmallPayload>(flood),
               flood_rate<sim::ReferenceEventQueue, SmallPayload>(flood));
  add_core_row(table, "flood, delivery-sized capture",
               flood_rate<sim::EventQueue, LargePayload>(flood),
               flood_rate<sim::ReferenceEventQueue, LargePayload>(flood));
  add_core_row(table, "hold, steady depth",
               hold_rate<sim::EventQueue>(hold_depth, rounds),
               hold_rate<sim::ReferenceEventQueue>(hold_depth, rounds));
  // The headline workload: the soft-state refresh/backoff timer churn that
  // dominates every protocol simulation (see ISSUE/PR notes).
  return add_core_row(table, "re-arm churn (cancel-heavy)",
                      churn_rate<sim::EventQueue>(live, rounds),
                      churn_rate<sim::ReferenceEventQueue>(live, rounds));
}

// -------------------------------------------------------- session farm --

exp::SessionFarmOptions farm_options(std::size_t sessions,
                                     exp::ParallelSweep* engine) {
  exp::SessionFarmOptions options;
  options.seed = 42;
  options.sessions = sessions;
  // Arrival window = N/rate = 30 s against a 60 s mean lifetime: most of
  // the N sessions are in flight at once in steady state.
  options.arrival_rate = static_cast<double>(sessions) / 30.0;
  options.session_lifetime = 60.0;
  options.engine = engine;
  return options;
}

void bench_farm(exp::Table& table, std::size_t sessions,
                exp::ParallelSweep& engine) {
  for (const ProtocolKind kind : kAllProtocols) {
    const auto start = Clock::now();
    const exp::SessionFarmResult result =
        run_session_farm(kind, SingleHopParams::kazaa_defaults(),
                         farm_options(sessions, &engine));
    const double elapsed = seconds_since(start);
    table.add_row({"single-hop " + std::string(to_string(kind)),
                   static_cast<double>(sessions),
                   static_cast<double>(result.peak_sessions_in_flight),
                   static_cast<double>(result.events_executed), elapsed,
                   static_cast<double>(result.events_executed) / elapsed,
                   static_cast<double>(result.sessions) / elapsed,
                   result.summary.mean.inconsistency});
  }
}

void bench_farm_stress(exp::Table& table, std::size_t sessions,
                       exp::ParallelSweep& engine) {
  // One Simulator hosting every session: the true "N concurrent sessions
  // in one event queue" stress.  peak_sessions_in_flight is exact here.
  exp::SessionFarmOptions options = farm_options(sessions, &engine);
  options.shard_size = sessions;
  const auto start = Clock::now();
  const exp::SessionFarmResult result =
      run_session_farm(ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(),
                       options);
  const double elapsed = seconds_since(start);
  table.add_row({"one-sim stress SS+RT", static_cast<double>(sessions),
                 static_cast<double>(result.peak_sessions_in_flight),
                 static_cast<double>(result.events_executed), elapsed,
                 static_cast<double>(result.events_executed) / elapsed,
                 static_cast<double>(result.sessions) / elapsed,
                 result.summary.mean.inconsistency});
}

void bench_farm_multihop(exp::Table& table, std::size_t sessions,
                         exp::ParallelSweep& engine) {
  MultiHopParams params;
  params.hops = 4;
  const auto start = Clock::now();
  const exp::SessionFarmResult result =
      run_session_farm(ProtocolKind::kSSRT, params,
                       farm_options(sessions, &engine));
  const double elapsed = seconds_since(start);
  table.add_row({"multi-hop SS+RT K=4", static_cast<double>(sessions),
                 static_cast<double>(result.peak_sessions_in_flight),
                 static_cast<double>(result.events_executed), elapsed,
                 static_cast<double>(result.events_executed) / elapsed,
                 static_cast<double>(result.sessions) / elapsed,
                 result.summary.mean.inconsistency});
}

// ---------------------------------------------------------- self-check --

bool summaries_identical(const exp::SessionFarmResult& a,
                         const exp::SessionFarmResult& b) {
  return a.summary.mean.inconsistency == b.summary.mean.inconsistency &&
         a.summary.mean.message_rate == b.summary.mean.message_rate &&
         a.summary.mean.raw_message_rate == b.summary.mean.raw_message_rate &&
         a.summary.mean.session_length == b.summary.mean.session_length &&
         a.summary.inconsistency.half_width ==
             b.summary.inconsistency.half_width &&
         a.messages == b.messages && a.events_executed == b.events_executed &&
         a.receiver_timeouts == b.receiver_timeouts && a.horizon == b.horizon;
}

/// Farm determinism: results must not depend on thread count or shard size.
/// (events_executed and the peak do depend on the shard decomposition, so
/// the shard-size check compares the metric fields only.)
bool self_check(exp::Table& table) {
  exp::SessionFarmOptions base = farm_options(1500, nullptr);
  bool all_ok = true;

  base.threads = 1;
  base.shard_size = 512;
  const exp::SessionFarmResult serial = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), base);
  for (const std::size_t threads : {2, 8}) {
    exp::SessionFarmOptions opt = base;
    opt.threads = threads;
    const exp::SessionFarmResult parallel = run_session_farm(
        ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), opt);
    const bool ok = summaries_identical(serial, parallel);
    all_ok = all_ok && ok;
    table.add_row({"threads=" + std::to_string(threads) + " vs 1",
                   ok ? "identical" : "MISMATCH -- BUG"});
  }

  exp::SessionFarmOptions resharded = base;
  resharded.shard_size = 97;  // deliberately ragged
  const exp::SessionFarmResult other = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), resharded);
  const bool ok =
      serial.summary.mean.inconsistency == other.summary.mean.inconsistency &&
      serial.summary.mean.message_rate == other.summary.mean.message_rate &&
      serial.summary.inconsistency.half_width ==
          other.summary.inconsistency.half_width &&
      serial.messages == other.messages &&
      serial.receiver_timeouts == other.receiver_timeouts;
  all_ok = all_ok && ok;
  table.add_row(
      {"shard_size=97 vs 512", ok ? "identical" : "MISMATCH -- BUG"});
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--quick") quick = true;
    }
    const std::size_t threads = exp::threads_from_args(argc, argv);
    exp::ParallelSweep engine(threads);

    exp::Table core("event core: pooled EventQueue vs pre-refactor reference "
                    "(ops/s; one push+pop or cancel+push per op pair)",
                    {"workload", "reference ops/s", "pooled ops/s", "speedup"});
    const double churn_speedup = bench_event_core(core, quick);
    core.print(std::cout);
    std::cout << '\n';

    exp::Table farm("session farm scale (single-hop sessions per protocol)",
                    {"workload", "sessions", "peak in flight", "events",
                     "seconds", "events/s", "sessions/s", "I (mean)"});
    const std::vector<std::size_t> ns =
        quick ? std::vector<std::size_t>{200, 1000}
              : std::vector<std::size_t>{1000, 10000, 100000};
    for (const std::size_t n : ns) bench_farm(farm, n, engine);
    // 120k sessions against a 30 s arrival window and 60 s lifetimes puts
    // the peak above 100k sessions concurrently inside ONE simulator.
    bench_farm_stress(farm, quick ? 2000 : 120000, engine);
    bench_farm_multihop(farm, quick ? 200 : 10000, engine);
    farm.print(std::cout);
    std::cout << '\n';

    exp::Table check("determinism self-check (SS, 1500 sessions)",
                     {"comparison", "result"});
    const bool deterministic = self_check(check);
    check.print(std::cout);
    std::cout << "\nevent-core speedup on the soft-state churn workload: "
              << churn_speedup << "x\n";

    const std::string csv = exp::csv_path_from_args(argc, argv);
    if (!csv.empty()) {
      core.write_csv_file(csv);
      farm.write_csv_file(csv + ".farm.csv");
    }
    return (deterministic && g_core_ok) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "perf_scale: " << e.what() << '\n';
    return 2;
  }
}
