// A fully wired signaling tree: the sender at the root, relays at interior
// nodes, receivers at the leaves, with per-edge bidirectional channels,
// sinks connected, and optional per-edge tracing.  One builder shared by
// the tree harness (protocols/tree_run.cpp), the chain adapter
// (protocols/chain.hpp, the fan-out-1 special case) and the session farm
// (exp/session_farm.cpp), so topology and wiring can never drift between
// them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "core/topology.hpp"
#include "protocols/engine.hpp"
#include "protocols/multi_hop_node.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sigcomp::protocols {

/// Owns the tree's nodes and channels.  Edge e's two directions share the
/// link's loss and delay configuration; channel trace labels are "dn<e>"
/// (away from the root) and "up<e>" (toward the root) -- on a chain spec
/// these coincide with the historical per-hop labels.
class Topology {
 public:
  /// `edge_loss` and `edge_delay` must have exactly spec.edges() entries
  /// (and the spec at least one edge).  Both `channel_rng` and `node_rng`
  /// must outlive the topology.  Throws std::invalid_argument on an
  /// invalid spec or mismatched vectors.
  Topology(sim::Simulator& sim, sim::Rng& channel_rng, sim::Rng& node_rng,
           MechanismSet mech, const TimerSettings& timers,
           const TreeSpec& spec,
           const std::vector<sim::LossConfig>& edge_loss,
           const std::vector<sim::DelayConfig>& edge_delay,
           std::function<void()> on_change, sim::TraceLog* trace = nullptr);

  Topology(const Topology&) = delete;             ///< non-copyable
  Topology& operator=(const Topology&) = delete;  ///< non-copyable

  /// The tree being simulated.
  [[nodiscard]] const TreeSpec& spec() const noexcept { return spec_; }
  /// Non-root nodes (== edges).
  [[nodiscard]] std::size_t relays() const noexcept { return relays_.size(); }
  /// The root node.
  [[nodiscard]] TreeSender& sender() noexcept { return *sender_; }
  /// The root node (const).
  [[nodiscard]] const TreeSender& sender() const noexcept { return *sender_; }
  /// Relay i holds tree node i+1 (edge i's child endpoint).
  [[nodiscard]] TreeRelay& relay(std::size_t i) { return *relays_[i]; }
  /// Relay i (const).
  [[nodiscard]] const TreeRelay& relay(std::size_t i) const {
    return *relays_[i];
  }

  // --- Dynamic leaf membership (IGMP-style churn) ---------------------
  //
  // Every leaf starts joined (the static tree).  join()/leave() maintain
  // per-subtree active-leaf counts: an edge is active while its subtree
  // contains at least one joined leaf, and the nodes' per-child activity
  // flags mirror that.  A join grafts: every newly activated edge has its
  // parent re-install whatever copy it still caches (state flows down the
  // path only where missing).  A leave prunes: the deeper dead edges are
  // deactivated silently and the prune point applies the protocol's own
  // removal semantics (nothing for timeout-pruned soft state, a
  // best-effort or reliable removal otherwise).

  /// Outcome of a join: the edges that switched from inactive to active,
  /// in root-to-leaf order (empty when the path was already live).
  struct GraftResult {
    std::vector<std::size_t> activated_edges;  ///< newly active, shallow first
  };

  /// Outcome of a leave: the edges that switched to inactive, in
  /// root-to-leaf order.  Never empty (the leaf's own edge always dies);
  /// the first entry is the prune point, where removal is signaled.
  struct PruneResult {
    std::vector<std::size_t> pruned_edges;  ///< newly inactive, shallow first
    /// The shallowest pruned edge (== pruned_edges.front()).
    [[nodiscard]] std::size_t prune_edge() const { return pruned_edges.front(); }
  };

  /// Joins leaf node `leaf` and grafts state down the reactivated path
  /// segment.  Throws std::invalid_argument when `leaf` is not a leaf or is
  /// already joined.
  GraftResult join(std::size_t leaf);

  /// Leaf node `leaf` departs; dead edges are pruned (see above).  Throws
  /// std::invalid_argument when `leaf` is not a joined leaf.
  PruneResult leave(std::size_t leaf);

  /// True while leaf node `leaf` is joined.  Throws std::invalid_argument
  /// when `leaf` is not a leaf.
  [[nodiscard]] bool leaf_active(std::size_t leaf) const;

  /// Number of currently joined leaves.
  [[nodiscard]] std::size_t active_leaf_count() const noexcept {
    return active_leaves_;
  }

  /// Re-installs edge e's parent-side cached copy down the edge (the
  /// crash-recovery repair path: after relay e recovers, its parent
  /// re-sends whatever value it still holds, reliably when the protocol's
  /// triggers are reliable).  A no-op when the parent holds no copy.
  void regraft_edge(std::size_t e) { graft_edge(e); }

  /// True when `node` should hold state: it lies on the path to some joined
  /// leaf (or is one).  The root is always required.  Detached nodes whose
  /// copy lingers are the orphan window the churn metrics measure.
  [[nodiscard]] bool node_required(std::size_t node) const {
    return node == 0 || active_below_[node] > 0;
  }

  /// Messages handed to edge e's channels (both directions).
  [[nodiscard]] std::uint64_t edge_messages_sent(std::size_t e) const noexcept;

  /// Messages handed to all channels of the tree.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept;

  /// Soft-state timeout expirations summed across relays.
  [[nodiscard]] std::uint64_t relay_timeouts() const noexcept;

  /// Silently tears the whole tree down (TreeSender/TreeRelay::stop):
  /// state cleared, timers cancelled, nothing signaled.
  void stop();

 private:
  /// Routes graft/prune/deactivate calls to edge e's parent node (the
  /// sender for root children, a relay otherwise).
  void graft_edge(std::size_t e);
  void prune_edge_at(std::size_t e);
  void deactivate_edge(std::size_t e);

  TreeSpec spec_;
  std::vector<std::unique_ptr<MessageChannel>> down_;  ///< e: parent -> child
  std::vector<std::unique_ptr<MessageChannel>> up_;    ///< e: child -> parent
  std::unique_ptr<TreeSender> sender_;
  std::vector<std::unique_ptr<TreeRelay>> relays_;
  std::vector<std::size_t> child_index_;   ///< e's slot in its parent's list
  std::vector<std::size_t> active_below_;  ///< joined leaves per subtree
  std::vector<char> leaf_joined_;          ///< per node; nonzero for joined leaves
  std::size_t active_leaves_ = 0;
};

}  // namespace sigcomp::protocols
