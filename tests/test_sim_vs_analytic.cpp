// Integration tests: the discrete-event simulator, configured with the
// analytic model's own assumptions (exponential timers, exponential channel
// delay), must converge to the Markov model's predictions -- the strongest
// end-to-end check that both implementations encode the same protocols.
//
// With deterministic timers the paper reports ~1% absolute difference in I
// and 5-15% in M (Sec. III-A.3 / Figs. 11-12); we check those bands too.
#include <gtest/gtest.h>

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/single_hop_run.hpp"

namespace sigcomp {
namespace {

class SimVsAnalytic : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SimVsAnalytic, ExponentialDelayMatchesModel) {
  // Exponential channel delay (the model's assumption) with deterministic
  // protocol timers: the closest apples-to-apples configuration a real
  // protocol can run.  Note the model's *timer* exponentiality cannot be
  // simulated faithfully: a memoryless timeout timer races the refresh
  // stream and fires with probability ~R/(R+T) per refresh even without
  // loss, which the model abstracts into the (tiny) lambda_F term -- see
  // MemorylessTimeoutArtifact below.
  const ProtocolKind kind = GetParam();
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const Metrics model = analytic::evaluate_single_hop(kind, params);

  protocols::SimOptions options;
  options.sessions = 400;
  options.seed = 1234;
  options.timer_dist = sim::Distribution::kDeterministic;
  options.delay_model = sim::DelayModel::kExponential;
  const protocols::ReplicatedResult sim =
      protocols::run_single_hop_replicated(kind, params, options, 8);

  const double i_tolerance =
      std::max(3.0 * sim.inconsistency.half_width, 0.30 * model.inconsistency);
  EXPECT_NEAR(sim.inconsistency.mean, model.inconsistency, i_tolerance)
      << to_string(kind);

  const double m_tolerance =
      std::max(3.0 * sim.message_rate.half_width, 0.20 * model.message_rate);
  EXPECT_NEAR(sim.message_rate.mean, model.message_rate, m_tolerance)
      << to_string(kind);
}

TEST(SimVsAnalyticArtifacts, MemorylessTimeoutArtifact) {
  // The analytic model assumes exponentially distributed timers but models
  // false removal separately (lambda_F = pl^(T/R)/T).  Running a *real*
  // soft-state receiver with a memoryless timeout races the timer against
  // refreshes: with R = 5 and T = 15 the timeout wins a race with
  // probability (1/T)/(1/T + 1/R) = 25%, so state thrashes regardless of
  // loss.  This is why deployed protocols use deterministic timers, and why
  // the paper's deterministic-timer simulation (not an exponential-timer
  // one) validates the model.
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const Metrics model = analytic::evaluate_single_hop(ProtocolKind::kSS, params);

  protocols::SimOptions options;
  options.sessions = 300;
  options.seed = 5;
  options.timer_dist = sim::Distribution::kExponential;
  const protocols::SimResult sim =
      protocols::run_single_hop(ProtocolKind::kSS, params, options);

  EXPECT_GT(sim.metrics.inconsistency, 5.0 * model.inconsistency);
  EXPECT_GT(sim.receiver_timeouts, 10u * sim.sessions / 10u);
}

TEST_P(SimVsAnalytic, DeterministicTimersStayInPaperBands) {
  const ProtocolKind kind = GetParam();
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const Metrics model = analytic::evaluate_single_hop(kind, params);

  protocols::SimOptions options;
  options.sessions = 400;
  options.seed = 777;
  options.timer_dist = sim::Distribution::kDeterministic;
  const protocols::ReplicatedResult sim =
      protocols::run_single_hop_replicated(kind, params, options, 8);

  // Paper band: |I_sim - I_model| < 1% absolute (generously doubled).
  EXPECT_NEAR(sim.inconsistency.mean, model.inconsistency, 0.02)
      << to_string(kind);
  // Paper band: message rate differs 5-15%; allow up to 25%.
  EXPECT_NEAR(sim.message_rate.mean, model.message_rate,
              0.25 * model.message_rate)
      << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SimVsAnalytic,
                         ::testing::ValuesIn(kAllProtocols),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

class MultiHopSimVsAnalytic : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(MultiHopSimVsAnalytic, SimTracksModelShape) {
  const ProtocolKind kind = GetParam();
  MultiHopParams params = MultiHopParams::reservation_defaults();
  params.hops = 10;
  const analytic::MultiHopModel model(kind, params);

  protocols::MultiHopSimOptions options;
  options.duration = 30000.0;
  options.seed = 55;
  const protocols::MultiHopSimResult sim =
      protocols::run_multi_hop(kind, params, options);

  // End-to-end inconsistency within 35% relative (the sim's hop-by-hop
  // recovery is richer than the model's lumped approximation).
  EXPECT_NEAR(sim.metrics.inconsistency, model.inconsistency(),
              0.35 * model.inconsistency())
      << to_string(kind);

  // Per-hop inconsistency is within a factor band at the far end.
  const double model_far = model.hop_inconsistency(params.hops);
  const double sim_far = sim.hop_inconsistency.back();
  EXPECT_GT(sim_far, 0.4 * model_far) << to_string(kind);
  EXPECT_LT(sim_far, 1.8 * model_far) << to_string(kind);

  // Message rate within 40% (ACK accounting details differ).
  EXPECT_NEAR(sim.metrics.raw_message_rate, model.metrics().raw_message_rate,
              0.40 * model.metrics().raw_message_rate)
      << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(MultiHopProtocols, MultiHopSimVsAnalytic,
                         ::testing::ValuesIn(kMultiHopProtocols),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sigcomp
