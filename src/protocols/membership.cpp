#include "protocols/membership.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sigcomp::protocols {

void ChurnOptions::validate() const {
  if (!std::isfinite(leaf_lifetime) || !std::isfinite(rejoin_rate)) {
    throw std::invalid_argument("ChurnOptions: values must be finite");
  }
  if (leaf_lifetime < 0.0 || rejoin_rate < 0.0) {
    throw std::invalid_argument("ChurnOptions: values must be >= 0");
  }
}

double ChurnReport::mean_setup_latency() const noexcept {
  return completed_joins == 0
             ? 0.0
             : setup_latency_sum / static_cast<double>(completed_joins);
}

double ChurnReport::mean_orphan_window() const noexcept {
  return resolved_orphans == 0
             ? 0.0
             : orphan_window_sum / static_cast<double>(resolved_orphans);
}

double ChurnReport::mean_orphan_window_bound() const noexcept {
  const std::uint64_t orphans = resolved_orphans + pending_orphans;
  return orphans == 0 ? 0.0
                      : (orphan_window_sum + censored_orphan_window_sum) /
                            static_cast<double>(orphans);
}

void ChurnReport::absorb(const ChurnReport& other) noexcept {
  joins += other.joins;
  leaves += other.leaves;
  completed_joins += other.completed_joins;
  resolved_orphans += other.resolved_orphans;
  setup_latency_sum += other.setup_latency_sum;
  setup_latency_max = std::max(setup_latency_max, other.setup_latency_max);
  orphan_window_sum += other.orphan_window_sum;
  orphan_window_max = std::max(orphan_window_max, other.orphan_window_max);
  pending_joins += other.pending_joins;
  pending_orphans += other.pending_orphans;
  censored_orphan_window_sum += other.censored_orphan_window_sum;
}

MembershipController::MembershipController(sim::Simulator& sim,
                                           Topology& topology, sim::Rng& rng,
                                           const ChurnOptions& options,
                                           std::function<void()> changed)
    : MembershipController(sim, topology, rng, options, ScenarioOptions{},
                           nullptr, std::move(changed)) {}

MembershipController::MembershipController(
    sim::Simulator& sim, Topology& topology, sim::Rng& rng,
    const ChurnOptions& options, const ScenarioOptions& scenario,
    sim::Rng* scenario_rng, std::function<void()> changed)
    : sim_(sim),
      topology_(topology),
      rng_(rng),
      options_(options),
      scenario_(scenario),
      scenario_rng_(scenario_rng),
      arrival_(scenario.arrival, options.rejoin_rate),
      changed_(std::move(changed)) {
  options_.validate();
  scenario_.validate();
  if (scenario_.membership_processes() && scenario_rng_ == nullptr) {
    throw std::invalid_argument(
        "MembershipController: an active scenario needs a scenario rng");
  }
}

void MembershipController::start() {
  if (options_.enabled()) {
    // Leaves in increasing node order: the draw order is part of the
    // determinism contract.
    for (const std::size_t leaf : topology_.spec().leaves()) {
      schedule_leave(leaf);
    }
  }
  if (scenario_.shared_risk.enabled()) schedule_burst();
}

void MembershipController::schedule_leave(std::size_t leaf) {
  // Guarded on enabled() (not just called from enabled paths): with
  // shared-risk bursts driving leaves while iid churn is off,
  // leaf_lifetime is 0 and an unguarded draw would schedule an immediate
  // re-leave forever.
  if (!options_.enabled()) return;
  sim_.schedule_in(rng_.exponential(options_.leaf_lifetime),
                   [this, leaf] { do_leave(leaf); });
}

void MembershipController::schedule_join(std::size_t leaf) {
  if (scenario_.arrival.modulated()) {
    // Modulated rejoins draw from the dedicated scenario substream, so a
    // modulation-free run never touches it and replays the iid trace.
    const double delay = arrival_.next_delay(sim_.now(), *scenario_rng_);
    if (!std::isfinite(delay)) return;  // no further arrivals possible
    sim_.schedule_in(delay, [this, leaf] { do_join(leaf); });
    return;
  }
  if (options_.rejoin_rate <= 0.0) return;  // departed for good
  sim_.schedule_in(rng_.exponential(1.0 / options_.rejoin_rate),
                   [this, leaf] { do_join(leaf); });
}

void MembershipController::schedule_burst() {
  sim_.schedule_in(
      scenario_rng_->exponential(1.0 / scenario_.shared_risk.burst_rate),
      [this] { do_burst(); });
}

void MembershipController::do_burst() {
  if (finished_) return;
  // One shared-risk event: a uniformly drawn relay's whole subtree fails
  // its members at once -- every joined leaf below it leaves, in
  // increasing node order (the deterministic iteration order).
  const std::size_t failed_relay =
      scenario_rng_->uniform_int(topology_.relays());
  for (const std::size_t leaf : topology_.spec().leaves()) {
    if (!topology_.leaf_active(leaf)) continue;
    const std::vector<std::size_t> path = topology_.spec().path_edges(leaf);
    if (std::find(path.begin(), path.end(), failed_relay) == path.end()) {
      continue;
    }
    do_leave(leaf);
  }
  schedule_burst();
}

void MembershipController::do_leave(std::size_t leaf) {
  if (finished_) return;
  // A stale leave timer (the leaf already departed in a shared-risk burst)
  // is a no-op; without bursts the strict join/leave alternation keeps one
  // timer per leaf and this guard never fires.
  if (!topology_.leaf_active(leaf)) return;
  const Topology::PruneResult pruned = topology_.leave(leaf);
  ++report_.leaves;
  // A join whose setup never completed is abandoned by the departure.
  pending_joins_.erase(
      std::remove_if(pending_joins_.begin(), pending_joins_.end(),
                     [leaf](const PendingJoin& p) { return p.leaf == leaf; }),
      pending_joins_.end());
  // The orphan window of this leave covers every pruned relay still
  // holding a copy; branches that were already clean resolve instantly.
  Orphan orphan;
  orphan.at = sim_.now();
  for (const std::size_t e : pruned.pruned_edges) {
    if (topology_.relay(e).value()) orphan.relays.push_back(e);
  }
  if (orphan.relays.empty()) {
    ++report_.resolved_orphans;  // window of zero: nothing lingered
  } else {
    orphans_.push_back(std::move(orphan));
  }
  schedule_join(leaf);
  if (changed_) changed_();
}

void MembershipController::do_join(std::size_t leaf) {
  if (finished_) return;
  // Defensive mirror of the do_leave guard; the strict alternation keeps
  // at most one join in flight per leaf, so this never fires today.
  if (topology_.leaf_active(leaf)) return;
  const Topology::GraftResult graft = topology_.join(leaf);
  ++report_.joins;
  pending_joins_.push_back(PendingJoin{leaf, sim_.now()});
  // Re-grafted relays are wanted again: their copy stops being orphaned the
  // moment membership returns, resolving the windows that covered them.
  if (!graft.activated_edges.empty() && !orphans_.empty()) {
    for (std::size_t i = orphans_.size(); i-- > 0;) {
      Orphan& orphan = orphans_[i];
      for (const std::size_t e : graft.activated_edges) {
        orphan.relays.erase(
            std::remove(orphan.relays.begin(), orphan.relays.end(), e),
            orphan.relays.end());
      }
      if (orphan.relays.empty()) {
        const double window = sim_.now() - orphan.at;
        ++report_.resolved_orphans;
        report_.orphan_window_sum += window;
        report_.orphan_window_max = std::max(report_.orphan_window_max, window);
        orphans_.erase(orphans_.begin() +
                       static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  schedule_leave(leaf);
  if (changed_) changed_();
}

void MembershipController::on_state_change() {
  if (finished_) return;
  // Setup latency: a pending join completes when its leaf holds the
  // sender's current value.
  const auto sender_value = topology_.sender().value();
  if (sender_value) {
    for (std::size_t i = pending_joins_.size(); i-- > 0;) {
      const PendingJoin& pending = pending_joins_[i];
      if (topology_.relay(pending.leaf - 1).value() == sender_value) {
        const double latency = sim_.now() - pending.at;
        ++report_.completed_joins;
        report_.setup_latency_sum += latency;
        report_.setup_latency_max =
            std::max(report_.setup_latency_max, latency);
        pending_joins_.erase(pending_joins_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  // Orphan windows: a pruned branch resolves when its last lingering relay
  // copy is gone (timeout, removal delivery, or teardown).
  for (std::size_t i = orphans_.size(); i-- > 0;) {
    Orphan& orphan = orphans_[i];
    orphan.relays.erase(
        std::remove_if(orphan.relays.begin(), orphan.relays.end(),
                       [this](std::size_t e) {
                         return !topology_.relay(e).value().has_value();
                       }),
        orphan.relays.end());
    if (orphan.relays.empty()) {
      const double window = sim_.now() - orphan.at;
      ++report_.resolved_orphans;
      report_.orphan_window_sum += window;
      report_.orphan_window_max = std::max(report_.orphan_window_max, window);
      orphans_.erase(orphans_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void MembershipController::finish() {
  if (finished_) return;
  on_state_change();  // final sweep at the horizon
  finished_ = true;
  report_.pending_joins += pending_joins_.size();
  report_.pending_orphans += orphans_.size();
  // Right-censor the still-running orphan windows instead of dropping
  // them: each contributes its elapsed time, a lower bound on its eventual
  // length (see ChurnReport::mean_orphan_window_bound).
  for (const Orphan& orphan : orphans_) {
    report_.censored_orphan_window_sum += sim_.now() - orphan.at;
  }
  pending_joins_.clear();
  orphans_.clear();
}

}  // namespace sigcomp::protocols
