// Shared-relay sessions: the first inter-session workload of the farm.
//
// N farm sessions (the subscribers), living in arbitrary shards, install
// one piece of state each through a single shared relay session -- fan-in
// at the relay, per-subscriber refresh fan-out back down.  The pair of
// classes here is the protocol half of that workload; the transport half is
// the cross-shard fabric (exp/shard_ring.hpp), reached through a FabricSend
// callback so this layer never sees rings, shards or epochs:
//
//  * RelayClient rides inside a subscriber session.  On session start it
//    installs its value at the relay (TRIGGER), refreshes it on its own
//    timer (REFRESH), and announces its departure (REMOVE) when the
//    carrying session is absorbed.  It counts what the relay echoes back.
//  * SharedRelayHub IS the relay session.  Per subscriber it keeps a
//    StateSlot guarded by the protocol's soft-state timeout (the same
//    mechanism switches as every other node -- a mechanism set without
//    soft_timeout simply never expires), acknowledges installs, and runs
//    one periodic fan-out process that re-echoes every held value to its
//    subscriber.  It completes deterministically when every subscriber's
//    REMOVE has been delivered -- the fabric is lossless, so completion is
//    a function of the subscribers' end times alone.
//
// Determinism: both sides draw every timer from the dedicated
// rng::kSessionRelay substream of their own session's seed family, so
// enabling shared relays perturbs no other stream, and a zero-relay run
// never touches stream 8 at all.  Fan-out iterates subscribers in ascending
// index order; message arrival order is the fabric's stamped total order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "protocols/message.hpp"
#include "protocols/state_slot.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace sigcomp::protocols {

/// How relay-layer endpoints emit into the cross-shard fabric: destination
/// session (GLOBAL index) plus the wire message.  The farm binds this to a
/// stamped ring push.
using FabricSend = std::function<void(std::uint64_t, const Message&)>;

/// Subscriber-side endpoint of a shared relay (rides inside a farm session).
class RelayClient {
 public:
  /// `rng` must outlive the client (the session's kSessionRelay stream).
  /// `send` delivers into the fabric; `relay` is the relay session's global
  /// index.
  RelayClient(sim::Simulator& sim, sim::Rng& rng, const TimerSettings& timers,
              std::uint64_t relay, FabricSend send);

  RelayClient(const RelayClient&) = delete;             ///< non-copyable
  RelayClient& operator=(const RelayClient&) = delete;  ///< non-copyable

  /// Installs at the relay and starts the refresh process (call from the
  /// carrying session's begin()).
  void start(std::int64_t value);

  /// Announces departure (REMOVE) and stops refreshing (call from the
  /// carrying session's completion; safe to call without start()).
  void stop();

  /// A message echoed back by the relay (ACK-TRIGGER or fan-out REFRESH).
  void handle(const Message& msg);

  /// Messages this client sent into the fabric (install + refreshes +
  /// remove) -- folded into the carrying session's message counts.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }

  /// Relay echoes received (ACKs plus fan-out refreshes).
  [[nodiscard]] std::uint64_t echoes() const noexcept { return echoes_; }

 private:
  void schedule_refresh();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  TimerSettings timers_;
  std::uint64_t relay_;
  FabricSend send_;
  std::int64_t value_ = 0;
  bool active_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t echoes_ = 0;
  std::optional<sim::EventId> refresh_event_;
};

/// The relay session: per-subscriber soft state, install fan-in, periodic
/// per-subscriber refresh fan-out.
class SharedRelayHub {
 public:
  /// `subscribers` lists the subscriber sessions' global indices (the hub
  /// accepts messages only from them); `on_complete` fires when the last
  /// subscriber's REMOVE arrives.  `rng` is the relay session's
  /// kSessionRelay stream; `mech`/`timers` are the run's protocol switches
  /// -- soft-state expiry at the hub exists exactly when the protocol has
  /// soft_timeout.
  SharedRelayHub(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
                 const TimerSettings& timers,
                 std::vector<std::uint64_t> subscribers, FabricSend send,
                 std::function<void()> on_complete);

  SharedRelayHub(const SharedRelayHub&) = delete;             ///< non-copyable
  SharedRelayHub& operator=(const SharedRelayHub&) = delete;  ///< non-copyable

  /// Starts the fan-out refresh process (the relay session's begin()).
  void begin();

  /// A fabric message from subscriber `source` (global index).  Unknown
  /// sources are counted and dropped -- the farm never routes one, but the
  /// hub does not trust its transport.
  void handle(std::uint64_t source, const Message& msg);

  /// True once every subscriber has departed.
  [[nodiscard]] bool complete() const noexcept {
    return departed_ == subscribers_.size();
  }

  /// Time-weighted mean, over [start, end], of the fraction of engaged
  /// subscribers (installed once, not yet departed) whose slot sits empty
  /// after a soft-state expiry -- the relay-side inconsistency measure.
  [[nodiscard]] double missing_fraction(double end) const {
    return subscribers_.empty()
               ? 0.0
               : missing_weight_.mean(end) /
                     static_cast<double>(subscribers_.size());
  }

  [[nodiscard]] std::uint64_t installs() const noexcept { return installs_; }
  [[nodiscard]] std::uint64_t refreshes() const noexcept { return refreshes_; }
  /// Soft-state expirations across every subscriber slot.
  [[nodiscard]] std::uint64_t soft_timeouts() const noexcept;
  /// Messages the hub sent into the fabric (ACKs + fan-out refreshes).
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  /// Messages from unknown sources, dropped.
  [[nodiscard]] std::uint64_t unknown_dropped() const noexcept {
    return unknown_dropped_;
  }

 private:
  /// One subscriber's state at the hub.  Lives in a deque: StateSlot is
  /// neither copyable nor movable, and deque emplacement never relocates.
  struct Sub {
    Sub(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
        const TimerSettings& timers, std::function<void()> on_expire)
        : slot(sim, rng, mech, timers, std::move(on_expire)) {}
    StateSlot slot;
    bool engaged = false;   ///< installed at least once, not yet departed
    bool departed = false;  ///< REMOVE received
    bool missing = false;   ///< engaged but slot empty (post-expiry)
  };

  void on_expire(std::size_t index);
  void set_missing(std::size_t index, bool missing);
  void schedule_fanout();
  /// Subscriber table index of global session `source`, or npos.
  [[nodiscard]] std::size_t index_of(std::uint64_t source) const;

  sim::Simulator& sim_;
  sim::Rng& rng_;
  TimerSettings timers_;
  std::vector<std::uint64_t> subscribers_;  ///< sorted global indices
  FabricSend send_;
  std::function<void()> on_complete_;
  std::deque<Sub> subs_;  ///< parallel to subscribers_

  std::size_t departed_ = 0;
  std::size_t missing_count_ = 0;
  std::uint64_t installs_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t unknown_dropped_ = 0;
  sim::TimeWeightedValue missing_weight_;  ///< integrates missing_count_
  std::optional<sim::EventId> fanout_event_;
};

}  // namespace sigcomp::protocols
