// Farm differential suite: the arena/shard-worker farm
// (src/exp/session_farm.cpp) against the preserved pre-arena reference
// (tests/reference_session_farm.cpp), diffed ELEMENT-WISE per session --
// every double of every session's Metrics compared bitwise, not just the
// aggregates -- across all five protocols x {single-hop, chain, tree}
// topologies x {1, 2, 8} threads x shard sizes {7, 64, 4096}, plus a
// churn+scenario configuration.  This is the lock on the rewrite's core
// claim: arenas, slot recycling, sliced execution and batched expiry
// delivery change WHERE sessions live and WHEN their events are popped,
// never what they compute.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/session_farm.hpp"
#include "protocols/membership.hpp"
#include "protocols/scenario.hpp"
#include "reference_session_farm.hpp"

namespace sigcomp::exp {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr std::size_t kShardSizes[] = {7, 64, 4096};

/// Small enough that the full matrix (and its TSan leg) stays fast, large
/// enough that every shard size in kShardSizes exercises a different
/// decomposition (72 sessions -> 11 shards of 7, 2 of 64, 1 of 4096).
constexpr std::size_t kSessions = 72;

SessionFarmOptions diff_farm() {
  SessionFarmOptions options;
  options.seed = 23;
  options.sessions = kSessions;
  options.arrival_rate = static_cast<double>(kSessions) / 12.0;
  options.session_lifetime = 20.0;
  options.threads = 1;
  options.keep_per_session = true;
  return options;
}

MultiHopParams diff_hop_params() {
  MultiHopParams params;
  params.loss = 0.02;
  params.delay = 0.01;
  params.update_rate = 1.0 / 15.0;
  return params;
}

/// Bitwise equality of two per-session metric vectors, element-wise: any
/// divergence names the first offending session and field.
void expect_sessions_identical(const std::vector<Metrics>& expected,
                               const std::vector<Metrics>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Metrics& e = expected[i];
    const Metrics& a = actual[i];
    EXPECT_EQ(e.inconsistency, a.inconsistency) << "session " << i;
    EXPECT_EQ(e.message_rate, a.message_rate) << "session " << i;
    EXPECT_EQ(e.raw_message_rate, a.raw_message_rate) << "session " << i;
    EXPECT_EQ(e.session_length, a.session_length) << "session " << i;
    EXPECT_EQ(e.breakdown.trigger, a.breakdown.trigger) << "session " << i;
    EXPECT_EQ(e.breakdown.refresh, a.breakdown.refresh) << "session " << i;
    EXPECT_EQ(e.breakdown.explicit_removal, a.breakdown.explicit_removal)
        << "session " << i;
    EXPECT_EQ(e.breakdown.reliable_trigger, a.breakdown.reliable_trigger)
        << "session " << i;
    EXPECT_EQ(e.breakdown.reliable_removal, a.breakdown.reliable_removal)
        << "session " << i;
  }
}

/// Everything except peak_sessions_in_flight, which the reference computes
/// as a summed-per-shard upper bound (exact only at a single shard) while
/// the production farm computes it exactly at any shard size -- the peak
/// lock tests below cover it.
void expect_farms_identical(const SessionFarmResult& reference,
                            const SessionFarmResult& arena) {
  expect_sessions_identical(reference.per_session, arena.per_session);
  EXPECT_EQ(reference.sessions, arena.sessions);
  EXPECT_EQ(reference.shards, arena.shards);
  EXPECT_EQ(reference.messages, arena.messages);
  EXPECT_EQ(reference.events_executed, arena.events_executed);
  EXPECT_EQ(reference.receiver_timeouts, arena.receiver_timeouts);
  EXPECT_EQ(reference.horizon, arena.horizon);
  EXPECT_EQ(reference.relay_crashes, arena.relay_crashes);
  EXPECT_EQ(reference.relay_recoveries, arena.relay_recoveries);
  EXPECT_TRUE(reference.churn == arena.churn);
  EXPECT_EQ(reference.summary.mean.inconsistency,
            arena.summary.mean.inconsistency);
  EXPECT_EQ(reference.summary.mean.message_rate,
            arena.summary.mean.message_rate);
  EXPECT_EQ(reference.summary.mean.session_length,
            arena.summary.mean.session_length);
}

/// Runs one protocol x topology cell of the matrix: the reference once per
/// shard size (its results are thread-invariant, locked elsewhere), the
/// arena farm at every thread count against it.
template <typename Params>
void diff_matrix_cell(ProtocolKind kind, const Params& params,
                      const SessionFarmOptions& base) {
  for (const std::size_t shard_size : kShardSizes) {
    SessionFarmOptions ref_options = base;
    ref_options.shard_size = shard_size;
    const SessionFarmResult reference =
        testing::run_reference_session_farm(kind, params, ref_options);
    ASSERT_EQ(reference.per_session.size(), base.sessions);
    for (const std::size_t threads : kThreadCounts) {
      SessionFarmOptions options = ref_options;
      options.threads = threads;
      const SessionFarmResult arena = run_session_farm(kind, params, options);
      SCOPED_TRACE(::testing::Message()
                   << to_string(kind) << " shard=" << shard_size
                   << " threads=" << threads);
      expect_farms_identical(reference, arena);
    }
  }
}

TEST(FarmDiff, SingleHopAllProtocolsAllShardSizesAllThreadCounts) {
  for (const ProtocolKind kind : kAllProtocols) {
    diff_matrix_cell(kind, SingleHopParams::kazaa_defaults(), diff_farm());
  }
}

TEST(FarmDiff, ChainAllProtocolsAllShardSizesAllThreadCounts) {
  MultiHopParams params = diff_hop_params();
  params.hops = 3;
  for (const ProtocolKind kind : kMultiHopProtocols) {
    diff_matrix_cell(kind, params, diff_farm());
  }
}

TEST(FarmDiff, TreeAllProtocolsAllShardSizesAllThreadCounts) {
  const analytic::TreeParams params =
      analytic::TreeParams::balanced(diff_hop_params(), 2, 2);
  for (const ProtocolKind kind : kMultiHopProtocols) {
    diff_matrix_cell(kind, params, diff_farm());
  }
}

TEST(FarmDiff, ChurnAndScenarioTreeMatchesReference) {
  // The full correlated-event stack at once: leaf churn, flash-crowd
  // rejoin storms, shared-risk leave bursts and relay crash/recovery --
  // every per-session substream in play.
  SessionFarmOptions base = diff_farm();
  base.leaf_churn.leaf_lifetime = 8.0;
  base.leaf_churn.rejoin_rate = 1.0 / 4.0;
  base.scenario.failure =
      protocols::FailureConfig::relay_crash(1.0 / 30.0, 4.0, 2.0);
  base.scenario.arrival = protocols::ArrivalConfig::flash_crowd(15.0, 1.0, 20.0);
  base.scenario.shared_risk = protocols::SharedRiskConfig::bursts(1.0 / 60.0);
  const analytic::TreeParams params =
      analytic::TreeParams::balanced(diff_hop_params(), 2, 2);
  diff_matrix_cell(ProtocolKind::kSSRT, params, base);
}

// ------------------------------------------------------- exact peak lock --

/// The peak fix: a single-shard farm's in-simulator peak is exact ground
/// truth, and the production farm's merged-interval sweep must reproduce it
/// at ANY shard size (where the reference's summed bound only exceeds it).
TEST(FarmDiff, ShardedPeakEqualsSingleShardTruthSingleHop) {
  SessionFarmOptions single = diff_farm();
  single.sessions = 150;
  single.arrival_rate = 150.0 / 12.0;
  single.shard_size = single.sessions;
  const SessionFarmResult truth = testing::run_reference_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), single);
  for (const std::size_t shard_size : kShardSizes) {
    SessionFarmOptions sharded = single;
    sharded.shard_size = shard_size;
    sharded.threads = 2;
    const SessionFarmResult arena = run_session_farm(
        ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), sharded);
    EXPECT_EQ(arena.peak_sessions_in_flight, truth.peak_sessions_in_flight)
        << "shard_size=" << shard_size;
  }
}

TEST(FarmDiff, ShardedPeakEqualsSingleShardTruthTree) {
  const analytic::TreeParams params =
      analytic::TreeParams::balanced(diff_hop_params(), 2, 2);
  SessionFarmOptions single = diff_farm();
  single.shard_size = single.sessions;
  const SessionFarmResult truth = testing::run_reference_session_farm(
      ProtocolKind::kSSRT, params, single);
  SessionFarmOptions sharded = single;
  sharded.shard_size = 7;
  sharded.threads = 2;
  const SessionFarmResult arena =
      run_session_farm(ProtocolKind::kSSRT, params, sharded);
  EXPECT_EQ(arena.peak_sessions_in_flight, truth.peak_sessions_in_flight);
}

}  // namespace
}  // namespace sigcomp::exp
