#include "protocols/membership.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sigcomp::protocols {

void ChurnOptions::validate() const {
  if (!std::isfinite(leaf_lifetime) || !std::isfinite(rejoin_rate)) {
    throw std::invalid_argument("ChurnOptions: values must be finite");
  }
  if (leaf_lifetime < 0.0 || rejoin_rate < 0.0) {
    throw std::invalid_argument("ChurnOptions: values must be >= 0");
  }
}

double ChurnReport::mean_setup_latency() const noexcept {
  return completed_joins == 0
             ? 0.0
             : setup_latency_sum / static_cast<double>(completed_joins);
}

double ChurnReport::mean_orphan_window() const noexcept {
  return resolved_orphans == 0
             ? 0.0
             : orphan_window_sum / static_cast<double>(resolved_orphans);
}

void ChurnReport::absorb(const ChurnReport& other) noexcept {
  joins += other.joins;
  leaves += other.leaves;
  completed_joins += other.completed_joins;
  resolved_orphans += other.resolved_orphans;
  setup_latency_sum += other.setup_latency_sum;
  setup_latency_max = std::max(setup_latency_max, other.setup_latency_max);
  orphan_window_sum += other.orphan_window_sum;
  orphan_window_max = std::max(orphan_window_max, other.orphan_window_max);
  pending_joins += other.pending_joins;
  pending_orphans += other.pending_orphans;
}

MembershipController::MembershipController(sim::Simulator& sim,
                                           Topology& topology, sim::Rng& rng,
                                           const ChurnOptions& options,
                                           std::function<void()> changed)
    : sim_(sim),
      topology_(topology),
      rng_(rng),
      options_(options),
      changed_(std::move(changed)) {
  options_.validate();
}

void MembershipController::start() {
  if (!options_.enabled()) return;
  // Leaves in increasing node order: the draw order is part of the
  // determinism contract.
  for (const std::size_t leaf : topology_.spec().leaves()) {
    schedule_leave(leaf);
  }
}

void MembershipController::schedule_leave(std::size_t leaf) {
  sim_.schedule_in(rng_.exponential(options_.leaf_lifetime),
                   [this, leaf] { do_leave(leaf); });
}

void MembershipController::schedule_join(std::size_t leaf) {
  if (options_.rejoin_rate <= 0.0) return;  // departed for good
  sim_.schedule_in(rng_.exponential(1.0 / options_.rejoin_rate),
                   [this, leaf] { do_join(leaf); });
}

void MembershipController::do_leave(std::size_t leaf) {
  if (finished_) return;
  const Topology::PruneResult pruned = topology_.leave(leaf);
  ++report_.leaves;
  // A join whose setup never completed is abandoned by the departure.
  pending_joins_.erase(
      std::remove_if(pending_joins_.begin(), pending_joins_.end(),
                     [leaf](const PendingJoin& p) { return p.leaf == leaf; }),
      pending_joins_.end());
  // The orphan window of this leave covers every pruned relay still
  // holding a copy; branches that were already clean resolve instantly.
  Orphan orphan;
  orphan.at = sim_.now();
  for (const std::size_t e : pruned.pruned_edges) {
    if (topology_.relay(e).value()) orphan.relays.push_back(e);
  }
  if (orphan.relays.empty()) {
    ++report_.resolved_orphans;  // window of zero: nothing lingered
  } else {
    orphans_.push_back(std::move(orphan));
  }
  schedule_join(leaf);
  if (changed_) changed_();
}

void MembershipController::do_join(std::size_t leaf) {
  if (finished_) return;
  const Topology::GraftResult graft = topology_.join(leaf);
  ++report_.joins;
  pending_joins_.push_back(PendingJoin{leaf, sim_.now()});
  // Re-grafted relays are wanted again: their copy stops being orphaned the
  // moment membership returns, resolving the windows that covered them.
  if (!graft.activated_edges.empty() && !orphans_.empty()) {
    for (std::size_t i = orphans_.size(); i-- > 0;) {
      Orphan& orphan = orphans_[i];
      for (const std::size_t e : graft.activated_edges) {
        orphan.relays.erase(
            std::remove(orphan.relays.begin(), orphan.relays.end(), e),
            orphan.relays.end());
      }
      if (orphan.relays.empty()) {
        const double window = sim_.now() - orphan.at;
        ++report_.resolved_orphans;
        report_.orphan_window_sum += window;
        report_.orphan_window_max = std::max(report_.orphan_window_max, window);
        orphans_.erase(orphans_.begin() +
                       static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  schedule_leave(leaf);
  if (changed_) changed_();
}

void MembershipController::on_state_change() {
  if (finished_) return;
  // Setup latency: a pending join completes when its leaf holds the
  // sender's current value.
  const auto sender_value = topology_.sender().value();
  if (sender_value) {
    for (std::size_t i = pending_joins_.size(); i-- > 0;) {
      const PendingJoin& pending = pending_joins_[i];
      if (topology_.relay(pending.leaf - 1).value() == sender_value) {
        const double latency = sim_.now() - pending.at;
        ++report_.completed_joins;
        report_.setup_latency_sum += latency;
        report_.setup_latency_max =
            std::max(report_.setup_latency_max, latency);
        pending_joins_.erase(pending_joins_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  // Orphan windows: a pruned branch resolves when its last lingering relay
  // copy is gone (timeout, removal delivery, or teardown).
  for (std::size_t i = orphans_.size(); i-- > 0;) {
    Orphan& orphan = orphans_[i];
    orphan.relays.erase(
        std::remove_if(orphan.relays.begin(), orphan.relays.end(),
                       [this](std::size_t e) {
                         return !topology_.relay(e).value().has_value();
                       }),
        orphan.relays.end());
    if (orphan.relays.empty()) {
      const double window = sim_.now() - orphan.at;
      ++report_.resolved_orphans;
      report_.orphan_window_sum += window;
      report_.orphan_window_max = std::max(report_.orphan_window_max, window);
      orphans_.erase(orphans_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void MembershipController::finish() {
  if (finished_) return;
  on_state_change();  // final sweep at the horizon
  finished_ = true;
  report_.pending_joins += pending_joins_.size();
  report_.pending_orphans += orphans_.size();
  pending_joins_.clear();
  orphans_.clear();
}

}  // namespace sigcomp::protocols
