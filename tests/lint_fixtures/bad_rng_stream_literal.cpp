// Fixture: numeric-literal RNG stream IDs bypass the uniqueness-checked
// registry in core/rng_streams.hpp.
#include <cstdint>

namespace sigcomp::sim {
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;
};
}  // namespace sigcomp::sim

std::uint64_t replica_seed(std::uint64_t base, std::uint64_t point,
                           std::uint64_t replica);

namespace sigcomp::rng {
inline constexpr std::uint64_t kFixtureStream = 7;
}

class Harness {
 public:
  explicit Harness(std::uint64_t seed)
      : rng_channel_(seed, 100),                          // LINT[rng-stream-literal]
        rng_nodes_(replica_seed(seed, 0, 0), 101) {}      // LINT[rng-stream-literal]

 private:
  sigcomp::sim::Rng rng_channel_;
  sigcomp::sim::Rng rng_nodes_;
};

void locals(std::uint64_t seed) {
  sigcomp::sim::Rng direct(seed, 42);  // LINT[rng-stream-literal]
  (void)direct;
  // Must not fire: stream named through the registry.
  sigcomp::sim::Rng named(seed, sigcomp::rng::kFixtureStream);
  (void)named;
}
