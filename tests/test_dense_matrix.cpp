#include "markov/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace sigcomp::markov {
namespace {

TEST(DenseMatrix, DefaultConstructedIsEmpty) {
  const DenseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(DenseMatrix, SizedConstructorFills) {
  const DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(DenseMatrix, InitializerListLaysOutRowMajor) {
  const DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  EXPECT_THROW((DenseMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(DenseMatrix, IdentityHasOnesOnDiagonal) {
  const DenseMatrix id = DenseMatrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrix, AtChecksBounds) {
  DenseMatrix m(2, 2);
  EXPECT_NO_THROW((void)m.at(1, 1));
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  const DenseMatrix& cm = m;
  EXPECT_THROW((void)cm.at(2, 2), std::out_of_range);
}

TEST(DenseMatrix, RowSum) {
  const DenseMatrix m{{1.0, 2.0, 3.0}, {-1.0, 0.0, 1.0}};
  EXPECT_DOUBLE_EQ(m.row_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 0.0);
  EXPECT_THROW((void)m.row_sum(2), std::out_of_range);
}

TEST(DenseMatrix, MatrixVectorProduct) {
  const DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> y = m.multiply(std::vector<double>{1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DenseMatrix, MatrixVectorDimensionMismatchThrows) {
  const DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_THROW((void)m.multiply({1.0}), std::invalid_argument);
}

TEST(DenseMatrix, VectorMatrixProduct) {
  const DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> y = m.left_multiply({1.0, 2.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(y[1], 10.0);  // 1*2 + 2*4
}

TEST(DenseMatrix, LeftMultiplyDimensionMismatchThrows) {
  const DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_THROW((void)m.left_multiply({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(DenseMatrix, MatrixMatrixProduct) {
  const DenseMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const DenseMatrix b{{0.0, 1.0}, {1.0, 0.0}};
  const DenseMatrix ab = a.multiply(b);
  EXPECT_DOUBLE_EQ(ab(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 3.0);
}

TEST(DenseMatrix, MatrixProductDimensionMismatchThrows) {
  const DenseMatrix a(2, 3);
  const DenseMatrix b(2, 3);
  EXPECT_THROW((void)a.multiply(b), std::invalid_argument);
}

TEST(DenseMatrix, MultiplyByIdentityIsIdentityOperation) {
  const DenseMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.multiply(DenseMatrix::identity(2)), a);
  EXPECT_EQ(DenseMatrix::identity(2).multiply(a), a);
}

TEST(DenseMatrix, Transposed) {
  const DenseMatrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const DenseMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(DenseMatrix, ScaleInPlace) {
  DenseMatrix m{{1.0, -2.0}};
  m.scale(-3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
}

TEST(DenseMatrix, AddInPlace) {
  DenseMatrix a{{1.0, 2.0}};
  a.add(DenseMatrix{{10.0, 20.0}});
  EXPECT_DOUBLE_EQ(a(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 22.0);
  EXPECT_THROW(a.add(DenseMatrix(2, 2)), std::invalid_argument);
}

TEST(DenseMatrix, MaxAbs) {
  const DenseMatrix m{{1.0, -5.0}, {3.0, 2.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 5.0);
  EXPECT_DOUBLE_EQ(DenseMatrix(2, 2).max_abs(), 0.0);
}

TEST(DenseMatrix, StreamOutputShowsRows) {
  std::ostringstream os;
  os << DenseMatrix{{1.0, 2.0}};
  EXPECT_EQ(os.str(), "[1, 2]\n");
}

}  // namespace
}  // namespace sigcomp::markov
