// Direct linear solver (Gaussian elimination with partial pivoting).
//
// Used by the absorption-time computations, which require solving
// A * t = b for the restricted generator of a transient chain.
#pragma once

#include <vector>

#include "markov/dense_matrix.hpp"

namespace sigcomp::markov {

/// Solves A x = b by Gaussian elimination with partial pivoting.
///
/// Throws std::invalid_argument on dimension mismatch and
/// std::runtime_error when A is (numerically) singular.
[[nodiscard]] std::vector<double> solve_linear(DenseMatrix a, std::vector<double> b);

/// Solves x^T A = b^T, i.e. A^T x = b.
[[nodiscard]] std::vector<double> solve_linear_left(const DenseMatrix& a,
                                                    std::vector<double> b);

/// Residual infinity-norm ||A x - b||_inf; used by tests to validate solves.
[[nodiscard]] double residual_inf_norm(const DenseMatrix& a,
                                       const std::vector<double>& x,
                                       const std::vector<double>& b);

}  // namespace sigcomp::markov
