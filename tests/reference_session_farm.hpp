// Test-only reference copy of the pre-arena session farm.
//
// The production farm (src/exp/session_farm.cpp) places sessions in
// per-shard arenas, recycles slots and advances shards in slices through
// persistent workers.  This file preserves the original task-per-shard,
// unique_ptr-per-session implementation verbatim -- the
// `ReferenceEventQueue` pattern applied to the farm layer -- so the
// differential suite (test_farm_diff.cpp) can assert the arena rewrite is
// bit-identical, element-wise per session, at every thread count and shard
// size.
//
// Semantics preserved from the pre-arena farm, on purpose:
//  * `peak_sessions_in_flight` is the per-shard in-simulator peak SUMMED
//    over shards -- exact only at a single shard.  The peak-fix lock test
//    compares the production farm's exact merged peak against this
//    single-shard truth.
//  * arena_slot_high_water / arena_chunk_allocations stay zero (there is
//    no arena here).
#pragma once

#include "core/protocol.hpp"
#include "exp/session_farm.hpp"

namespace sigcomp::exp::testing {

/// Reference single-hop farm; same contract as exp::run_session_farm.
[[nodiscard]] SessionFarmResult run_reference_session_farm(
    ProtocolKind kind, const SingleHopParams& params,
    const SessionFarmOptions& options);

/// Reference multi-hop chain farm; same contract as exp::run_session_farm.
[[nodiscard]] SessionFarmResult run_reference_session_farm(
    ProtocolKind kind, const MultiHopParams& params,
    const SessionFarmOptions& options);

/// Reference tree farm; same contract as exp::run_session_farm.
[[nodiscard]] SessionFarmResult run_reference_session_farm(
    ProtocolKind kind, const analytic::TreeParams& params,
    const SessionFarmOptions& options);

}  // namespace sigcomp::exp::testing
