// Hashed timing-wheel backend for the pending-event set.
//
// The soft-state protocols are timer machines: the dominant operation mix is
// arm/cancel/re-arm churn of refresh timeouts that usually never fire.  The
// pooled 4-ary heap (event_queue.hpp) services that mix in O(log n); this
// backend makes it O(1) with the classic hashed-wheel design (Varghese &
// Lauck), while preserving the pinned (time, insertion-seq) pop order
// bit-for-bit:
//
//  * Pending events live in the same pooled-slot / free-list representation
//    as EventQueue (zero allocations and zero hash lookups in steady state;
//    cancellation is an O(1) generation check plus an O(1) intrusive-list
//    unlink).
//  * Each event is bucketed by tick = floor(time / tick).  Ticks inside the
//    wheel window hash into a power-of-two array of intrusive lists; ticks
//    beyond the window go to an overflow "far" list that is cascaded into
//    the wheel when it rotates past the old horizon.  An occupancy bitmap
//    makes "next non-empty bucket" a word-scan, and when the wheel drains
//    completely the clock jumps straight to the earliest far tick instead of
//    stepping through empty buckets.
//  * Exact pop order does NOT come from the buckets: when the wheel reaches
//    a tick, that bucket is drained into a small "due" heap ordered by the
//    exact same (time, seq) comparator as EventQueue.  Bucketing only
//    decides *when* an event enters the due heap, never how it is ordered,
//    so the pop sequence is the unique (time, seq)-sorted order of live
//    events -- identical to the heap backend, husks, ties and all.  The due
//    heap holds one bucket's worth of events (plus already-due pushes), so
//    its O(log n) cost is over a tiny n.
//
// The wheel geometry (tick duration, slot count) is a pure performance
// knob: any geometry yields the same pop stream, which is what the
// differential and golden-trace suites lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace sigcomp::sim {

/// Hashed timing wheel with the same interface, validation behavior and
/// observable pop order as EventQueue; O(1) arm/cancel/re-arm.
class TimingWheelQueue {
 public:
  /// Default bucket width in seconds.  Protocol timers in this codebase
  /// (refresh intervals, RTOs, holddowns) live in the 0.1 s -- 60 s range,
  /// so 50 ms buckets keep same-bucket collisions (the only source of due-
  /// heap work) rare without inflating the wheel's memory footprint.
  static constexpr Time kDefaultTickSeconds = 0.05;

  /// Default wheel size (power of two).  2048 x 50 ms = a 102.4 s window:
  /// wide enough that steady-state refresh timers never touch the far list.
  static constexpr std::size_t kDefaultWheelSlots = 2048;

  /// Constructs a wheel with the given bucket width and slot count.
  /// `tick_seconds` must be finite and positive; `wheel_slots` must be a
  /// power of two >= 2 (throws std::invalid_argument otherwise).  Geometry
  /// affects performance only, never pop order -- tests use tiny wheels to
  /// force far-list cascades through the same observable behavior.
  explicit TimingWheelQueue(Time tick_seconds = kDefaultTickSeconds,
                            std::size_t wheel_slots = kDefaultWheelSlots);

  /// Adds an event; `time` must be finite and `action` non-empty (throws
  /// std::invalid_argument otherwise, exactly like EventQueue::push).
  /// Returns a cancellation handle.  O(1); allocation-free once the pool
  /// has grown to the workload's high-water mark.
  EventId push(Time time, EventCallback action);

  /// Cancels a pending event in O(1); returns false if already
  /// executed/cancelled.  The slot (and its callback) are reclaimed
  /// immediately.  Events still in a wheel bucket or the far list are
  /// unlinked exactly (no garbage); only events already moved to the due
  /// heap leave a {time, seq} husk behind, reclaimed as in EventQueue.
  bool cancel(EventId id);

  /// True when no live event remains.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live (pending, uncancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Entries physically held by the due heap: live due events plus
  /// cancelled husks not yet reclaimed.  Compaction keeps this below
  /// max(2 * live-due, compaction threshold), the same bound EventQueue
  /// enforces on its single heap; tests assert it.
  [[nodiscard]] std::size_t heap_entries() const noexcept {
    return due_.size();
  }

  /// Slots in the pool (the high-water mark of concurrently pending
  /// events); free-list recycling keeps this flat under schedule/cancel
  /// churn -- tests assert no growth across millions of cycles.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }

  /// Number of live events currently hashed into wheel buckets.  Placement
  /// observability for tests (cascade assertions); advances performed by
  /// const observers may move events between regions.
  [[nodiscard]] std::size_t wheel_events() const noexcept {
    return wheel_count_;
  }

  /// Number of live events currently on the overflow far list (scheduled
  /// beyond the wheel horizon).  Placement observability for tests.
  [[nodiscard]] std::size_t far_events() const noexcept { return far_count_; }

  /// The configured bucket width in seconds.
  [[nodiscard]] Time tick_seconds() const noexcept { return tick_; }

  /// The configured wheel size (power of two).
  [[nodiscard]] std::size_t wheel_slots() const noexcept {
    return buckets_.size();
  }

  /// Time of the earliest live event.  Throws std::logic_error when empty.
  [[nodiscard]] Time next_time() const;

  /// An event handed back by pop().
  struct PoppedEvent {
    Time time;             ///< scheduled execution time
    EventCallback action;  ///< the callback to invoke
  };
  /// Pops and returns the earliest live event -- the (time, insertion-seq)
  /// minimum, exactly as EventQueue would.  Throws std::logic_error when
  /// empty.
  PoppedEvent pop();

  /// Extracts every live event with time <= `horizon` into `out` (appended),
  /// in exact pop order -- bit-identical to the sequence a pop() loop would
  /// yield.  Drained events remain LIVE (they count in size(), and cancel()
  /// still works on them) but are invisible to pop()/next_time()/
  /// peek_ready(); the caller must claim each one with take_drained() or put
  /// it back with requeue_drained() before resuming pop-driven execution.
  /// Amortizes due-heap pops on the batched-expiry hot path.
  void drain_due(Time horizon, std::vector<DrainedEvent>& out);

  /// Claims a drained event: moves its callback into `action`, releases the
  /// slot and returns true.  Returns false when the event was cancelled
  /// after the drain (the slot may have been reused by a newer push) --
  /// callers must skip such events.
  bool take_drained(const DrainedEvent& event, EventCallback& action);

  /// Returns a drained event to the pending set, restoring it to exactly
  /// the state it had before drain_due (same time, same seq, so the pop
  /// order is unchanged).  No-op when the event was cancelled after the
  /// drain.
  void requeue_drained(const DrainedEvent& event);

  /// Like next_time() but non-throwing: writes the earliest live event's
  /// time into `time` and returns true, or returns false when no live
  /// undrained event remains.
  [[nodiscard]] bool peek_ready(Time& time) const;

  /// Bounded peek for slice-horizon negotiation: writes the earliest
  /// pending time and returns true only when that time is <= `bound`.
  /// Where the unbounded peek_ready would rotate the wheel (cascade the far
  /// list, scan buckets) just to surface an event far in the future, this
  /// answers false straight from the tick cursor when every pending event
  /// provably lies past the bound -- the common case when many shards
  /// negotiate one epoch horizon and most are idle until later.  Exact by
  /// contract: a false return guarantees no pending event at or before
  /// `bound` (the fast path under-approximates by one tick to absorb
  /// floor-rounding in the tick map, never over-approximates).
  [[nodiscard]] bool peek_ready_within(Time bound, Time& time) const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  // Region tags for Slot::home (values above any real bucket index).
  static constexpr std::uint32_t kHomeDue = 0xfffffffeu;
  static constexpr std::uint32_t kHomeFar = 0xfffffffdu;
  // Extracted by drain_due: live, but in no region (no due-heap entry, no
  // list link) until take_drained or requeue_drained resolves it.
  static constexpr std::uint32_t kHomeDrained = 0xfffffffcu;
  // Same packed (seq, slot) geometry as EventQueue, so the due-heap
  // comparator is bit-identical.
  static constexpr unsigned kSlotBits = 26;
  static constexpr std::uint64_t kMaxSlots = 1ULL << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ULL << (64 - kSlotBits);
  // Ticks are clamped into +/- kTickClamp before the int64 cast.  Clamping
  // keeps the tick map total and monotone for every finite double; it can
  // only merge extreme times into one bucket, and bucketing never affects
  // pop order (the due heap orders exactly), so correctness is unaffected.
  static constexpr double kTickClamp = 4.0e18;  // < 2^62, headroom for +W

  struct Slot {
    EventCallback action;
    Time time = 0.0;
    std::uint64_t seq = 0;  ///< occupying event's seq; 0 = free
    std::uint32_t prev = kNoSlot;  ///< intrusive list link (bucket/far)
    std::uint32_t next = kNoSlot;  ///< intrusive list link; free-list link
    std::uint32_t home = kNoSlot;  ///< bucket index, kHomeDue or kHomeFar
  };

  struct HeapEntry {
    Time time;
    std::uint64_t packed;  ///< (seq << kSlotBits) | slot

    [[nodiscard]] std::uint64_t seq() const noexcept {
      return packed >> kSlotBits;
    }
    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(packed & (kMaxSlots - 1));
    }
  };

  /// Due-heap order: earlier time first, then insertion (seq) order --
  /// byte-for-byte the EventQueue comparator, which is what makes the two
  /// backends' pop streams identical.
  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.packed < b.packed;
  }

  [[nodiscard]] bool entry_live(const HeapEntry& e) const noexcept {
    return slots_[e.slot()].seq == e.seq();
  }

  /// Monotone clamped bucket index: floor(time / tick) as int64.
  [[nodiscard]] std::int64_t tick_of(Time t) const noexcept;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  // Intrusive-list plumbing over the slot pool.  `head` is a bucket head or
  // far_head_.  Const because the const wheel-advance path relinks nodes
  // (all touched state is mutable).
  void link_front(std::uint32_t& head, std::uint32_t slot) const noexcept;
  void unlink(std::uint32_t& head, std::uint32_t slot) const noexcept;

  // The wheel-advance machinery is const because rotating the wheel (moving
  // events between far list, buckets and due heap) reorganizes the internal
  // representation without changing any observable state; next_time() must
  // be able to drive it, mirroring EventQueue's mutable-heap drop_dead.
  void ensure_due() const;
  void advance() const;
  void drain_bucket(std::size_t bucket) const;
  void cascade_far() const;
  void place_in_wheel(std::uint32_t slot, std::int64_t tick) const;
  [[nodiscard]] std::size_t find_occupied_bucket() const noexcept;

  void due_push(Time time, std::uint64_t packed) const;
  void due_sift_up(std::size_t i) const noexcept;
  void due_sift_down(std::size_t i) const noexcept;
  void due_remove_front() const noexcept;
  void drop_dead() const noexcept;
  void compact();

  Time tick_;        ///< bucket width (seconds)
  double inv_tick_;  ///< 1 / tick_, hoisted off the push path

  // See the comment on ensure_due() for why the region state is mutable.
  mutable std::vector<HeapEntry> due_;       ///< 4-ary heap, exact order
  mutable std::vector<Slot> slots_;          ///< shared event pool
  mutable std::vector<std::uint32_t> buckets_;    ///< per-tick list heads
  mutable std::vector<std::uint64_t> occupancy_;  ///< bucket bitmap
  mutable std::uint32_t far_head_ = kNoSlot;      ///< overflow list head
  mutable std::int64_t cur_tick_ = -1;  ///< ticks <= this are due
  mutable std::int64_t horizon_ = 0;    ///< wheel covers (cur_tick_, horizon_]
  mutable std::size_t wheel_count_ = 0;
  mutable std::size_t far_count_ = 0;
  mutable std::size_t due_live_ = 0;

  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace sigcomp::sim
