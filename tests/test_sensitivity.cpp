#include "exp/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analytic/single_hop.hpp"

namespace sigcomp::exp {
namespace {

const SingleHopParams kDefaults = SingleHopParams::kazaa_defaults();

std::vector<Sensitivity> for_protocol(ProtocolKind kind) {
  return sensitivity_analysis(kind, kDefaults);
}

const Sensitivity& find(const std::vector<Sensitivity>& all,
                        std::string_view name) {
  for (const Sensitivity& s : all) {
    if (s.parameter == name) return s;
  }
  throw std::logic_error("parameter missing: " + std::string(name));
}

TEST(Sensitivity, ParameterListMatchesAnalysisOrder) {
  const auto names = sensitivity_parameters();
  const auto all = for_protocol(ProtocolKind::kSS);
  ASSERT_EQ(all.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(all[i].parameter, names[i]);
  }
}

TEST(Sensitivity, UnusedParametersReportZero) {
  const auto hs = for_protocol(ProtocolKind::kHS);
  EXPECT_DOUBLE_EQ(find(hs, "refresh_timer").inconsistency, 0.0);
  EXPECT_DOUBLE_EQ(find(hs, "refresh_timer").message_rate, 0.0);
  EXPECT_DOUBLE_EQ(find(hs, "timeout_timer").inconsistency, 0.0);

  const auto ss = for_protocol(ProtocolKind::kSS);
  EXPECT_DOUBLE_EQ(find(ss, "retrans_timer").inconsistency, 0.0);
  EXPECT_DOUBLE_EQ(find(ss, "false_signal_rate").inconsistency, 0.0);
}

TEST(Sensitivity, LossHurtsEveryProtocol) {
  for (const ProtocolKind kind : kAllProtocols) {
    EXPECT_GT(find(for_protocol(kind), "loss").inconsistency, 0.0)
        << to_string(kind);
  }
}

TEST(Sensitivity, DelayHurtsEveryProtocol) {
  for (const ProtocolKind kind : kAllProtocols) {
    EXPECT_GT(find(for_protocol(kind), "delay").inconsistency, 0.0)
        << to_string(kind);
  }
}

TEST(Sensitivity, LongerLifetimeImprovesConsistency) {
  // d I / d removal_rate > 0: faster removal (shorter sessions) hurts.
  for (const ProtocolKind kind : kAllProtocols) {
    EXPECT_GT(find(for_protocol(kind), "removal_rate").inconsistency, 0.0)
        << to_string(kind);
  }
}

TEST(Sensitivity, RefreshTimerDrivesSoftStateMessageBudget) {
  // Refreshes are ~80% of the message budget at defaults, so the elasticity
  // of M in R sits close to (but above) -1.
  for (const ProtocolKind kind :
       {ProtocolKind::kSS, ProtocolKind::kSSER}) {
    const double e = find(for_protocol(kind), "refresh_timer").message_rate;
    EXPECT_LT(e, -0.6) << to_string(kind);
    EXPECT_GT(e, -1.0) << to_string(kind);
  }
}

TEST(Sensitivity, OrphanWaitDominatesSsInconsistency) {
  // At defaults, SS inconsistency is mostly the orphan wait lambda_r * T:
  // the lifecycle rate and the timeout timer are the (nearly tied) top
  // knobs, each with elasticity near +0.6.
  const auto ss = for_protocol(ProtocolKind::kSS);
  const double timeout = find(ss, "timeout_timer").inconsistency;
  const double removal = find(ss, "removal_rate").inconsistency;
  EXPECT_GT(timeout, 0.4);
  EXPECT_GT(removal, 0.4);
  EXPECT_NEAR(timeout, removal, 0.15);
  const Sensitivity top = most_sensitive(ProtocolKind::kSS, kDefaults);
  EXPECT_TRUE(top.parameter == "timeout_timer" || top.parameter == "removal_rate")
      << top.parameter;
}

TEST(Sensitivity, RetransTimerMattersMostWhereItIsTheOnlyRepair) {
  const double hs = find(for_protocol(ProtocolKind::kHS), "retrans_timer").inconsistency;
  const double ssrt = find(for_protocol(ProtocolKind::kSSRT), "retrans_timer").inconsistency;
  EXPECT_GT(hs, 0.0);
  EXPECT_GT(hs, ssrt);  // Fig. 8(b): HS is the most Gamma-sensitive
}

TEST(Sensitivity, StepValidation) {
  EXPECT_THROW((void)sensitivity_analysis(ProtocolKind::kSS, kDefaults, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)sensitivity_analysis(ProtocolKind::kSS, kDefaults, 0.6),
               std::invalid_argument);
}

TEST(Sensitivity, ZeroValuedParameterReportsZero) {
  SingleHopParams p = kDefaults;
  p.update_rate = 0.0;
  const auto all = sensitivity_analysis(ProtocolKind::kSS, p);
  EXPECT_DOUBLE_EQ(find(all, "update_rate").inconsistency, 0.0);
}

TEST(Sensitivity, ElasticityApproximatesActualChange) {
  // Verify the elasticity against a direct 5% perturbation.
  const double e = find(for_protocol(ProtocolKind::kSSER), "loss").inconsistency;
  SingleHopParams p = kDefaults;
  p.loss *= 1.05;
  const double before =
      analytic::evaluate_single_hop(ProtocolKind::kSSER, kDefaults).inconsistency;
  const double after =
      analytic::evaluate_single_hop(ProtocolKind::kSSER, p).inconsistency;
  const double observed = (std::log(after) - std::log(before)) / std::log(1.05);
  EXPECT_NEAR(e, observed, 0.05 * std::abs(observed) + 0.01);
}

}  // namespace
}  // namespace sigcomp::exp
