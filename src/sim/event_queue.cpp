#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace sigcomp::sim {

namespace {

// Below this heap size, lazy deletion alone is cheap enough; compacting
// would just thrash on the tiny queues every protocol run starts with.
constexpr std::size_t kCompactionThreshold = 64;

}  // namespace

EventId EventQueue::push(Time time, std::function<void()> action) {
  if (!std::isfinite(time)) {
    throw std::invalid_argument("EventQueue::push: time must be finite");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue::push: empty action");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{time, seq});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  actions_.emplace(seq, std::move(action));
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  const auto it = actions_.find(id.value);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id.value);
  --live_;
  // Reclaim eagerly once dead entries outnumber live ones, so a
  // cancel-heavy run (soft-state refresh churn) holds O(live) memory
  // instead of O(cancelled).
  if (heap_.size() > kCompactionThreshold && heap_.size() - live_ > live_) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& entry) {
    return cancelled_.find(entry.seq) != cancelled_.end();
  });
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void EventQueue::drop_dead() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: queue empty");
  return heap_.front().time;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: queue empty");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  const auto it = actions_.find(top.seq);
  PoppedEvent out{top.time, std::move(it->second)};
  actions_.erase(it);
  --live_;
  return out;
}

}  // namespace sigcomp::sim
