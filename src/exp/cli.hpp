// Minimal command-line option parser for the sigcomp tools.
//
// Supports `--name value`, `--name=value`, boolean flags and positional
// arguments, with generated help text.  Self-contained (no dependencies)
// and unit-tested -- the CLI binary stays a thin shell over the library.
#pragma once

#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sigcomp::exp {

/// Declarative option set + parser.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a boolean flag (present/absent).
  void add_flag(std::string name, std::string description);

  /// Registers a value option with a default (shown in help).
  void add_option(std::string name, std::string description,
                  std::string default_value);

  /// Parses argv (argv[0] is skipped).  Returns false on any error; call
  /// error() for the message.  `--help` sets help_requested() and returns
  /// true without validating further.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// True when a flag was passed (flags only).
  [[nodiscard]] bool flag(std::string_view name) const;

  /// Value of an option (its default when not passed).
  [[nodiscard]] std::string get(std::string_view name) const;

  /// Value of an enumerated option; throws std::invalid_argument (with the
  /// allowed values in the message) when it is not one of `allowed`.
  /// Used for flags like `--loss-model {iid, ge}`.
  [[nodiscard]] std::string get_choice(
      std::string_view name,
      std::initializer_list<std::string_view> allowed) const;

  /// True when the user explicitly passed the option.
  [[nodiscard]] bool passed(std::string_view name) const;

  /// Numeric accessors; throw std::invalid_argument on malformed values.
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] long get_long(std::string_view name) const;

  /// Non-option arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Generated usage text.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    std::string description;
    std::string value;     // default, replaced when passed
    bool is_flag = false;
    bool seen = false;
  };

  [[nodiscard]] const Spec& require(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec, std::less<>> specs_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace sigcomp::exp
