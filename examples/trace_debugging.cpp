// Debugging a signaling exchange with the trace facility: run a short,
// deliberately lossy SS+RTR session and print the message-level audit
// trail (sends, drops, deliveries, session lifecycle).
//
// This is the workflow for investigating a protocol anomaly: reproduce it
// under a fixed seed, attach a TraceLog, and read the timeline.
#include <iostream>

#include "core/evaluator.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace sigcomp;

  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.loss = 0.25;              // deliberately terrible channel
  params.removal_rate = 1.0 / 40.0;  // short sessions keep the trace readable
  params.update_rate = 1.0 / 15.0;

  sim::TraceLog trace(1 << 16);
  protocols::SimOptions options;
  options.sessions = 2;
  options.seed = 20030825;  // SIGCOMM'03 :-)
  options.trace = &trace;

  const protocols::SimResult result =
      evaluate_simulated(ProtocolKind::kSSRTR, params, options);

  std::cout << "Two SS+RTR sessions over a 25%-loss channel "
            << "(seed " << options.seed << "):\n\n";
  trace.dump(std::cout);

  std::cout << "\nsummary: " << result.messages << " messages in "
            << result.total_time << " s simulated; "
            << trace.count(sim::TraceCategory::kDrop) << " drops; I = "
            << result.metrics.inconsistency << "\n\n"
            << "How to read it: every retransmitted TRIGGER follows a "
               "dropped TRIGGER or a dropped ACK-TRIGGER by one "
               "retransmission timer; the session absorbs once REMOVE and "
               "ACK-REMOVE both get through.\n";
  return 0;
}
