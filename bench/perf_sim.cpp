// Performance benchmarks of the discrete-event simulator and the parallel
// experiment engine: raw event-queue throughput, per-protocol simulation
// throughput, and the wall-clock scaling of ParallelSweep over a replicated
// simulation grid at 1/2/4/8 threads (with a bit-identity check of the
// parallel results against the serial run).  Self-contained chrono harness;
// no external benchmark dependency, so it builds everywhere the library does.
//
// Usage: perf_sim [--quick] [--csv PATH]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string_view>
#include <vector>

#include "core/evaluator.hpp"
#include "exp/parallel.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/single_hop_run.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sigcomp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void bench_event_queue(exp::Table& table, std::size_t events) {
  const auto start = Clock::now();
  sim::Simulator simulator;
  sim::Rng rng(1);
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < events; ++i) {
    simulator.schedule_in(rng.uniform(), [&fired] { ++fired; });
  }
  simulator.run();
  const double elapsed = seconds_since(start);
  table.add_row({"event queue churn", static_cast<double>(events), elapsed,
                 static_cast<double>(fired) / elapsed});
}

void bench_single_hop(exp::Table& table, std::size_t sessions) {
  for (const ProtocolKind kind : kAllProtocols) {
    protocols::SimOptions options;
    options.sessions = sessions;
    const auto start = Clock::now();
    const protocols::SimResult result =
        protocols::run_single_hop(kind, SingleHopParams::kazaa_defaults(), options);
    const double elapsed = seconds_since(start);
    table.add_row({"single-hop sim " + std::string(to_string(kind)),
                   static_cast<double>(result.sessions), elapsed,
                   static_cast<double>(result.sessions) / elapsed});
  }
}

void bench_multi_hop(exp::Table& table, double duration) {
  // Doubling chain lengths expose superlinear blowups in per-hop handling
  // (the old Google-Benchmark harness measured the same growth curve).
  for (const std::size_t hops : {2u, 4u, 8u, 16u}) {
    MultiHopParams params;
    params.hops = hops;
    protocols::MultiHopSimOptions options;
    options.duration = duration;
    const auto start = Clock::now();
    const protocols::MultiHopSimResult result =
        protocols::run_multi_hop(ProtocolKind::kSSRT, params, options);
    const double elapsed = seconds_since(start);
    table.add_row({"multi-hop sim SS+RT K=" + std::to_string(hops),
                   static_cast<double>(result.messages), elapsed,
                   static_cast<double>(result.messages) / elapsed});
  }
}

/// The scaling workload: a loss sweep of SS+RT, simulated with replicas.
std::vector<exp::MetricsSummary> run_grid(std::size_t threads,
                                          std::size_t sessions,
                                          std::size_t replications) {
  std::vector<SingleHopParams> grid;
  for (const double loss : exp::lin_space(0.0, 0.30, 16)) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.loss = loss;
    grid.push_back(p);
  }
  SimGridOptions options;
  options.sim.sessions = sessions;
  options.sim.seed = 42;
  options.replications = replications;
  options.threads = threads;
  return evaluate_grid_simulated(ProtocolKind::kSSRT, grid, options);
}

bool identical(const std::vector<exp::MetricsSummary>& a,
               const std::vector<exp::MetricsSummary>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-exact comparison: the engine's contract is that thread count
    // cannot change any output bit.
    if (a[i].mean.inconsistency != b[i].mean.inconsistency ||
        a[i].mean.message_rate != b[i].mean.message_rate ||
        a[i].mean.raw_message_rate != b[i].mean.raw_message_rate ||
        a[i].inconsistency.half_width != b[i].inconsistency.half_width) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") quick = true;
  }
  const std::size_t sessions = quick ? 60 : 300;
  const std::size_t replications = quick ? 4 : 8;

  exp::Table micro("simulator microbenchmarks",
                   {"benchmark", "items", "seconds", "items/s"});
  bench_event_queue(micro, quick ? 100000 : 1000000);
  bench_single_hop(micro, quick ? 40 : 200);
  bench_multi_hop(micro, quick ? 500.0 : 2000.0);
  micro.print(std::cout);
  std::cout << '\n';

  exp::Table scaling(
      "ParallelSweep scaling: 16-point loss sweep x " +
          std::to_string(replications) + " replicas of SS+RT (" +
          std::to_string(sessions) + " sessions each)",
      {"threads", "seconds", "speedup", "parallel == serial"});

  const auto serial_start = Clock::now();
  const auto serial = run_grid(1, sessions, replications);
  const double serial_time = seconds_since(serial_start);
  scaling.add_row({1.0, serial_time, 1.0, "yes (baseline)"});

  bool all_identical = true;
  for (const std::size_t threads : {2, 4, 8}) {
    const auto start = Clock::now();
    const auto parallel = run_grid(threads, sessions, replications);
    const double elapsed = seconds_since(start);
    const bool same = identical(serial, parallel);
    all_identical = all_identical && same;
    scaling.add_row({static_cast<double>(threads), elapsed,
                     serial_time / elapsed, same ? "yes" : "NO -- BUG"});
  }
  scaling.print(std::cout);
  std::cout << "\nhardware threads: " << exp::ThreadPool::default_thread_count()
            << " (speedup saturates there)\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) {
    micro.write_csv_file(csv);
    scaling.write_csv_file(csv + ".scaling.csv");
  }
  return all_identical ? 0 : 1;
}
