// Extension experiment: parameter elasticities at the default operating
// point.  "If I improve X by 1%, how much does inconsistency move?" --
// answers which knob each protocol actually depends on, complementing the
// paper's one-dimensional sweeps.
//
// Usage: ext_sensitivity [--csv PATH]
#include <iostream>

#include "exp/sensitivity.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  const SingleHopParams params = SingleHopParams::kazaa_defaults();

  exp::Table table(
      "Elasticities d(log I)/d(log param) at single-hop defaults "
      "(+1% in the parameter moves I by this many %)",
      {"parameter", "SS", "SS+ER", "SS+RT", "SS+RTR", "HS"});

  std::vector<std::vector<exp::Sensitivity>> per_protocol;
  for (const ProtocolKind kind : kAllProtocols) {
    per_protocol.push_back(exp::sensitivity_analysis(kind, params));
  }
  const auto names = exp::sensitivity_parameters();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<exp::Cell> row{names[i]};
    for (const auto& sensitivities : per_protocol) {
      row.emplace_back(sensitivities[i].inconsistency);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << '\n';
  exp::Table rates("Elasticities d(log M)/d(log param) (message rate)",
                   {"parameter", "SS", "SS+ER", "SS+RT", "SS+RTR", "HS"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<exp::Cell> row{names[i]};
    for (const auto& sensitivities : per_protocol) {
      row.emplace_back(sensitivities[i].message_rate);
    }
    rates.add_row(std::move(row));
  }
  rates.print(std::cout);

  std::cout << "\nReading: SS/SS+RT inconsistency rides on the timeout timer "
               "(orphan wait) and loss; HS and SS+RTR are loss/delay bound; "
               "every soft-state message budget is ~refresh-timer^-1.\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
