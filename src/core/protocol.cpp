#include "core/protocol.hpp"

namespace sigcomp {

MechanismSet mechanisms(ProtocolKind kind) noexcept {
  MechanismSet m;
  switch (kind) {
    case ProtocolKind::kSS:
      m.refresh = true;
      m.soft_timeout = true;
      break;
    case ProtocolKind::kSSER:
      m.refresh = true;
      m.soft_timeout = true;
      m.explicit_removal = true;
      break;
    case ProtocolKind::kSSRT:
      m.refresh = true;
      m.soft_timeout = true;
      m.reliable_trigger = true;
      m.removal_notification = true;
      break;
    case ProtocolKind::kSSRTR:
      m.refresh = true;
      m.soft_timeout = true;
      m.explicit_removal = true;
      m.reliable_trigger = true;
      m.reliable_removal = true;
      m.removal_notification = true;
      break;
    case ProtocolKind::kHS:
      m.explicit_removal = true;
      m.reliable_trigger = true;
      m.reliable_removal = true;
      m.removal_notification = true;
      m.external_failure_detector = true;
      break;
  }
  return m;
}

std::string_view to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kSS: return "SS";
    case ProtocolKind::kSSER: return "SS+ER";
    case ProtocolKind::kSSRT: return "SS+RT";
    case ProtocolKind::kSSRTR: return "SS+RTR";
    case ProtocolKind::kHS: return "HS";
  }
  return "?";
}

std::string_view describe(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kSS:
      return "pure soft-state (best-effort trigger + refresh, timeout removal)";
    case ProtocolKind::kSSER:
      return "soft-state with best-effort explicit removal";
    case ProtocolKind::kSSRT:
      return "soft-state with reliable triggers and removal notification";
    case ProtocolKind::kSSRTR:
      return "soft-state with reliable triggers and reliable removal";
    case ProtocolKind::kHS:
      return "hard-state (reliable setup/update/removal, external failure detector)";
  }
  return "?";
}

std::optional<ProtocolKind> parse_protocol(std::string_view name) noexcept {
  for (const ProtocolKind kind : kAllProtocols) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

bool is_soft_state(ProtocolKind kind) noexcept {
  return kind != ProtocolKind::kHS;
}

bool supports_multi_hop(ProtocolKind kind) noexcept {
  for (const ProtocolKind supported : kMultiHopProtocols) {
    if (kind == supported) return true;
  }
  return false;
}

}  // namespace sigcomp
