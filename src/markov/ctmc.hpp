// Continuous-time Markov chain builder.
//
// A chain is assembled incrementally: states are registered by name, then
// transition rates are added between them.  Adding a rate between the same
// pair of states twice accumulates (useful when several mechanisms contribute
// to the same transition, e.g. "refresh OR retransmission repairs the state").
//
// The builder produces the infinitesimal generator matrix Q, where
// Q(i,j) = rate i->j for i != j, and Q(i,i) = -sum_j!=i Q(i,j).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "markov/dense_matrix.hpp"

namespace sigcomp::markov {

/// Index of a state inside a Ctmc.  Plain size_t wrapped for readability.
using StateId = std::size_t;

/// A single directed transition with a positive rate.
struct Transition {
  StateId from = 0;
  StateId to = 0;
  double rate = 0.0;

  friend bool operator==(const Transition&, const Transition&) = default;
};

/// Incrementally-built continuous-time Markov chain.
class Ctmc {
 public:
  /// Registers a new state and returns its id.  Throws std::invalid_argument
  /// if the name is already taken or empty.
  StateId add_state(std::string name);

  /// Adds `rate` to the transition from -> to.  Rates must be positive and
  /// finite; self-loops are rejected.  Zero rates are ignored (convenient for
  /// "mechanism disabled" protocol configurations).
  void add_rate(StateId from, StateId to, double rate);

  [[nodiscard]] std::size_t num_states() const noexcept { return names_.size(); }

  /// Name of a state.  Throws std::out_of_range for an invalid id.
  [[nodiscard]] const std::string& name(StateId id) const;

  /// Looks a state up by name.
  [[nodiscard]] std::optional<StateId> find(std::string_view name) const;

  /// Total rate from -> to (0 when no transition exists).
  [[nodiscard]] double rate(StateId from, StateId to) const;

  /// Sum of outgoing rates of a state.
  [[nodiscard]] double exit_rate(StateId s) const;

  /// All transitions with positive rate, in insertion-independent
  /// (from, to)-sorted order.
  [[nodiscard]] std::vector<Transition> transitions() const;

  /// Infinitesimal generator matrix Q (square, row sums zero).
  [[nodiscard]] DenseMatrix generator() const;

  /// True when `target` is reachable from `source` through positive-rate
  /// transitions.
  [[nodiscard]] bool reachable(StateId source, StateId target) const;

  /// States with no outgoing transitions.
  [[nodiscard]] std::vector<StateId> absorbing_states() const;

 private:
  std::vector<std::string> names_;
  // Lookup-only index (never iterated, so hash order cannot leak into any
  // result -- exit_rate/generator sums run over the ordered rates_ maps).
  // sigcomp-lint: allow(unordered-container) by_name_ is find()-only; every
  // iterating accessor goes through names_ or rates_.
  std::unordered_map<std::string, StateId> by_name_;
  // rates_[from][to] = accumulated rate.  Ordered map: exit_rate() and
  // generator() accumulate doubles over it, and summation order must not
  // depend on a hash function for results to be bit-identical across
  // standard libraries.
  std::vector<std::map<StateId, double>> rates_;
};

}  // namespace sigcomp::markov
