#include "analytic/single_hop.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sigcomp::analytic {
namespace {

const SingleHopParams kDefaults = SingleHopParams::kazaa_defaults();

double total_stationary(const SingleHopModel& model) {
  double total = 0.0;
  for (const ShState s : kAllShStates) total += model.stationary(s);
  return total;
}

TEST(SingleHopModel, StateNamesMatchPaper) {
  EXPECT_EQ(to_string(ShState::kSetup1), "(1,0)1");
  EXPECT_EQ(to_string(ShState::kSetup2), "(1,0)2");
  EXPECT_EQ(to_string(ShState::kConsistent), "C");
  EXPECT_EQ(to_string(ShState::kUpdate1), "IC1");
  EXPECT_EQ(to_string(ShState::kUpdate2), "IC2");
  EXPECT_EQ(to_string(ShState::kRemoval1), "(0,1)1");
  EXPECT_EQ(to_string(ShState::kRemoval2), "(0,1)2");
  EXPECT_EQ(to_string(ShState::kAbsorbed), "(0,0)");
}

TEST(SingleHopModel, Removal2ExistsOnlyWithExplicitRemoval) {
  EXPECT_FALSE(SingleHopModel(ProtocolKind::kSS, kDefaults).has_removal2());
  EXPECT_FALSE(SingleHopModel(ProtocolKind::kSSRT, kDefaults).has_removal2());
  EXPECT_TRUE(SingleHopModel(ProtocolKind::kSSER, kDefaults).has_removal2());
  EXPECT_TRUE(SingleHopModel(ProtocolKind::kSSRTR, kDefaults).has_removal2());
  EXPECT_TRUE(SingleHopModel(ProtocolKind::kHS, kDefaults).has_removal2());
}

TEST(SingleHopModel, TransientChainStateCounts) {
  EXPECT_EQ(SingleHopModel(ProtocolKind::kSS, kDefaults).transient_chain().num_states(), 7u);
  EXPECT_EQ(SingleHopModel(ProtocolKind::kSSER, kDefaults).transient_chain().num_states(), 8u);
  EXPECT_EQ(SingleHopModel(ProtocolKind::kHS, kDefaults).transient_chain().num_states(), 8u);
}

TEST(SingleHopModel, RecurrentChainHasNoAbsorbingState) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, kDefaults);
    EXPECT_TRUE(model.recurrent_chain().absorbing_states().empty())
        << to_string(kind);
  }
}

TEST(SingleHopModel, TransientChainHasExactlyOneAbsorbingState) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, kDefaults);
    const auto absorbing = model.transient_chain().absorbing_states();
    ASSERT_EQ(absorbing.size(), 1u) << to_string(kind);
    EXPECT_EQ(model.transient_chain().name(absorbing[0]), "(0,0)");
  }
}

// --- Table I rates, protocol by protocol -----------------------------------

struct RateCheck {
  const markov::Ctmc& chain;
  double rate(std::string_view from, std::string_view to) const {
    const auto f = chain.find(from);
    const auto t = chain.find(to);
    if (!f || !t) return -1.0;  // state not instantiated
    return chain.rate(*f, *t);
  }
};

TEST(SingleHopModel, TableOneRatesSS) {
  const SingleHopParams& p = kDefaults;
  const SingleHopModel model(ProtocolKind::kSS, p);
  const RateCheck check{model.transient_chain()};
  const double fast_ok = (1.0 - p.loss) / p.delay;
  const double fast_lost = p.loss / p.delay;

  EXPECT_DOUBLE_EQ(check.rate("(1,0)1", "C"), fast_ok);
  EXPECT_DOUBLE_EQ(check.rate("(1,0)1", "(1,0)2"), fast_lost);
  EXPECT_DOUBLE_EQ(check.rate("(1,0)2", "C"), (1.0 - p.loss) / p.refresh_timer);
  EXPECT_DOUBLE_EQ(check.rate("IC1", "C"), fast_ok);
  EXPECT_DOUBLE_EQ(check.rate("IC1", "IC2"), fast_lost);
  EXPECT_DOUBLE_EQ(check.rate("IC2", "C"), (1.0 - p.loss) / p.refresh_timer);
  // Timeout-only removal of orphaned state.
  EXPECT_DOUBLE_EQ(check.rate("(0,1)1", "(0,0)"), 1.0 / p.timeout_timer);
  // False removal from C and IC2 into the slow-path setup state.
  EXPECT_DOUBLE_EQ(check.rate("C", "(1,0)2"), p.false_removal_rate());
  EXPECT_DOUBLE_EQ(check.rate("IC2", "(1,0)2"), p.false_removal_rate());
  // Lifecycle rates.
  EXPECT_DOUBLE_EQ(check.rate("C", "IC1"), p.update_rate);
  EXPECT_DOUBLE_EQ(check.rate("(1,0)2", "(1,0)1"), p.update_rate);
  EXPECT_DOUBLE_EQ(check.rate("IC2", "IC1"), p.update_rate);
  EXPECT_DOUBLE_EQ(check.rate("C", "(0,1)1"), p.removal_rate);
  EXPECT_DOUBLE_EQ(check.rate("IC2", "(0,1)1"), p.removal_rate);
  EXPECT_DOUBLE_EQ(check.rate("(1,0)2", "(0,0)"), p.removal_rate);
  // Serialization: no removal out of fast-path states.
  EXPECT_DOUBLE_EQ(check.rate("(1,0)1", "(0,0)"), 0.0);
  EXPECT_DOUBLE_EQ(check.rate("IC1", "(0,1)1"), 0.0);
}

TEST(SingleHopModel, TableOneRatesSSER) {
  const SingleHopParams& p = kDefaults;
  const SingleHopModel model(ProtocolKind::kSSER, p);
  const RateCheck check{model.transient_chain()};
  // Explicit removal message in flight.
  EXPECT_DOUBLE_EQ(check.rate("(0,1)1", "(0,0)"), (1.0 - p.loss) / p.delay);
  EXPECT_DOUBLE_EQ(check.rate("(0,1)1", "(0,1)2"), p.loss / p.delay);
  // Lost removal falls back to the timeout.
  EXPECT_DOUBLE_EQ(check.rate("(0,1)2", "(0,0)"), 1.0 / p.timeout_timer);
  // Setup/update identical to SS.
  EXPECT_DOUBLE_EQ(check.rate("(1,0)2", "C"), (1.0 - p.loss) / p.refresh_timer);
}

TEST(SingleHopModel, TableOneRatesSSRT) {
  const SingleHopParams& p = kDefaults;
  const SingleHopModel model(ProtocolKind::kSSRT, p);
  const RateCheck check{model.transient_chain()};
  const double repair =
      (1.0 / p.refresh_timer + 1.0 / p.retrans_timer) * (1.0 - p.loss);
  EXPECT_DOUBLE_EQ(check.rate("(1,0)2", "C"), repair);
  EXPECT_DOUBLE_EQ(check.rate("IC2", "C"), repair);
  // Removal is timeout-only (no explicit removal in SS+RT).
  EXPECT_DOUBLE_EQ(check.rate("(0,1)1", "(0,0)"), 1.0 / p.timeout_timer);
  EXPECT_EQ(check.rate("(0,1)2", "(0,0)"), -1.0);  // state absent
}

TEST(SingleHopModel, TableOneRatesSSRTR) {
  const SingleHopParams& p = kDefaults;
  const SingleHopModel model(ProtocolKind::kSSRTR, p);
  const RateCheck check{model.transient_chain()};
  EXPECT_DOUBLE_EQ(check.rate("(0,1)1", "(0,0)"), (1.0 - p.loss) / p.delay);
  // Lost removal: timeout OR retransmission.
  EXPECT_DOUBLE_EQ(check.rate("(0,1)2", "(0,0)"),
                   1.0 / p.timeout_timer + (1.0 - p.loss) / p.retrans_timer);
}

TEST(SingleHopModel, TableOneRatesHS) {
  const SingleHopParams& p = kDefaults;
  const SingleHopModel model(ProtocolKind::kHS, p);
  const RateCheck check{model.transient_chain()};
  // No refresh: slow-path repair is retransmission only.
  EXPECT_DOUBLE_EQ(check.rate("(1,0)2", "C"), (1.0 - p.loss) / p.retrans_timer);
  // Reliable removal without soft timeout.
  EXPECT_DOUBLE_EQ(check.rate("(0,1)2", "(0,0)"), (1.0 - p.loss) / p.retrans_timer);
  // False removal driven by the external signal rate.
  EXPECT_DOUBLE_EQ(check.rate("C", "(1,0)2"), p.false_signal_rate);
}

// --- Solution properties ----------------------------------------------------

TEST(SingleHopModel, StationaryDistributionSumsToOne) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, kDefaults);
    EXPECT_NEAR(total_stationary(model), 1.0, 1e-10) << to_string(kind);
  }
}

TEST(SingleHopModel, InconsistencyIsOneMinusConsistent) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, kDefaults);
    EXPECT_NEAR(model.inconsistency(),
                1.0 - model.stationary(ShState::kConsistent), 1e-12);
    EXPECT_GT(model.inconsistency(), 0.0);
    EXPECT_LT(model.inconsistency(), 1.0);
  }
}

TEST(SingleHopModel, SessionLengthNearMeanLifetimePlusCleanup) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, kDefaults);
    const double lifetime = kDefaults.mean_lifetime();
    EXPECT_GT(model.session_length(), 0.95 * lifetime) << to_string(kind);
    EXPECT_LT(model.session_length(), 1.05 * lifetime + 2.0 * kDefaults.timeout_timer)
        << to_string(kind);
  }
}

TEST(SingleHopModel, ProtocolOrderingAtDefaults) {
  // Fig. 4 at 1/lr = 1800 s: SS worst, explicit removal helps a lot,
  // reliable removal approaches hard state.
  const double ss = SingleHopModel(ProtocolKind::kSS, kDefaults).inconsistency();
  const double sser = SingleHopModel(ProtocolKind::kSSER, kDefaults).inconsistency();
  const double ssrt = SingleHopModel(ProtocolKind::kSSRT, kDefaults).inconsistency();
  const double ssrtr = SingleHopModel(ProtocolKind::kSSRTR, kDefaults).inconsistency();
  const double hs = SingleHopModel(ProtocolKind::kHS, kDefaults).inconsistency();
  EXPECT_GT(ss, sser);
  EXPECT_GT(ss, ssrt);
  EXPECT_GT(sser, ssrtr);
  EXPECT_GT(ssrt, ssrtr);
  EXPECT_NEAR(ssrtr, hs, 0.2 * hs);  // "essentially the same" (Sec. III-A.3)
}

TEST(SingleHopModel, SsRtrCanBeatHardState) {
  // The paper: "in some cases SS+RTR already performs slightly better
  // than HS" -- at defaults the refresh path gives SS+RTR the edge.
  const double ssrtr = SingleHopModel(ProtocolKind::kSSRTR, kDefaults).inconsistency();
  const double hs = SingleHopModel(ProtocolKind::kHS, kDefaults).inconsistency();
  EXPECT_LT(ssrtr, hs);
}

TEST(SingleHopModel, MessageBreakdownRespectsMechanisms) {
  for (const ProtocolKind kind : kAllProtocols) {
    const MechanismSet mech = mechanisms(kind);
    const MessageRateBreakdown b =
        SingleHopModel(kind, kDefaults).message_rates();
    EXPECT_GT(b.trigger, 0.0) << to_string(kind);
    EXPECT_EQ(b.refresh > 0.0, mech.refresh) << to_string(kind);
    EXPECT_EQ(b.explicit_removal > 0.0, mech.explicit_removal) << to_string(kind);
    EXPECT_EQ(b.reliable_trigger > 0.0, mech.reliable_trigger) << to_string(kind);
    EXPECT_EQ(b.reliable_removal > 0.0, mech.reliable_removal) << to_string(kind);
  }
}

TEST(SingleHopModel, RefreshDominatesSsMessageRate) {
  const MessageRateBreakdown b = SingleHopModel(ProtocolKind::kSS, kDefaults).message_rates();
  // R = 5 s refreshes vs one update per 20 s: refreshes dominate.
  EXPECT_GT(b.refresh, b.trigger);
  EXPECT_NEAR(b.refresh, 1.0 / kDefaults.refresh_timer, 0.02);
}

TEST(SingleHopModel, HardStateSendsFewestMessagesAtDefaults) {
  double hs_rate = 0.0, min_other = 1e9;
  for (const ProtocolKind kind : kAllProtocols) {
    const double rate = SingleHopModel(kind, kDefaults).metrics().message_rate;
    if (kind == ProtocolKind::kHS) {
      hs_rate = rate;
    } else {
      min_other = std::min(min_other, rate);
    }
  }
  EXPECT_LT(hs_rate, min_other);
}

TEST(SingleHopModel, MetricsBundleIsSelfConsistent) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, kDefaults);
    const Metrics m = model.metrics();
    EXPECT_DOUBLE_EQ(m.inconsistency, model.inconsistency());
    EXPECT_NEAR(m.raw_message_rate, m.breakdown.total(), 1e-12);
    EXPECT_NEAR(m.message_rate,
                m.session_length * m.raw_message_rate * kDefaults.removal_rate,
                1e-12);
  }
}

TEST(SingleHopModel, EvaluateHelperMatchesModel) {
  const Metrics a = evaluate_single_hop(ProtocolKind::kSSER, kDefaults);
  const Metrics b = SingleHopModel(ProtocolKind::kSSER, kDefaults).metrics();
  EXPECT_DOUBLE_EQ(a.inconsistency, b.inconsistency);
  EXPECT_DOUBLE_EQ(a.message_rate, b.message_rate);
}

TEST(SingleHopModel, LossFreeChannelIsHandled) {
  SingleHopParams p = kDefaults;
  p.loss = 0.0;
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, p);
    EXPECT_GT(model.inconsistency(), 0.0) << to_string(kind);
    EXPECT_LT(model.inconsistency(), 0.05) << to_string(kind);
    // Slow-path states are unreachable without loss (except via HS false
    // signals); their stationary mass is ~0.
    if (kind != ProtocolKind::kHS) {
      EXPECT_DOUBLE_EQ(model.stationary(ShState::kSetup2), 0.0) << to_string(kind);
    }
  }
}

TEST(SingleHopModel, HigherLossHurtsConsistency) {
  for (const ProtocolKind kind : kAllProtocols) {
    SingleHopParams low = kDefaults;
    low.loss = 0.01;
    SingleHopParams high = kDefaults;
    high.loss = 0.25;
    EXPECT_LT(SingleHopModel(kind, low).inconsistency(),
              SingleHopModel(kind, high).inconsistency())
        << to_string(kind);
  }
}

TEST(SingleHopModel, LongerLifetimeImprovesBothMetrics) {
  for (const ProtocolKind kind : kAllProtocols) {
    SingleHopParams s = kDefaults;
    s.removal_rate = 1.0 / 60.0;
    SingleHopParams l = kDefaults;
    l.removal_rate = 1.0 / 6000.0;
    const Metrics short_m = SingleHopModel(kind, s).metrics();
    const Metrics long_m = SingleHopModel(kind, l).metrics();
    EXPECT_GT(short_m.inconsistency, long_m.inconsistency) << to_string(kind);
    EXPECT_GT(short_m.message_rate, long_m.message_rate) << to_string(kind);
  }
}

TEST(SingleHopModel, TimeoutBelowRefreshIsPoisonForSoftState) {
  // Fig. 8(a): with T < R refreshes arrive too late and state thrashes.
  SingleHopParams p = kDefaults;  // R = 5
  p.timeout_timer = 1.0;
  const double ss_bad = SingleHopModel(ProtocolKind::kSS, p).inconsistency();
  const double ss_good = SingleHopModel(ProtocolKind::kSS, kDefaults).inconsistency();
  EXPECT_GT(ss_bad, 10.0 * ss_good);
  // HS does not use the timeout timer and is unaffected.
  EXPECT_NEAR(SingleHopModel(ProtocolKind::kHS, p).inconsistency(),
              SingleHopModel(ProtocolKind::kHS, kDefaults).inconsistency(), 1e-9);
}

TEST(SingleHopModel, TransitionTableMatchesChainRates) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SingleHopModel model(kind, kDefaults);
    for (const TransitionSpec& spec :
         SingleHopModel::transition_table(kind, kDefaults)) {
      const auto from = model.transient_chain().find(to_string(spec.from));
      const auto to = model.transient_chain().find(to_string(spec.to));
      if (!from || !to) {
        EXPECT_DOUBLE_EQ(spec.rate, 0.0)
            << to_string(kind) << " " << spec.formula;
        continue;
      }
      // The chain may accumulate several mechanisms on one edge (e.g. the
      // update rate plus a redirected absorption in the recurrent view);
      // in the transient view Table I rows map 1:1 except lifecycle rows
      // sharing an edge with nothing else here.
      if (spec.formula == "lambda_u" &&
          (to_string(spec.from) == "(1,0)2" || to_string(spec.from) == "IC2")) {
        EXPECT_DOUBLE_EQ(model.transient_chain().rate(*from, *to), spec.rate);
      } else if (spec.rate > 0.0) {
        EXPECT_DOUBLE_EQ(model.transient_chain().rate(*from, *to), spec.rate)
            << to_string(kind) << " " << to_string(spec.from) << "->"
            << to_string(spec.to);
      }
    }
  }
}

TEST(SingleHopModel, InvalidParamsThrow) {
  SingleHopParams p = kDefaults;
  p.loss = 1.5;
  EXPECT_THROW(SingleHopModel(ProtocolKind::kSS, p), std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp::analytic
