// Multi-hop signaling model (Sec. III-B of the paper).
//
// A sender installs state along a chain of K hops.  State lifetime is
// infinite; the model studies how updates propagate.  Markov states are
// (k, s): k = number of consistent hops (0..K), s = fast path (a trigger is
// being forwarded hop-by-hop) or slow path (the trigger was lost and repair
// waits for a refresh and/or retransmission).  (K, fast) is the fully
// consistent state.  The HS protocol adds a recovery state entered on a
// false external removal signal.
#pragma once

#include <cstddef>
#include <vector>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "markov/ctmc.hpp"

namespace sigcomp::analytic {

/// Multi-hop analytic model for SS, SS+RT or HS (the protocols the paper
/// analyzes in the multi-hop setting).
class MultiHopModel {
 public:
  /// Throws std::invalid_argument on bad params or an unsupported protocol
  /// (only SS, SS+RT and HS have multi-hop semantics in the paper).
  MultiHopModel(ProtocolKind kind, const MultiHopParams& params);

  [[nodiscard]] ProtocolKind kind() const noexcept { return kind_; }
  [[nodiscard]] const MultiHopParams& params() const noexcept { return params_; }
  [[nodiscard]] const markov::Ctmc& chain() const noexcept { return chain_; }

  /// Stationary probability of (k, s); s = 0 fast path, s = 1 slow path.
  /// (K, 1) does not exist and reports 0.
  [[nodiscard]] double stationary(std::size_t k, int s) const;

  /// Stationary probability of the HS recovery state (0 for SS/SS+RT).
  [[nodiscard]] double recovery_probability() const;

  /// I (Eq. 12): 1 - pi(K, fast).
  [[nodiscard]] double inconsistency() const;

  /// Fraction of time hop i (1-based, 1 <= i <= K) is inconsistent: the
  /// probability that fewer than i hops are consistent (Fig. 17).  The HS
  /// recovery state counts as all-hops-inconsistent.
  [[nodiscard]] double hop_inconsistency(std::size_t hop) const;

  /// Raw stationary message rate in msg/s across the whole chain, counting
  /// per-hop transmissions (Eqs. 13-17; see DESIGN.md section 3.2 for the
  /// exact accounting reproduced here).
  [[nodiscard]] MessageRateBreakdown message_rates() const;

  /// Metrics bundle; message_rate == raw_message_rate (no lifetime
  /// normalization in the infinite-lifetime model), session_length == 0.
  [[nodiscard]] Metrics metrics() const;

  /// First timeout at hop j+1 (none earlier) per Eq. (9):
  /// [ (1-(1-pl)^(j+1))^(T/R) - (1-(1-pl)^j)^(T/R) ] / T.
  [[nodiscard]] static double timeout_rate(const MultiHopParams& params,
                                           std::size_t j);

 private:
  [[nodiscard]] markov::StateId fast_id(std::size_t k) const;
  [[nodiscard]] markov::StateId slow_id(std::size_t k) const;

  ProtocolKind kind_;
  MultiHopParams params_;
  markov::Ctmc chain_;
  std::vector<markov::StateId> fast_;   ///< (k, 0) for k = 0..K
  std::vector<markov::StateId> slow_;   ///< (k, 1) for k = 0..K-1
  std::size_t recovery_ = 0;            ///< HS recovery state id
  bool has_recovery_ = false;
  std::vector<double> pi_;
};

/// Convenience: metrics for one protocol at one parameter point.
[[nodiscard]] Metrics evaluate_multi_hop(ProtocolKind kind,
                                         const MultiHopParams& params);

}  // namespace sigcomp::analytic
