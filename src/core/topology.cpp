#include "core/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sigcomp {

TreeSpec TreeSpec::chain(std::size_t hops) {
  if (hops == 0) {
    throw std::invalid_argument("TreeSpec::chain: need at least one hop");
  }
  TreeSpec spec;
  spec.parent.resize(hops);
  for (std::size_t e = 0; e < hops; ++e) spec.parent[e] = e;
  return spec;
}

TreeSpec TreeSpec::balanced(std::size_t fanout, std::size_t depth,
                            std::size_t receivers) {
  if (fanout == 0 || depth == 0) {
    throw std::invalid_argument(
        "TreeSpec::balanced: fanout and depth must be >= 1");
  }
  // Node ids breadth-first: the root, then level 1 left-to-right, and so on.
  std::vector<std::size_t> level{0};  // node ids of the current level
  TreeSpec spec;
  std::size_t node_count = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    // Size check before the reserve: level.size() * fanout can wrap
    // size_t (or demand an absurd allocation) long before the per-node
    // guard below would fire.
    if (level.size() > (kMaxNodes - node_count) / fanout) {
      throw std::invalid_argument(
          "TreeSpec::balanced: tree exceeds kMaxNodes nodes");
    }
    std::vector<std::size_t> next;
    next.reserve(level.size() * fanout);
    for (const std::size_t p : level) {
      for (std::size_t c = 0; c < fanout; ++c) {
        spec.parent.push_back(p);
        next.push_back(node_count++);
      }
    }
    level = std::move(next);
  }
  if (receivers == 0) return spec;
  if (receivers > level.size()) {
    throw std::invalid_argument(
        "TreeSpec::balanced: receivers exceeds fanout^depth (" +
        std::to_string(level.size()) + ")");
  }
  // Keep the first `receivers` bottom-level leaves plus the interior nodes
  // on their root paths, then renumber.  Kept nodes stay in topological
  // order, so renumbering preserves the invariant.
  std::vector<bool> keep(spec.nodes(), false);
  keep[0] = true;
  for (std::size_t i = 0; i < receivers; ++i) {
    std::size_t n = level[i];
    while (!keep[n]) {
      keep[n] = true;
      n = spec.parent[n - 1];
    }
  }
  std::vector<std::size_t> new_id(spec.nodes());
  std::size_t next_id = 0;
  for (std::size_t n = 0; n < spec.nodes(); ++n) {
    if (keep[n]) new_id[n] = next_id++;
  }
  TreeSpec pruned;
  pruned.parent.reserve(next_id - 1);
  for (std::size_t n = 1; n < spec.nodes(); ++n) {
    if (keep[n]) pruned.parent.push_back(new_id[spec.parent[n - 1]]);
  }
  return pruned;
}

std::vector<std::size_t> TreeSpec::children(std::size_t node) const {
  if (node >= nodes()) {
    throw std::out_of_range("TreeSpec::children: node out of range");
  }
  std::vector<std::size_t> out;
  for (std::size_t e = 0; e < edges(); ++e) {
    if (parent[e] == node) out.push_back(e);
  }
  return out;
}

bool TreeSpec::is_leaf(std::size_t node) const {
  if (node >= nodes()) {
    throw std::out_of_range("TreeSpec::is_leaf: node out of range");
  }
  return std::find(parent.begin(), parent.end(), node) == parent.end();
}

std::vector<std::size_t> TreeSpec::leaves() const {
  std::vector<bool> has_child(nodes(), false);
  for (const std::size_t p : parent) has_child[p] = true;
  std::vector<std::size_t> out;
  for (std::size_t n = 0; n < nodes(); ++n) {
    if (!has_child[n]) out.push_back(n);
  }
  return out;
}

std::size_t TreeSpec::leaf_count() const { return leaves().size(); }

std::vector<std::size_t> TreeSpec::path_edges(std::size_t node) const {
  if (node >= nodes()) {
    throw std::out_of_range("TreeSpec::path_edges: node out of range");
  }
  std::vector<std::size_t> out;
  while (node != 0) {
    out.push_back(node - 1);
    node = parent[node - 1];
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t TreeSpec::node_depth(std::size_t node) const {
  if (node >= nodes()) {
    throw std::out_of_range("TreeSpec::node_depth: node out of range");
  }
  std::size_t d = 0;
  while (node != 0) {
    node = parent[node - 1];
    ++d;
  }
  return d;
}

std::size_t TreeSpec::depth() const {
  // Depths are computable in one pass because parents precede children.
  std::vector<std::size_t> depth_of(nodes(), 0);
  std::size_t max_depth = 0;
  for (std::size_t e = 0; e < edges(); ++e) {
    depth_of[e + 1] = depth_of[parent[e]] + 1;
    max_depth = std::max(max_depth, depth_of[e + 1]);
  }
  return max_depth;
}

std::size_t TreeSpec::max_fanout() const {
  std::vector<std::size_t> count(nodes(), 0);
  std::size_t best = 0;
  for (const std::size_t p : parent) best = std::max(best, ++count[p]);
  return best;
}

void TreeSpec::validate() const {
  for (std::size_t e = 0; e < edges(); ++e) {
    if (parent[e] > e) {
      throw std::invalid_argument(
          "TreeSpec: parent ids must precede their children (parent[" +
          std::to_string(e) + "] = " + std::to_string(parent[e]) + ")");
    }
  }
}

}  // namespace sigcomp
