#include "analytic/multi_hop.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "markov/stationary.hpp"

namespace sigcomp::analytic {

double MultiHopModel::timeout_rate(const MultiHopParams& params, std::size_t j) {
  const double q = 1.0 - params.loss;
  const double exponent = params.timeout_timer / params.refresh_timer;
  const double upper = std::pow(1.0 - std::pow(q, static_cast<double>(j + 1)), exponent);
  const double lower =
      j == 0 ? 0.0 : std::pow(1.0 - std::pow(q, static_cast<double>(j)), exponent);
  return std::max(0.0, upper - lower) / params.timeout_timer;
}

MultiHopModel::MultiHopModel(ProtocolKind kind, const MultiHopParams& params)
    : kind_(kind), params_(params) {
  params_.validate();
  if (!supports_multi_hop(kind)) {
    throw std::invalid_argument("MultiHopModel: unsupported protocol " +
                                std::string(to_string(kind)));
  }
  const MechanismSet mech = mechanisms(kind_);
  const std::size_t k_hops = params_.hops;
  const double pl = params_.loss;
  const double q = 1.0 - pl;
  const double d = params_.delay;

  for (std::size_t k = 0; k <= k_hops; ++k) {
    fast_.push_back(chain_.add_state("(" + std::to_string(k) + ",fast)"));
  }
  for (std::size_t k = 0; k < k_hops; ++k) {
    slow_.push_back(chain_.add_state("(" + std::to_string(k) + ",slow)"));
  }
  if (mech.external_failure_detector) {
    recovery_ = chain_.add_state("recovery");
    has_recovery_ = true;
  }

  // --- Fast path: the in-flight trigger either crosses the next hop or is
  // lost there.
  for (std::size_t k = 0; k < k_hops; ++k) {
    chain_.add_rate(fast_[k], fast_[k + 1], q / d);
    chain_.add_rate(fast_[k], slow_[k], pl / d);
  }

  // --- Slow path repair (Eqs. 10-11): a refresh must survive k+1 hops to
  // repair hop k+1; a hop-local retransmission must survive one hop.
  for (std::size_t k = 0; k < k_hops; ++k) {
    double repair = 0.0;
    if (mech.refresh) {
      repair += std::pow(q, static_cast<double>(k + 1)) / params_.refresh_timer;
    }
    if (mech.reliable_trigger) {
      repair += q / params_.retrans_timer;
    }
    chain_.add_rate(slow_[k], fast_[k + 1], repair);
  }

  // --- Updates: a new value restarts propagation from scratch.
  for (std::size_t k = 0; k <= k_hops; ++k) {
    if (k != 0) chain_.add_rate(fast_[k], fast_[0], params_.update_rate);
  }
  for (std::size_t k = 0; k < k_hops; ++k) {
    chain_.add_rate(slow_[k], fast_[0], params_.update_rate);
  }

  // --- Soft-state timeout (Eq. 9): first expiry at hop j+1 wipes hops
  // j+1..K; applied from states where no trigger is in flight toward an
  // earlier hop (the consistent state and slow-path states), matching the
  // single-hop serialization convention.
  if (mech.soft_timeout) {
    for (std::size_t j = 0; j + 1 <= k_hops; ++j) {
      const double rate = timeout_rate(params_, j);
      if (rate <= 0.0) continue;
      // From full consistency (K, fast).
      if (j < k_hops) chain_.add_rate(fast_[k_hops], slow_[j], rate);
      // From slow-path states with more than j consistent hops.
      for (std::size_t i = j + 1; i < k_hops; ++i) {
        chain_.add_rate(slow_[i], slow_[j], rate);
      }
    }
  }

  // --- HS false removal: a false external signal at any of the K receivers
  // tears down state; the chain enters the recovery state until the
  // notification crosses the chain and the sender re-triggers.
  if (mech.external_failure_detector) {
    const double rate =
        static_cast<double>(k_hops) * params_.false_signal_rate;
    if (rate > 0.0) {
      chain_.add_rate(fast_[k_hops], recovery_, rate);
      for (std::size_t k = 0; k < k_hops; ++k) {
        chain_.add_rate(slow_[k], recovery_, rate);
      }
      chain_.add_rate(recovery_, fast_[0], params_.recovery_rate());
    }
  }

  pi_ = markov::stationary_distribution_from(chain_, fast_[0]);
}

markov::StateId MultiHopModel::fast_id(std::size_t k) const {
  if (k >= fast_.size()) throw std::out_of_range("MultiHopModel: k out of range");
  return fast_[k];
}

markov::StateId MultiHopModel::slow_id(std::size_t k) const {
  if (k >= slow_.size()) throw std::out_of_range("MultiHopModel: k out of range");
  return slow_[k];
}

double MultiHopModel::stationary(std::size_t k, int s) const {
  if (s == 0) return pi_[fast_id(k)];
  if (s == 1) {
    if (k >= slow_.size()) return 0.0;
    return pi_[slow_id(k)];
  }
  throw std::invalid_argument("MultiHopModel::stationary: s must be 0 or 1");
}

double MultiHopModel::recovery_probability() const {
  return has_recovery_ ? pi_[recovery_] : 0.0;
}

double MultiHopModel::inconsistency() const {
  return 1.0 - stationary(params_.hops, 0);
}

double MultiHopModel::hop_inconsistency(std::size_t hop) const {
  if (hop < 1 || hop > params_.hops) {
    throw std::out_of_range("MultiHopModel::hop_inconsistency: hop out of range");
  }
  double p = recovery_probability();
  for (std::size_t k = 0; k < hop; ++k) {
    p += stationary(k, 0);
    p += stationary(k, 1);
  }
  return p;
}

MessageRateBreakdown MultiHopModel::message_rates() const {
  const MechanismSet mech = mechanisms(kind_);
  const double pl = params_.loss;
  const double q = 1.0 - pl;
  const double d = params_.delay;
  const std::size_t k_hops = params_.hops;
  MessageRateBreakdown m;

  // In every fast-path state one hop-transmission of the in-flight trigger
  // completes at rate 1/D.
  double fast_mass = 0.0;
  for (std::size_t k = 0; k < k_hops; ++k) fast_mass += stationary(k, 0);
  m.trigger = fast_mass / d;

  // Refreshes: the sender emits one per R; each costs the expected number of
  // per-hop transmissions of an end-to-end message.
  if (mech.refresh) {
    m.refresh = params_.expected_hop_transmissions() / params_.refresh_timer;
  }

  double slow_mass = 0.0;
  for (std::size_t k = 0; k < k_hops; ++k) slow_mass += stationary(k, 1);

  if (mech.reliable_trigger) {
    // Hop-local retransmissions in slow-path states, plus one ACK per
    // successful hop delivery (fast-path crossings and repaired hops).
    const double retransmissions = slow_mass / params_.retrans_timer;
    const double acks =
        fast_mass * q / d + slow_mass * q / params_.retrans_timer;
    m.reliable_trigger = retransmissions + acks;
  }

  if (mech.external_failure_detector) {
    // Each recovery event floods ~2K notification/teardown messages across
    // the chain (receiver -> everyone, sender re-trigger pre-flight).
    const double recovery_events = recovery_probability() * params_.recovery_rate();
    m.reliable_removal = recovery_events * 2.0 * static_cast<double>(k_hops);
  }
  return m;
}

Metrics MultiHopModel::metrics() const {
  Metrics out;
  out.inconsistency = inconsistency();
  out.breakdown = message_rates();
  out.raw_message_rate = out.breakdown.total();
  out.message_rate = out.raw_message_rate;
  out.session_length = 0.0;
  return out;
}

Metrics evaluate_multi_hop(ProtocolKind kind, const MultiHopParams& params) {
  return MultiHopModel(kind, params).metrics();
}

}  // namespace sigcomp::analytic
