// Quickstart: evaluate all five signaling protocols at the paper's default
// ("Kazaa") operating point, analytically and by simulation.
//
//   $ ./quickstart
//
// prints one row per protocol with the inconsistency ratio I, the normalized
// signaling message rate M, and the integrated cost C = 10*I + M, from both
// the Markov model and the discrete-event simulator.  The simulation column
// is a 5-replica mean with a 95% confidence half-width, computed through the
// parallel experiment engine (evaluate_grid_simulated), which fans replicas
// across cores with deterministic per-replica seeding.
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main() {
  using namespace sigcomp;

  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  SimGridOptions sim_options;
  sim_options.sim.sessions = 400;
  sim_options.sim.seed = 7;
  sim_options.replications = 5;

  exp::Table table(
      "Signaling protocol comparison, single hop, Kazaa defaults "
      "(pl=0.02, D=30ms, 1/lu=20s, 1/lr=1800s, R=5s, T=15s, G=120ms)",
      {"protocol", "I (model)", "I (sim)", "I ci95", "M (model)", "M (sim)",
       "cost C (model)"});

  for (const ProtocolKind kind : kAllProtocols) {
    const Metrics model = evaluate_analytic(kind, params);
    const exp::MetricsSummary sim =
        evaluate_grid_simulated(kind, {params}, sim_options).front();
    table.add_row({std::string(to_string(kind)), model.inconsistency,
                   sim.inconsistency.mean, sim.inconsistency.half_width,
                   model.message_rate, sim.message_rate.mean,
                   integrated_cost(model)});
  }
  table.print(std::cout);

  std::cout << "\nReading: lower is better everywhere. SS+ER fixes most of "
               "SS's inconsistency for almost no extra messages;\n"
               "SS+RTR reaches hard-state consistency while keeping "
               "soft-state robustness.\n";
  return 0;
}
