// Test-only reference copy of the pre-arena session farm -- see the header
// for why it exists and which pre-arena semantics it intentionally keeps.
// This is the last task-per-shard implementation, verbatim apart from the
// namespace, the entry-point names and keep_per_session support (the
// differential suite diffs per-session metric vectors element-wise).
#include "reference_session_farm.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rng_streams.hpp"
#include "protocols/engine.hpp"
#include "protocols/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace sigcomp::exp::testing {

namespace {

using protocols::MessageChannel;
using protocols::Message;

void validate_options(const SessionFarmOptions& options) {
  if (options.sessions == 0) {
    throw std::invalid_argument("SessionFarmOptions: sessions must be > 0");
  }
  if (options.arrival_rate <= 0.0) {
    throw std::invalid_argument("SessionFarmOptions: arrival_rate must be > 0");
  }
  if (options.session_lifetime <= 0.0) {
    throw std::invalid_argument(
        "SessionFarmOptions: session_lifetime must be > 0");
  }
  if (options.shard_size == 0) {
    throw std::invalid_argument("SessionFarmOptions: shard_size must be > 0");
  }
  options.leaf_churn.validate();
  options.scenario.validate();
}

/// Callbacks a session uses to report lifecycle transitions to its shard.
struct ShardHooks {
  std::size_t active = 0;
  std::size_t peak = 0;
  std::size_t completed = 0;

  void on_started() {
    ++active;
    peak = std::max(peak, active);
  }
  void on_completed() {
    --active;
    ++completed;
  }
};

/// Per-session randomness: eight independent streams keyed to the session's
/// global index, mirroring the stream layout of the single-hop harness
/// (the membership and scenario streams are consumed only by tree sessions
/// that enable the corresponding workload).
/// The stream IDs come from the registry in core/rng_streams.hpp -- the
/// farm layout and the single-hop harness layout are the SAME constants,
/// which is what makes the mirroring self-evident.
struct SessionRngs {
  sim::Rng channel;
  sim::Rng sender;
  sim::Rng receiver;
  sim::Rng lifecycle;
  sim::Rng failure;
  sim::Rng membership;
  sim::Rng scenario_arrival;
  sim::Rng scenario_failure;

  SessionRngs(std::uint64_t base_seed, std::uint64_t global_index)
      : channel(session_seed(base_seed, global_index), rng::kSessionChannel),
        sender(session_seed(base_seed, global_index), rng::kSessionSender),
        receiver(session_seed(base_seed, global_index), rng::kSessionReceiver),
        lifecycle(session_seed(base_seed, global_index),
                  rng::kSessionLifecycle),
        failure(session_seed(base_seed, global_index), rng::kSessionFailure),
        membership(session_seed(base_seed, global_index),
                   rng::kSessionMembership),
        scenario_arrival(session_seed(base_seed, global_index),
                         rng::kSessionScenarioArrival),
        scenario_failure(session_seed(base_seed, global_index),
                         rng::kSessionScenarioFailure) {}

 private:
  /// The per-session seed family: replica_seed keyed to the session's
  /// global index (replica lane 0 -- the substream split happens in
  /// sim::Rng's stream argument, not here).
  static std::uint64_t session_seed(std::uint64_t base_seed,
                                    std::uint64_t global_index) {
    return replica_seed(base_seed, global_index, 0);
  }
};

/// One single-hop session: arrival -> install -> updates -> removal ->
/// absorption, measured over [arrival, absorption].  A one-shot version of
/// the renewal construction in protocols/single_hop_run.cpp.
class SingleHopSession {
 public:
  SingleHopSession(sim::Simulator& sim, ProtocolKind kind,
                   const SingleHopParams& params,
                   const SessionFarmOptions& options,
                   std::uint64_t global_index, ShardHooks& hooks)
      : sim_(sim),
        params_(params),
        options_(options),
        mech_(mechanisms(kind)),
        hooks_(hooks),
        rngs_(options.seed, global_index),
        forward_(sim, rngs_.channel, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { receiver_->handle(m); }),
        reverse_(sim, rngs_.channel, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { sender_->handle(m); }) {
    protocols::TimerSettings timers{options.timer_dist, params.refresh_timer,
                                    params.timeout_timer,
                                    params.retrans_timer};
    sender_ = std::make_unique<protocols::SenderEngine>(
        sim_, rngs_.sender, mech_, timers, forward_, [this] { on_change(); });
    receiver_ = std::make_unique<protocols::ReceiverEngine>(
        sim_, rngs_.receiver, mech_, timers, reverse_,
        [this] { on_change(); });
    // Staggered Poisson arrivals: conditioned on N arrivals in the window,
    // arrival times are iid uniform over it -- and drawing from the
    // session's own stream keys the time to the global index alone.
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    arrival_ = window * rngs_.lifecycle.uniform();
    lifetime_ = rngs_.lifecycle.exponential(options.session_lifetime);
    sim_.schedule_at(arrival_, [this] { begin(); });
  }

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  /// Counters frozen at absorption time, so results cannot depend on which
  /// straggler events the shard's simulator happened to execute afterwards.
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t receiver_timeouts() const noexcept {
    return timeouts_;
  }
  /// Single-hop sessions have no tree to churn; always all-zero (the farm
  /// rejects enabled churn before any session is built).
  [[nodiscard]] const protocols::ChurnReport& churn() const noexcept {
    return churn_;
  }
  /// No tree, no relays to crash (the farm rejects an enabled scenario).
  [[nodiscard]] std::uint64_t relay_crashes() const noexcept { return 0; }
  /// See relay_crashes.
  [[nodiscard]] std::uint64_t relay_recoveries() const noexcept { return 0; }

 private:
  void begin() {
    hooks_.on_started();
    inconsistent_ = sim::TimeWeightedValue(arrival_);
    sender_->begin_epoch(1);
    receiver_->begin_epoch(1);
    sender_->install(++version_);
    schedule_update();
    removal_event_ = sim_.schedule_in(lifetime_, [this] {
      removal_event_.reset();
      sender_removed_ = true;
      sender_->remove();
      check_absorption();
    });
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      schedule_false_signal();
    }
    on_change();
  }

  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    update_event_ = sim_.schedule_in(
        rngs_.lifecycle.exponential(1.0 / params_.update_rate), [this] {
          update_event_.reset();
          if (!sender_removed_ && sender_->value()) {
            sender_->update(++version_);
          }
          schedule_update();
        });
  }

  void schedule_false_signal() {
    false_signal_event_ = sim_.schedule_in(
        rngs_.failure.exponential(1.0 / params_.false_signal_rate), [this] {
          false_signal_event_.reset();
          receiver_->external_removal_signal();
          schedule_false_signal();
        });
  }

  void cancel(std::optional<sim::EventId>& id) {
    if (id) {
      sim_.cancel(*id);
      id.reset();
    }
  }

  void on_change() {
    if (done_) return;
    const bool consistent = sender_->value() == receiver_->value();
    inconsistent_.set(sim_.now(), consistent ? 0.0 : 1.0);
    check_absorption();
  }

  void check_absorption() {
    if (done_ || !sender_removed_ || receiver_->value()) return;
    done_ = true;
    const double end = sim_.now();
    const double length = end - arrival_;
    messages_ = forward_.counters().sent + reverse_.counters().sent;
    timeouts_ = receiver_->timeouts();
    const auto sent = static_cast<double>(messages_);
    metrics_.inconsistency = inconsistent_.mean(end);
    metrics_.session_length = length;
    metrics_.raw_message_rate = length > 0.0 ? sent / length : 0.0;
    // M-bar = (messages per session) * lambda_r, as in Eq. (2); the farm's
    // removal rate is 1 / mean lifetime.
    metrics_.message_rate = sent / options_.session_lifetime;
    cancel(update_event_);
    cancel(false_signal_event_);
    cancel(removal_event_);
    // Jump both engines to a dead epoch: stragglers still in flight can no
    // longer resurrect state (there is no next session to protect, but a
    // resurrected receiver would re-arm timers and skew event counts).
    sender_->begin_epoch(2);
    receiver_->begin_epoch(2);
    hooks_.on_completed();
  }

  sim::Simulator& sim_;
  // The shard keeps params/options alive for the sessions' whole lifetime;
  // 100k sessions should not hold 100k copies.
  const SingleHopParams& params_;
  const SessionFarmOptions& options_;
  MechanismSet mech_;
  ShardHooks& hooks_;
  SessionRngs rngs_;
  MessageChannel forward_;
  MessageChannel reverse_;
  std::unique_ptr<protocols::SenderEngine> sender_;
  std::unique_ptr<protocols::ReceiverEngine> receiver_;

  double arrival_ = 0.0;
  double lifetime_ = 0.0;
  std::int64_t version_ = 0;
  bool sender_removed_ = false;
  bool done_ = false;
  std::uint64_t messages_ = 0;
  std::uint64_t timeouts_ = 0;
  sim::TimeWeightedValue inconsistent_;
  std::optional<sim::EventId> update_event_;
  std::optional<sim::EventId> removal_event_;
  std::optional<sim::EventId> false_signal_event_;
  Metrics metrics_;
  protocols::ChurnReport churn_;
};

/// One tree session: arrival -> start -> updates over a full
/// protocols::Topology -- one sender, relays at interior nodes, receivers
/// at the leaves, per-edge channels.  Chain sessions run through this very
/// class as fan-out-1 trees.  Measured over the lifetime window
/// [arrival, arrival + lifetime], then silently torn down with
/// Topology::stop().
class TreeSession {
 public:
  TreeSession(sim::Simulator& sim, ProtocolKind kind,
              const analytic::TreeParams& params,
              const SessionFarmOptions& options, std::uint64_t global_index,
              ShardHooks& hooks)
      : sim_(sim),
        params_(params),
        options_(options),
        mech_(mechanisms(kind)),
        hooks_(hooks),
        rngs_(options.seed, global_index) {
    protocols::TimerSettings timers{options.timer_dist, params.refresh_timer,
                                    params.timeout_timer,
                                    params.retrans_timer};
    std::vector<sim::LossConfig> edge_loss;
    std::vector<sim::DelayConfig> edge_delay;
    edge_loss.reserve(params.edges());
    edge_delay.reserve(params.edges());
    for (std::size_t e = 0; e < params.edges(); ++e) {
      edge_loss.push_back(params.edge_loss_config(e));
      edge_delay.push_back(sim::DelayConfig{options.delay_model,
                                            params.delay[e],
                                            options.delay_shape});
    }
    topology_ = std::make_unique<protocols::Topology>(
        sim, rngs_.channel, rngs_.sender, mech_, timers, params.tree,
        edge_loss, edge_delay, [this] { on_change(); });
    if (options.leaf_churn.enabled() ||
        options.scenario.membership_processes()) {
      membership_ = std::make_unique<protocols::MembershipController>(
          sim, *topology_, rngs_.membership, options.leaf_churn,
          options.scenario, &rngs_.scenario_arrival, [this] { on_change(); });
    }
    if (options.scenario.failure.enabled()) {
      failure_ = std::make_unique<protocols::RelayFailureProcess>(
          sim, *topology_, rngs_.scenario_failure, options.scenario.failure,
          mech_.external_failure_detector);
    }
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    arrival_ = window * rngs_.lifecycle.uniform();
    lifetime_ = rngs_.lifecycle.exponential(options.session_lifetime);
    sim_.schedule_at(arrival_, [this] { begin(); });
  }

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  /// Counters frozen at window end: stragglers delivered to a stopped
  /// tree may still execute (and even re-install relay state briefly),
  /// and how many do depends on how long the shard keeps simulating --
  /// snapshotting keeps results independent of the shard decomposition.
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t receiver_timeouts() const noexcept {
    return timeouts_;
  }
  /// The churn outcome frozen at window end (all-zero without churn).
  [[nodiscard]] const protocols::ChurnReport& churn() const noexcept {
    return churn_;
  }
  /// Interior-relay crashes frozen at window end (0 without a scenario).
  [[nodiscard]] std::uint64_t relay_crashes() const noexcept {
    return crashes_;
  }
  /// Completed recoveries frozen at window end.
  [[nodiscard]] std::uint64_t relay_recoveries() const noexcept {
    return recoveries_;
  }

 private:
  void begin() {
    hooks_.on_started();
    inconsistent_ = sim::TimeWeightedValue(arrival_);
    topology_->sender().start(++version_);
    schedule_update();
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      false_signal_events_.resize(topology_->relays());
      for (std::size_t i = 0; i < topology_->relays(); ++i) {
        schedule_false_signal(i);
      }
    }
    if (membership_) membership_->start();
    if (failure_) failure_->start();
    sim_.schedule_in(lifetime_, [this] { finish(); });
    on_change();
  }

  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    update_event_ = sim_.schedule_in(
        rngs_.lifecycle.exponential(1.0 / params_.update_rate), [this] {
          update_event_.reset();
          topology_->sender().update(++version_);
          schedule_update();
        });
  }

  void schedule_false_signal(std::size_t relay) {
    false_signal_events_[relay] = sim_.schedule_in(
        rngs_.failure.exponential(1.0 / params_.false_signal_rate),
        [this, relay] {
          false_signal_events_[relay].reset();
          topology_->relay(relay).external_removal_signal();
          schedule_false_signal(relay);
        });
  }

  void on_change() {
    if (done_) return;
    if (membership_) membership_->on_state_change();
    bool all_ok = true;
    for (std::size_t i = 0; i < topology_->relays(); ++i) {
      // Required nodes must mirror the sender; detached nodes must hold
      // nothing (without churn every node is required -- the historical
      // definition, bit for bit).
      const bool ok = topology_->node_required(i + 1)
                          ? topology_->relay(i).value() ==
                                topology_->sender().value()
                          : !topology_->relay(i).value().has_value();
      all_ok = all_ok && ok;
    }
    inconsistent_.set(sim_.now(), all_ok ? 0.0 : 1.0);
  }

  void finish() {
    done_ = true;
    const double end = sim_.now();
    if (membership_) {
      membership_->finish();
      churn_ = membership_->report();
    }
    if (failure_) {
      // Cancel the pending crash/recovery/detection events BEFORE the
      // counters are frozen, so no scenario event straggles past the
      // window (the teardown tests pin a flat event pool).
      failure_->stop();
      crashes_ = failure_->crashes();
      recoveries_ = failure_->recoveries();
    }
    messages_ = topology_->messages_sent();
    timeouts_ = topology_->relay_timeouts();
    const auto sent = static_cast<double>(messages_);
    metrics_.inconsistency = inconsistent_.mean(end);
    metrics_.session_length = lifetime_;
    metrics_.raw_message_rate = lifetime_ > 0.0 ? sent / lifetime_ : 0.0;
    metrics_.message_rate = metrics_.raw_message_rate;
    if (update_event_) {
      sim_.cancel(*update_event_);
      update_event_.reset();
    }
    for (auto& id : false_signal_events_) {
      if (id) sim_.cancel(*id);
    }
    false_signal_events_.clear();
    topology_->stop();
    hooks_.on_completed();
  }

  sim::Simulator& sim_;
  const analytic::TreeParams& params_;
  const SessionFarmOptions& options_;
  MechanismSet mech_;
  ShardHooks& hooks_;
  SessionRngs rngs_;
  std::unique_ptr<protocols::Topology> topology_;
  std::unique_ptr<protocols::MembershipController> membership_;
  std::unique_ptr<protocols::RelayFailureProcess> failure_;

  double arrival_ = 0.0;
  double lifetime_ = 0.0;
  std::int64_t version_ = 0;
  bool done_ = false;
  std::uint64_t messages_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  sim::TimeWeightedValue inconsistent_;
  std::optional<sim::EventId> update_event_;
  std::vector<std::optional<sim::EventId>> false_signal_events_;
  Metrics metrics_;
  protocols::ChurnReport churn_;
};

/// Everything one shard reports back to the aggregator.
struct ShardOutcome {
  std::vector<Metrics> per_session;  ///< in global session order
  /// Per-session churn reports in global session order: summed by the
  /// aggregator in that order, so the reduced report cannot depend on the
  /// shard decomposition (floating-point addition is order-sensitive).
  std::vector<protocols::ChurnReport> per_session_churn;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t receiver_timeouts = 0;
  std::uint64_t relay_crashes = 0;
  std::uint64_t relay_recoveries = 0;
  double end_time = 0.0;
  std::size_t peak = 0;
};

/// Simulates sessions [first, first + count) of the farm in one Simulator.
template <typename Session, typename Params>
ShardOutcome run_shard(ProtocolKind kind, const Params& params,
                       const SessionFarmOptions& options, std::size_t first,
                       std::size_t count) {
  sim::Simulator sim(options.event_queue);
  ShardHooks hooks;
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sessions.push_back(std::make_unique<Session>(
        sim, kind, params, options, static_cast<std::uint64_t>(first + i),
        hooks));
  }
  while (hooks.completed < count && sim.step()) {
  }
  if (hooks.completed < count) {
    throw std::logic_error("session farm: shard stalled before completing");
  }

  ShardOutcome out;
  out.per_session.reserve(count);
  out.per_session_churn.reserve(count);
  for (const auto& session : sessions) {
    out.per_session.push_back(session->metrics());
    out.per_session_churn.push_back(session->churn());
    out.messages += session->messages();
    out.receiver_timeouts += session->receiver_timeouts();
    out.relay_crashes += session->relay_crashes();
    out.relay_recoveries += session->relay_recoveries();
  }
  out.events = sim.events_executed();
  out.end_time = sim.now();
  out.peak = hooks.peak;
  return out;
}

template <typename Session, typename Params>
SessionFarmResult run_farm(ProtocolKind kind, const Params& params,
                           const SessionFarmOptions& options) {
  validate_options(options);
  params.validate();

  const std::size_t n = options.sessions;
  const std::size_t shard_size = std::min(options.shard_size, n);
  const std::size_t shards = (n + shard_size - 1) / shard_size;

  std::optional<ParallelSweep> local_engine;
  ParallelSweep* engine = options.engine;
  if (engine == nullptr) {
    local_engine.emplace(options.threads);
    engine = &*local_engine;
  }

  const std::vector<ShardOutcome> outcomes =
      engine->map_indexed(shards, [&](std::size_t shard) {
        const std::size_t first = shard * shard_size;
        const std::size_t count = std::min(shard_size, n - first);
        return run_shard<Session>(kind, params, options, first, count);
      });

  SessionFarmResult result;
  result.shards = shards;
  std::vector<Metrics> all_sessions;
  all_sessions.reserve(n);
  for (const ShardOutcome& outcome : outcomes) {
    all_sessions.insert(all_sessions.end(), outcome.per_session.begin(),
                        outcome.per_session.end());
    for (const protocols::ChurnReport& churn : outcome.per_session_churn) {
      result.churn.absorb(churn);
    }
    result.messages += outcome.messages;
    result.events_executed += outcome.events;
    result.receiver_timeouts += outcome.receiver_timeouts;
    result.relay_crashes += outcome.relay_crashes;
    result.relay_recoveries += outcome.relay_recoveries;
    result.horizon = std::max(result.horizon, outcome.end_time);
    result.peak_sessions_in_flight += outcome.peak;
  }
  result.sessions = all_sessions.size();
  result.summary = summarize_replicas(all_sessions);
  if (options.keep_per_session) result.per_session = std::move(all_sessions);
  return result;
}

}  // namespace

SessionFarmResult run_reference_session_farm(ProtocolKind kind,
                                   const SingleHopParams& params,
                                   const SessionFarmOptions& options) {
  if (options.leaf_churn.enabled()) {
    throw std::invalid_argument(
        "run_reference_session_farm: leaf churn needs tree or chain sessions");
  }
  if (options.scenario.enabled()) {
    throw std::invalid_argument(
        "run_reference_session_farm: scenario processes need tree or chain sessions");
  }
  return run_farm<SingleHopSession>(kind, params, options);
}

SessionFarmResult run_reference_session_farm(ProtocolKind kind,
                                   const MultiHopParams& params,
                                   const SessionFarmOptions& options) {
  if (!supports_multi_hop(kind)) {
    throw std::invalid_argument(
        "run_reference_session_farm: unsupported multi-hop protocol");
  }
  // A chain session IS a fan-out-1 tree session: one session class, one
  // wiring path (TreeSession's Topology == Chain's, bit for bit).
  return run_farm<TreeSession>(kind, analytic::TreeParams::chain(params),
                               options);
}

SessionFarmResult run_reference_session_farm(ProtocolKind kind,
                                   const analytic::TreeParams& params,
                                   const SessionFarmOptions& options) {
  if (!supports_multi_hop(kind)) {
    throw std::invalid_argument(
        "run_reference_session_farm: unsupported multi-hop protocol");
  }
  return run_farm<TreeSession>(kind, params, options);
}

}  // namespace sigcomp::exp::testing
