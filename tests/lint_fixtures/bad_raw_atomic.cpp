// Fixture: raw std::atomic outside the audited fabric files
// (exp/shard_ring, exp/thread_pool).  Ad-hoc atomics are how
// nondeterministic cross-thread side channels sneak past the stamped ring
// discipline; the rule is path-scoped, so this file -- not on the
// allowlist -- must trip on every atomic use.
#include <atomic>

struct SideChannel {
  std::atomic<int> counter{0};    // LINT[raw-atomic]
  std::atomic<bool> done{false};  // LINT[raw-atomic]
};

void publish(int* slot, int value) {
  std::atomic_thread_fence(std::memory_order_release);  // LINT[raw-atomic]
  *slot = value;
}
