// Beyond-the-paper figure: interior-relay crash/recovery on live signaling
// trees.  A crashed relay loses its state silently and goes deaf; its whole
// subtree is orphaned at once (a correlated failure, unlike iid leaf churn).
// Each protocol family repairs in its own currency -- soft state re-installs
// from the parent's next forwarded refresh (repair ~ downtime + R/2, no
// detector needed), reliable triggers additionally replay updates that were
// pending at crash time, and hard state waits for an external failure
// detector and then re-grafts from the parent's cached copy (repair ~
// max(downtime, detection)).  Sweeping the detector latency across the
// refresh timescale exposes the crossover: a fast detector beats the
// refresh clock, a slow one loses to it.
//
// All runs fan out over the parallel engine keyed by (cell, replica), so
// the sweep is bit-identical at any thread count.  With --quick the binary
// (a) re-runs the grid at 1, 2 and 8 threads and exits 1 on any bit
// difference, and (b) re-runs a crashing + bursting tree-session farm at
// several shard sizes and thread counts and exits 1 unless the results are
// bit-identical -- the scenario-engine determinism locks, CI-enforced.
//
// Usage: fig_crash_recovery [--quick] [--csv PATH] [--threads N]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/parallel.hpp"
#include "exp/session_farm.hpp"
#include "exp/table.hpp"
#include "protocols/scenario.hpp"
#include "protocols/tree_run.hpp"

namespace {

using namespace sigcomp;

constexpr std::uint64_t kBaseSeed = 29;
constexpr double kRecoveryTime = 5.0;  ///< mean relay downtime (seconds)

struct Scenario {
  std::size_t fanout = 2;
  double crash_rate = 0.0;      ///< tree-wide crash rate (crashes/s)
  double detector_delay = 1.0;  ///< mean HS detection latency (seconds)
  analytic::TreeParams params;

  [[nodiscard]] std::string shape() const {
    return "f" + std::to_string(fanout) + " d2";
  }
};

std::vector<Scenario> build_scenarios(bool quick) {
  const std::vector<std::size_t> fanouts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
  const std::vector<double> crash_rates =
      quick ? std::vector<double>{1.0 / 100.0}
            : std::vector<double>{1.0 / 400.0, 1.0 / 100.0};
  // The crossover axis: detector latencies below and above the refresh
  // timescale (R = 5 s, soft-state repair ~ downtime + R/2).
  const std::vector<double> detectors =
      quick ? std::vector<double>{0.5, 30.0}
            : std::vector<double>{0.2, 2.0, 10.0, 30.0};
  MultiHopParams base;
  base.loss = 0.02;
  base.delay = 0.01;
  std::vector<Scenario> out;
  for (const std::size_t fanout : fanouts) {
    for (const double crash_rate : crash_rates) {
      for (const double detector : detectors) {
        Scenario s;
        s.fanout = fanout;
        s.crash_rate = crash_rate;
        s.detector_delay = detector;
        s.params = analytic::TreeParams::balanced(base, fanout, 2);
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

/// Every replica result of the whole grid, in (scenario, protocol, replica)
/// order -- the unit the thread-identity check compares bit-for-bit.
std::vector<protocols::TreeSimResult> run_grid(
    const std::vector<Scenario>& scenarios, std::size_t replications,
    double duration, exp::ParallelSweep& engine) {
  const std::size_t protocols_n = kMultiHopProtocols.size();
  const std::size_t jobs = scenarios.size() * protocols_n * replications;
  return engine.map_indexed(jobs, [&](std::size_t job) {
    const std::size_t replica = job % replications;
    const std::size_t cell = job / replications;
    const std::size_t protocol = cell % protocols_n;
    const std::size_t scenario = cell / protocols_n;
    protocols::TreeSimOptions options;
    options.seed = exp::replica_seed(kBaseSeed, cell, replica);
    options.duration = duration;
    options.scenario.failure = protocols::FailureConfig::relay_crash(
        scenarios[scenario].crash_rate, kRecoveryTime,
        scenarios[scenario].detector_delay);
    return protocols::run_tree(kMultiHopProtocols[protocol],
                               scenarios[scenario].params, options);
  });
}

bool identical(const std::vector<protocols::TreeSimResult>& a,
               const std::vector<protocols::TreeSimResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].metrics.inconsistency != b[i].metrics.inconsistency ||
        a[i].messages != b[i].messages ||
        a[i].relay_timeouts != b[i].relay_timeouts ||
        a[i].relay_crashes != b[i].relay_crashes ||
        a[i].relay_recoveries != b[i].relay_recoveries ||
        !(a[i].churn == b[i].churn)) {
      return false;
    }
  }
  return true;
}

/// Shard-size / thread-count determinism of a farm running the full
/// scenario engine at once -- relay crashes, a flash-crowd rejoin storm
/// riding on leaf churn, and shared-risk leave bursts (the acceptance
/// lock: scenario runs must be bit-identical across 1/2/8 threads AND
/// shard sizes).
bool farm_determinism_check() {
  MultiHopParams base;
  base.loss = 0.02;
  const analytic::TreeParams tree = analytic::TreeParams::balanced(base, 2, 2);
  exp::SessionFarmOptions options;
  options.seed = 101;
  options.sessions = 64;
  options.arrival_rate = 4.0;
  options.session_lifetime = 80.0;
  options.leaf_churn.leaf_lifetime = 20.0;
  options.leaf_churn.rejoin_rate = 1.0 / 10.0;
  options.scenario.failure =
      protocols::FailureConfig::relay_crash(1.0 / 40.0, kRecoveryTime, 2.0);
  options.scenario.arrival =
      protocols::ArrivalConfig::flash_crowd(20.0, 1.0, 15.0);
  options.scenario.shared_risk = protocols::SharedRiskConfig::bursts(1.0 / 50.0);
  options.shard_size = 64;
  options.threads = 1;
  const exp::SessionFarmResult reference =
      exp::run_session_farm(ProtocolKind::kHS, tree, options);
  bool ok = reference.relay_crashes > 0 && reference.churn.leaves > 0;
  if (!ok) {
    std::cerr << "FAIL: scenario farm reference saw no crashes or leaves\n";
  }
  for (const std::size_t shard_size : {9u, 16u, 64u}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      exp::SessionFarmOptions variant = options;
      variant.shard_size = shard_size;
      variant.threads = threads;
      const exp::SessionFarmResult result =
          exp::run_session_farm(ProtocolKind::kHS, tree, variant);
      if (!(result.churn == reference.churn) ||
          result.messages != reference.messages ||
          result.relay_crashes != reference.relay_crashes ||
          result.relay_recoveries != reference.relay_recoveries ||
          result.summary.mean.inconsistency !=
              reference.summary.mean.inconsistency) {
        std::cerr << "FAIL: scenario farm diverged at shard size "
                  << shard_size << ", " << threads << " thread(s)\n";
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) try {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t replications = quick ? 2 : 5;
  const double duration = quick ? 2000.0 : 20000.0;
  const std::vector<Scenario> scenarios = build_scenarios(quick);
  const std::size_t protocols_n = kMultiHopProtocols.size();

  exp::ParallelSweep engine(exp::threads_from_args(argc, argv));
  const std::vector<protocols::TreeSimResult> grid =
      run_grid(scenarios, replications, duration, engine);

  exp::Table table(
      "Crash-recovery figure: interior-relay crashes, mean downtime " +
          std::to_string(static_cast<int>(kRecoveryTime)) +
          " s, depth-2 trees (a crashed relay orphans its whole subtree)",
      {"shape", "crash/s", "detector (s)", "protocol", "crashes",
       "recoveries", "I (sim)", "rate (msg/s)", "timeouts"});
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    for (std::size_t p = 0; p < protocols_n; ++p) {
      const std::size_t cell = s * protocols_n + p;
      sim::RunningStats inconsistency;
      sim::RunningStats rate;
      double crashes = 0.0;
      double recoveries = 0.0;
      double timeouts = 0.0;
      for (std::size_t r = 0; r < replications; ++r) {
        const protocols::TreeSimResult& run = grid[cell * replications + r];
        inconsistency.add(run.metrics.inconsistency);
        rate.add(run.metrics.raw_message_rate);
        crashes += static_cast<double>(run.relay_crashes) /
                   static_cast<double>(replications);
        recoveries += static_cast<double>(run.relay_recoveries) /
                      static_cast<double>(replications);
        timeouts += static_cast<double>(run.relay_timeouts) /
                    static_cast<double>(replications);
      }
      table.add_row({scenario.shape(), scenario.crash_rate,
                     scenario.detector_delay,
                     std::string(to_string(kMultiHopProtocols[p])), crashes,
                     recoveries, inconsistency.mean(), rate.mean(),
                     timeouts});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: soft state ignores the detector column -- its repair "
         "clock is the refresh timer (repair ~ downtime + R/2), so its "
         "inconsistency is flat across detector latencies.  Hard state "
         "repairs at ~max(downtime, detection): left of the refresh "
         "timescale the detector wins and HS shows the lowest orphaned-"
         "state inconsistency; right of it the soft-state timeout wins and "
         "the ranking flips -- the crossover the row pairs make visible.\n";

  bool ok = true;
  if (quick) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      exp::ParallelSweep check(threads);
      if (!identical(grid, run_grid(scenarios, replications, duration, check))) {
        std::cerr << "FAIL: results at " << threads
                  << " threads differ from the --threads run\n";
        ok = false;
      }
    }
    std::cout << (ok ? "bit-identity across 1/2/8 threads: OK\n"
                     : "bit-identity across 1/2/8 threads: FAILED\n");
    const bool farm_ok = farm_determinism_check();
    std::cout << (farm_ok
                      ? "scenario farm bit-identical across shard sizes and "
                        "threads: OK\n"
                      : "scenario farm determinism: FAILED\n");
    ok = ok && farm_ok;
  }

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
