// Timer tuning: find the integrated-cost-optimal refresh timer per protocol
// (the Fig. 7 "sensitive optimal operating point" observation) and show how
// the optimum and its sensitivity change with the application's
// inconsistency weight w.
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"
#include "exp/tuning.hpp"

int main() {
  using namespace sigcomp;

  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const ProtocolKind soft_protocols[] = {ProtocolKind::kSS, ProtocolKind::kSSER,
                                         ProtocolKind::kSSRT,
                                         ProtocolKind::kSSRTR};

  for (const double weight : {1.0, 10.0, 100.0}) {
    exp::Table table(
        "Cost-optimal refresh timer (T = 3R), inconsistency weight w = " +
            exp::format_number(weight),
        {"protocol", "optimal R (s)", "cost at optimum", "I at optimum",
         "M at optimum", "cost at 2x R", "cost at R/2"});
    for (const ProtocolKind kind : soft_protocols) {
      const exp::TuningResult best =
          exp::optimal_refresh_timer(kind, params, weight);
      const auto cost_at = [&](double refresh) {
        return integrated_cost(
            evaluate_analytic(kind, params.with_refresh_scaled_timeout(refresh)),
            weight);
      };
      table.add_row({std::string(to_string(kind)), best.argmin, best.cost,
                     best.metrics.inconsistency, best.metrics.message_rate,
                     cost_at(2.0 * best.argmin), cost_at(0.5 * best.argmin)});
    }
    // HS has no refresh timer: print its flat cost for reference.
    const Metrics hs = evaluate_analytic(ProtocolKind::kHS, params);
    table.add_row({std::string("HS (no R)"), 0.0, integrated_cost(hs, weight),
                   hs.inconsistency, hs.message_rate,
                   integrated_cost(hs, weight), integrated_cost(hs, weight)});
    table.print(std::cout);
    std::cout << '\n';
  }

  // The timeout-to-refresh ratio question (Fig. 8a): what multiple of R
  // should T be?
  exp::Table ratio("Cost-optimal state-timeout timer with R fixed at 5 s (w = 10)",
                   {"protocol", "optimal T (s)", "T / R", "cost at optimum"});
  for (const ProtocolKind kind : soft_protocols) {
    const exp::TuningResult best = exp::optimal_timeout_timer(kind, params);
    ratio.add_row({std::string(to_string(kind)), best.argmin,
                   best.argmin / params.refresh_timer, best.cost});
  }
  ratio.print(std::cout);

  std::cout << "\nObservations: SS/SS+RT sit in a narrow cost valley (double "
               "or halve R and pay), SS+ER is forgiving toward long timers, "
               "and SS+RTR prefers the longest timer the deployment "
               "tolerates -- all three paper claims, made executable.\n";
  return 0;
}
