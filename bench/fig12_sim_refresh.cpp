// Figure 12: analytic model (exponential timers) versus simulation
// (deterministic timers) as a function of the soft-state refresh timer R
// (T = 3R), inconsistency ratio and normalized message rate.
//
// Usage: fig12_sim_refresh [--csv PATH] [--quick]
#include <iostream>
#include <string_view>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") quick = true;
  }
  const std::size_t replications = quick ? 5 : 10;
  const std::size_t sessions = quick ? 200 : 600;

  exp::Table table(
      "Fig. 12: analytic (exp timers) vs simulation (deterministic timers) "
      "vs refresh timer R (T = 3R)",
      {"refresh_s", "protocol", "I(model)", "I(sim)", "I(sim)ci95",
       "M(model)", "M(sim)", "M(sim)ci95"});

  for (const double refresh : exp::log_space(0.5, 100.0, 7)) {
    const SingleHopParams p =
        SingleHopParams::kazaa_defaults().with_refresh_scaled_timeout(refresh);
    for (const ProtocolKind kind : kAllProtocols) {
      const Metrics model = evaluate_analytic(kind, p);
      protocols::SimOptions options;
      options.sessions = sessions;
      options.seed = 97;
      options.timer_dist = sim::Distribution::kDeterministic;
      const protocols::ReplicatedResult sim =
          protocols::run_single_hop_replicated(kind, p, options, replications);
      table.add_row({refresh, std::string(to_string(kind)),
                     model.inconsistency, sim.inconsistency.mean,
                     sim.inconsistency.half_width, model.message_rate,
                     sim.message_rate.mean, sim.message_rate.half_width});
    }
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
