// Fixed-size thread pool for the experiment engine.
//
// Deliberately work-stealing-free: a single locked queue is plenty when the
// unit of work is a whole simulation replica or an analytic solve (tens of
// microseconds and up), and the simple structure keeps scheduling easy to
// reason about.  Determinism of results is guaranteed one level up, in
// ParallelSweep, by keying every result to its grid index rather than to
// the order in which workers finish.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sigcomp::exp {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue (running every task already submitted), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw; wrap anything that can (see
  /// parallel_for, which captures the first exception and rethrows it on
  /// the calling thread).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished and the queue is empty.
  void wait_idle();

  /// hardware_concurrency with a floor of 1 (the standard allows 0).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< signals workers: task ready / stop
  std::condition_variable idle_cv_;  ///< signals wait_idle: all work done
  std::size_t in_flight_ = 0;        ///< queued + currently running tasks
  bool stop_ = false;
};

/// Runs body(0), ..., body(n-1) across the pool and blocks until all are
/// done.  Indices are claimed dynamically (contiguous counter), so uneven
/// per-index cost load-balances; callers that need deterministic output
/// must key results by index, never by completion order.  If any invocation
/// throws, the first exception (by completion time) is rethrown here after
/// every claimed index has finished; remaining unclaimed indices are
/// abandoned.  A pool of size 1 degenerates to a serial loop on the calling
/// thread.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace sigcomp::exp
