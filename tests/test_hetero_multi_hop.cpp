#include "analytic/hetero_multi_hop.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "analytic/multi_hop.hpp"
#include "protocols/multi_hop_run.hpp"

namespace sigcomp::analytic {
namespace {

const MultiHopParams kHomogeneous = [] {
  MultiHopParams p = MultiHopParams::reservation_defaults();
  p.hops = 8;
  return p;
}();

TEST(HeteroParams, FromHomogeneousCopiesEverything) {
  const HeteroMultiHopParams p =
      HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  EXPECT_EQ(p.hops(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(p.loss[i], kHomogeneous.loss);
    EXPECT_DOUBLE_EQ(p.delay[i], kHomogeneous.delay);
  }
  EXPECT_DOUBLE_EQ(p.update_rate, kHomogeneous.update_rate);
  EXPECT_NO_THROW(p.validate());
}

TEST(HeteroParams, SurvivalIsProductOfPerHopSurvival) {
  HeteroMultiHopParams p = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  p.loss = {0.1, 0.2, 0.0};
  p.delay = {0.01, 0.01, 0.01};
  EXPECT_DOUBLE_EQ(p.survival_through(0), 1.0);
  EXPECT_DOUBLE_EQ(p.survival_through(1), 0.9);
  EXPECT_DOUBLE_EQ(p.survival_through(2), 0.9 * 0.8);
  EXPECT_DOUBLE_EQ(p.survival_through(3), 0.9 * 0.8);
  EXPECT_THROW((void)p.survival_through(4), std::out_of_range);
}

TEST(HeteroParams, ExpectedHopTransmissionsMatchesHomogeneousFormula) {
  const HeteroMultiHopParams p =
      HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  EXPECT_NEAR(p.expected_hop_transmissions(),
              kHomogeneous.expected_hop_transmissions(), 1e-12);
}

TEST(HeteroParams, RecoveryRateUsesTotalPathDelay) {
  HeteroMultiHopParams p = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  p.loss = {0.01, 0.01};
  p.delay = {0.02, 0.08};
  EXPECT_NEAR(p.recovery_rate(), 1.0 / (2.0 * 0.1), 1e-12);
}

TEST(HeteroParams, ValidationCatchesBadInput) {
  HeteroMultiHopParams p = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  p.delay.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);  // size mismatch
  p = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  p.loss[3] = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  p.delay[0] = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  p.loss.clear();
  p.delay.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(HeteroModel, ReducesToHomogeneousModelExactly) {
  // The key regression guard: equal hops must reproduce the paper's model
  // to numerical precision, for every supported protocol.
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const MultiHopModel base(kind, kHomogeneous);
    const HeteroMultiHopModel hetero(
        kind, HeteroMultiHopParams::from_homogeneous(kHomogeneous));
    EXPECT_NEAR(hetero.inconsistency(), base.inconsistency(), 1e-12)
        << to_string(kind);
    for (std::size_t hop = 1; hop <= kHomogeneous.hops; ++hop) {
      EXPECT_NEAR(hetero.hop_inconsistency(hop), base.hop_inconsistency(hop),
                  1e-12)
          << to_string(kind) << " hop " << hop;
    }
    EXPECT_NEAR(hetero.metrics().raw_message_rate,
                base.metrics().raw_message_rate, 1e-9)
        << to_string(kind);
  }
}

TEST(HeteroModel, TimeoutRateMatchesHomogeneousFormula) {
  const HeteroMultiHopParams p =
      HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(HeteroMultiHopModel::timeout_rate(p, j),
                MultiHopModel::timeout_rate(kHomogeneous, j), 1e-15)
        << "j = " << j;
  }
}

TEST(HeteroModel, ExplicitRemovalProtocolsReduceToTheirBaseChain) {
  // No removal transitions in the chain CTMC: SS+ER == SS, SS+RTR == SS+RT.
  const HeteroMultiHopParams p =
      HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  EXPECT_EQ(HeteroMultiHopModel(ProtocolKind::kSSER, p).inconsistency(),
            HeteroMultiHopModel(ProtocolKind::kSS, p).inconsistency());
  EXPECT_EQ(HeteroMultiHopModel(ProtocolKind::kSSRTR, p).inconsistency(),
            HeteroMultiHopModel(ProtocolKind::kSSRT, p).inconsistency());
}

TEST(HeteroModel, BadHopHurtsSoftStateMoreWhenEarly) {
  // An early lossy hop starves every downstream refresh; a late one only
  // the tail.  End-to-end I(SS) must be (weakly) worse with the bad hop at
  // position 1 than at position K.
  HeteroMultiHopParams early = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  early.loss[0] = 0.25;
  HeteroMultiHopParams late = HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  late.loss[7] = 0.25;
  const double i_early =
      HeteroMultiHopModel(ProtocolKind::kSS, early).inconsistency();
  const double i_late =
      HeteroMultiHopModel(ProtocolKind::kSS, late).inconsistency();
  EXPECT_GE(i_early, i_late);
  // Early-hop damage shows up at hop 1 already.
  EXPECT_GT(HeteroMultiHopModel(ProtocolKind::kSS, early).hop_inconsistency(1),
            HeteroMultiHopModel(ProtocolKind::kSS, late).hop_inconsistency(1));
}

TEST(HeteroModel, HopByHopReliabilityContainsTheDamage) {
  // One bad hop inflates end-to-end SS inconsistency by a much larger
  // factor than SS+RT's: every SS refresh must cross the bad link, while
  // SS+RT repairs it with one-hop retransmissions.
  const HeteroMultiHopParams base =
      HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  HeteroMultiHopParams degraded = base;
  degraded.loss[0] = 0.25;
  const double ss_factor =
      HeteroMultiHopModel(ProtocolKind::kSS, degraded).inconsistency() /
      HeteroMultiHopModel(ProtocolKind::kSS, base).inconsistency();
  const double rt_factor =
      HeteroMultiHopModel(ProtocolKind::kSSRT, degraded).inconsistency() /
      HeteroMultiHopModel(ProtocolKind::kSSRT, base).inconsistency();
  EXPECT_GT(ss_factor, 1.5);
  EXPECT_LT(rt_factor, 1.4);
  EXPECT_GT(ss_factor, 1.5 * rt_factor);
}

TEST(HeteroModel, BadHopIncreasesInconsistencyVsBaseline) {
  const HeteroMultiHopParams base =
      HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  HeteroMultiHopParams degraded = base;
  degraded.loss[4] = 0.3;
  for (const ProtocolKind kind : kMultiHopProtocols) {
    EXPECT_GT(HeteroMultiHopModel(kind, degraded).inconsistency(),
              HeteroMultiHopModel(kind, base).inconsistency())
        << to_string(kind);
  }
}

TEST(HeteroSim, HomogeneousOverloadMatchesHeteroOverloadExactly) {
  MultiHopParams p = kHomogeneous;
  p.hops = 4;
  protocols::MultiHopSimOptions options;
  options.duration = 2000.0;
  options.seed = 17;
  const auto direct = protocols::run_multi_hop(ProtocolKind::kSSRT, p, options);
  const auto via_hetero = protocols::run_multi_hop(
      ProtocolKind::kSSRT, HeteroMultiHopParams::from_homogeneous(p), options);
  EXPECT_EQ(direct.messages, via_hetero.messages);
  EXPECT_DOUBLE_EQ(direct.metrics.inconsistency,
                   via_hetero.metrics.inconsistency);
}

TEST(HeteroSim, TracksHeteroModelWithABadHop) {
  // Cross-validation of the extension: simulated heterogeneous chain vs the
  // generalized analytic model, with a 10x-loss hop in the middle.
  MultiHopParams base = kHomogeneous;
  base.hops = 6;
  HeteroMultiHopParams p = HeteroMultiHopParams::from_homogeneous(base);
  p.loss[2] = 0.2;
  protocols::MultiHopSimOptions options;
  options.duration = 30000.0;
  options.seed = 23;
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const HeteroMultiHopModel model(kind, p);
    const auto sim = protocols::run_multi_hop(kind, p, options);
    // Same order of magnitude: the lumped slow-path approximation diverges
    // most on a very lossy hop (ACK losses trigger extra hop-by-hop
    // retransmission cycles the model does not see).
    EXPECT_GT(sim.metrics.inconsistency, 0.5 * model.inconsistency())
        << to_string(kind);
    EXPECT_LT(sim.metrics.inconsistency, 2.2 * model.inconsistency())
        << to_string(kind);
  }
}

TEST(HeteroSim, BadHopShowsUpInPerHopProfile) {
  MultiHopParams base = kHomogeneous;
  base.hops = 6;
  HeteroMultiHopParams p = HeteroMultiHopParams::from_homogeneous(base);
  p.loss[2] = 0.25;  // hop 3 is bad
  protocols::MultiHopSimOptions options;
  options.duration = 20000.0;
  options.seed = 29;
  const auto sim = protocols::run_multi_hop(ProtocolKind::kSSRT, p, options);
  // The jump across the bad hop dominates the profile's increments.
  const double jump_bad = sim.hop_inconsistency[2] - sim.hop_inconsistency[1];
  const double jump_good = sim.hop_inconsistency[1] - sim.hop_inconsistency[0];
  EXPECT_GT(jump_bad, 2.0 * jump_good);
}

TEST(HeteroModel, SlowHopDominatesDelay) {
  // One hop with 10x delay inflates the fast-path propagation time and
  // therefore update inconsistency.
  const HeteroMultiHopParams base =
      HeteroMultiHopParams::from_homogeneous(kHomogeneous);
  HeteroMultiHopParams slow = base;
  slow.delay[3] = 0.3;
  EXPECT_GT(HeteroMultiHopModel(ProtocolKind::kSS, slow).inconsistency(),
            HeteroMultiHopModel(ProtocolKind::kSS, base).inconsistency());
}

}  // namespace
}  // namespace sigcomp::analytic
