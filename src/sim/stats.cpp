#include "sim/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace sigcomp::sim {

void TimeWeightedValue::set(Time now, double v) {
  if (!started_) {
    start_time_ = last_time_;
    started_ = true;
  }
  if (now < last_time_) {
    throw std::invalid_argument("TimeWeightedValue::set: time went backwards");
  }
  integral_ += value_ * (now - last_time_);
  last_time_ = now;
  value_ = v;
}

double TimeWeightedValue::integral(Time now) const {
  if (now < last_time_) {
    throw std::invalid_argument("TimeWeightedValue::integral: time went backwards");
  }
  return integral_ + value_ * (now - last_time_);
}

double TimeWeightedValue::mean(Time now) const {
  const Time start = started_ ? start_time_ : last_time_;
  const Time window = now - start;
  if (window <= 0.0) return 0.0;
  return integral(now) / window;
}

void RunningStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double student_t_95(std::size_t df) noexcept {
  // Two-sided 95% critical values, df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return kTable[0];
  if (df <= kTable.size()) return kTable[df - 1];
  // Above the dense table, return the value at the largest tabulated df
  // that does not exceed the requested one.  t decreases in df, so this is
  // always conservative (a slightly *wider* interval); returning the value
  // of the upper breakpoint -- as this function once did -- silently
  // narrowed every CI (e.g. df = 31 got the df = 40 value 2.021 < 2.040).
  // Entries are rounded up at the 4th decimal to stay conservative at the
  // breakpoints themselves.
  struct Breakpoint {
    std::size_t df;
    double value;
  };
  static constexpr std::array<Breakpoint, 9> kCoarse = {{{40, 2.0211},
                                                         {50, 2.0086},
                                                         {60, 2.0003},
                                                         {80, 1.9901},
                                                         {100, 1.9840},
                                                         {120, 1.9800},
                                                         {200, 1.9719},
                                                         {500, 1.9648},
                                                         {1000, 1.9624}}};
  double value = kTable.back();
  for (const Breakpoint& bp : kCoarse) {
    if (df < bp.df) break;
    value = bp.value;
  }
  return value;
}

ConfidenceInterval confidence_interval_95(const RunningStats& s) noexcept {
  ConfidenceInterval ci;
  ci.mean = s.mean();
  ci.samples = s.count();
  if (s.count() >= 2) {
    ci.half_width = student_t_95(s.count() - 1) * s.std_error();
  }
  return ci;
}

}  // namespace sigcomp::sim
