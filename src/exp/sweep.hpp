// Parameter-sweep axes used by the figure benches.
#pragma once

#include <cstddef>
#include <vector>

namespace sigcomp::exp {

/// n points spaced logarithmically in [lo, hi] (inclusive).  Requires
/// 0 < lo <= hi and n >= 2 (n == 1 returns {lo}).
[[nodiscard]] std::vector<double> log_space(double lo, double hi, std::size_t n);

/// n points spaced linearly in [lo, hi] (inclusive).
[[nodiscard]] std::vector<double> lin_space(double lo, double hi, std::size_t n);

}  // namespace sigcomp::exp
