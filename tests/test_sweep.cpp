#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sigcomp::exp {
namespace {

TEST(LogSpace, EndpointsAreExact) {
  const auto v = log_space(0.1, 100.0, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_DOUBLE_EQ(v.front(), 0.1);
  EXPECT_DOUBLE_EQ(v.back(), 100.0);
}

TEST(LogSpace, IsGeometric) {
  const auto v = log_space(1.0, 16.0, 5);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(v[i] / v[i - 1], 2.0, 1e-9);
  }
}

TEST(LogSpace, IsStrictlyIncreasing) {
  const auto v = log_space(0.001, 1000.0, 30);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
}

TEST(LogSpace, DegenerateCounts) {
  EXPECT_TRUE(log_space(1.0, 2.0, 0).empty());
  const auto one = log_space(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
}

TEST(LogSpace, RejectsBadRange) {
  EXPECT_THROW((void)log_space(0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)log_space(-1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)log_space(2.0, 1.0, 5), std::invalid_argument);
}

TEST(LinSpace, EndpointsAndSpacing) {
  const auto v = lin_space(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.25);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(LinSpace, SinglePointAndEmpty) {
  EXPECT_TRUE(lin_space(0.0, 1.0, 0).empty());
  const auto one = lin_space(5.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 5.0);
}

TEST(LinSpace, RejectsReversedRange) {
  EXPECT_THROW((void)lin_space(2.0, 1.0, 5), std::invalid_argument);
}

TEST(LinSpace, NegativeRangeWorks) {
  const auto v = lin_space(-2.0, 2.0, 5);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
}

}  // namespace
}  // namespace sigcomp::exp
