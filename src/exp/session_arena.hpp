// Pre-sized per-shard session arena with free-list slot reuse.
//
// The million-session farm places every per-session object (channels,
// engines, RNG streams, metric accumulators -- one Session aggregate) into
// chunked raw storage owned by the shard, so steady-state session
// arrival/teardown performs ZERO heap allocations: an arriving session
// placement-constructs into a recycled slot, a finished session moves to a
// cooling list and is destroyed + recycled once it is quiescent.  This is
// the sim::EventQueue pooled-slot discipline lifted to whole sessions, and
// tests assert it the same way (flat slot_capacity(), flat
// chunk_allocations(), flat EventCallback::heap_allocations()).
//
// Recycling safety is the session type's contract, not the arena's: a slot
// is only reused after `T::quiescent()` returns true, which for single-hop
// sessions means "absorbed AND both channels drained" -- no pending event
// can still reference the object.  Session types that cannot cheaply prove
// quiescence (tree sessions) simply never retire; their slots live until
// the arena is destroyed, which matches the pre-arena farm's memory
// behavior exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace sigcomp::exp {

/// Chunked object pool for session state.  `T` must expose
/// `bool quiescent() const` -- true when no pending simulator event can
/// still reference the object, making destruction + slot reuse safe.
template <typename T>
class SessionArena {
 public:
  /// `capacity_hint` is the expected session count of the owning shard;
  /// chunks are sized min(hint, 256) so a farm of many tiny shards does not
  /// over-allocate while a big shard amortizes growth.
  explicit SessionArena(std::size_t capacity_hint)
      : chunk_size_(capacity_hint < kMaxChunk
                        ? (capacity_hint > 0 ? capacity_hint : 1)
                        : kMaxChunk) {}

  SessionArena(const SessionArena&) = delete;             ///< non-copyable
  SessionArena& operator=(const SessionArena&) = delete;  ///< non-copyable

  /// Destroys every live and cooling occupant, then frees the chunks.
  /// Destroy the arena BEFORE its Simulator so session destructors may
  /// still touch it.
  ~SessionArena() {
    for (std::uint32_t slot = 0; slot < next_unused_; ++slot) {
      if (state_[slot] != State::kFree) slot_ptr(slot)->~T();
    }
    for (T* chunk : chunks_) {
      ::operator delete(static_cast<void*>(chunk),
                        std::align_val_t{alignof(T)});
    }
  }

  /// Constructs a session in a pooled slot and returns {slot, object}.
  /// Probes a few cooling entries first (destroying + recycling the
  /// quiescent ones), so steady-state churn runs entirely off the free
  /// list; a new chunk is allocated only when the pool's high-water mark
  /// grows.
  template <typename... Args>
  std::pair<std::uint32_t, T*> spawn(Args&&... args) {
    reclaim();
    if (free_.empty()) {
      // Before growing the pool, sweep the WHOLE cooling list: a slot is
      // only ever created when no recyclable slot exists, which is what
      // makes slot_capacity() a true high-water mark of live + cooling
      // sessions (and growth a ramp-up-only event).  The sweep is O(cooling)
      // but runs only where the alternative is a chunk allocation.
      reclaim_all();
    }
    std::uint32_t slot = 0;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      if (next_unused_ == slot_count_) grow();
      slot = next_unused_++;
    }
    T* ptr = slot_ptr(slot);
    ::new (static_cast<void*>(ptr)) T(std::forward<Args>(args)...);
    state_[slot] = State::kLive;
    return {slot, ptr};
  }

  /// Moves a finished session to the cooling list.  The object stays
  /// constructed (stragglers may still deliver to it) until a later spawn
  /// finds it quiescent, destroys it and recycles the slot.
  void retire(std::uint32_t slot) {
    state_[slot] = State::kCooling;
    cooling_.push_back(slot);
  }

  /// Slots ever created -- the pool's high-water mark of concurrently
  /// constructed sessions.  Free-list recycling keeps this far below the
  /// total session count under churn; tests assert it.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return next_unused_;
  }

  /// Chunk allocations performed since construction.  Flat in steady state
  /// -- the arena's `heap_allocations()`-style zero-allocation counter.
  [[nodiscard]] std::size_t chunk_allocations() const noexcept {
    return chunks_.size();
  }

  /// Sessions currently awaiting quiescence on the cooling list.
  [[nodiscard]] std::size_t cooling() const noexcept { return cooling_.size(); }

 private:
  enum class State : unsigned char { kFree, kLive, kCooling };

  /// Chunk-size cap: bounds per-shard slack to 256 sessions' storage.
  static constexpr std::size_t kMaxChunk = 256;
  /// Cooling entries examined per spawn.  The probe cursor rotates through
  /// the list across spawns, so a few slow-to-quiesce sessions cannot
  /// head-block reclamation -- every entry is revisited within
  /// cooling()/kCoolingProbe arrivals -- while the arrival path still never
  /// scans the list whole.
  static constexpr std::size_t kCoolingProbe = 8;

  [[nodiscard]] T* slot_ptr(std::uint32_t slot) noexcept {
    return chunks_[slot / chunk_size_] + slot % chunk_size_;
  }

  void reclaim() {
    std::size_t probes = cooling_.size() < kCoolingProbe ? cooling_.size()
                                                         : kCoolingProbe;
    while (probes-- > 0 && !cooling_.empty()) {
      if (scan_ >= cooling_.size()) scan_ = 0;
      const std::uint32_t slot = cooling_[scan_];
      if (slot_ptr(slot)->quiescent()) {
        slot_ptr(slot)->~T();
        state_[slot] = State::kFree;
        free_.push_back(slot);
        // Swap-remove: O(1), allocation-free; the swapped-in entry is
        // examined by the next probe (order is only a heuristic -- slot
        // choice cannot affect results, sessions are keyed by global
        // index, not address).
        cooling_[scan_] = cooling_.back();
        cooling_.pop_back();
      } else {
        ++scan_;
      }
    }
  }

  /// Destroys and recycles EVERY quiescent cooling session (the
  /// free-list-empty slow path of spawn).
  void reclaim_all() {
    std::size_t i = 0;
    while (i < cooling_.size()) {
      const std::uint32_t slot = cooling_[i];
      if (slot_ptr(slot)->quiescent()) {
        slot_ptr(slot)->~T();
        state_[slot] = State::kFree;
        free_.push_back(slot);
        cooling_[i] = cooling_.back();
        cooling_.pop_back();
      } else {
        ++i;
      }
    }
  }

  void grow() {
    T* chunk = static_cast<T*>(
        ::operator new(chunk_size_ * sizeof(T), std::align_val_t{alignof(T)}));
    chunks_.push_back(chunk);
    slot_count_ += chunk_size_;
    // Reserve the bookkeeping vectors to the new capacity now, so pushes on
    // the steady-state retire/reclaim paths never reallocate.
    state_.resize(slot_count_, State::kFree);
    free_.reserve(slot_count_);
    cooling_.reserve(slot_count_);
  }

  std::size_t chunk_size_;
  std::vector<T*> chunks_;
  std::vector<State> state_;
  std::vector<std::uint32_t> free_;     ///< recyclable slots (LIFO)
  std::vector<std::uint32_t> cooling_;  ///< retired, awaiting quiescence
  std::size_t scan_ = 0;                ///< rotating reclaim probe cursor
  std::uint32_t next_unused_ = 0;       ///< slots ever handed out
  std::size_t slot_count_ = 0;          ///< slots backed by chunks
};

}  // namespace sigcomp::exp
