#include "analytic/latency.hpp"

#include <cmath>
#include <stdexcept>

#include "markov/absorption.hpp"
#include "markov/uniformization.hpp"

namespace sigcomp::analytic {

LatencyAnalysis::LatencyAnalysis(ProtocolKind kind, const SingleHopParams& params)
    : kind_(kind), params_(params) {
  params_.validate();
  const MechanismSet mech = mechanisms(kind);

  setup1_ = chain_.add_state("(1,0)1");
  setup2_ = chain_.add_state("(1,0)2");
  consistent_ = chain_.add_state("C");  // absorbing: first passage target
  update1_ = chain_.add_state("IC1");
  update2_ = chain_.add_state("IC2");

  const double fast_ok = (1.0 - params_.loss) / params_.delay;
  const double fast_lost = params_.loss / params_.delay;
  double repair_rate = 0.0;
  if (mech.refresh) repair_rate += 1.0 / params_.refresh_timer;
  if (mech.reliable_trigger) repair_rate += 1.0 / params_.retrans_timer;
  const double slow_repair = repair_rate * (1.0 - params_.loss);

  chain_.add_rate(setup1_, consistent_, fast_ok);
  chain_.add_rate(setup1_, setup2_, fast_lost);
  chain_.add_rate(setup2_, consistent_, slow_repair);
  chain_.add_rate(setup2_, setup1_, params_.update_rate);
  chain_.add_rate(update1_, consistent_, fast_ok);
  chain_.add_rate(update1_, update2_, fast_lost);
  chain_.add_rate(update2_, consistent_, slow_repair);
  chain_.add_rate(update2_, update1_, params_.update_rate);

  if (slow_repair <= 0.0 && params_.update_rate <= 0.0) {
    throw std::invalid_argument(
        "LatencyAnalysis: a lost trigger would never converge (no refresh, "
        "no retransmission, no updates)");
  }
}

double LatencyAnalysis::setup_cdf(double t) const {
  return markov::transient_probability(chain_, setup1_, consistent_, t);
}

double LatencyAnalysis::update_cdf(double t) const {
  return markov::transient_probability(chain_, update1_, consistent_, t);
}

double LatencyAnalysis::mean_setup_latency() const {
  return markov::mean_time_to_absorption(chain_).mean_time[setup1_];
}

double LatencyAnalysis::mean_update_latency() const {
  return markov::mean_time_to_absorption(chain_).mean_time[update1_];
}

double LatencyAnalysis::quantile_from(markov::StateId start, double q) const {
  if (!(q > 0.0) || !(q < 1.0)) {
    throw std::invalid_argument("LatencyAnalysis: quantile q must be in (0, 1)");
  }
  const auto cdf = [&](double t) {
    return markov::transient_probability(chain_, start, consistent_, t);
  };
  // Bracket: grow the upper bound until it covers q.
  double hi = params_.delay;
  while (cdf(hi) < q) {
    hi *= 2.0;
    if (hi > 1e9) {
      throw std::runtime_error("LatencyAnalysis: quantile did not converge");
    }
  }
  double lo = 0.0;
  for (int iter = 0; iter < 60 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double LatencyAnalysis::setup_quantile(double q) const {
  return quantile_from(setup1_, q);
}

double LatencyAnalysis::update_quantile(double q) const {
  return quantile_from(update1_, q);
}

}  // namespace sigcomp::analytic
