// Figure 5: inconsistency ratio versus (a) channel loss rate pl in [0, 0.3]
// and (b) one-way channel delay D in (0, 1] s (with Gamma = 4D), for all
// five protocols at single-hop defaults.  Both sweeps are evaluated through
// the parallel experiment engine (evaluate_grid_analytic).
//
// Usage: fig05_loss_delay [--csv PATH] [--threads N]  (CSV gets the loss
// sweep; the delay sweep goes to PATH with a ".delay.csv" suffix)
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/parallel.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) try {
  using namespace sigcomp;

  // One pool for all ten grids (5 protocols x 2 sweeps).
  exp::ParallelSweep engine(exp::threads_from_args(argc, argv));
  GridOptions grid_options;
  grid_options.engine = &engine;

  const std::vector<double> losses = exp::lin_space(0.0, 0.30, 13);
  std::vector<SingleHopParams> loss_grid;
  for (const double loss : losses) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.loss = loss;
    loss_grid.push_back(p);
  }

  exp::Table loss_table("Fig. 5(a): I vs signaling channel loss rate pl",
                        {"loss", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)",
                         "I(HS)"});
  std::vector<std::vector<Metrics>> loss_series;
  for (const ProtocolKind kind : kAllProtocols) {
    loss_series.push_back(evaluate_grid_analytic(kind, loss_grid, grid_options));
  }
  for (std::size_t i = 0; i < losses.size(); ++i) {
    std::vector<exp::Cell> row{losses[i]};
    for (const auto& series : loss_series) {
      row.emplace_back(series[i].inconsistency);
    }
    loss_table.add_row(std::move(row));
  }
  loss_table.print(std::cout);
  std::cout << '\n';

  const std::vector<double> delays = exp::lin_space(0.05, 1.0, 20);
  std::vector<SingleHopParams> delay_grid;
  for (const double delay : delays) {
    delay_grid.push_back(
        SingleHopParams::kazaa_defaults().with_delay_scaled_retrans(delay));
  }

  exp::Table delay_table(
      "Fig. 5(b): I vs signaling channel delay D (Gamma = 4D)",
      {"delay_s", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)", "I(HS)"});
  std::vector<std::vector<Metrics>> delay_series;
  for (const ProtocolKind kind : kAllProtocols) {
    delay_series.push_back(
        evaluate_grid_analytic(kind, delay_grid, grid_options));
  }
  for (std::size_t i = 0; i < delays.size(); ++i) {
    std::vector<exp::Cell> row{delays[i]};
    for (const auto& series : delay_series) {
      row.emplace_back(series[i].inconsistency);
    }
    delay_table.add_row(std::move(row));
  }
  delay_table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) {
    loss_table.write_csv_file(csv);
    delay_table.write_csv_file(csv + ".delay.csv");
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
