#include "protocols/topology.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace sigcomp::protocols {

Topology::Topology(sim::Simulator& sim, sim::Rng& channel_rng,
                   sim::Rng& node_rng, MechanismSet mech,
                   const TimerSettings& timers, const TreeSpec& spec,
                   const std::vector<sim::LossConfig>& edge_loss,
                   const std::vector<sim::DelayConfig>& edge_delay,
                   std::function<void()> on_change, sim::TraceLog* trace)
    : spec_(spec) {
  spec_.validate();
  const std::size_t e_count = spec_.edges();
  if (e_count == 0) {
    throw std::invalid_argument("Topology: the tree needs at least one edge");
  }
  if (edge_loss.size() != e_count || edge_delay.size() != e_count) {
    throw std::invalid_argument(
        "Topology: need one loss and one delay config per edge");
  }

  // Channels first (nodes keep pointers to them); sinks wired afterwards.
  // Edge order matches the chain builder's hop order, so a fan-out-1 spec
  // produces the identical construction and trace-label sequence.
  for (std::size_t e = 0; e < e_count; ++e) {
    down_.push_back(std::make_unique<MessageChannel>(
        sim, channel_rng, edge_loss[e], edge_delay[e], MessageChannel::Sink{}));
    up_.push_back(std::make_unique<MessageChannel>(
        sim, channel_rng, edge_loss[e], edge_delay[e], MessageChannel::Sink{}));
    if (trace != nullptr) {
      const auto describe = [](const Message& m) {
        return std::string(to_string(m.type));
      };
      down_[e]->set_trace(trace, "dn" + std::to_string(e), describe);
      up_[e]->set_trace(trace, "up" + std::to_string(e), describe);
    }
  }

  // kids[n]: child edges of node n in edge order; child_index_[e]: e's
  // position within its parent's child list (the routing index the parent
  // uses for ACKs and notices arriving on up_[e], and the per-child index
  // graft/prune calls target).
  std::vector<std::vector<std::size_t>> kids(spec_.nodes());
  child_index_.assign(e_count, 0);
  for (std::size_t e = 0; e < e_count; ++e) {
    child_index_[e] = kids[spec_.parent[e]].size();
    kids[spec_.parent[e]].push_back(e);
  }

  // Membership bookkeeping: every leaf starts joined, so active_below_[n]
  // is node n's subtree leaf count.  Children have larger ids than their
  // parent (the TreeSpec invariant), so one reverse pass accumulates.
  leaf_joined_.assign(spec_.nodes(), 0);
  active_below_.assign(spec_.nodes(), 0);
  for (std::size_t n = spec_.nodes(); n-- > 1;) {
    if (spec_.is_leaf(n)) {
      leaf_joined_[n] = 1;
      ++active_below_[n];
      ++active_leaves_;
    }
    active_below_[spec_.parent[n - 1]] += active_below_[n];
  }
  const auto down_channels = [&](std::size_t node) {
    std::vector<MessageChannel*> out;
    out.reserve(kids[node].size());
    for (const std::size_t e : kids[node]) out.push_back(down_[e].get());
    return out;
  };

  sender_ = std::make_unique<TreeSender>(sim, node_rng, mech, timers,
                                         down_channels(0), on_change);
  for (std::size_t e = 0; e < e_count; ++e) {
    relays_.push_back(std::make_unique<TreeRelay>(
        sim, node_rng, mech, timers, up_[e].get(), down_channels(e + 1),
        on_change));
  }

  for (std::size_t e = 0; e < e_count; ++e) {
    down_[e]->set_sink(
        [this, e](const Message& m) { relays_[e]->handle_from_upstream(m); });
    const std::size_t parent = spec_.parent[e];
    const std::size_t index = child_index_[e];
    up_[e]->set_sink([this, parent, index](const Message& m) {
      if (parent == 0) {
        sender_->handle_from_downstream(m, index);
      } else {
        relays_[parent - 1]->handle_from_downstream(m, index);
      }
    });
  }
}

void Topology::graft_edge(std::size_t e) {
  const std::size_t parent = spec_.parent[e];
  if (parent == 0) {
    sender_->graft_child(child_index_[e]);
  } else {
    relays_[parent - 1]->graft_child(child_index_[e]);
  }
}

void Topology::prune_edge_at(std::size_t e) {
  const std::size_t parent = spec_.parent[e];
  if (parent == 0) {
    sender_->prune_child(child_index_[e]);
  } else {
    relays_[parent - 1]->prune_child(child_index_[e]);
  }
}

void Topology::deactivate_edge(std::size_t e) {
  const std::size_t parent = spec_.parent[e];
  if (parent == 0) {
    sender_->deactivate_child(child_index_[e]);
  } else {
    relays_[parent - 1]->deactivate_child(child_index_[e]);
  }
}

bool Topology::leaf_active(std::size_t leaf) const {
  if (leaf == 0 || leaf >= spec_.nodes() || !spec_.is_leaf(leaf)) {
    throw std::invalid_argument("Topology::leaf_active: node " +
                                std::to_string(leaf) + " is not a leaf");
  }
  return leaf_joined_[leaf] != 0;
}

Topology::GraftResult Topology::join(std::size_t leaf) {
  if (leaf_active(leaf)) {
    throw std::invalid_argument("Topology::join: leaf " +
                                std::to_string(leaf) + " is already joined");
  }
  leaf_joined_[leaf] = 1;
  ++active_leaves_;
  GraftResult out;
  for (const std::size_t e : spec_.path_edges(leaf)) {
    if (++active_below_[e + 1] == 1) out.activated_edges.push_back(e);
  }
  // Graft shallow-to-deep: every reactivated edge re-installs from its
  // parent's cached copy where one exists, so the deepest surviving state
  // along the path seeds the branch without waiting for a refresh.
  for (const std::size_t e : out.activated_edges) graft_edge(e);
  return out;
}

Topology::PruneResult Topology::leave(std::size_t leaf) {
  if (!leaf_active(leaf)) {
    throw std::invalid_argument("Topology::leave: leaf " +
                                std::to_string(leaf) + " is not joined");
  }
  leaf_joined_[leaf] = 0;
  --active_leaves_;
  PruneResult out;
  for (const std::size_t e : spec_.path_edges(leaf)) {
    if (--active_below_[e + 1] == 0) out.pruned_edges.push_back(e);
  }
  // The dead edges form the path's tail; deactivate the deeper ones
  // silently first, then signal removal (if the protocol has one) at the
  // prune point -- the removal propagates down the subtree by itself.
  for (std::size_t i = out.pruned_edges.size(); i-- > 1;) {
    deactivate_edge(out.pruned_edges[i]);
  }
  prune_edge_at(out.pruned_edges.front());
  return out;
}

std::uint64_t Topology::edge_messages_sent(std::size_t e) const noexcept {
  return down_[e]->counters().sent + up_[e]->counters().sent;
}

std::uint64_t Topology::messages_sent() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t e = 0; e < down_.size(); ++e) total += edge_messages_sent(e);
  return total;
}

std::uint64_t Topology::relay_timeouts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& relay : relays_) total += relay->timeouts();
  return total;
}

void Topology::stop() {
  sender_->stop();
  for (auto& relay : relays_) relay->stop();
}

}  // namespace sigcomp::protocols
