// Extension experiment (beyond the paper): heterogeneous signaling paths.
// The Sec. III-B model assumes identical hops; here one "bad" hop (10x the
// baseline loss) is slid along a 10-hop chain.  Where does the bad hop
// hurt most, and which protocol is most robust to it?
//
// Usage: ext_heterogeneous [--csv PATH] [--threads N]
#include <cstddef>
#include <iostream>
#include <vector>

#include "analytic/hetero_multi_hop.hpp"
#include "exp/parallel.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) try {
  using namespace sigcomp;
  using analytic::HeteroMultiHopModel;
  using analytic::HeteroMultiHopParams;

  MultiHopParams base = MultiHopParams::reservation_defaults();
  base.hops = 10;

  // Grid point 0 is the homogeneous reference chain; point b >= 1 puts the
  // bad hop at position b.
  std::vector<std::size_t> bad_positions;
  for (std::size_t bad = 0; bad <= base.hops; ++bad) {
    bad_positions.push_back(bad);
  }

  struct Row {
    std::vector<double> inconsistency;  ///< per protocol, kPaperMultiHopProtocols order
    std::vector<double> rate;
    double ss_last_hop = 0.0;
  };

  // Each grid point builds all three models, so the whole row is one unit of
  // work for the sweep engine (per-hop numbers are not part of Metrics).
  exp::ParallelSweep sweep(exp::threads_from_args(argc, argv));
  const std::vector<Row> rows =
      sweep.map(bad_positions, [&base](std::size_t bad) {
        HeteroMultiHopParams p = HeteroMultiHopParams::from_homogeneous(base);
        if (bad >= 1) p.loss[bad - 1] = 0.2;
        Row row;
        for (const ProtocolKind kind : kPaperMultiHopProtocols) {
          const HeteroMultiHopModel model(kind, p);
          row.inconsistency.push_back(model.inconsistency());
          row.rate.push_back(model.metrics().raw_message_rate);
          if (kind == ProtocolKind::kSS) {
            row.ss_last_hop = model.hop_inconsistency(base.hops);
          }
        }
        return row;
      });

  exp::Table table(
      "Heterogeneous-path extension: one hop with 10x loss (0.2) slid along "
      "a 10-hop chain (baseline per-hop loss 0.02)",
      {"bad hop", "I(SS)", "I(SS+RT)", "I(HS)", "I(SS) hop10",
       "rate(SS)", "rate(SS+RT)", "rate(HS)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t bad = bad_positions[i];
    std::vector<exp::Cell> cells{bad == 0 ? std::string("none")
                                          : std::to_string(bad)};
    for (const double value : rows[i].inconsistency) cells.emplace_back(value);
    cells.emplace_back(rows[i].ss_last_hop);
    for (const double rate : rows[i].rate) cells.emplace_back(rate);
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout
      << "\nFindings: one bad hop inflates end-to-end SS inconsistency ~2.4x "
         "(every refresh must cross it, and a timeout anywhere wipes the "
         "whole downstream tail), but SS+RT/HS only ~1.1-1.2x -- hop-by-hop "
         "retransmission just has to win one lossy link. Position matters "
         "only mildly (earlier is slightly worse for SS: an early timeout "
         "cascades over more hops).\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
