// Figure 9: the tradeoff between inconsistency ratio and signaling message
// overhead, traced by varying the refresh timer R (with T = 3R).  HS does
// not depend on R and appears as a single repeated point.
//
// Usage: fig09_tradeoff [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table table(
      "Fig. 9: message overhead vs inconsistency, varying refresh timer R",
      {"refresh_s", "I(SS)", "M(SS)", "I(SS+ER)", "M(SS+ER)", "I(SS+RT)",
       "M(SS+RT)", "I(SS+RTR)", "M(SS+RTR)", "I(HS)", "M(HS)"});

  for (const double refresh : exp::log_space(0.1, 100.0, 16)) {
    const SingleHopParams p =
        SingleHopParams::kazaa_defaults().with_refresh_scaled_timeout(refresh);
    std::vector<exp::Cell> row{refresh};
    for (const ProtocolKind kind : kAllProtocols) {
      const Metrics m = evaluate_analytic(kind, p);
      row.emplace_back(m.inconsistency);
      row.emplace_back(m.message_rate);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
