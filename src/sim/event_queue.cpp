#include "sim/event_queue.hpp"

#include <cmath>
#include <stdexcept>

namespace sigcomp::sim {

EventId EventQueue::push(Time time, std::function<void()> action) {
  if (!std::isfinite(time)) {
    throw std::invalid_argument("EventQueue::push: time must be finite");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue::push: empty action");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{time, seq});
  actions_.emplace(seq, std::move(action));
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  const auto it = actions_.find(id.value);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id.value);
  --live_;
  return true;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: queue empty");
  return heap_.top().time;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: queue empty");
  const Entry top = heap_.top();
  heap_.pop();
  const auto it = actions_.find(top.seq);
  PoppedEvent out{top.time, std::move(it->second)};
  actions_.erase(it);
  --live_;
  return out;
}

}  // namespace sigcomp::sim
