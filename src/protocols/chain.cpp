#include "protocols/chain.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace sigcomp::protocols {

Chain::Chain(sim::Simulator& sim, sim::Rng& channel_rng, sim::Rng& node_rng,
             MechanismSet mech, const TimerSettings& timers,
             const std::vector<sim::LossConfig>& hop_loss,
             const std::vector<sim::DelayConfig>& hop_delay,
             std::function<void()> on_change, sim::TraceLog* trace) {
  const std::size_t k = hop_loss.size();
  if (k == 0 || hop_delay.size() != k) {
    throw std::invalid_argument(
        "Chain: need one loss and one delay config per hop");
  }

  // Channels first (nodes keep pointers to them); sinks wired afterwards.
  for (std::size_t i = 0; i < k; ++i) {
    down_.push_back(std::make_unique<MessageChannel>(
        sim, channel_rng, hop_loss[i], hop_delay[i], MessageChannel::Sink{}));
    up_.push_back(std::make_unique<MessageChannel>(
        sim, channel_rng, hop_loss[i], hop_delay[i], MessageChannel::Sink{}));
    if (trace != nullptr) {
      const auto describe = [](const Message& m) {
        return std::string(to_string(m.type));
      };
      down_[i]->set_trace(trace, "dn" + std::to_string(i), describe);
      up_[i]->set_trace(trace, "up" + std::to_string(i), describe);
    }
  }

  sender_ = std::make_unique<ChainSender>(sim, node_rng, mech, timers,
                                          down_[0].get(), on_change);
  for (std::size_t i = 0; i < k; ++i) {
    MessageChannel* toward_sender = up_[i].get();
    MessageChannel* toward_tail = (i + 1 < k) ? down_[i + 1].get() : nullptr;
    relays_.push_back(std::make_unique<ChainRelay>(
        sim, node_rng, mech, timers, toward_sender, toward_tail, on_change));
  }

  for (std::size_t i = 0; i < k; ++i) {
    down_[i]->set_sink(
        [this, i](const Message& m) { relays_[i]->handle_from_upstream(m); });
    up_[i]->set_sink([this, i](const Message& m) {
      if (i == 0) {
        sender_->handle_from_downstream(m);
      } else {
        relays_[i - 1]->handle_from_downstream(m);
      }
    });
  }
}

std::uint64_t Chain::hop_messages_sent(std::size_t i) const noexcept {
  return down_[i]->counters().sent + up_[i]->counters().sent;
}

std::uint64_t Chain::messages_sent() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < down_.size(); ++i) total += hop_messages_sent(i);
  return total;
}

std::uint64_t Chain::relay_timeouts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& relay : relays_) total += relay->timeouts();
  return total;
}

void Chain::stop() {
  sender_->stop();
  for (auto& relay : relays_) relay->stop();
}

}  // namespace sigcomp::protocols
