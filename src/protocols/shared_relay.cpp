// Shared-relay protocol endpoints (see shared_relay.hpp for the model).
#include "protocols/shared_relay.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace sigcomp::protocols {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

// ----------------------------------------------------------- RelayClient --

RelayClient::RelayClient(sim::Simulator& sim, sim::Rng& rng,
                         const TimerSettings& timers, std::uint64_t relay,
                         FabricSend send)
    : sim_(sim),
      rng_(rng),
      timers_(timers),
      relay_(relay),
      send_(std::move(send)) {}

void RelayClient::start(std::int64_t value) {
  value_ = value;
  active_ = true;
  ++sent_;
  send_(relay_, Message{MessageType::kTrigger, value_, sent_, 0});
  schedule_refresh();
}

void RelayClient::stop() {
  if (!active_) return;
  active_ = false;
  if (refresh_event_) {
    sim_.cancel(*refresh_event_);
    refresh_event_.reset();
  }
  ++sent_;
  send_(relay_, Message{MessageType::kRemove, value_, sent_, 0});
}

void RelayClient::handle(const Message& msg) {
  // Everything the relay echoes (ACK-TRIGGER on install, fan-out REFRESH)
  // is counted; a straggler echo after stop() is counted too -- arrival is
  // deterministic, so so is the count.
  (void)msg;
  ++echoes_;
}

void RelayClient::schedule_refresh() {
  refresh_event_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, timers_.refresh), [this] {
        refresh_event_.reset();
        if (!active_) return;
        ++sent_;
        send_(relay_, Message{MessageType::kRefresh, value_, sent_, 0});
        schedule_refresh();
      });
}

// -------------------------------------------------------- SharedRelayHub --

SharedRelayHub::SharedRelayHub(sim::Simulator& sim, sim::Rng& rng,
                               MechanismSet mech, const TimerSettings& timers,
                               std::vector<std::uint64_t> subscribers,
                               FabricSend send,
                               std::function<void()> on_complete)
    : sim_(sim),
      rng_(rng),
      timers_(timers),
      subscribers_(std::move(subscribers)),
      send_(std::move(send)),
      on_complete_(std::move(on_complete)) {
  std::sort(subscribers_.begin(), subscribers_.end());
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    subs_.emplace_back(sim, rng_, mech, timers_,
                       [this, i] { on_expire(i); });
  }
}

void SharedRelayHub::begin() {
  missing_weight_ = sim::TimeWeightedValue(sim_.now());
  schedule_fanout();
}

void SharedRelayHub::handle(std::uint64_t source, const Message& msg) {
  const std::size_t i = index_of(source);
  if (i == kNpos) {
    ++unknown_dropped_;
    return;
  }
  Sub& sub = subs_[i];
  switch (msg.type) {
    case MessageType::kTrigger:
      // Install (or re-install after an expiry): acknowledge immediately.
      sub.slot.set(msg.value);
      sub.slot.arm_timeout();
      sub.engaged = true;
      set_missing(i, false);
      ++installs_;
      ++sent_;
      send_(source, Message{MessageType::kAckTrigger, msg.value, msg.seq, 0});
      break;
    case MessageType::kRefresh:
      // A refresh re-arms the guard; one that finds the slot expired
      // re-installs (classic soft-state recovery, priced as an install).
      if (sub.departed) break;
      if (sub.slot.value().has_value()) {
        ++refreshes_;
      } else {
        ++installs_;
      }
      sub.slot.set(msg.value);
      sub.slot.arm_timeout();
      sub.engaged = true;
      set_missing(i, false);
      break;
    case MessageType::kRemove:
      sub.slot.clear();
      set_missing(i, false);
      if (!sub.departed) {
        sub.departed = true;
        sub.engaged = false;
        ++departed_;
        if (complete()) {
          if (fanout_event_) {
            sim_.cancel(*fanout_event_);
            fanout_event_.reset();
          }
          if (on_complete_) on_complete_();
        }
      }
      break;
    default:
      // No other type crosses the fabric toward a hub.
      ++unknown_dropped_;
      break;
  }
}

std::uint64_t SharedRelayHub::soft_timeouts() const noexcept {
  std::uint64_t n = 0;
  for (const Sub& sub : subs_) n += sub.slot.timeouts();
  return n;
}

void SharedRelayHub::on_expire(std::size_t index) {
  // The StateSlot already cleared itself; an engaged subscriber is now
  // missing until its next refresh re-installs (fan-out toward it pauses:
  // the hub has nothing to echo).
  if (subs_[index].engaged && !subs_[index].departed) {
    set_missing(index, true);
  }
}

void SharedRelayHub::set_missing(std::size_t index, bool missing) {
  Sub& sub = subs_[index];
  if (sub.missing == missing) return;
  sub.missing = missing;
  missing_count_ += missing ? 1 : static_cast<std::size_t>(-1);
  missing_weight_.set(sim_.now(), static_cast<double>(missing_count_));
}

void SharedRelayHub::schedule_fanout() {
  fanout_event_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, timers_.refresh), [this] {
        fanout_event_.reset();
        // Per-subscriber refresh fan-out, ascending index order: every held
        // value is re-echoed to its subscriber.
        for (std::size_t i = 0; i < subs_.size(); ++i) {
          const Sub& sub = subs_[i];
          if (sub.departed || !sub.slot.value().has_value()) continue;
          ++sent_;
          send_(subscribers_[i],
                Message{MessageType::kRefresh, *sub.slot.value(), 0, 0});
        }
        schedule_fanout();
      });
}

std::size_t SharedRelayHub::index_of(std::uint64_t source) const {
  const auto it =
      std::lower_bound(subscribers_.begin(), subscribers_.end(), source);
  if (it == subscribers_.end() || *it != source) return kNpos;
  return static_cast<std::size_t>(it - subscribers_.begin());
}

}  // namespace sigcomp::protocols
