// Fixture: C-library RNG calls have hidden global state.
#include <cstdlib>

void seed_and_draw() {
  srand(42);             // LINT[libc-rand]
  int a = rand();        // LINT[libc-rand]
  long b = random();     // LINT[libc-rand]
  double c = drand48();  // LINT[libc-rand]
  (void)a;
  (void)b;
  (void)c;
}

// The rule must not fire on words merely containing "rand": an error
// message string, or identifiers like operand/strand.
int operand_count(int operands) { return operands; }
const char* kMessage = "rand() is forbidden here";
