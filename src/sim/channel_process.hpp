// Pluggable channel loss and delay processes.
//
// The paper models the network as a channel with iid Bernoulli loss and a
// single delay distribution.  Real signaling paths exhibit *bursty*
// (correlated) loss and heavy-tailed delay, which stress soft-state refresh
// and hard-state reliable retransmission very differently at the same
// average loss rate.  This header factors both choices out of sim::Channel:
//
//  - LossConfig / LossProcess: iid Bernoulli (the paper's model, default)
//    or a two-state Gilbert-Elliott Markov chain -- good/bad states with
//    per-message transition probabilities p_gb/p_bg and per-state drop
//    probabilities.  The GE stationary mean loss rate is computed with the
//    markov/stationary GTH solver, so bursty-vs-iid comparisons can hold
//    the average loss fixed while sweeping burst length.
//  - DelayConfig: deterministic/exponential as before, plus Pareto and
//    lognormal heavy-tail laws reusing the Rng primitives (no bench-local
//    sampling hacks).
#pragma once

#include "sim/rng.hpp"

namespace sigcomp::sim {

/// Which loss process a channel runs.
enum class LossModel {
  kIid,             ///< iid Bernoulli(loss) -- the paper's channel
  kGilbertElliott,  ///< two-state bursty loss (good/bad Markov chain)
};

/// Full description of a channel loss process.  Plain aggregate so parameter
/// structs can embed and compare it.
struct LossConfig {
  LossModel model = LossModel::kIid;  ///< which process the channel runs
  double loss = 0.0;       ///< iid drop probability (unused under GE)
  double p_gb = 0.0;       ///< GE: P(good -> bad) per message
  double p_bg = 1.0;       ///< GE: P(bad -> good) per message
  double loss_good = 0.0;  ///< GE: drop probability in the good state
  double loss_bad = 1.0;   ///< GE: drop probability in the bad state

  /// iid Bernoulli loss (the paper's channel).
  [[nodiscard]] static LossConfig iid(double loss);

  /// Gilbert-Elliott loss from raw chain parameters.
  [[nodiscard]] static LossConfig gilbert_elliott(double p_gb, double p_bg,
                                                  double loss_bad = 1.0,
                                                  double loss_good = 0.0);

  /// Gilbert-Elliott loss with the stationary mean pinned to `mean_loss`
  /// and the mean bad-state sojourn pinned to `burst_length` messages
  /// (p_bg = 1/burst_length; p_gb follows from the stationary equations).
  /// With the default loss_bad = 1, loss_good = 0, `burst_length` is the
  /// mean number of consecutively dropped messages.  Throws
  /// std::invalid_argument when no such chain exists (e.g. mean_loss not in
  /// [loss_good, loss_bad), or the implied p_gb would exceed 1).
  [[nodiscard]] static LossConfig gilbert_elliott_matched(
      double mean_loss, double burst_length, double loss_bad = 1.0,
      double loss_good = 0.0);

  /// Long-run average drop probability.  For GE this solves the two-state
  /// chain's stationary distribution with the GTH solver
  /// (markov::stationary_distribution) and mixes the per-state drop
  /// probabilities; degenerate chains (p_gb = 0 or p_bg = 0) are resolved
  /// analytically (the process starts in the good state).
  [[nodiscard]] double mean_loss() const;

  /// Expected length of a loss burst (consecutive dropped messages) when
  /// drops are deterministic per state (loss_bad = 1, loss_good = 0):
  /// 1/p_bg for GE, 1/(1 - loss) for iid.  The two agree on the degenerate
  /// parameterization p_gb = loss, p_bg = 1 - loss, which *is* iid.
  [[nodiscard]] double mean_burst_length() const;

  /// Throws std::invalid_argument when any probability is outside [0, 1].
  void validate() const;

  friend bool operator==(const LossConfig&,
                         const LossConfig&) = default;  ///< field-wise equality
};

/// Stateful per-channel sampler of a LossConfig.  Each send advances the
/// process one step and asks it whether the message is dropped.
class LossProcess {
 public:
  /// Lossless process (iid with probability 0).
  LossProcess() = default;

  /// Validates the configuration (throws std::invalid_argument).
  explicit LossProcess(LossConfig config);

  /// The configuration this process samples.
  [[nodiscard]] const LossConfig& config() const noexcept { return config_; }
  /// True while the GE chain sits in its bad state (always false for iid).
  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

  /// Advances the process by one message and returns whether it is dropped.
  ///
  /// GE steps the chain first and drops according to the *post-step* state.
  /// The next state is sampled as `u < P(bad | current)`, so the degenerate
  /// parameterization p_gb = p, p_bg = 1 - p, loss_bad = 1, loss_good = 0
  /// consumes the random stream exactly like iid Bernoulli(p) and produces
  /// a bit-identical drop sequence under a shared seed.
  [[nodiscard]] bool drop(Rng& rng) noexcept;

  /// Fault injection (blackhole a link, then heal it): replaces the process
  /// with iid Bernoulli(loss).  Throws std::invalid_argument when `loss` is
  /// outside [0, 1].
  void set_loss(double loss);

 private:
  LossConfig config_{};
  bool bad_ = false;
};

/// Which delay law a channel draws per-message latencies from.
enum class DelayModel {
  kDeterministic,  ///< always exactly the mean
  kExponential,    ///< exponential with the given mean (the model's choice)
  kPareto,         ///< heavy tail; `shape` is the tail index (> 1)
  kLognormal,      ///< skewed; `shape` is sigma (log-scale spread)
};

/// Full description of a channel delay process.
struct DelayConfig {
  DelayModel model = DelayModel::kExponential;  ///< which law to draw from
  double mean = 0.0;   ///< mean one-way delay in seconds
  double shape = 1.5;  ///< Pareto tail index (> 1) or lognormal sigma

  /// Fixed delay of exactly `mean`.
  [[nodiscard]] static DelayConfig deterministic(double mean);
  /// Exponential delay with the given mean (the model's assumption).
  [[nodiscard]] static DelayConfig exponential(double mean);
  /// Heavy-tailed Pareto delay with the given mean and tail index.
  [[nodiscard]] static DelayConfig pareto(double mean, double shape = 1.5);
  /// Skewed lognormal delay with the given mean and log-scale sigma.
  [[nodiscard]] static DelayConfig lognormal(double mean, double sigma = 1.5);

  /// Bridges the legacy two-valued Distribution enum (protocol timers keep
  /// using it; channels moved to DelayModel).
  [[nodiscard]] static DelayConfig from(Distribution dist, double mean);

  /// Draws one delay; all laws have mean `mean`.
  [[nodiscard]] double sample(Rng& rng) const noexcept;

  /// Throws std::invalid_argument on a negative/non-finite mean or an
  /// out-of-domain shape (Pareto needs shape > 1 for a finite mean,
  /// lognormal needs sigma >= 0).
  void validate() const;

  friend bool operator==(const DelayConfig&,
                         const DelayConfig&) = default;  ///< field-wise equality
};

}  // namespace sigcomp::sim
