#include "protocols/tree_run.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng_streams.hpp"
#include "protocols/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace sigcomp::protocols {

namespace {

/// Mirrors MultiHopRun stream-for-stream and event-for-event, so a
/// fan-out-1 tree replays the chain harness exactly (same RNG substreams,
/// same scheduling order, same trace stream).
class TreeRun {
 public:
  TreeRun(ProtocolKind kind, analytic::TreeParams params,
          const TreeSimOptions& options)
      : params_(std::move(params)),
        options_(options),
        mech_(mechanisms(kind)),
        sim_(options.event_queue),
        rng_channel_(options.seed, rng::kTreeChannel),
        rng_nodes_(options.seed, rng::kTreeNodes),
        rng_lifecycle_(options.seed, rng::kTreeLifecycle),
        rng_failure_(options.seed, rng::kTreeFailure),
        rng_membership_(options.seed, rng::kTreeMembership),
        rng_scenario_arrival_(options.seed, rng::kTreeScenarioArrival),
        rng_scenario_failure_(options.seed, rng::kTreeScenarioFailure) {
    params_.validate();
    if (!supports_multi_hop(kind)) {
      throw std::invalid_argument("run_tree: unsupported protocol " +
                                  std::string(to_string(kind)));
    }
    TimerSettings timers;
    timers.dist = options.timer_dist;
    timers.refresh = params_.refresh_timer;
    timers.timeout = params_.timeout_timer;
    timers.retrans = params_.retrans_timer;

    // Edge e's two directions share the link's loss/delay.
    const std::size_t e_count = params_.edges();
    std::vector<sim::LossConfig> edge_loss;
    std::vector<sim::DelayConfig> edge_delay;
    edge_loss.reserve(e_count);
    edge_delay.reserve(e_count);
    for (std::size_t e = 0; e < e_count; ++e) {
      edge_loss.push_back(params_.edge_loss_config(e));
      edge_delay.push_back(sim::DelayConfig{options.delay_model,
                                            params_.delay[e],
                                            options.delay_shape});
    }
    topology_ = std::make_unique<Topology>(
        sim_, rng_channel_, rng_nodes_, mech_, timers, params_.tree, edge_loss,
        edge_delay, [this] { on_change(); }, options_.trace);
    options_.scenario.validate();
    if (options_.churn.enabled() ||
        options_.scenario.membership_processes()) {
      // The controller feeds membership flips back through on_change() so
      // the monitors resample the instant the required-set moves; its rng
      // is a dedicated substream, so a zero-churn run replays the static
      // tree bit-for-bit.  Scenario modulation (flash crowds, shared-risk
      // bursts) draws from its own substream, so an unmodulated run also
      // replays the iid-churn trace exactly.
      membership_ = std::make_unique<MembershipController>(
          sim_, *topology_, rng_membership_, options_.churn,
          options_.scenario, &rng_scenario_arrival_, [this] { on_change(); });
    }
    if (options_.scenario.failure.enabled()) {
      failure_ = std::make_unique<RelayFailureProcess>(
          sim_, *topology_, rng_scenario_failure_, options_.scenario.failure,
          mech_.external_failure_detector);
    }

    inconsistent_nodes_.assign(e_count, sim::TimeWeightedValue{});
    node_ok_.assign(e_count, 0);
    // Per-leaf path monitors: relay indices (node id - 1) on each root-to-
    // leaf path, resolved once.
    for (const std::size_t leaf : params_.tree.leaves()) {
      const std::vector<std::size_t> path = params_.tree.path_edges(leaf);
      std::vector<std::size_t> relays;
      relays.reserve(path.size());
      for (const std::size_t e : path) {
        relays.push_back(e);  // edge e's child endpoint is relay e
      }
      leaf_paths_.push_back(std::move(relays));
    }
    inconsistent_paths_.assign(leaf_paths_.size(), sim::TimeWeightedValue{});
  }

  TreeSimResult run() {
    topology_->sender().start(++version_);
    schedule_update();
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      for (std::size_t i = 0; i < params_.edges(); ++i) {
        schedule_false_signal(i);
      }
    }
    if (membership_) membership_->start();
    if (failure_) failure_->start();
    sim_.run_until(options_.duration);
    if (membership_) membership_->finish();
    if (failure_) failure_->stop();

    TreeSimResult out;
    out.duration = options_.duration;
    out.messages = topology_->messages_sent();
    out.relay_timeouts = topology_->relay_timeouts();
    for (std::size_t i = 0; i < params_.edges(); ++i) {
      out.node_inconsistency.push_back(
          inconsistent_nodes_[i].mean(options_.duration));
    }
    for (std::size_t p = 0; p < leaf_paths_.size(); ++p) {
      out.leaf_path_inconsistency.push_back(
          inconsistent_paths_[p].mean(options_.duration));
    }
    out.metrics.inconsistency = any_inconsistent_.mean(options_.duration);
    out.metrics.raw_message_rate =
        static_cast<double>(out.messages) / options_.duration;
    out.metrics.message_rate = out.metrics.raw_message_rate;
    if (membership_) out.churn = membership_->report();
    if (failure_) {
      out.relay_crashes = failure_->crashes();
      out.relay_recoveries = failure_->recoveries();
    }
    return out;
  }

 private:
  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    sim_.schedule_in(rng_lifecycle_.exponential(1.0 / params_.update_rate),
                     [this] {
                       topology_->sender().update(++version_);
                       schedule_update();
                     });
  }

  void schedule_false_signal(std::size_t relay) {
    sim_.schedule_in(
        rng_failure_.exponential(1.0 / params_.false_signal_rate),
        [this, relay] {
          topology_->relay(relay).external_removal_signal();
          schedule_false_signal(relay);
        });
  }

  void on_change() {
    if (membership_) membership_->on_state_change();
    // node_ok_ is a member buffer: this callback fires on every state
    // change at every node, so it must not allocate.
    bool all_ok = true;
    for (std::size_t i = 0; i < topology_->relays(); ++i) {
      // A required node (on the path to a joined leaf) must mirror the
      // sender; a detached node must hold nothing.  With churn disabled
      // every node is required, which is the historical definition.
      const bool ok = topology_->node_required(i + 1)
                          ? topology_->relay(i).value() ==
                                topology_->sender().value()
                          : !topology_->relay(i).value().has_value();
      node_ok_[i] = ok ? 1 : 0;
      inconsistent_nodes_[i].set(sim_.now(), ok ? 0.0 : 1.0);
      all_ok = all_ok && ok;
    }
    any_inconsistent_.set(sim_.now(), all_ok ? 0.0 : 1.0);
    for (std::size_t p = 0; p < leaf_paths_.size(); ++p) {
      bool path_ok = true;
      for (const std::size_t relay : leaf_paths_[p]) {
        path_ok = path_ok && node_ok_[relay] != 0;
      }
      inconsistent_paths_[p].set(sim_.now(), path_ok ? 0.0 : 1.0);
    }
  }

  analytic::TreeParams params_;
  TreeSimOptions options_;
  MechanismSet mech_;

  sim::Simulator sim_;
  sim::Rng rng_channel_;
  sim::Rng rng_nodes_;
  sim::Rng rng_lifecycle_;
  sim::Rng rng_failure_;
  sim::Rng rng_membership_;
  sim::Rng rng_scenario_arrival_;
  sim::Rng rng_scenario_failure_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<MembershipController> membership_;
  std::unique_ptr<RelayFailureProcess> failure_;

  std::vector<sim::TimeWeightedValue> inconsistent_nodes_;
  std::vector<char> node_ok_;  ///< scratch for on_change (no per-event alloc)
  std::vector<std::vector<std::size_t>> leaf_paths_;  ///< relay ids per leaf
  std::vector<sim::TimeWeightedValue> inconsistent_paths_;
  sim::TimeWeightedValue any_inconsistent_;
  std::int64_t version_ = 0;
};

}  // namespace

TreeSimResult run_tree(ProtocolKind kind, const analytic::TreeParams& params,
                       const TreeSimOptions& options) {
  if (options.duration <= 0.0) {
    throw std::invalid_argument("run_tree: duration must be > 0");
  }
  TreeRun run(kind, params, options);
  return run.run();
}

TreeReplicatedResult run_tree_replicated(ProtocolKind kind,
                                         const analytic::TreeParams& params,
                                         const TreeSimOptions& options,
                                         std::size_t replications) {
  if (replications == 0) {
    throw std::invalid_argument("run_tree_replicated: need >= 1 replication");
  }
  sim::RunningStats inconsistency;
  sim::RunningStats message_rate;
  sim::RunningStats worst_leaf;
  for (std::size_t r = 0; r < replications; ++r) {
    TreeSimOptions rep = options;
    rep.seed = options.seed + r;
    const TreeSimResult result = run_tree(kind, params, rep);
    inconsistency.add(result.metrics.inconsistency);
    message_rate.add(result.metrics.raw_message_rate);
    worst_leaf.add(*std::max_element(result.leaf_path_inconsistency.begin(),
                                     result.leaf_path_inconsistency.end()));
  }
  TreeReplicatedResult out;
  out.inconsistency = sim::confidence_interval_95(inconsistency);
  out.message_rate = sim::confidence_interval_95(message_rate);
  out.worst_leaf_inconsistency = sim::confidence_interval_95(worst_leaf);
  out.replications = replications;
  return out;
}

}  // namespace sigcomp::protocols
