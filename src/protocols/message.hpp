// Wire messages exchanged by the executable signaling protocols.
#pragma once

#include <cstdint>
#include <string_view>

namespace sigcomp::protocols {

/// Message types across all five protocols.  A given protocol only uses the
/// subset its mechanisms enable (core/protocol.hpp).
enum class MessageType : std::uint8_t {
  kTrigger,    ///< state setup/update carrying the new value
  kRefresh,    ///< periodic soft-state refresh carrying the current value
  kRemove,     ///< explicit state removal
  kAckTrigger, ///< acknowledgment of a trigger (reliable trigger protocols)
  kAckRemove,  ///< acknowledgment of a removal (reliable removal protocols)
  kAckNotice,  ///< acknowledgment of a notice (multi-hop HS recovery)
  kNotice,     ///< receiver -> sender: "your state was removed here"
  kTeardown,   ///< multi-hop HS: downstream propagation of a removal signal
};

/// Canonical wire name of a message type ("TRIGGER", "REFRESH", ...).
[[nodiscard]] constexpr std::string_view to_string(MessageType t) noexcept {
  switch (t) {
    case MessageType::kTrigger: return "TRIGGER";
    case MessageType::kRefresh: return "REFRESH";
    case MessageType::kRemove: return "REMOVE";
    case MessageType::kAckTrigger: return "ACK-TRIGGER";
    case MessageType::kAckRemove: return "ACK-REMOVE";
    case MessageType::kAckNotice: return "ACK-NOTICE";
    case MessageType::kNotice: return "NOTICE";
    case MessageType::kTeardown: return "TEARDOWN";
  }
  return "?";
}

/// A signaling message.  `value` is the installed state value (the model's
/// "single piece of state"); `seq` matches acknowledgments to transmissions;
/// `epoch` identifies the signaling session so that stragglers from a
/// finished session cannot corrupt the next one (the renewal construction
/// starts a new session the instant the previous one is absorbed).
struct Message {
  MessageType type = MessageType::kTrigger;  ///< what the message signals
  std::int64_t value = 0;   ///< the carried state value
  std::uint64_t seq = 0;    ///< matches ACKs to transmissions
  std::uint64_t epoch = 0;  ///< signaling-session identifier

  friend bool operator==(const Message&,
                         const Message&) = default;  ///< field-wise equality
};

}  // namespace sigcomp::protocols
