#include "exp/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sigcomp::exp {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test parser");
  parser.add_option("loss", "loss rate", "0.02");
  parser.add_option("count", "a count", "10");
  parser.add_flag("verbose", "be chatty");
  return parser;
}

TEST(ArgParser, DefaultsApplyWhenNotPassed) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get("loss"), "0.02");
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.02);
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_FALSE(parser.passed("loss"));
}

TEST(ArgParser, SpaceSeparatedValue) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss", "0.1"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.1);
  EXPECT_TRUE(parser.passed("loss"));
}

TEST(ArgParser, EqualsSeparatedValue) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss=0.25"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.25);
}

TEST(ArgParser, FlagsAndPositionals) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "alpha", "--verbose", "beta"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_TRUE(parser.flag("verbose"));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "alpha");
  EXPECT_EQ(parser.positional()[1], "beta");
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(parser.parse(3, argv));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.error().find("requires a value"), std::string::npos);
}

TEST(ArgParser, FlagWithValueFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--help", "--bogus"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_TRUE(parser.help_requested());
}

TEST(ArgParser, HelpTextListsOptionsAndDefaults) {
  ArgParser parser = make_parser();
  const std::string help = parser.help();
  EXPECT_NE(help.find("--loss"), std::string::npos);
  EXPECT_NE(help.find("default: 0.02"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(ArgParser, NumericValidation) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss", "abc", "--count", "12"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_THROW((void)parser.get_double("loss"), std::invalid_argument);
  EXPECT_EQ(parser.get_long("count"), 12);
  const char* argv2[] = {"prog", "--count", "12.5"};
  ArgParser parser2 = make_parser();
  ASSERT_TRUE(parser2.parse(3, argv2));
  EXPECT_THROW((void)parser2.get_long("count"), std::invalid_argument);
}

TEST(ArgParser, GetChoiceAcceptsAllowedValuesOnly) {
  ArgParser parser("prog", "test parser");
  parser.add_option("loss-model", "loss process", "iid");
  const char* argv[] = {"prog", "--loss-model", "ge"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_choice("loss-model", {"iid", "ge"}), "ge");
  EXPECT_THROW((void)parser.get_choice("loss-model", {"iid", "bernoulli"}),
               std::invalid_argument);
  try {
    (void)parser.get_choice("loss-model", {"iid", "bernoulli"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("iid, bernoulli"), std::string::npos);
  }
}

TEST(ArgParser, UnregisteredAccessIsALogicError) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_THROW((void)parser.get("nope"), std::logic_error);
  EXPECT_THROW((void)parser.flag("loss"), std::logic_error);   // not a flag
  EXPECT_THROW((void)parser.get("verbose"), std::logic_error); // is a flag
}

TEST(ArgParser, LastValueWins) {
  ArgParser parser = make_parser();
  const char* argv[] = {"prog", "--loss", "0.1", "--loss=0.3"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("loss"), 0.3);
}

}  // namespace
}  // namespace sigcomp::exp
