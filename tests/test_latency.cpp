#include "analytic/latency.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sigcomp::analytic {
namespace {

const SingleHopParams kDefaults = SingleHopParams::kazaa_defaults();

TEST(Latency, MeanSetupClosedFormWithoutUpdates) {
  // With lambda_u = 0: mean = D + pl / slow_repair_rate (exponential fast
  // stage, then geometric slow stage with one exit).
  SingleHopParams p = kDefaults;
  p.update_rate = 0.0;
  const LatencyAnalysis ss(ProtocolKind::kSS, p);
  const double slow_repair = (1.0 - p.loss) / p.refresh_timer;
  EXPECT_NEAR(ss.mean_setup_latency(), p.delay + p.loss / slow_repair, 1e-9);

  const LatencyAnalysis hs(ProtocolKind::kHS, p);
  const double hs_repair = (1.0 - p.loss) / p.retrans_timer;
  EXPECT_NEAR(hs.mean_setup_latency(), p.delay + p.loss / hs_repair, 1e-9);
}

TEST(Latency, CdfIsAMonotoneDistribution) {
  for (const ProtocolKind kind : kAllProtocols) {
    const LatencyAnalysis latency(kind, kDefaults);
    double previous = 0.0;
    for (const double t : {0.0, 0.01, 0.05, 0.1, 1.0, 10.0, 100.0}) {
      const double c = latency.setup_cdf(t);
      EXPECT_GE(c, previous - 1e-12) << to_string(kind) << " t=" << t;
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0 + 1e-12);
      previous = c;
    }
    EXPECT_DOUBLE_EQ(latency.setup_cdf(0.0), 0.0);
    EXPECT_GT(latency.setup_cdf(1000.0), 0.999);
  }
}

TEST(Latency, FastPathDominatesTheMedian) {
  // With 2% loss the median converges within a couple of channel delays
  // for every protocol.
  for (const ProtocolKind kind : kAllProtocols) {
    const LatencyAnalysis latency(kind, kDefaults);
    EXPECT_LT(latency.setup_quantile(0.5), 4.0 * kDefaults.delay)
        << to_string(kind);
  }
}

TEST(Latency, LossMovesTheTailNotTheMedian) {
  SingleHopParams lossy = kDefaults;
  lossy.loss = 0.3;
  const LatencyAnalysis clean(ProtocolKind::kSS, kDefaults);
  const LatencyAnalysis dirty(ProtocolKind::kSS, lossy);
  EXPECT_NEAR(dirty.setup_quantile(0.5), clean.setup_quantile(0.5),
              2.0 * kDefaults.delay);
  EXPECT_GT(dirty.setup_quantile(0.99), 2.0 * clean.setup_quantile(0.99));
}

TEST(Latency, ReliableTriggersCapTheTail) {
  SingleHopParams p = kDefaults;
  p.loss = 0.2;
  const LatencyAnalysis ss(ProtocolKind::kSS, p);
  const LatencyAnalysis ssrt(ProtocolKind::kSSRT, p);
  // SS's p99 waits for a refresh (~R); SS+RT's for a retransmission (~Gamma).
  EXPECT_GT(ss.setup_quantile(0.99), 5.0 * ssrt.setup_quantile(0.99));
  EXPECT_LT(ssrt.mean_setup_latency(), ss.mean_setup_latency());
}

TEST(Latency, UpdateAndSetupAreSymmetricInThisModel) {
  for (const ProtocolKind kind : kAllProtocols) {
    const LatencyAnalysis latency(kind, kDefaults);
    EXPECT_NEAR(latency.mean_setup_latency(), latency.mean_update_latency(),
                1e-12)
        << to_string(kind);
    EXPECT_NEAR(latency.setup_cdf(0.2), latency.update_cdf(0.2), 1e-12);
  }
}

TEST(Latency, QuantileInvertsCdf) {
  const LatencyAnalysis latency(ProtocolKind::kSSER, kDefaults);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double t = latency.setup_quantile(q);
    EXPECT_NEAR(latency.setup_cdf(t), q, 1e-5) << "q=" << q;
  }
}

TEST(Latency, QuantileInputValidation) {
  const LatencyAnalysis latency(ProtocolKind::kSS, kDefaults);
  EXPECT_THROW((void)latency.setup_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)latency.setup_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)latency.update_quantile(-0.5), std::invalid_argument);
}

TEST(Latency, UnconvergibleConfigurationRejected) {
  // Lost triggers can never be repaired: no refresh (HS mechanisms have
  // retransmission, so force a degenerate case via zero update rate is not
  // enough -- build SS-like params where the only repair is updates and
  // disable updates).  HS always has retransmission, so use SS with
  // update_rate 0 ... which still has refresh.  The only way to hit the
  // guard is loss > 0 with no repair path at all, which no named protocol
  // produces; assert the guard exists by checking SS converges fine.
  SingleHopParams p = kDefaults;
  p.update_rate = 0.0;
  EXPECT_NO_THROW(LatencyAnalysis(ProtocolKind::kSS, p));
}

TEST(Latency, MeanGrowsWithLoss) {
  for (const ProtocolKind kind : kAllProtocols) {
    double previous = 0.0;
    for (const double loss : {0.0, 0.1, 0.2, 0.4}) {
      SingleHopParams p = kDefaults;
      p.loss = loss;
      const double mean = LatencyAnalysis(kind, p).mean_setup_latency();
      EXPECT_GT(mean, previous) << to_string(kind) << " loss " << loss;
      previous = mean;
    }
  }
}

}  // namespace
}  // namespace sigcomp::analytic
