#include "exp/table.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string_view>

namespace sigcomp::exp {

namespace {

std::string cell_text(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  return format_number(std::get<double>(cell));
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  if (row >= rows_.size() || col >= headers_.size()) {
    throw std::out_of_range("Table::at: index out of range");
  }
  return rows_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(cell_text(row[c]));
      if (cells.back().size() > widths[c]) widths[c] = cells.back().size();
    }
    rendered.push_back(std::move(cells));
  }

  os << "# " << title_ << '\n';
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rendered) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_escape(cell_text(row[c]));
    }
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table::write_csv_file: cannot open " + path);
  write_csv(file);
  if (!file) throw std::runtime_error("Table::write_csv_file: write failed: " + path);
}

std::string csv_path_from_args(int argc, const char* const* argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") return argv[i + 1];
  }
  return {};
}

}  // namespace sigcomp::exp
