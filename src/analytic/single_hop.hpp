// The unified single-hop CTMC of Ji et al. (Fig. 3 / Table I).
//
// One model, five protocols: the chain always has the same state skeleton;
// the protocol only changes which transitions exist and their rates.
//
//   (1,0)1  setup trigger in flight            (inconsistent)
//   (1,0)2  setup trigger lost, slow path      (inconsistent)
//   C       consistent
//   IC1     update trigger in flight           (inconsistent)
//   IC2     update trigger lost, slow path     (inconsistent)
//   (0,1)1  sender removed, receiver holds     (inconsistent)
//   (0,1)2  removal message lost               (inconsistent; only for
//                                               SS+ER, SS+RTR, HS)
//   (0,0)   both removed                       (absorbing)
//
// Two views of the chain are produced:
//  * the transient chain with (0,0) absorbing -- used for the expected
//    session length L (mean time to absorption from (1,0)1, Eq. 2), and
//  * the recurrent chain where transitions into (0,0) are redirected into
//    (1,0)1 (absorbing state merged with the start state) -- its stationary
//    distribution yields the inconsistency ratio I (Eq. 1) and the message
//    rates (Eqs. 3-7).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "markov/ctmc.hpp"

namespace sigcomp::analytic {

/// Logical states of the single-hop model, in a fixed order.
enum class ShState {
  kSetup1,     ///< (1,0)1
  kSetup2,     ///< (1,0)2
  kConsistent, ///< C
  kUpdate1,    ///< IC1
  kUpdate2,    ///< IC2
  kRemoval1,   ///< (0,1)1
  kRemoval2,   ///< (0,1)2
  kAbsorbed,   ///< (0,0)
};

inline constexpr std::array<ShState, 8> kAllShStates = {
    ShState::kSetup1,  ShState::kSetup2,  ShState::kConsistent,
    ShState::kUpdate1, ShState::kUpdate2, ShState::kRemoval1,
    ShState::kRemoval2, ShState::kAbsorbed};

/// Canonical display name, e.g. "(1,0)1", "C", "IC2".
[[nodiscard]] std::string_view to_string(ShState s) noexcept;

/// One row of Table I: a transition with its symbolic description and the
/// numeric rate under the given protocol/parameters.
struct TransitionSpec {
  ShState from;
  ShState to;
  std::string formula;  ///< e.g. "(1-pl)/D", "1/T", "(1/R + 1/G)(1-pl)"
  double rate;          ///< numeric value; 0 when the mechanism is disabled
};

/// Checks that a mechanism combination yields a well-formed model:
///  * a state-timeout requires a refresh process to race against,
///  * reliable removal requires an explicit removal message to retransmit,
///  * some removal path must exist (timeout or explicit removal),
///  * a lost removal message must be recoverable (timeout backstop or
///    reliable removal) -- without this the chain deadlocks orphaned.
/// Throws std::invalid_argument otherwise.
void validate_mechanisms(const MechanismSet& mechanisms);

/// Single-hop analytic model for one protocol at one parameter point.
///
/// Beyond the paper's five named protocols, the model accepts any valid
/// MechanismSet -- the generalization that lets the ablation bench answer
/// "which mechanism buys what" across the whole design space.
class SingleHopModel {
 public:
  /// Builds both chain views.  Throws std::invalid_argument on bad params.
  SingleHopModel(ProtocolKind kind, const SingleHopParams& params);

  /// Builds the model for an arbitrary (valid) mechanism combination.
  SingleHopModel(const MechanismSet& mechanisms, const SingleHopParams& params);

  /// The named protocol, when constructed from one; for a custom mechanism
  /// set this is the closest classification (soft vs hard is decided by the
  /// refresh mechanism) and only used for display.
  [[nodiscard]] ProtocolKind kind() const noexcept { return kind_; }
  [[nodiscard]] const MechanismSet& mechanism_set() const noexcept { return mech_; }
  [[nodiscard]] const SingleHopParams& params() const noexcept { return params_; }

  /// True when the protocol instantiates the (0,1)2 "removal lost" state.
  [[nodiscard]] bool has_removal2() const noexcept;

  /// The transient chain ((0,0) absorbing).
  [[nodiscard]] const markov::Ctmc& transient_chain() const noexcept {
    return transient_;
  }
  /// The recurrent chain ((0,0) merged into (1,0)1).
  [[nodiscard]] const markov::Ctmc& recurrent_chain() const noexcept {
    return recurrent_;
  }

  /// Stationary probability of a logical state in the recurrent chain
  /// (zero for states the protocol does not instantiate and for kAbsorbed,
  /// which is merged into kSetup1).
  [[nodiscard]] double stationary(ShState s) const;

  /// I (Eq. 1): 1 - pi(C).
  [[nodiscard]] double inconsistency() const;

  /// L (Eq. 2): mean time to absorption from (1,0)1 in the transient chain.
  [[nodiscard]] double session_length() const;

  /// Eqs. (3)-(7): per-type stationary message rates.
  [[nodiscard]] MessageRateBreakdown message_rates() const;

  /// All metrics bundled: I, raw rate m, L, and M-bar = (L m) * lambda_r.
  [[nodiscard]] Metrics metrics() const;

  /// Table I: all transitions (including disabled ones with rate 0) with
  /// symbolic formulas, for documentation/printing.
  [[nodiscard]] static std::vector<TransitionSpec> transition_table(
      ProtocolKind kind, const SingleHopParams& params);

 private:
  [[nodiscard]] markov::StateId id(ShState s) const;
  [[nodiscard]] std::optional<markov::StateId> recurrent_id(ShState s) const;

  ProtocolKind kind_;
  MechanismSet mech_;
  SingleHopParams params_;
  markov::Ctmc transient_;
  markov::Ctmc recurrent_;
  std::array<std::optional<markov::StateId>, 8> transient_ids_{};
  std::array<std::optional<markov::StateId>, 8> recurrent_ids_{};
  std::vector<double> pi_;  ///< stationary distribution of recurrent chain
};

/// Convenience: metrics for one protocol at one parameter point.
[[nodiscard]] Metrics evaluate_single_hop(ProtocolKind kind,
                                          const SingleHopParams& params);

}  // namespace sigcomp::analytic
