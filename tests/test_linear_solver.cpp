#include "markov/linear_solver.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.hpp"

namespace sigcomp::markov {
namespace {

TEST(LinearSolver, SolvesDiagonalSystem) {
  const DenseMatrix a{{2.0, 0.0}, {0.0, 4.0}};
  const auto x = solve_linear(a, {2.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinearSolver, SolvesGeneralSystem) {
  // x + 2y = 5; 3x - y = 1  =>  x = 1, y = 2.
  const DenseMatrix a{{1.0, 2.0}, {3.0, -1.0}};
  const auto x = solve_linear(a, {5.0, 1.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinearSolver, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  const DenseMatrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve_linear(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolver, SingularMatrixThrows) {
  const DenseMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(LinearSolver, NonSquareThrows) {
  EXPECT_THROW((void)solve_linear(DenseMatrix(2, 3), {1.0, 2.0}),
               std::invalid_argument);
}

TEST(LinearSolver, RhsSizeMismatchThrows) {
  EXPECT_THROW((void)solve_linear(DenseMatrix::identity(2), {1.0}),
               std::invalid_argument);
}

TEST(LinearSolver, LeftSolveMatchesTransposedSolve) {
  const DenseMatrix a{{1.0, 2.0}, {3.0, -1.0}};
  const auto x = solve_linear_left(a, {5.0, 1.0});
  // x^T A = b^T: check residual directly.
  EXPECT_NEAR(x[0] * 1.0 + x[1] * 3.0, 5.0, 1e-12);
  EXPECT_NEAR(x[0] * 2.0 + x[1] * -1.0, 1.0, 1e-12);
}

TEST(LinearSolver, RandomSystemsHaveTinyResiduals) {
  sim::Rng rng(12345);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(10);
    DenseMatrix a(n, n);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      b[r] = rng.uniform(-10.0, 10.0);
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-5.0, 5.0);
      a(r, r) += 10.0;  // diagonal dominance keeps the system well-conditioned
    }
    const auto x = solve_linear(a, b);
    EXPECT_LT(residual_inf_norm(a, x, b), 1e-9)
        << "trial " << trial << " n=" << n;
  }
}

TEST(LinearSolver, ResidualNormDetectsWrongSolution) {
  const DenseMatrix a = DenseMatrix::identity(2);
  EXPECT_DOUBLE_EQ(residual_inf_norm(a, {1.0, 1.0}, {1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(residual_inf_norm(a, {2.0, 1.0}, {1.0, 1.0}), 1.0);
}

}  // namespace
}  // namespace sigcomp::markov
