// Fixture: determinism-conforming library code -- zero findings expected.
// Randomness through sim::Rng with registry-named streams, ordered
// containers, no clocks, no sleeps, value-based ordering only.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sigcomp::sim {
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;
  double uniform() noexcept;
};
}  // namespace sigcomp::sim

namespace sigcomp::rng {
inline constexpr std::uint64_t kFixtureChannel = 0;
inline constexpr std::uint64_t kFixtureNodes = 1;
}  // namespace sigcomp::rng

class CleanHarness {
 public:
  explicit CleanHarness(std::uint64_t seed)
      : rng_channel_(seed, sigcomp::rng::kFixtureChannel),
        rng_nodes_(seed, sigcomp::rng::kFixtureNodes) {}

  double accumulate() {
    double total = 0.0;
    for (const auto& [key, value] : rates_) {
      total += value * rng_channel_.uniform();
      (void)key;
    }
    return total;
  }

 private:
  sigcomp::sim::Rng rng_channel_;
  sigcomp::sim::Rng rng_nodes_;
  std::map<std::string, double> rates_;  // ordered: iteration is stable
  std::vector<int> order_;
};
