// The discrete-event simulation engine: a clock plus the pending-event set.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"

namespace sigcomp::sim {

/// Sequential discrete-event simulator.
///
/// Typical use:
///   Simulator sim;
///   sim.schedule_in(1.0, [&] { ... });
///   sim.run_until(100.0);
class Simulator {
 public:
  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `t` (must be >= now()).  Callbacks
  /// are EventCallback: any `void()` callable, stored inline when its
  /// captures fit kInlineCapacity (always, on the library's own paths).
  EventId schedule_at(Time t, EventCallback action);

  /// Schedules `action` after `delay` seconds (negative delays are clamped
  /// to "immediately").
  EventId schedule_in(Time delay, EventCallback action);

  /// Cancels a pending event.  Returns false when it already ran/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Executes the next event, if any.  Returns false when the queue is empty.
  bool step();

  /// Runs events up to and including time `t`; the clock then rests at `t`.
  void run_until(Time t);

  /// Runs until no events remain or `max_events` have executed.
  void run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace sigcomp::sim
