// Figure 4: inconsistency ratio (a) and normalized signaling message rate
// (b) versus the mean signaling-state lifetime at the sender, 1/lambda_r in
// [10, 10000] s, for all five protocols (single hop, Kazaa defaults).
//
// Usage: fig04_lifetime [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table table("Fig. 4: I and M vs mean session lifetime 1/lr (single hop)",
                   {"lifetime_s", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)",
                    "I(HS)", "M(SS)", "M(SS+ER)", "M(SS+RT)", "M(SS+RTR)",
                    "M(HS)"});

  for (const double lifetime : exp::log_space(10.0, 10000.0, 13)) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.removal_rate = 1.0 / lifetime;
    std::vector<exp::Cell> row{lifetime};
    std::vector<double> rates;
    for (const ProtocolKind kind : kAllProtocols) {
      const Metrics m = evaluate_analytic(kind, p);
      row.emplace_back(m.inconsistency);
      rates.push_back(m.message_rate);
    }
    for (const double rate : rates) row.emplace_back(rate);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
