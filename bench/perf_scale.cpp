// Scale benchmarks of the event core and the many-session farm.
//
// Part 1 pits both production event-queue backends -- the pooled 4-ary
// heap (sim::EventQueue) and the hashed timing wheel
// (sim::TimingWheelQueue) -- against the pre-refactor reference
// implementation (sim::ReferenceEventQueue: std::function + unordered_map
// + lazily-deleted binary heap) on identical operation streams: a
// schedule/pop flood with small (timer-sized) and large (delivery-sized)
// captures, the classic DES hold pattern, and the soft-state re-arm churn
// pattern (cancel + push, the hot path of refresh timers, where the
// wheel's O(1) unlink shines).
//
// Part 2 drives the session farm at N in {1k, 10k, 100k} concurrent
// single-hop sessions for all five protocols, plus a 100k-session
// single-simulator stress row and a multi-hop farm row, reporting events/s
// and sessions/s.  --event-queue selects the farm backend; a head-to-head
// table always runs the largest single-hop farm under BOTH backends
// (results are bit-identical -- only the wall clock may differ).
//
// --quick shrinks the Ns for CI and always runs the determinism self-check:
// farm results must be bit-identical across thread counts AND shard sizes
// (exit 1 on mismatch).  --json writes the machine-readable BENCH_scale.json
// described in docs/PERFORMANCE.md.
//
// --sessions N adds the MILLION-SESSION leg: one arena-farm run of N
// single-hop SS+RT sessions over a 10 s arrival window with 300 s mean
// lifetimes, so ~98.4% of N is concurrently in flight at the peak (pass
// N = 1050000 to put the peak above one million).  The leg then reruns the
// same workload across {1, 2, 8} threads x shard sizes {7, 64, 4096} and
// compares an FNV-1a digest of the full per-session metrics stream: any
// single bit of any session's metrics differing across the executions
// exits 1.  docs/PERFORMANCE.md documents the methodology.
//
// --shared-relays R (with --sessions N) adds the CROSS-SHARD leg: the same
// scale workload with R shared relay sessions fed through the ShardRing
// fabric (R * subscribers-per-relay farm sessions install state through
// relays in other shards).  The determinism self-check always includes the
// fabric rows: a small shared-relay farm must stay element-wise identical
// across thread counts and shard sizes (exit 1 on mismatch).
//
// Usage: perf_scale [--quick] [--csv PATH] [--threads N]
//                   [--event-queue heap|wheel] [--json PATH] [--sessions N]
//                   [--shared-relays R] [--subscribers-per-relay S]
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/session_farm.hpp"
#include "exp/shard_ring.hpp"
#include "exp/table.hpp"
#include "sim/event_queue.hpp"
#include "sim/reference_event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timing_wheel_queue.hpp"

namespace {

using namespace sigcomp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ------------------------------------------------------- JSON report ----

/// One event-core workload: ops/s per queue implementation.
struct CoreJsonRow {
  std::string workload;
  double reference_ops = 0.0;
  double heap_ops = 0.0;
  double wheel_ops = 0.0;
};

/// One farm workload under one backend.
struct FarmJsonRow {
  std::string workload;
  std::string backend;
  std::size_t sessions = 0;
  std::uint64_t peak_sessions_in_flight = 0;
  std::uint64_t events_executed = 0;
  double seconds = 0.0;
  double events_per_s = 0.0;
  double sessions_per_s = 0.0;
  std::uint64_t fabric_messages = 0;  ///< cross-shard ring traffic (0 = none)
  std::size_t fabric_rings = 0;       ///< ShardRings materialized
};

/// One cross-shard ring micro-workload: ops/s through exp::ShardRing.
struct RingJsonRow {
  std::string workload;
  double ops = 0.0;
};

/// Everything --json persists; docs/PERFORMANCE.md documents the schema.
struct JsonReport {
  bool quick = false;
  std::size_t threads = 0;
  std::string farm_backend;
  std::vector<CoreJsonRow> core;
  std::vector<RingJsonRow> ring;
  std::vector<FarmJsonRow> farm;
};

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

/// Hand-rolled writer: two fixed arrays of flat objects, no dependencies.
/// All strings are known table labels (no escaping needed).
void write_json_report(const JsonReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open --json path: " + path);
  out << "{\n";
  out << "  \"bench\": \"perf_scale\",\n";
  out << "  \"quick\": " << (report.quick ? "true" : "false") << ",\n";
  out << "  \"threads\": " << report.threads << ",\n";
  out << "  \"farm_backend\": \"" << report.farm_backend << "\",\n";
  out << "  \"event_core\": [\n";
  for (std::size_t i = 0; i < report.core.size(); ++i) {
    const CoreJsonRow& row = report.core[i];
    out << "    {\"workload\": \"" << row.workload << "\", "
        << "\"reference_ops_per_s\": " << json_number(row.reference_ops)
        << ", \"heap_ops_per_s\": " << json_number(row.heap_ops)
        << ", \"wheel_ops_per_s\": " << json_number(row.wheel_ops) << "}"
        << (i + 1 < report.core.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"ring\": [\n";
  for (std::size_t i = 0; i < report.ring.size(); ++i) {
    const RingJsonRow& row = report.ring[i];
    out << "    {\"workload\": \"" << row.workload << "\", "
        << "\"ops_per_s\": " << json_number(row.ops) << "}"
        << (i + 1 < report.ring.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"farm\": [\n";
  for (std::size_t i = 0; i < report.farm.size(); ++i) {
    const FarmJsonRow& row = report.farm[i];
    out << "    {\"workload\": \"" << row.workload << "\", "
        << "\"backend\": \"" << row.backend << "\", "
        << "\"sessions\": " << row.sessions << ", "
        << "\"peak_sessions_in_flight\": " << row.peak_sessions_in_flight
        << ", \"events_executed\": " << row.events_executed << ", "
        << "\"seconds\": " << json_number(row.seconds) << ", "
        << "\"events_per_s\": " << json_number(row.events_per_s) << ", "
        << "\"sessions_per_s\": " << json_number(row.sessions_per_s) << ", "
        << "\"fabric_messages\": " << row.fabric_messages << ", "
        << "\"fabric_rings\": " << row.fabric_rings << "}"
        << (i + 1 < report.farm.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  if (!out.flush()) throw std::runtime_error("write failed: " + path);
}

// ---------------------------------------------------------- event core --

/// Timer-sized capture: one pointer, like the engines' `[this]` lambdas.
struct SmallPayload {
  std::uint64_t* counter;
  void operator()() const { ++*counter; }
};

/// Delivery-sized capture: pointer + a wire-message-sized value, like the
/// channel's `[this, m]` delivery closures (40 bytes).
struct LargePayload {
  std::uint64_t* counter;
  std::uint64_t body[4] = {1, 2, 3, 4};
  void operator()() const { *counter += body[0]; }
};

/// Set false when any workload loses or invents callback executions; the
/// process exits nonzero so the CI smoke run catches event-core
/// regressions, not just determinism breaks.
bool g_core_ok = true;

void expect_fired(const char* workload, std::uint64_t got,
                  std::uint64_t want) {
  if (got != want) {
    std::cerr << workload << ": executed " << got << " callbacks, expected "
              << want << "\n";
    g_core_ok = false;
  }
}

/// Schedule `events` callbacks at random times, then pop-execute all.
/// Returns ops/second (one push + one pop per event).
template <typename Queue, typename Payload>
double flood_rate(std::size_t events) {
  Queue q;
  sim::Rng rng(7);
  std::uint64_t fired = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < events; ++i) {
    q.push(rng.uniform(0.0, 1000.0), Payload{&fired});
  }
  while (!q.empty()) q.pop().action();
  const double elapsed = seconds_since(start);
  expect_fired("flood", fired, events);
  return static_cast<double>(2 * events) / elapsed;
}

/// The classic DES "hold" pattern: steady-state depth, each round pops the
/// earliest event and schedules a successor.  Returns ops/second.
template <typename Queue>
double hold_rate(std::size_t depth, std::size_t rounds) {
  Queue q;
  sim::Rng rng(9);
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    q.push(rng.uniform(0.0, 100.0), SmallPayload{&fired});
  }
  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    auto event = q.pop();
    event.action();
    q.push(event.time + rng.uniform(0.0, 100.0), SmallPayload{&fired});
  }
  const double elapsed = seconds_since(start);
  while (!q.empty()) q.pop();  // drained without executing
  expect_fired("hold", fired, rounds);
  return static_cast<double>(2 * rounds) / elapsed;
}

/// The soft-state refresh pattern: `live` long-lived timers, each round
/// re-arms one (cancel + push at a later time).  Returns ops/second.
template <typename Queue>
double churn_rate(std::size_t live, std::size_t rounds) {
  Queue q;
  sim::Rng rng(11);
  std::uint64_t fired = 0;
  std::vector<decltype(q.push(0.0, SmallPayload{nullptr}))> ids;
  ids.reserve(live);
  for (std::size_t i = 0; i < live; ++i) {
    ids.push_back(q.push(rng.uniform(0.0, 100.0), SmallPayload{&fired}));
  }
  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t victim = r % live;
    q.cancel(ids[victim]);
    ids[victim] = q.push(100.0 + static_cast<double>(r) * 0.01 + rng.uniform(),
                         SmallPayload{&fired});
  }
  const double elapsed = seconds_since(start);
  while (!q.empty()) q.pop();  // drained without executing
  expect_fired("churn", fired, 0);  // every timer was cancelled or drained
  return static_cast<double>(2 * rounds) / elapsed;
}

/// Per-workload speedups reported under the tables.
struct CoreSpeedups {
  double churn_heap_vs_reference = 0.0;
  double churn_wheel_vs_heap = 0.0;
};

double add_core_row(exp::Table& table, JsonReport& json,
                    const std::string& name, double reference, double heap,
                    double wheel) {
  table.add_row(
      {name, reference, heap, wheel, heap / reference, wheel / heap});
  json.core.push_back({name, reference, heap, wheel});
  return wheel / heap;
}

CoreSpeedups bench_event_core(exp::Table& table, JsonReport& json,
                              bool quick) {
  const std::size_t flood = quick ? 100000 : 1000000;
  const std::size_t live = 10000;
  const std::size_t rounds = quick ? 200000 : 2000000;
  const std::size_t hold_depth = quick ? 10000 : 100000;

  add_core_row(table, json, "flood, timer-sized capture",
               flood_rate<sim::ReferenceEventQueue, SmallPayload>(flood),
               flood_rate<sim::EventQueue, SmallPayload>(flood),
               flood_rate<sim::TimingWheelQueue, SmallPayload>(flood));
  add_core_row(table, json, "flood, delivery-sized capture",
               flood_rate<sim::ReferenceEventQueue, LargePayload>(flood),
               flood_rate<sim::EventQueue, LargePayload>(flood),
               flood_rate<sim::TimingWheelQueue, LargePayload>(flood));
  add_core_row(table, json, "hold, steady depth",
               hold_rate<sim::ReferenceEventQueue>(hold_depth, rounds),
               hold_rate<sim::EventQueue>(hold_depth, rounds),
               hold_rate<sim::TimingWheelQueue>(hold_depth, rounds));
  // The headline workload: the soft-state refresh/backoff timer churn that
  // dominates every protocol simulation.  The heap pays O(log n) sift plus
  // husk compaction per cancel; the wheel unlinks in O(1).
  const double ref_churn = churn_rate<sim::ReferenceEventQueue>(live, rounds);
  const double heap_churn = churn_rate<sim::EventQueue>(live, rounds);
  const double wheel_churn = churn_rate<sim::TimingWheelQueue>(live, rounds);
  CoreSpeedups speedups;
  speedups.churn_heap_vs_reference = heap_churn / ref_churn;
  speedups.churn_wheel_vs_heap =
      add_core_row(table, json, "re-arm churn (cancel-heavy)", ref_churn,
                   heap_churn, wheel_churn);
  return speedups;
}

// ---------------------------------------------------- cross-shard ring --

/// Same-thread push/pop cycle through one ShardRing: the farm's
/// barrier-separated steady state, where producer and consumer never
/// overlap in time.  Returns ops/second (one push + one pop per entry).
double ring_phase_rate(std::size_t entries) {
  exp::ShardRing ring(1024);
  exp::CrossShardEntry out;
  std::uint64_t received = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < entries; ++i) {
    exp::CrossShardEntry e;
    e.send_time = 1.0;
    e.source = 7;
    e.seq = i;
    while (!ring.try_push(e)) {
    }
    if (ring.size() >= 512) {
      while (ring.try_pop(out)) ++received;
    }
  }
  while (ring.try_pop(out)) ++received;
  const double elapsed = seconds_since(start);
  expect_fired("ring phase", received, entries);
  if (ring.allocations() != 1) {
    std::cerr << "ring phase: ring grew under try_push -- BUG\n";
    g_core_ok = false;
  }
  return static_cast<double>(2 * entries) / elapsed;
}

/// True concurrent SPSC: a producer thread races the consuming main
/// thread through one ring, the farm's worst-case interleaving (and the
/// shape the TSan leg audits).  Returns ops/second.
double ring_spsc_rate(std::size_t entries) {
  exp::ShardRing ring(1024);
  const auto start = Clock::now();
  std::thread producer([&ring, entries] {
    for (std::size_t i = 0; i < entries; ++i) {
      exp::CrossShardEntry e;
      e.send_time = 1.0;
      e.source = 7;
      e.seq = i;
      while (!ring.try_push(e)) {
      }
    }
  });
  std::uint64_t received = 0;
  exp::CrossShardEntry out;
  while (received < entries) {
    if (ring.try_pop(out)) ++received;
  }
  producer.join();
  const double elapsed = seconds_since(start);
  expect_fired("ring spsc", received, entries);
  return static_cast<double>(2 * entries) / elapsed;
}

/// The destination shard's boundary work: drain a warm ring in batches and
/// stamp-sort each batch into fabric delivery order.  Returns entries/s.
double ring_drain_sort_rate(std::size_t entries, std::size_t batch) {
  exp::ShardRing ring(batch);
  std::vector<exp::CrossShardEntry> merged;
  std::uint64_t received = 0;
  const auto start = Clock::now();
  for (std::size_t pushed = 0; pushed < entries;) {
    const std::size_t n = std::min(batch, entries - pushed);
    for (std::size_t i = 0; i < n; ++i, ++pushed) {
      exp::CrossShardEntry e;
      e.send_time = static_cast<double>(pushed % 16);  // heavy ties
      e.source = pushed % 97;
      e.seq = pushed;
      ring.push(e);
    }
    merged.clear();
    received += ring.drain(merged);
    exp::sort_fabric(merged);
  }
  const double elapsed = seconds_since(start);
  expect_fired("ring drain+sort", received, entries);
  return static_cast<double>(entries) / elapsed;
}

void bench_ring(exp::Table& table, JsonReport& json, bool quick) {
  const std::size_t entries = quick ? 400000 : 4000000;
  const auto add = [&](const std::string& name, double ops) {
    table.add_row({name, ops});
    json.ring.push_back({name, ops});
  };
  add("phase-separated push/pop", ring_phase_rate(entries));
  add("concurrent SPSC push/pop", ring_spsc_rate(entries));
  add("drain + stamp sort (1k batches)",
      ring_drain_sort_rate(entries, 1024));
}

// -------------------------------------------------------- session farm --

exp::SessionFarmOptions farm_options(std::size_t sessions,
                                     exp::ParallelSweep* engine,
                                     sim::EventQueueBackend backend) {
  exp::SessionFarmOptions options;
  options.seed = 42;
  options.sessions = sessions;
  // Arrival window = N/rate = 30 s against a 60 s mean lifetime: most of
  // the N sessions are in flight at once in steady state.
  options.arrival_rate = static_cast<double>(sessions) / 30.0;
  options.session_lifetime = 60.0;
  options.engine = engine;
  options.event_queue = backend;
  return options;
}

void add_farm_row(exp::Table& table, JsonReport& json,
                  const std::string& name, sim::EventQueueBackend backend,
                  std::size_t sessions, const exp::SessionFarmResult& result,
                  double elapsed) {
  const double events_per_s =
      static_cast<double>(result.events_executed) / elapsed;
  const double sessions_per_s =
      static_cast<double>(result.sessions) / elapsed;
  table.add_row({name, static_cast<double>(sessions),
                 static_cast<double>(result.peak_sessions_in_flight),
                 static_cast<double>(result.events_executed), elapsed,
                 events_per_s, sessions_per_s,
                 result.summary.mean.inconsistency});
  json.farm.push_back({name, sim::to_string(backend), sessions,
                       result.peak_sessions_in_flight, result.events_executed,
                       elapsed, events_per_s, sessions_per_s,
                       result.fabric_messages, result.fabric_rings});
}

void bench_farm(exp::Table& table, JsonReport& json, std::size_t sessions,
                exp::ParallelSweep& engine, sim::EventQueueBackend backend) {
  for (const ProtocolKind kind : kAllProtocols) {
    const auto start = Clock::now();
    const exp::SessionFarmResult result =
        run_session_farm(kind, SingleHopParams::kazaa_defaults(),
                         farm_options(sessions, &engine, backend));
    add_farm_row(table, json, "single-hop " + std::string(to_string(kind)),
                 backend, sessions, result, seconds_since(start));
  }
}

void bench_farm_stress(exp::Table& table, JsonReport& json,
                       std::size_t sessions, exp::ParallelSweep& engine,
                       sim::EventQueueBackend backend) {
  // One Simulator hosting every session: the true "N concurrent sessions
  // in one event queue" stress.  (peak_sessions_in_flight is exact at any
  // shard size now -- the farm merges per-shard session intervals -- so
  // single-shard is purely an event-queue stress, not a peak-truth crutch.)
  exp::SessionFarmOptions options = farm_options(sessions, &engine, backend);
  options.shard_size = sessions;
  const auto start = Clock::now();
  const exp::SessionFarmResult result =
      run_session_farm(ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(),
                       options);
  add_farm_row(table, json, "one-sim stress SS+RT", backend, sessions, result,
               seconds_since(start));
}

void bench_farm_multihop(exp::Table& table, JsonReport& json,
                         std::size_t sessions, exp::ParallelSweep& engine,
                         sim::EventQueueBackend backend) {
  MultiHopParams params;
  params.hops = 4;
  const auto start = Clock::now();
  const exp::SessionFarmResult result =
      run_session_farm(ProtocolKind::kSSRT, params,
                       farm_options(sessions, &engine, backend));
  add_farm_row(table, json, "multi-hop SS+RT K=4", backend, sessions, result,
               seconds_since(start));
}

/// The largest single-hop farm workload under BOTH backends.  The results
/// are bit-identical by construction (asserted here; also locked by
/// tests/test_session_farm.cpp) -- only the wall clock may differ, which
/// is exactly what the row pair shows.
bool bench_farm_head_to_head(exp::Table& table, JsonReport& json,
                             std::size_t sessions,
                             exp::ParallelSweep& engine) {
  exp::SessionFarmResult results[2];
  const sim::EventQueueBackend backends[2] = {sim::EventQueueBackend::kHeap,
                                              sim::EventQueueBackend::kWheel};
  for (int i = 0; i < 2; ++i) {
    const auto start = Clock::now();
    results[i] = run_session_farm(ProtocolKind::kSSRT,
                                  SingleHopParams::kazaa_defaults(),
                                  farm_options(sessions, &engine, backends[i]));
    add_farm_row(
        table, json,
        std::string("head-to-head SS+RT, ") + sim::to_string(backends[i]),
        backends[i], sessions, results[i], seconds_since(start));
  }
  const bool identical = results[0].summary.mean.inconsistency ==
                             results[1].summary.mean.inconsistency &&
                         results[0].messages == results[1].messages &&
                         results[0].events_executed ==
                             results[1].events_executed &&
                         results[0].horizon == results[1].horizon;
  if (!identical) {
    std::cerr << "head-to-head: heap and wheel farms disagree -- BUG\n";
  }
  return identical;
}

// ------------------------------------------------- million-session leg --

/// The scale workload: N sessions arriving over a 10 s window with 300 s
/// mean lifetimes.  P(a session is still alive at the window's end) ~
/// integral of exp(-t/300)/10 over [0,10] = 98.4%, so the in-flight peak
/// is ~0.984 N -- N = 1050000 sustains a million concurrent sessions.
exp::SessionFarmOptions scale_options(std::size_t sessions,
                                      std::size_t threads,
                                      sim::EventQueueBackend backend) {
  exp::SessionFarmOptions options;
  options.seed = 42;
  options.sessions = sessions;
  options.arrival_rate = static_cast<double>(sessions) / 10.0;
  options.session_lifetime = 300.0;
  options.shard_size = 4096;
  options.threads = threads;
  options.event_queue = backend;
  options.keep_per_session = true;
  return options;
}

/// FNV-1a over every double of every session's Metrics, in global session
/// order -- the same construction tests/test_golden_trace.cpp pins, so
/// "digests equal" means bit-identical metrics session by session.
std::uint64_t metrics_digest(const std::vector<Metrics>& sessions) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    for (std::size_t i = 0; i < sizeof(bits); ++i) {
      hash ^= (bits >> (8 * i)) & 0xffU;
      hash *= 0x100000001b3ULL;
    }
  };
  for (const Metrics& m : sessions) {
    mix(m.inconsistency);
    mix(m.message_rate);
    mix(m.raw_message_rate);
    mix(m.session_length);
    mix(m.breakdown.trigger);
    mix(m.breakdown.refresh);
    mix(m.breakdown.explicit_removal);
    mix(m.breakdown.reliable_trigger);
    mix(m.breakdown.reliable_removal);
  }
  return hash;
}

/// Runs the measured scale row plus the thread/shard determinism matrix.
/// Returns false when any configuration's per-session digest diverges.
bool bench_farm_scale(exp::Table& table, exp::Table& check, JsonReport& json,
                      std::size_t sessions, std::size_t threads,
                      sim::EventQueueBackend backend) {
  const auto start = Clock::now();
  const exp::SessionFarmResult measured =
      run_session_farm(ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(),
                       scale_options(sessions, threads, backend));
  const double elapsed = seconds_since(start);
  add_farm_row(table, json, "scale SS+RT, 10s window", backend, sessions,
               measured, elapsed);
  const std::uint64_t baseline = metrics_digest(measured.per_session);
  std::cout << "scale leg: " << sessions << " sessions, peak in flight "
            << measured.peak_sessions_in_flight << ", arena high water "
            << measured.arena_slot_high_water << " slots/shard\n";

  // The determinism matrix the farm contract promises: {1, 2, 8} threads at
  // the production shard size, and shard sizes {7, 64, 4096} single
  // threaded.  (The measured run above already covers (threads, 4096).)
  struct ScaleConfig {
    std::size_t threads;
    std::size_t shard_size;
  };
  const ScaleConfig configs[] = {
      {1, 4096}, {2, 4096}, {8, 4096}, {1, 7}, {1, 64}};
  bool all_ok = true;
  for (const ScaleConfig& config : configs) {
    if (config.threads == threads && config.shard_size == 4096) continue;
    exp::SessionFarmOptions options =
        scale_options(sessions, config.threads, backend);
    options.shard_size = config.shard_size;
    const exp::SessionFarmResult result = run_session_farm(
        ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), options);
    const bool ok = metrics_digest(result.per_session) == baseline &&
                    result.peak_sessions_in_flight ==
                        measured.peak_sessions_in_flight;
    all_ok = all_ok && ok;
    check.add_row({"scale threads=" + std::to_string(config.threads) +
                       " shard=" + std::to_string(config.shard_size),
                   ok ? "identical" : "MISMATCH -- BUG"});
  }
  return all_ok;
}

/// The cross-shard leg of the scale run: the same workload with `relays`
/// shared relay sessions fed through the ring fabric.  One measured row --
/// the thread/shard determinism matrix for fabric runs lives in the always-on
/// self-check (and, element-wise, in tests/test_shared_relay_farm.cpp).
bool bench_farm_scale_xshard(exp::Table& table, JsonReport& json,
                             std::size_t sessions, std::size_t relays,
                             std::size_t subscribers, std::size_t threads,
                             sim::EventQueueBackend backend) {
  exp::SessionFarmOptions options = scale_options(sessions, threads, backend);
  options.keep_per_session = false;  // measured row only; no digest needed
  options.shared_relays = relays;
  options.subscribers_per_relay = subscribers;
  const auto start = Clock::now();
  const exp::SessionFarmResult result =
      run_session_farm(ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(),
                       options);
  add_farm_row(table, json, "scale SS+RT shared-relay", backend,
               sessions + relays, result, seconds_since(start));
  std::cout << "xshard scale leg: " << relays << " relays x " << subscribers
            << " subscribers, peak in flight "
            << result.peak_sessions_in_flight << ", "
            << result.fabric_messages << " fabric messages over "
            << result.fabric_rings << " rings in " << result.fabric_epochs
            << " epochs\n";
  const bool ok = result.fabric_messages > 0 && result.fabric_rings > 0;
  if (!ok) std::cerr << "xshard scale leg: fabric carried no traffic -- BUG\n";
  return ok;
}

// ---------------------------------------------------------- self-check --

bool summaries_identical(const exp::SessionFarmResult& a,
                         const exp::SessionFarmResult& b) {
  return a.summary.mean.inconsistency == b.summary.mean.inconsistency &&
         a.summary.mean.message_rate == b.summary.mean.message_rate &&
         a.summary.mean.raw_message_rate == b.summary.mean.raw_message_rate &&
         a.summary.mean.session_length == b.summary.mean.session_length &&
         a.summary.inconsistency.half_width ==
             b.summary.inconsistency.half_width &&
         a.messages == b.messages && a.events_executed == b.events_executed &&
         a.receiver_timeouts == b.receiver_timeouts && a.horizon == b.horizon;
}

/// Farm determinism: results must not depend on thread count, shard size,
/// or the event-queue backend.  (events_executed and the peak do depend on
/// the shard decomposition, so the shard-size check compares the metric
/// fields only.)
bool self_check(exp::Table& table, sim::EventQueueBackend backend) {
  exp::SessionFarmOptions base = farm_options(1500, nullptr, backend);
  bool all_ok = true;

  base.threads = 1;
  base.shard_size = 512;
  const exp::SessionFarmResult serial = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), base);
  for (const std::size_t threads : {2, 8}) {
    exp::SessionFarmOptions opt = base;
    opt.threads = threads;
    const exp::SessionFarmResult parallel = run_session_farm(
        ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), opt);
    const bool ok = summaries_identical(serial, parallel);
    all_ok = all_ok && ok;
    table.add_row({"threads=" + std::to_string(threads) + " vs 1",
                   ok ? "identical" : "MISMATCH -- BUG"});
  }

  exp::SessionFarmOptions resharded = base;
  resharded.shard_size = 97;  // deliberately ragged
  const exp::SessionFarmResult other = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), resharded);
  const bool ok =
      serial.summary.mean.inconsistency == other.summary.mean.inconsistency &&
      serial.summary.mean.message_rate == other.summary.mean.message_rate &&
      serial.summary.inconsistency.half_width ==
          other.summary.inconsistency.half_width &&
      serial.messages == other.messages &&
      serial.receiver_timeouts == other.receiver_timeouts;
  all_ok = all_ok && ok;
  table.add_row(
      {"shard_size=97 vs 512", ok ? "identical" : "MISMATCH -- BUG"});

  // The same serial baseline rerun on the OTHER backend: every metric,
  // event count included, must come back bit-identical.
  exp::SessionFarmOptions crossed = base;
  crossed.event_queue = backend == sim::EventQueueBackend::kHeap
                            ? sim::EventQueueBackend::kWheel
                            : sim::EventQueueBackend::kHeap;
  const exp::SessionFarmResult cross_backend = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), crossed);
  const bool backend_ok = summaries_identical(serial, cross_backend);
  all_ok = all_ok && backend_ok;
  table.add_row({std::string("backend ") + sim::to_string(crossed.event_queue) +
                     " vs " + sim::to_string(backend),
                 backend_ok ? "identical" : "MISMATCH -- BUG"});
  return all_ok;
}

/// Cross-shard fabric determinism: a shared-relay farm -- fan-in at the
/// relays, refresh fan-out back across the ShardRing fabric -- must stay
/// element-wise identical (per-session metric digest) across thread counts
/// AND shard sizes, fabric counters included.
bool xshard_self_check(exp::Table& table, sim::EventQueueBackend backend) {
  exp::SessionFarmOptions base = farm_options(600, nullptr, backend);
  base.threads = 1;
  base.shard_size = 97;  // ragged: subscribers and relays straddle shards
  base.shared_relays = 6;
  base.subscribers_per_relay = 16;
  base.keep_per_session = true;
  const exp::SessionFarmResult serial = run_session_farm(
      ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), base);
  const std::uint64_t baseline = metrics_digest(serial.per_session);
  bool all_ok = serial.fabric_messages > 0 && serial.fabric_rings > 0;
  table.add_row({"xshard fabric traffic",
                 all_ok ? "flowing" : "SILENT -- BUG"});

  const auto identical = [&](const exp::SessionFarmResult& other) {
    return metrics_digest(other.per_session) == baseline &&
           other.messages == serial.messages &&
           other.fabric_messages == serial.fabric_messages &&
           other.fabric_dropped == serial.fabric_dropped &&
           other.relay_installs == serial.relay_installs &&
           other.relay_refreshes == serial.relay_refreshes &&
           other.peak_sessions_in_flight == serial.peak_sessions_in_flight;
  };
  for (const std::size_t threads : {2, 8}) {
    exp::SessionFarmOptions opt = base;
    opt.threads = threads;
    const bool ok = identical(run_session_farm(
        ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), opt));
    all_ok = all_ok && ok;
    table.add_row({"xshard threads=" + std::to_string(threads) + " vs 1",
                   ok ? "identical" : "MISMATCH -- BUG"});
  }
  exp::SessionFarmOptions resharded = base;
  resharded.shard_size = 512;
  const bool ok = identical(run_session_farm(
      ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), resharded));
  all_ok = all_ok && ok;
  table.add_row(
      {"xshard shard_size=512 vs 97", ok ? "identical" : "MISMATCH -- BUG"});
  return all_ok;
}

sim::EventQueueBackend backend_from_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--event-queue") continue;
    if (i + 1 >= argc) {
      throw std::invalid_argument("--event-queue requires a value");
    }
    const auto parsed = sim::parse_event_queue_backend(argv[i + 1]);
    if (!parsed) {
      throw std::invalid_argument(
          std::string("--event-queue must be heap or wheel, got: ") +
          argv[i + 1]);
    }
    return *parsed;
  }
  return sim::kDefaultEventQueueBackend;
}

std::string json_path_from_args(int argc, const char* const* argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

/// Shared `--flag N` count parser of the scale-leg knobs.
std::size_t count_from_args(int argc, const char* const* argv,
                            std::string_view flag, std::size_t fallback,
                            bool allow_zero) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != flag) continue;
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(flag) + " requires a value");
    }
    const long long parsed = std::stoll(argv[i + 1]);
    if (parsed < 0 || (parsed == 0 && !allow_zero)) {
      throw std::invalid_argument(std::string(flag) + " must be positive");
    }
    return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// --sessions N enables the million-session leg; 0 means off.
std::size_t scale_sessions_from_args(int argc, const char* const* argv) {
  return count_from_args(argc, argv, "--sessions", 0, /*allow_zero=*/false);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--quick") quick = true;
    }
    const std::size_t threads = exp::threads_from_args(argc, argv);
    const sim::EventQueueBackend backend = backend_from_args(argc, argv);
    exp::ParallelSweep engine(threads);

    JsonReport json;
    json.quick = quick;
    json.threads = engine.threads();
    json.farm_backend = sim::to_string(backend);

    exp::Table core(
        "event core: reference vs pooled heap vs timing wheel "
        "(ops/s; one push+pop or cancel+push per op pair)",
        {"workload", "reference ops/s", "heap ops/s", "wheel ops/s",
         "heap/ref", "wheel/heap"});
    const CoreSpeedups speedups = bench_event_core(core, json, quick);
    core.print(std::cout);
    std::cout << '\n';

    exp::Table ring(
        "cross-shard ring (exp::ShardRing; ops/s = push+pop pairs, "
        "drain row = entries/s through drain + stamp sort)",
        {"workload", "ops/s"});
    bench_ring(ring, json, quick);
    ring.print(std::cout);
    std::cout << '\n';

    exp::Table farm(std::string("session farm scale (single-hop sessions per "
                                "protocol, event queue: ") +
                        sim::to_string(backend) + ")",
                    {"workload", "sessions", "peak in flight", "events",
                     "seconds", "events/s", "sessions/s", "I (mean)"});
    const std::vector<std::size_t> ns =
        quick ? std::vector<std::size_t>{200, 1000}
              : std::vector<std::size_t>{1000, 10000, 100000};
    for (const std::size_t n : ns) bench_farm(farm, json, n, engine, backend);
    // 120k sessions against a 30 s arrival window and 60 s lifetimes puts
    // the peak above 100k sessions concurrently inside ONE simulator.
    bench_farm_stress(farm, json, quick ? 2000 : 120000, engine, backend);
    bench_farm_multihop(farm, json, quick ? 200 : 10000, engine, backend);
    const bool head_to_head_ok =
        bench_farm_head_to_head(farm, json, ns.back(), engine);
    farm.print(std::cout);
    std::cout << '\n';

    const std::size_t scale_sessions = scale_sessions_from_args(argc, argv);
    const std::size_t scale_relays =
        count_from_args(argc, argv, "--shared-relays", 0, /*allow_zero=*/true);
    const std::size_t scale_subscribers = count_from_args(
        argc, argv, "--subscribers-per-relay", 16, /*allow_zero=*/false);
    exp::Table check("determinism self-check (SS, 1500 sessions; "
                     "xshard rows: SS+RT, 600 sessions + 6 shared relays)",
                     {"comparison", "result"});
    const bool base_deterministic = self_check(check, backend);
    const bool xshard_deterministic = xshard_self_check(check, backend);
    const bool deterministic = base_deterministic && xshard_deterministic;
    bool scale_ok = true;
    if (scale_sessions > 0) {
      exp::Table scale(
          std::string("million-session leg (single-hop SS+RT, "
                      "10 s window, 300 s lifetimes, event queue: ") +
              sim::to_string(backend) + ")",
          {"workload", "sessions", "peak in flight", "events", "seconds",
           "events/s", "sessions/s", "I (mean)"});
      scale_ok = bench_farm_scale(scale, check, json, scale_sessions,
                                  engine.threads(), backend);
      if (scale_relays > 0) {
        scale_ok = bench_farm_scale_xshard(scale, json, scale_sessions,
                                           scale_relays, scale_subscribers,
                                           engine.threads(), backend) &&
                   scale_ok;
      }
      scale.print(std::cout);
      std::cout << '\n';
    }
    check.print(std::cout);
    std::cout << "\nre-arm churn speedups: heap "
              << speedups.churn_heap_vs_reference
              << "x over reference, wheel " << speedups.churn_wheel_vs_heap
              << "x over heap\n";

    const std::string csv = exp::csv_path_from_args(argc, argv);
    if (!csv.empty()) {
      core.write_csv_file(csv);
      farm.write_csv_file(csv + ".farm.csv");
    }
    const std::string json_path = json_path_from_args(argc, argv);
    if (!json_path.empty()) write_json_report(json, json_path);
    return (deterministic && head_to_head_ok && scale_ok && g_core_ok) ? 0
                                                                       : 1;
  } catch (const std::exception& e) {
    std::cerr << "perf_scale: " << e.what() << '\n';
    return 2;
  }
}
