// Extension experiment: heavy-tailed session lifetimes.  The model (and
// Fig. 4) assumes exponentially distributed session lengths; measured P2P
// and membership sessions are heavy-tailed.  Same mean (30 min), three
// laws: exponential, Pareto (tail index 1.5) and lognormal (sigma 1.5) --
// does the paper's protocol ranking survive its own assumption breaking?
//
// Usage: ext_heavy_tail [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  const SingleHopParams params = SingleHopParams::kazaa_defaults();

  struct Law {
    const char* name;
    protocols::LifetimeDistribution dist;
    double shape;
  };
  const Law laws[] = {
      {"exponential", protocols::LifetimeDistribution::kExponential, 0.0},
      {"pareto a=1.5", protocols::LifetimeDistribution::kPareto, 1.5},
      {"pareto a=1.1", protocols::LifetimeDistribution::kPareto, 1.1},
      {"lognormal s=1.5", protocols::LifetimeDistribution::kLognormal, 1.5},
  };

  exp::Table table(
      "Heavy-tailed session lifetimes, simulated (mean 1800 s under every "
      "law; model prediction uses the exponential assumption)",
      {"lifetime law", "protocol", "I (sim)", "I (model, exp)", "M (sim)",
       "M (model, exp)"});

  for (const Law& law : laws) {
    for (const ProtocolKind kind : kAllProtocols) {
      const Metrics model = evaluate_analytic(kind, params);
      protocols::SimOptions options;
      options.sessions = 3000;
      options.seed = 61;
      options.lifetime_dist = law.dist;
      options.lifetime_shape = law.shape;
      const protocols::SimResult sim = evaluate_simulated(kind, params, options);
      table.add_row({std::string(law.name), std::string(to_string(kind)),
                     sim.metrics.inconsistency, model.inconsistency,
                     sim.metrics.message_rate, model.message_rate});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: a heavy tail means most sessions are much shorter than "
         "the mean, so setup/teardown inconsistency is paid more often per "
         "unit of state-time -- pure soft state degrades the most, while "
         "the explicit-removal protocols barely move. The paper's ranking "
         "is robust to its exponential-lifetime assumption.\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
