// Performance metrics shared by the analytic models and the simulator.
#pragma once

#include <iosfwd>

#include "core/params.hpp"

namespace sigcomp {

/// Per-message-type breakdown of the mean signaling message rate (msg/s).
/// The paper's Eqs. (3)-(7): explicit triggers, refreshes, explicit removals,
/// reliable-trigger extras (retransmissions/ACKs/notifications) and
/// reliable-removal extras.
struct MessageRateBreakdown {
  double trigger = 0.0;           ///< m_ET: explicit trigger transmissions
  double refresh = 0.0;           ///< m_R: refresh transmissions
  double explicit_removal = 0.0;  ///< m_ER: explicit removal transmissions
  double reliable_trigger = 0.0;  ///< m_RT: retransmissions + ACKs + notifications
  double reliable_removal = 0.0;  ///< m_RR: removal retransmissions + ACKs

  [[nodiscard]] double total() const noexcept {
    return trigger + refresh + explicit_removal + reliable_trigger +
           reliable_removal;
  }
};

/// The two headline metrics (plus supporting quantities).
struct Metrics {
  /// I: fraction of time sender/receiver state values differ (Eq. 1).
  double inconsistency = 0.0;
  /// M-bar = N * lambda_r: expected messages per session, normalized by the
  /// sender-state removal rate (Sec. III-A.2).  For the multi-hop model
  /// (infinite lifetime) this is simply the raw message rate in msg/s.
  double message_rate = 0.0;
  /// m: raw stationary signaling message rate in msg/s.
  double raw_message_rate = 0.0;
  /// L: expected signaling-state lifetime (time to absorption); infinity is
  /// represented as 0 for the multi-hop stationary model.
  double session_length = 0.0;
  /// Per-type composition of raw_message_rate.
  MessageRateBreakdown breakdown;
};

/// Integrated cost (Eq. 8): C = weight * I + M.
[[nodiscard]] double integrated_cost(const Metrics& m,
                                     double weight = kDefaultCostWeight) noexcept;

std::ostream& operator<<(std::ostream& os, const Metrics& m);

}  // namespace sigcomp
