// The discrete-event simulation engine: a clock plus the pending-event set.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"

namespace sigcomp::sim {

/// Sequential discrete-event simulator.
///
/// Typical use:
///   Simulator sim;
///   sim.schedule_in(1.0, [&] { ... });
///   sim.run_until(100.0);
class Simulator {
 public:
  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `t` (must be >= now()).  Callbacks
  /// are EventCallback: any `void()` callable, stored inline when its
  /// captures fit kInlineCapacity (always, on the library's own paths).
  EventId schedule_at(Time t, EventCallback action);

  /// Schedules `action` after `delay` seconds (negative delays are clamped
  /// to "immediately").
  EventId schedule_in(Time delay, EventCallback action);

  /// Cancels a pending event.  Returns false when it already ran/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Executes the next event, if any.  Returns false when the queue is empty.
  bool step();

  /// Runs events up to and including time `t`; the clock then rests at `t`.
  void run_until(Time t);

  /// Runs until no events remain or `max_events` have executed.
  void run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// True when no events are pending.
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  /// Number of pending (live) events.
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  /// Events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  /// Slot-pool high-water mark of the underlying event queue
  /// (EventQueue::slot_capacity).  Tests assert it stays flat across
  /// session start/stop churn -- the zero-allocation teardown contract.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return queue_.slot_capacity();
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace sigcomp::sim
