#include "core/metrics.hpp"

#include <ostream>

namespace sigcomp {

double integrated_cost(const Metrics& m, double weight) noexcept {
  return weight * m.inconsistency + m.message_rate;
}

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  os << "{I=" << m.inconsistency << ", M=" << m.message_rate
     << ", raw=" << m.raw_message_rate << " msg/s, L=" << m.session_length
     << " s}";
  return os;
}

}  // namespace sigcomp
