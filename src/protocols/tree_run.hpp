// Tree simulation harness: a sender at the root plus relays on every other
// node, connected by lossy per-edge channels, running any of the five
// protocols, measured against the per-path analytic composition
// (analytic/tree_paths.hpp).  On a fan-out-1 spec this reproduces the
// multi-hop chain harness bit-for-bit (the golden-trace tests pin it).
// With churn enabled (TreeSimOptions::churn) leaves join and leave the
// live tree IGMP-style and the result carries per-join setup latency and
// per-leave orphan windows.
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "protocols/membership.hpp"
#include "protocols/scenario.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace sigcomp::protocols {

/// Execution options of one tree simulation (mirrors MultiHopSimOptions).
struct TreeSimOptions {
  std::uint64_t seed = 1;     ///< base seed of the run's RNG streams
  /// Event-queue backend of the run's Simulator.  A pure performance knob:
  /// both backends pop in the identical (time, insertion-seq) order, so the
  /// run -- golden digests included -- is bit-identical either way.
  sim::EventQueueBackend event_queue = sim::kDefaultEventQueueBackend;
  double duration = 50000.0;  ///< simulated seconds
  /// Timer law at every node (deterministic = real protocols).
  sim::Distribution timer_dist = sim::Distribution::kDeterministic;
  /// Per-edge channel delay law (mean = the edge's delay parameter).
  sim::DelayModel delay_model = sim::DelayModel::kExponential;
  double delay_shape = 1.5;  ///< Pareto tail index / lognormal sigma
  /// Optional trace sink; when set, every per-edge channel records its
  /// send/drop/deliver events (labels "dn0"/"up0", "dn1"/"up1", ...).
  /// Formatting is fully skipped when null -- tracing costs nothing when
  /// absent.
  sim::TraceLog* trace = nullptr;
  /// Leaf churn workload; disabled by default (the static tree, which is
  /// what the pinned golden traces cover).
  ChurnOptions churn;
  /// Correlated-event scenario (flash crowds, shared-risk bursts,
  /// interior-relay crashes); all rates default to zero, which replays the
  /// static / iid-churn run bit-for-bit.
  ScenarioOptions scenario;
};

/// Aggregate outcome of one tree simulation.
struct TreeSimResult {
  /// inconsistency = P(some node disagrees with its intent); raw msg rate.
  /// A node on the path to a joined leaf must mirror the root; a detached
  /// node must hold nothing (orphaned copies count as inconsistent).
  Metrics metrics;
  /// Per relay (tree node i+1): fraction of time its state disagrees with
  /// its intent (see metrics).
  std::vector<double> node_inconsistency;
  /// Per leaf, in increasing leaf-node order (TreeSpec::leaves): fraction
  /// of time ANY node on the root-to-leaf path disagrees with its intent
  /// -- on a static tree, the quantity the per-path chain model predicts.
  std::vector<double> leaf_path_inconsistency;
  std::uint64_t messages = 0;        ///< across every edge, both directions
  double duration = 0.0;             ///< simulated seconds
  std::uint64_t relay_timeouts = 0;  ///< soft-state timeouts across relays
  /// Leaf-churn outcome (all-zero when churn is disabled).
  ChurnReport churn;
  /// Interior-relay crashes driven by the failure scenario (0 without one).
  std::uint64_t relay_crashes = 0;
  /// Completed relay recoveries (0 without a failure scenario).
  std::uint64_t relay_recoveries = 0;
};

/// Runs one tree replication (any of the five protocols).  Throws
/// std::invalid_argument on bad parameters.
[[nodiscard]] TreeSimResult run_tree(ProtocolKind kind,
                                     const analytic::TreeParams& params,
                                     const TreeSimOptions& options);

/// Replicated tree estimates with 95% confidence intervals (seeds
/// options.seed, options.seed + 1, ..., mirroring the multi-hop API).
struct TreeReplicatedResult {
  sim::ConfidenceInterval inconsistency;  ///< all-nodes inconsistency
  sim::ConfidenceInterval message_rate;   ///< raw msg/s across the tree
  /// Largest per-leaf path inconsistency within each replication.
  sim::ConfidenceInterval worst_leaf_inconsistency;
  std::size_t replications = 0;  ///< independent runs aggregated
};

/// Runs `replications` independent tree simulations and aggregates them
/// (see TreeReplicatedResult).
[[nodiscard]] TreeReplicatedResult run_tree_replicated(
    ProtocolKind kind, const analytic::TreeParams& params,
    const TreeSimOptions& options, std::size_t replications);

}  // namespace sigcomp::protocols
