// Transient solution of a CTMC by uniformization (Jensen's method).
//
// Not needed for the paper's stationary results, but part of a complete
// Markov substrate: it lets users ask "what is the state distribution t
// seconds after setup?", e.g. how quickly consistency is reached after an
// update burst.  Also used by tests as an independent check that the
// stationary solution is the t -> infinity limit.
#pragma once

#include <vector>

#include "markov/ctmc.hpp"

namespace sigcomp::markov {

/// Computes the state distribution at time `t` given the initial distribution
/// `p0` (must sum to 1) using uniformization with truncation error <= `eps`.
///
/// Throws std::invalid_argument for bad inputs (negative time, distribution
/// of the wrong size or not summing to 1).
[[nodiscard]] std::vector<double> transient_distribution(const Ctmc& chain,
                                                         const std::vector<double>& p0,
                                                         double t, double eps = 1e-12);

/// Probability of being in `target` at time `t` starting from `source`.
[[nodiscard]] double transient_probability(const Ctmc& chain, StateId source,
                                           StateId target, double t,
                                           double eps = 1e-12);

}  // namespace sigcomp::markov
