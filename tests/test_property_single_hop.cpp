// Parameterized property tests: model invariants must hold across the whole
// (protocol x loss x refresh-timer x lifetime) grid, not just at defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analytic/single_hop.hpp"

namespace sigcomp::analytic {
namespace {

using Grid = std::tuple<ProtocolKind, double /*loss*/, double /*refresh*/,
                        double /*lifetime*/>;

class SingleHopGrid : public ::testing::TestWithParam<Grid> {
 protected:
  static SingleHopParams params() {
    const auto& [kind, loss, refresh, lifetime] = GetParam();
    (void)kind;
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.loss = loss;
    p.removal_rate = 1.0 / lifetime;
    return p.with_refresh_scaled_timeout(refresh);
  }
  static ProtocolKind kind() { return std::get<0>(GetParam()); }
};

TEST_P(SingleHopGrid, ProbabilityMassIsConserved) {
  const SingleHopModel model(kind(), params());
  double total = 0.0;
  for (const ShState s : kAllShStates) total += model.stationary(s);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (const ShState s : kAllShStates) {
    EXPECT_GE(model.stationary(s), -1e-12) << to_string(s);
    EXPECT_LE(model.stationary(s), 1.0 + 1e-12) << to_string(s);
  }
}

TEST_P(SingleHopGrid, InconsistencyIsAProbability) {
  const SingleHopModel model(kind(), params());
  EXPECT_GT(model.inconsistency(), 0.0);
  EXPECT_LT(model.inconsistency(), 1.0);
}

TEST_P(SingleHopGrid, SessionLengthIsFiniteAndPositive) {
  const SingleHopModel model(kind(), params());
  const double length = model.session_length();
  EXPECT_TRUE(std::isfinite(length));
  EXPECT_GT(length, 0.0);
  // A session is at least as long as the sender's own mean lifetime share
  // reachable before removal; sanity lower bound of half the lifetime.
  EXPECT_GT(length, 0.5 * params().mean_lifetime());
}

TEST_P(SingleHopGrid, MessageRatesAreFiniteAndNonNegative) {
  const SingleHopModel model(kind(), params());
  const MessageRateBreakdown b = model.message_rates();
  for (const double rate : {b.trigger, b.refresh, b.explicit_removal,
                            b.reliable_trigger, b.reliable_removal}) {
    EXPECT_TRUE(std::isfinite(rate));
    EXPECT_GE(rate, 0.0);
  }
  EXPECT_GT(b.total(), 0.0);
}

TEST_P(SingleHopGrid, NormalizedRateConsistentWithRawRate) {
  const SingleHopModel model(kind(), params());
  const Metrics m = model.metrics();
  EXPECT_NEAR(m.message_rate,
              m.session_length * m.raw_message_rate * params().removal_rate,
              1e-9 * std::max(1.0, m.message_rate));
}

TEST_P(SingleHopGrid, AbsorptionIsReachableFromEveryTransientState) {
  const SingleHopModel model(kind(), params());
  const auto& chain = model.transient_chain();
  const auto absorbing = chain.absorbing_states();
  ASSERT_EQ(absorbing.size(), 1u);
  for (markov::StateId s = 0; s < chain.num_states(); ++s) {
    if (s == absorbing[0]) continue;
    EXPECT_TRUE(chain.reachable(s, absorbing[0])) << chain.name(s);
  }
}

TEST_P(SingleHopGrid, ExplicitRemovalNeverHurtsConsistency) {
  const SingleHopParams p = params();
  switch (kind()) {
    case ProtocolKind::kSS: {
      const double base = SingleHopModel(ProtocolKind::kSS, p).inconsistency();
      const double er = SingleHopModel(ProtocolKind::kSSER, p).inconsistency();
      EXPECT_LE(er, base * (1.0 + 1e-9));
      break;
    }
    case ProtocolKind::kSSRT: {
      const double base = SingleHopModel(ProtocolKind::kSSRT, p).inconsistency();
      const double er = SingleHopModel(ProtocolKind::kSSRTR, p).inconsistency();
      EXPECT_LE(er, base * (1.0 + 1e-9));
      break;
    }
    default:
      GTEST_SKIP() << "pairing applies to SS and SS+RT only";
  }
}

TEST_P(SingleHopGrid, ReliableTriggersNeverHurtConsistency) {
  const SingleHopParams p = params();
  switch (kind()) {
    case ProtocolKind::kSS: {
      const double base = SingleHopModel(ProtocolKind::kSS, p).inconsistency();
      const double rt = SingleHopModel(ProtocolKind::kSSRT, p).inconsistency();
      EXPECT_LE(rt, base * (1.0 + 1e-9));
      break;
    }
    case ProtocolKind::kSSER: {
      const double base = SingleHopModel(ProtocolKind::kSSER, p).inconsistency();
      const double rtr = SingleHopModel(ProtocolKind::kSSRTR, p).inconsistency();
      EXPECT_LE(rtr, base * (1.0 + 1e-9));
      break;
    }
    default:
      GTEST_SKIP() << "pairing applies to SS and SS+ER only";
  }
}

TEST_P(SingleHopGrid, IntegratedCostIsFinite) {
  const Metrics m = SingleHopModel(kind(), params()).metrics();
  EXPECT_TRUE(std::isfinite(integrated_cost(m)));
  EXPECT_GT(integrated_cost(m), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SingleHopGrid,
    ::testing::Combine(::testing::ValuesIn(kAllProtocols),
                       ::testing::Values(0.0, 0.02, 0.1, 0.3),
                       ::testing::Values(0.5, 5.0, 50.0),
                       ::testing::Values(60.0, 1800.0, 20000.0)),
    [](const auto& param_info) {
      std::string name{to_string(std::get<0>(param_info.param))};
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      name += "_loss" + std::to_string(int(std::get<1>(param_info.param) * 100));
      name += "_R" + std::to_string(int(std::get<2>(param_info.param) * 10));
      name += "_L" + std::to_string(int(std::get<3>(param_info.param)));
      return name;
    });

// Monotonicity sweeps (separate suite so the grid above stays cheap).

class LossMonotonicity : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(LossMonotonicity, InconsistencyIsNonDecreasingInLoss) {
  double previous = 0.0;
  for (const double loss : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.loss = loss;
    const double inconsistency = SingleHopModel(GetParam(), p).inconsistency();
    EXPECT_GE(inconsistency, previous - 1e-12) << "loss " << loss;
    previous = inconsistency;
  }
}

TEST_P(LossMonotonicity, DelayIncreasesInconsistency) {
  double previous = 0.0;
  for (const double delay : {0.01, 0.05, 0.1, 0.3, 0.6, 1.0}) {
    const SingleHopParams p =
        SingleHopParams::kazaa_defaults().with_delay_scaled_retrans(delay);
    const double inconsistency = SingleHopModel(GetParam(), p).inconsistency();
    EXPECT_GT(inconsistency, previous) << "delay " << delay;
    previous = inconsistency;
  }
}

TEST_P(LossMonotonicity, SlowerRetransmissionNeverHelpsConsistency) {
  // For protocols with reliable transmission, I is non-decreasing in Gamma;
  // for the others it is exactly flat (Fig. 8(b)).
  const bool reliable = mechanisms(GetParam()).reliable_trigger ||
                        mechanisms(GetParam()).reliable_removal;
  double previous = 0.0;
  bool first = true;
  for (const double gamma : {0.05, 0.12, 0.5, 1.0, 4.0}) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.retrans_timer = gamma;
    const double inconsistency = SingleHopModel(GetParam(), p).inconsistency();
    if (!first) {
      if (reliable) {
        EXPECT_GE(inconsistency, previous - 1e-15) << "gamma " << gamma;
      } else {
        EXPECT_NEAR(inconsistency, previous, 1e-12) << "gamma " << gamma;
      }
    }
    previous = inconsistency;
    first = false;
  }
}

TEST_P(LossMonotonicity, CostWeightOnlyScalesTheInconsistencyTerm) {
  const Metrics m = SingleHopModel(GetParam(), SingleHopParams::kazaa_defaults())
                        .metrics();
  for (const double w : {0.0, 1.0, 10.0, 100.0}) {
    EXPECT_NEAR(integrated_cost(m, w), w * m.inconsistency + m.message_rate,
                1e-12)
        << "w " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LossMonotonicity,
                         ::testing::ValuesIn(kAllProtocols),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sigcomp::analytic
