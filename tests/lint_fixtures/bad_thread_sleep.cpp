// Fixture: scheduling-dependent sleeps/yields in library code.
#include <chrono>
#include <thread>

void wait_a_bit() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // LINT[thread-sleep]
  std::this_thread::yield();                                   // LINT[thread-sleep]
}
