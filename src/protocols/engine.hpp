// Executable sender/receiver state machines for the single-hop setting.
//
// The five protocols are mechanism combinations (core/protocol.hpp), so a
// single pair of engines parameterized by MechanismSet implements all of
// them -- exactly the paper's "spectrum" framing.  The held state itself
// lives in a protocols::StateSlot (protocols/state_slot.hpp), the same
// mechanism-driven core the multi-hop tree nodes instantiate; the engines
// add the single-hop session choreography (epochs, staged retransmission
// backoff, explicit removal handshake) on top.  Factory helpers instantiate
// the engines for a named protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/protocol.hpp"
#include "protocols/message.hpp"
#include "protocols/state_slot.hpp"
#include "sim/channel.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

/// The signaling sender ("state installer").
///
/// Drives triggers, refreshes, retransmissions and explicit removals
/// according to the mechanism set.  Invokes `on_change` whenever its local
/// state value changes (the consistency monitor hooks in there).
class SenderEngine {
 public:
  /// Wires the sender to its outgoing channel; `on_change` (may be null)
  /// fires on every local state change.
  SenderEngine(sim::Simulator& sim, sim::Rng& rng, MechanismSet mechanisms,
               TimerSettings timers, MessageChannel& out,
               std::function<void()> on_change);

  SenderEngine(const SenderEngine&) = delete;             ///< non-copyable
  SenderEngine& operator=(const SenderEngine&) = delete;  ///< non-copyable

  /// Installs (or re-installs) local state and signals it to the receiver.
  void install(std::int64_t value);

  /// Updates the local state value; signaling as for install.
  void update(std::int64_t value);

  /// Removes local state; emits an explicit removal if the protocol has one.
  void remove();

  /// The sender crashes: state vanishes and all timers stop, but NOTHING is
  /// signaled -- no removal message, no final refresh.  Orphaned receiver
  /// state must be cleaned up by the receiver's own mechanisms (timeout) or
  /// by an external failure detector (hard state).  This is exactly the
  /// scenario Clark's original soft-state argument is about.
  void crash();

  /// Delivers a message from the receiver (ACKs, notices).
  void handle(const Message& msg);

  /// Cancels every pending timer and pending retransmission (session end).
  void reset();

  /// Starts a new session epoch; stale messages are ignored afterwards.
  void begin_epoch(std::uint64_t epoch);

  /// The installed state value (nullopt when removed).
  [[nodiscard]] std::optional<std::int64_t> value() const noexcept {
    return slot_.value();
  }
  /// True while an explicit removal is awaiting acknowledgment.
  [[nodiscard]] bool removal_pending() const noexcept { return removal_pending_; }
  /// The current session epoch.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  void send_trigger();
  void arm_refresh();
  void on_refresh_timer();
  void arm_trigger_retrans();
  void on_trigger_retrans();
  void arm_removal_retrans();
  void on_removal_retrans();
  void cancel(std::optional<sim::EventId>& id);
  void notify();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  MessageChannel& out_;
  std::function<void()> on_change_;

  /// The authoritative root copy: never armed, so it cannot time out.
  StateSlot slot_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t trigger_seq_ = 0;   ///< seq of the latest trigger content
  std::uint64_t removal_seq_ = 0;
  bool awaiting_trigger_ack_ = false;
  bool removal_pending_ = false;
  std::optional<sim::EventId> refresh_timer_;
  std::optional<sim::EventId> trigger_retrans_timer_;
  std::optional<sim::EventId> removal_retrans_timer_;
  double trigger_retrans_interval_ = 0.0;
  double removal_retrans_interval_ = 0.0;
};

/// The signaling receiver ("state holder").
class ReceiverEngine {
 public:
  /// Wires the receiver to its outgoing (toward-sender) channel; `on_change`
  /// (may be null) fires on every local state change.
  ReceiverEngine(sim::Simulator& sim, sim::Rng& rng, MechanismSet mechanisms,
                 TimerSettings timers, MessageChannel& out,
                 std::function<void()> on_change);

  ReceiverEngine(const ReceiverEngine&) = delete;             ///< non-copyable
  ReceiverEngine& operator=(const ReceiverEngine&) = delete;  ///< non-copyable

  /// Delivers a message from the sender.
  void handle(const Message& msg);

  /// External failure-detector signal (hard state): removes state and sends
  /// a notice so a live sender can re-install (the "false notification
  /// repair" of Sec. II).
  void external_removal_signal();

  /// Cancels the pending timeout timer (session end).
  void reset();

  /// Starts a new session epoch; stale messages are ignored afterwards.
  void begin_epoch(std::uint64_t epoch);

  /// The held state value (nullopt when no state is installed).
  [[nodiscard]] std::optional<std::int64_t> value() const noexcept {
    return slot_.value();
  }
  /// The current session epoch.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// Number of soft-state timeout expirations observed (tests use this).
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return slot_.timeouts();
  }

 private:
  void on_expire();
  void notify();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  MessageChannel& out_;
  std::function<void()> on_change_;

  /// The held copy plus its soft-state timeout (the mechanism core).
  StateSlot slot_;
  std::uint64_t epoch_ = 0;
};

}  // namespace sigcomp::protocols
