#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sigcomp::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, StepAdvancesClockToEventTime) {
  Simulator s;
  s.schedule_at(2.5, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  std::vector<double> times;
  s.schedule_in(1.0, [&] {
    times.push_back(s.now());
    s.schedule_in(1.5, [&] { times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  s.schedule_in(3.0, [&] {
    s.schedule_in(-5.0, [&] { EXPECT_DOUBLE_EQ(s.now(), 3.0); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator s;
  s.schedule_at(5.0, [] {});
  s.step();
  EXPECT_THROW(s.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilExecutesUpToBoundaryInclusive) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.schedule_at(3.0, [&] { ++fired; });
  s.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_in(double(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, RunWithEventCapStopsEarly) {
  Simulator s;
  int fired = 0;
  // A self-perpetuating event chain.
  std::function<void()> tick = [&] {
    ++fired;
    s.schedule_in(1.0, tick);
  };
  s.schedule_in(1.0, tick);
  s.run(10);
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(1.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, BackendSelectionIsExplicitAndReported) {
  const Simulator def;
  EXPECT_EQ(def.backend(), kDefaultEventQueueBackend);
  const Simulator heap(EventQueueBackend::kHeap);
  EXPECT_EQ(heap.backend(), EventQueueBackend::kHeap);
  const Simulator wheel(EventQueueBackend::kWheel);
  EXPECT_EQ(wheel.backend(), EventQueueBackend::kWheel);
}

TEST(Simulator, BackendNamesRoundTrip) {
  EXPECT_STREQ(to_string(EventQueueBackend::kHeap), "heap");
  EXPECT_STREQ(to_string(EventQueueBackend::kWheel), "wheel");
  EXPECT_EQ(parse_event_queue_backend("heap"), EventQueueBackend::kHeap);
  EXPECT_EQ(parse_event_queue_backend("wheel"), EventQueueBackend::kWheel);
  EXPECT_FALSE(parse_event_queue_backend("ring").has_value());
  EXPECT_FALSE(parse_event_queue_backend("").has_value());
}

TEST(Simulator, BackendsProduceIdenticalEventSequences) {
  // The whole Simulator surface -- schedule_at/in, cancel, run_until,
  // simultaneous ties -- driven once per backend; the observable event
  // sequence (times and payload order) must match exactly.
  const auto drive = [](EventQueueBackend backend) {
    Simulator s(backend);
    std::vector<std::pair<double, int>> fired;
    const auto record = [&fired, &s](int tag) {
      fired.emplace_back(s.now(), tag);
    };
    s.schedule_at(1.0, [&, record] { record(1); });
    s.schedule_at(1.0, [&, record] { record(2); });  // tie
    const EventId dead = s.schedule_at(1.5, [&, record] { record(99); });
    s.schedule_in(2.0, [&, record] {
      record(3);
      s.schedule_in(-1.0, [&, record] { record(4); });  // clamps to now
      s.schedule_in(500.0, [&, record] { record(6); });  // far future
    });
    s.cancel(dead);
    s.run_until(100.0);
    s.schedule_at(100.5, [&, record] { record(5); });
    s.run();
    return fired;
  };
  const auto heap = drive(EventQueueBackend::kHeap);
  const auto wheel = drive(EventQueueBackend::kWheel);
  EXPECT_EQ(heap, wheel);
  ASSERT_EQ(heap.size(), 6u);
}

TEST(Simulator, WheelBackendHandlesSelfPerpetuatingChains) {
  Simulator s(EventQueueBackend::kWheel);
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    s.schedule_in(1.0, tick);
  };
  s.schedule_in(1.0, tick);
  s.run(1000);
  EXPECT_EQ(fired, 1000);
  EXPECT_DOUBLE_EQ(s.now(), 1000.0);
  EXPECT_EQ(s.events_executed(), 1000u);
}

}  // namespace
}  // namespace sigcomp::sim
