// Ablation beyond the paper's five named protocols: the unified model
// accepts ANY valid mechanism combination, so we can ask directly "which
// mechanism buys what" across the whole design space.  Every valid subset
// of {refresh+timeout, explicit removal, reliable triggers, reliable
// removal, removal notification, external failure detector} is evaluated
// at the single-hop defaults and ranked by integrated cost.
//
// Usage: ablation_mechanisms [--csv PATH]
#include <algorithm>
#include <iostream>
#include <vector>

#include "analytic/single_hop.hpp"
#include "exp/table.hpp"

namespace {

using namespace sigcomp;

std::string flags(const MechanismSet& m) {
  std::string out;
  const auto add = [&](bool on, const char* tag) {
    if (on) {
      if (!out.empty()) out += '+';
      out += tag;
    }
  };
  add(m.refresh, "R");
  add(m.soft_timeout, "TO");
  add(m.explicit_removal, "ER");
  add(m.reliable_trigger, "RT");
  add(m.reliable_removal, "RR");
  add(m.removal_notification, "N");
  add(m.external_failure_detector, "X");
  return out.empty() ? "-" : out;
}

std::string named_protocol(const MechanismSet& m) {
  for (const ProtocolKind kind : kAllProtocols) {
    if (mechanisms(kind) == m) return std::string(to_string(kind));
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();

  struct Row {
    MechanismSet mech;
    Metrics metrics;
  };
  std::vector<Row> rows;

  for (int bits = 0; bits < (1 << 7); ++bits) {
    MechanismSet m;
    m.refresh = bits & 1;
    m.soft_timeout = bits & 2;
    m.explicit_removal = bits & 4;
    m.reliable_trigger = bits & 8;
    m.reliable_removal = bits & 16;
    m.removal_notification = bits & 32;
    m.external_failure_detector = bits & 64;
    // Skip redundant variants: a notification with nothing that can falsely
    // remove state, and an external detector stacked on a soft timeout.
    if (m.removal_notification &&
        !(m.soft_timeout || m.external_failure_detector)) {
      continue;
    }
    if (m.external_failure_detector && m.soft_timeout) continue;
    try {
      analytic::validate_mechanisms(m);
    } catch (const std::invalid_argument&) {
      continue;
    }
    const analytic::SingleHopModel model(m, params);
    rows.push_back({m, model.metrics()});
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return integrated_cost(a.metrics) < integrated_cost(b.metrics);
  });

  exp::Table table(
      "Mechanism ablation, ranked by integrated cost C = 10*I + M "
      "(single-hop defaults). R=refresh TO=timeout ER=explicit removal "
      "RT=reliable trigger RR=reliable removal N=notification X=external "
      "detector",
      {"mechanisms", "paper name", "I", "M", "cost C"});
  for (const Row& row : rows) {
    table.add_row({flags(row.mech), named_protocol(row.mech),
                   row.metrics.inconsistency, row.metrics.message_rate,
                   integrated_cost(row.metrics)});
  }
  table.print(std::cout);

  std::cout << "\nReading guide: the paper's five protocols appear by name; "
               "every other row is a hybrid the paper's framework implies "
               "but does not evaluate.\n";

  const std::string csv = sigcomp::exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
